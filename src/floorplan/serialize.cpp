#include "floorplan/serialize.h"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>

namespace fpopt {
namespace {

struct Tokenizer {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  [[nodiscard]] bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  std::string_view next_token() {
    skip_ws();
    if (pos >= text.size()) throw ParseError("unexpected end of topology");
    if (text[pos] == '(' || text[pos] == ')') {
      return text.substr(pos++, 1);
    }
    const std::size_t start = pos;
    while (pos < text.size() && !std::isspace(static_cast<unsigned char>(text[pos])) &&
           text[pos] != '(' && text[pos] != ')') {
      ++pos;
    }
    return text.substr(start, pos - start);
  }
};

std::unique_ptr<FloorplanNode> parse_node(Tokenizer& tok,
                                          const std::map<std::string, std::size_t, std::less<>>&
                                              name_to_id) {
  const std::string_view t = tok.next_token();
  if (t == ")") throw ParseError("unexpected ')'");
  if (t != "(") {
    const auto it = name_to_id.find(t);
    if (it == name_to_id.end()) {
      throw ParseError("unknown module name '" + std::string(t) + '\'');
    }
    return FloorplanNode::leaf(it->second);
  }

  const std::string_view head = tok.next_token();
  if (head == "V" || head == "H") {
    std::vector<std::unique_ptr<FloorplanNode>> children;
    while (tok.peek() != ')') children.push_back(parse_node(tok, name_to_id));
    tok.next_token();  // consume ')'
    if (children.size() < 2) throw ParseError("slice needs at least 2 children");
    return FloorplanNode::slice(head == "V" ? SliceDir::Vertical : SliceDir::Horizontal,
                                std::move(children));
  }
  if (head == "W" || head == "M") {
    std::array<std::unique_ptr<FloorplanNode>, kWheelArity> children;
    for (auto& c : children) c = parse_node(tok, name_to_id);
    if (tok.next_token() != ")") throw ParseError("wheel takes exactly 5 children");
    return FloorplanNode::wheel(
        head == "W" ? WheelChirality::Clockwise : WheelChirality::CounterClockwise,
        std::move(children));
  }
  throw ParseError("unknown node head '" + std::string(head) + "' (expected V, H, W or M)");
}

Dim parse_dim(std::string_view s) {
  Dim value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value <= 0) {
    throw ParseError("bad dimension '" + std::string(s) + '\'');
  }
  return value;
}

}  // namespace

std::vector<Module> parse_module_library(std::string_view text) {
  std::vector<Module> modules;
  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream in{std::string(line)};
    std::string name;
    if (!(in >> name)) continue;  // blank line

    std::vector<RectImpl> cands;
    std::string impl;
    while (in >> impl) {
      const std::size_t x = impl.find('x');
      if (x == std::string::npos) throw ParseError("bad implementation '" + impl + '\'');
      cands.push_back({parse_dim(std::string_view(impl).substr(0, x)),
                       parse_dim(std::string_view(impl).substr(x + 1))});
    }
    if (cands.empty()) throw ParseError("module '" + name + "' lists no implementations");
    modules.emplace_back(std::move(name), RList::from_candidates(std::move(cands)));
  }
  return modules;
}

std::string to_module_library_string(const std::vector<Module>& modules) {
  std::ostringstream out;
  for (const Module& m : modules) {
    out << m.name;
    for (const RectImpl& r : m.impls) out << ' ' << r.w << 'x' << r.h;
    out << '\n';
  }
  return out.str();
}

FloorplanTree parse_floorplan(std::string_view topology, std::vector<Module> modules) {
  std::map<std::string, std::size_t, std::less<>> name_to_id;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    if (!name_to_id.emplace(modules[i].name, i).second) {
      throw ParseError("duplicate module name '" + modules[i].name + '\'');
    }
  }
  Tokenizer tok{topology};
  auto root = parse_node(tok, name_to_id);
  if (!tok.eof()) throw ParseError("trailing tokens after topology");
  return FloorplanTree(std::move(modules), std::move(root));
}

namespace {

void print_node(const FloorplanNode& node, const std::vector<Module>& modules,
                std::ostringstream& out) {
  switch (node.kind) {
    case NodeKind::Leaf:
      out << modules[node.module_id].name;
      return;
    case NodeKind::Slice:
      out << '(' << (node.dir == SliceDir::Vertical ? 'V' : 'H');
      break;
    case NodeKind::Wheel:
      out << '(' << (node.chirality == WheelChirality::Clockwise ? 'W' : 'M');
      break;
  }
  for (const auto& child : node.children) {
    out << ' ';
    print_node(*child, modules, out);
  }
  out << ')';
}

}  // namespace

std::string to_topology_string(const FloorplanTree& tree) {
  std::ostringstream out;
  print_node(tree.root(), tree.modules(), out);
  return out.str();
}

}  // namespace fpopt
