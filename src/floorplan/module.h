// Leaf modules of a floorplan: a name plus the irreducible R-list of all
// non-redundant implementations (the optimizer's input, Section 3).
#pragma once

#include <string>
#include <utility>

#include "shape/r_list.h"

namespace fpopt {

struct Module {
  std::string name;
  RList impls;

  Module() = default;
  Module(std::string n, RList i) : name(std::move(n)), impls(std::move(i)) {}

  friend bool operator==(const Module&, const Module&) = default;
};

/// The module with free 90-degree rotation: every implementation is added
/// in both orientations and the union is dominance-pruned back to an
/// irreducible R-list. The result's curve is symmetric about w == h.
[[nodiscard]] inline Module with_rotation(const Module& module) {
  std::vector<RectImpl> cands;
  cands.reserve(2 * module.impls.size());
  for (const RectImpl& r : module.impls) {
    cands.push_back(r);
    cands.push_back({r.h, r.w});
  }
  return Module{module.name, RList::from_candidates(std::move(cands))};
}

}  // namespace fpopt
