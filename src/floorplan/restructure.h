// Restructuring the floorplan tree T into the binary tree T' (Section 3,
// Figure 3): every internal node of T' corresponds to either a rectangular
// block or an L-shaped block.
//
// * A slice with children c1..cm becomes the left-deep chain
//   ((c1 (+) c2) (+) c3) ... (+) cm  of two-child slices (every prefix of a
//   sliced rectangle is itself a rectangular block). An optional balanced
//   mode folds the children as a balanced binary tree instead, which keeps
//   intermediate lists smaller at high fanout (ablation material).
// * A wheel with children {Bottom, Left, Center, Right, Top} becomes the
//   assembly chain
//       WheelClose( WheelExtend( WheelFillNotch( WheelStack(Bottom, Left),
//                                                 Center), Right), Top)
//   whose three inner nodes are L-shaped blocks and whose close node is the
//   wheel's rectangle. See optimize/combine.h for the op geometry.
#pragma once

#include <cstddef>
#include <memory>

#include "floorplan/tree.h"

namespace fpopt {

enum class BinaryOp : std::uint8_t {
  LeafModule,      ///< R-list comes straight from the module library
  SliceH,          ///< rect (+) rect, stacked bottom/top -> rect
  SliceV,          ///< rect (+) rect, side by side left/right -> rect
  WheelStack,      ///< op1: Bottom (+) Left -> L (left child rect, right child rect)
  WheelFillNotch,  ///< op2: L (+) Center -> L
  WheelExtend,     ///< op3: L (+) Right -> L
  WheelClose,      ///< op4: L (+) Top -> rect (completes the wheel)
};

/// True when the op's result is an L-shaped block.
[[nodiscard]] constexpr bool op_is_l_block(BinaryOp op) {
  return op == BinaryOp::WheelStack || op == BinaryOp::WheelFillNotch ||
         op == BinaryOp::WheelExtend;
}

struct BinaryNode {
  BinaryOp op = BinaryOp::LeafModule;
  std::size_t module_id = 0;                             ///< LeafModule only
  WheelChirality chirality = WheelChirality::Clockwise;  ///< WheelClose only
  std::size_t id = 0;  ///< preorder index within the binary tree
  std::unique_ptr<BinaryNode> left;
  std::unique_ptr<BinaryNode> right;

  [[nodiscard]] bool is_leaf() const { return op == BinaryOp::LeafModule; }
  [[nodiscard]] bool is_l_block() const { return op_is_l_block(op); }
};

struct BinaryTree {
  std::unique_ptr<BinaryNode> root;
  std::size_t node_count = 0;
};

struct RestructureOptions {
  /// false: left-deep slice chains (the traditional restructuring);
  /// true: balanced slice folding.
  bool balanced_slices = false;
};

/// Build T' from a well-formed T. Node ids are assigned in preorder.
[[nodiscard]] BinaryTree restructure(const FloorplanTree& tree,
                                     const RestructureOptions& opts = {});

}  // namespace fpopt
