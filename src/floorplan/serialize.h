// Text (de)serialization of floorplan trees and module libraries.
//
// Topology grammar (s-expressions; whitespace separates tokens):
//
//   node     := module-name | slice | wheel
//   slice    := '(' ('V' | 'H') node node ... ')'       >= 2 children
//   wheel    := '(' ('W' | 'M') bottom left center right top ')'
//
// 'V' puts children side by side (vertical cuts, left to right), 'H'
// stacks them (bottom to top), 'W' is a clockwise wheel, 'M' its mirrored
// (counter-clockwise) form. Wheel children are listed in WheelPos order.
//
// Module library format: one module per line,
//
//   name w1xh1 w2xh2 ...
//
// '#' starts a comment. Implementations may be listed in any order and
// with redundancy; they are dominance-pruned into an irreducible R-list.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "floorplan/tree.h"

namespace fpopt {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[nodiscard]] std::vector<Module> parse_module_library(std::string_view text);
[[nodiscard]] std::string to_module_library_string(const std::vector<Module>& modules);

/// Parse a topology against a module library. Every name must resolve to a
/// library module. Throws ParseError on malformed input.
[[nodiscard]] FloorplanTree parse_floorplan(std::string_view topology,
                                            std::vector<Module> modules);

[[nodiscard]] std::string to_topology_string(const FloorplanTree& tree);

}  // namespace fpopt
