// Floorplan trees (Section 2, Figure 1): the hierarchical description of
// how the enveloping rectangle is recursively partitioned.
//
// Internal nodes are either slices (the rectangle is cut by parallel
// horizontal or vertical segments into >= 2 parts) or wheels (the order-5
// pinwheel, the smallest non-slicing pattern). This is the class of
// "hierarchical floorplans of order 5" the DAC'90 optimizer handles.
//
// Wheel child positions, clockwise chirality (W the wheel's width, H its
// height; 0 < x1 < x2 < W and 0 < y1 < y2 < H are the four cut lines):
//
//        +--------+----------+
//        | Left   |   Top    |        Bottom: [0,x2] x [0,y1]
//        |        +---+------+        Left:   [0,x1] x [y1,H]
//        |        | E |      |        Center: [x1,x2] x [y1,y2]
//        +--------+---+ Right|        Right:  [x2,W] x [0,y2]
//        |  Bottom    |      |        Top:    [x1,W] x [y2,H]
//        +------------+------+
//
// Counter-clockwise wheels are the mirror image; they share the clockwise
// evaluation (shape curves are mirror-invariant) and are reflected back at
// placement time.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "floorplan/module.h"

namespace fpopt {

enum class NodeKind { Leaf, Slice, Wheel };

/// Direction of the cut segments: a Vertical slice puts children side by
/// side (left to right); a Horizontal slice stacks them (bottom to top).
enum class SliceDir { Horizontal, Vertical };

enum class WheelChirality { Clockwise, CounterClockwise };

/// Index of each wheel child inside FloorplanNode::children.
enum class WheelPos : std::size_t { Bottom = 0, Left = 1, Center = 2, Right = 3, Top = 4 };

inline constexpr std::size_t kWheelArity = 5;

struct FloorplanNode {
  NodeKind kind = NodeKind::Leaf;
  SliceDir dir = SliceDir::Vertical;                    // Slice nodes only
  WheelChirality chirality = WheelChirality::Clockwise; // Wheel nodes only
  std::size_t module_id = 0;                            // Leaf nodes only
  std::vector<std::unique_ptr<FloorplanNode>> children;

  [[nodiscard]] static std::unique_ptr<FloorplanNode> leaf(std::size_t module_id);
  [[nodiscard]] static std::unique_ptr<FloorplanNode> slice(
      SliceDir dir, std::vector<std::unique_ptr<FloorplanNode>> children);
  /// Children in WheelPos order: Bottom, Left, Center, Right, Top.
  [[nodiscard]] static std::unique_ptr<FloorplanNode> wheel(
      WheelChirality chirality, std::array<std::unique_ptr<FloorplanNode>, kWheelArity> children);

  [[nodiscard]] const FloorplanNode& child(WheelPos pos) const {
    return *children[static_cast<std::size_t>(pos)];
  }
};

struct TreeStats {
  std::size_t leaf_count = 0;
  std::size_t slice_count = 0;
  std::size_t wheel_count = 0;
  std::size_t depth = 0;  // leaves-only tree has depth 1
};

/// A floorplan topology together with its module library. Leaves reference
/// modules by index; a well-formed tree references every module exactly
/// once.
class FloorplanTree {
 public:
  FloorplanTree() = default;
  FloorplanTree(std::vector<Module> modules, std::unique_ptr<FloorplanNode> root);

  [[nodiscard]] const FloorplanNode& root() const { return *root_; }
  [[nodiscard]] bool has_root() const { return root_ != nullptr; }
  [[nodiscard]] const std::vector<Module>& modules() const { return modules_; }
  [[nodiscard]] const Module& module(std::size_t id) const { return modules_[id]; }
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }

  /// Structural problems, empty when the tree is well-formed: every slice
  /// has >= 2 children, every wheel exactly 5, leaf module ids are valid
  /// and each module is used exactly once, and no module R-list is empty.
  [[nodiscard]] std::vector<std::string> validate() const;

  [[nodiscard]] TreeStats stats() const;

 private:
  std::vector<Module> modules_;
  std::unique_ptr<FloorplanNode> root_;
};

}  // namespace fpopt
