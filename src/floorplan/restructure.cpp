#include "floorplan/restructure.h"

#include <cassert>
#include <span>

namespace fpopt {
namespace {

std::unique_ptr<BinaryNode> make_internal(BinaryOp op, std::unique_ptr<BinaryNode> left,
                                          std::unique_ptr<BinaryNode> right) {
  auto node = std::make_unique<BinaryNode>();
  node->op = op;
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

std::unique_ptr<BinaryNode> convert(const FloorplanNode& node, const RestructureOptions& opts);

/// Fold a run of slice children into a binary subtree.
std::unique_ptr<BinaryNode> fold_slice(
    BinaryOp op, std::span<const std::unique_ptr<FloorplanNode>> children,
    const RestructureOptions& opts) {
  assert(!children.empty());
  if (children.size() == 1) return convert(*children.front(), opts);
  if (opts.balanced_slices) {
    const std::size_t mid = children.size() / 2;
    return make_internal(op, fold_slice(op, children.subspan(0, mid), opts),
                         fold_slice(op, children.subspan(mid), opts));
  }
  // Left-deep: fold each next child onto the accumulated prefix block.
  std::unique_ptr<BinaryNode> acc = convert(*children[0], opts);
  for (std::size_t i = 1; i < children.size(); ++i) {
    acc = make_internal(op, std::move(acc), convert(*children[i], opts));
  }
  return acc;
}

std::unique_ptr<BinaryNode> convert(const FloorplanNode& node, const RestructureOptions& opts) {
  switch (node.kind) {
    case NodeKind::Leaf: {
      auto leaf = std::make_unique<BinaryNode>();
      leaf->op = BinaryOp::LeafModule;
      leaf->module_id = node.module_id;
      return leaf;
    }
    case NodeKind::Slice: {
      const BinaryOp op =
          node.dir == SliceDir::Horizontal ? BinaryOp::SliceH : BinaryOp::SliceV;
      return fold_slice(op, node.children, opts);
    }
    case NodeKind::Wheel: {
      assert(node.children.size() == kWheelArity);
      auto stack = make_internal(BinaryOp::WheelStack, convert(node.child(WheelPos::Bottom), opts),
                                 convert(node.child(WheelPos::Left), opts));
      auto notch = make_internal(BinaryOp::WheelFillNotch, std::move(stack),
                                 convert(node.child(WheelPos::Center), opts));
      auto extend = make_internal(BinaryOp::WheelExtend, std::move(notch),
                                  convert(node.child(WheelPos::Right), opts));
      auto close = make_internal(BinaryOp::WheelClose, std::move(extend),
                                 convert(node.child(WheelPos::Top), opts));
      close->chirality = node.chirality;
      return close;
    }
  }
  return nullptr;  // unreachable
}

std::size_t assign_ids(BinaryNode& node, std::size_t next) {
  node.id = next++;
  if (node.left) next = assign_ids(*node.left, next);
  if (node.right) next = assign_ids(*node.right, next);
  return next;
}

}  // namespace

BinaryTree restructure(const FloorplanTree& tree, const RestructureOptions& opts) {
  assert(tree.has_root());
  BinaryTree out;
  out.root = convert(tree.root(), opts);
  out.node_count = assign_ids(*out.root, 0);
  return out;
}

}  // namespace fpopt
