#include "floorplan/tree.h"

#include <algorithm>
#include <cassert>

namespace fpopt {

std::unique_ptr<FloorplanNode> FloorplanNode::leaf(std::size_t module_id) {
  auto node = std::make_unique<FloorplanNode>();
  node->kind = NodeKind::Leaf;
  node->module_id = module_id;
  return node;
}

std::unique_ptr<FloorplanNode> FloorplanNode::slice(
    SliceDir dir, std::vector<std::unique_ptr<FloorplanNode>> children) {
  auto node = std::make_unique<FloorplanNode>();
  node->kind = NodeKind::Slice;
  node->dir = dir;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<FloorplanNode> FloorplanNode::wheel(
    WheelChirality chirality, std::array<std::unique_ptr<FloorplanNode>, kWheelArity> children) {
  auto node = std::make_unique<FloorplanNode>();
  node->kind = NodeKind::Wheel;
  node->chirality = chirality;
  node->children.reserve(kWheelArity);
  for (auto& c : children) node->children.push_back(std::move(c));
  return node;
}

FloorplanTree::FloorplanTree(std::vector<Module> modules, std::unique_ptr<FloorplanNode> root)
    : modules_(std::move(modules)), root_(std::move(root)) {}

namespace {

void validate_node(const FloorplanNode& node, const std::vector<Module>& modules,
                   std::vector<std::size_t>& use_count, std::vector<std::string>& errors) {
  switch (node.kind) {
    case NodeKind::Leaf:
      if (node.module_id >= modules.size()) {
        errors.push_back("leaf references module id " + std::to_string(node.module_id) +
                         " out of range");
      } else {
        ++use_count[node.module_id];
        if (modules[node.module_id].impls.empty()) {
          errors.push_back("module '" + modules[node.module_id].name +
                           "' has no implementations");
        }
      }
      if (!node.children.empty()) errors.push_back("leaf node has children");
      break;
    case NodeKind::Slice:
      if (node.children.size() < 2) errors.push_back("slice node has fewer than 2 children");
      break;
    case NodeKind::Wheel:
      if (node.children.size() != kWheelArity) {
        errors.push_back("wheel node has " + std::to_string(node.children.size()) +
                         " children, expected 5");
      }
      break;
  }
  for (const auto& child : node.children) {
    if (child == nullptr) {
      errors.push_back("null child pointer");
      continue;
    }
    validate_node(*child, modules, use_count, errors);
  }
}

void collect_stats(const FloorplanNode& node, std::size_t depth, TreeStats& s) {
  s.depth = std::max(s.depth, depth);
  switch (node.kind) {
    case NodeKind::Leaf:
      ++s.leaf_count;
      break;
    case NodeKind::Slice:
      ++s.slice_count;
      break;
    case NodeKind::Wheel:
      ++s.wheel_count;
      break;
  }
  for (const auto& child : node.children) {
    if (child) collect_stats(*child, depth + 1, s);
  }
}

}  // namespace

std::vector<std::string> FloorplanTree::validate() const {
  std::vector<std::string> errors;
  if (!root_) {
    errors.emplace_back("tree has no root");
    return errors;
  }
  std::vector<std::size_t> use_count(modules_.size(), 0);
  validate_node(*root_, modules_, use_count, errors);
  for (std::size_t id = 0; id < use_count.size(); ++id) {
    if (use_count[id] != 1) {
      errors.push_back("module '" + modules_[id].name + "' used " +
                       std::to_string(use_count[id]) + " times, expected 1");
    }
  }
  return errors;
}

TreeStats FloorplanTree::stats() const {
  TreeStats s;
  if (root_) collect_stats(*root_, 1, s);
  return s;
}

}  // namespace fpopt
