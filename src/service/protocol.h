// The fpoptd wire protocol: newline-delimited JSON frames, one request
// and one response per line (JSONL), over a Unix socket or stdio.
//
// Request (schema_version 1):
//   {"fpopt_request": {
//      "schema_version": 1,
//      "id": <string | integer | null>,          // echoed back verbatim
//      "command": "stats" | "optimize" | "place" | "ping" | "shutdown"
//               | "metrics" | "trace",            // admin verbs, no inputs
//      "topology": str, "library": str,          // the two CLI input files
//      "options": {"k1": uint, "k2": uint, "theta": number, "scap": uint,
//                  "metric": "l1"|"l2"|"linf", "budget": uint,
//                  "threads": uint, "incremental": bool, "cache_mb": uint,
//                  "impl": uint},                // all optional, CLI defaults
//      "priority": 0 | 1 | 2,                    // dispatch urgency, default 1
//      "deadline_ms": uint,                      // shed if not dispatched in time
//      "report": bool,                           // embed a run report
//      "trace": bool,                            // run commands: retain this
//                                                //   request's trace server-side
//      "format": "json" | "prometheus",          // metrics verb only
//      "pick": "recent" | "slowest" | "list"}}   // trace verb only
//
// Response (schema_version 1):
//   {"fpopt_response": {
//      "schema_version": 1, "id": <echo>,
//      "status": "ok" | "error",
//      "output": str,                            // ok: the CLI's stdout, byte-exact
//      "error": {"code": str, "message": str},   // error only
//      "fpopt_run_report": {...}}}               // when requested (also on E_BUDGET)
//
// Every malformed frame still gets exactly one response — with a
// machine-readable error code, never a dropped connection or a crash.
// The decode layer is pure (no I/O, no clock): a frame maps to the same
// ServiceRequest or ServiceError on every replay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/command.h"
#include "telemetry/json.h"

namespace fpopt {

inline constexpr int kServiceSchemaVersion = 1;

/// Machine-readable failure classes, each a distinct `error.code` string.
enum class ServiceErrorCode {
  kParse,      ///< E_PARSE: frame is not a JSON document
  kSchema,     ///< E_SCHEMA: JSON, but not a valid fpopt_request envelope
  kCommand,    ///< E_COMMAND: unknown command verb
  kOption,     ///< E_OPTION: option value out of range / wrong type
  kInput,      ///< E_INPUT: topology / library text fails to parse or validate
  kBudget,      ///< E_BUDGET: run aborted over the implementation budget
  kOversized,   ///< E_OVERSIZED: frame exceeds the server's max frame size
  kOverloaded,  ///< E_OVERLOADED: server at its connection cap, connection refused
  kDeadline,    ///< E_DEADLINE: request deadline expired before dispatch
  kInternal,    ///< E_INTERNAL: unexpected server-side failure
};

[[nodiscard]] const char* to_string(ServiceErrorCode code);

struct ServiceError {
  ServiceErrorCode code = ServiceErrorCode::kInternal;
  std::string message;
};

/// A decoded request frame. `spec` carries the command + options in the
/// exact shape the CLI's flag parser produces, so the execution core
/// (io/command.h) treats daemon and standalone runs identically.
struct ServiceRequest {
  /// The request's "id" member re-serialized as a JSON token ("null" when
  /// absent) — echoed into the response so a pipelining client can match
  /// responses to requests.
  std::string id_json = "null";
  std::string topology;
  std::string library;
  CommandSpec spec;
  bool want_report = false;
  /// True when the request set "budget" explicitly — the service's
  /// default implementation budget (admission control) applies otherwise.
  bool budget_set = false;
  /// Dispatch urgency (0 lowest .. 2 most urgent, default 1). Only the
  /// queue position in front of the shared pool depends on it; the
  /// response bytes never do.
  int priority = 1;
  /// Relative dispatch deadline: if the request is still queued behind
  /// the gate this many milliseconds after decode, it is shed with
  /// E_DEADLINE instead of run. Absent = wait however long it takes.
  std::optional<std::uint64_t> deadline_ms;
  /// Run commands: true asks the server to capture and retain this
  /// request's TraceSession for the `trace` admin verb. Never changes the
  /// response bytes.
  bool trace = false;
  /// Metrics verb: exposition format ("json" default, or "prometheus").
  std::string format;
  /// Trace verb: which retained trace to return ("recent" default,
  /// "slowest", or "list" for the retention index).
  std::string pick;
  /// True for the control/admin verbs (ping / shutdown / metrics /
  /// trace), which carry no topology or library and skip the dispatch
  /// gate so a saturated daemon can still be probed and scraped.
  [[nodiscard]] bool is_control() const {
    return spec.command == "ping" || spec.command == "shutdown" ||
           spec.command == "metrics" || spec.command == "trace";
  }
};

/// Decode one frame (one line, newline already stripped). On failure
/// returns false and fills `error`; `out.id_json` is still populated when
/// the frame was well-formed enough to carry an id, so the error response
/// can be matched by the client.
[[nodiscard]] bool decode_request(const std::string& frame, ServiceRequest& out,
                                  ServiceError& error);

/// One ok-response line (no trailing newline). `output` is the CLI's
/// byte-exact stdout text; `report_json` is a compact run-report document
/// ({"fpopt_run_report": ...}) or empty for none.
[[nodiscard]] std::string build_ok_response(const std::string& id_json,
                                            const std::string& output,
                                            const std::string& report_json);

/// One error-response line (no trailing newline). A report may accompany
/// the error (an E_BUDGET abort still reports, aborted=true, exactly like
/// `fpopt --stats` on an over-budget run).
[[nodiscard]] std::string build_error_response(const std::string& id_json,
                                               const ServiceError& error,
                                               const std::string& report_json);

/// Structural validation of one parsed response document against the
/// schema above (both statuses). Returns human-readable violations;
/// empty = valid. Used by the protocol tests and `fpopt client`.
[[nodiscard]] std::vector<std::string> validate_service_response(
    const telemetry::JsonValue& doc);

}  // namespace fpopt
