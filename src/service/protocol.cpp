#include "service/protocol.h"

#include <cmath>
#include <limits>

#include "telemetry/report_schema.h"

namespace fpopt {
namespace {

using telemetry::JsonValue;

/// Thrown internally by the decode helpers; decode_request catches it and
/// converts to the (code, message) out-parameters.
struct DecodeFail {
  ServiceErrorCode code;
  std::string message;
};

/// CLI-equivalent non-negative integer option (parse_long in io/cli.cpp).
std::size_t option_uint(const std::string& name, const JsonValue& v) {
  if (!v.is_number() || !v.is_integer || v.integer < 0) {
    throw DecodeFail{ServiceErrorCode::kOption,
                     "option '" + name + "' must be a non-negative integer"};
  }
  if (static_cast<unsigned long long>(v.integer) >
      std::numeric_limits<std::size_t>::max()) {
    throw DecodeFail{ServiceErrorCode::kOption,
                     "option '" + name + "' out of range"};
  }
  return static_cast<std::size_t>(v.integer);
}

double option_double(const std::string& name, const JsonValue& v) {
  // NaN/infinity must die here: the parser maps tokens like 1e999 to an
  // infinite double, and NaN slips through ordered range checks (every
  // comparison is false), so without this guard a NaN theta would reach
  // the selection kernels. The CLI flag path rejects the same values.
  if (!v.is_number() || !std::isfinite(v.number)) {
    throw DecodeFail{ServiceErrorCode::kOption,
                     "option '" + name + "' must be a finite number"};
  }
  return v.number;
}

bool option_bool(const std::string& name, const JsonValue& v) {
  if (!v.is_bool()) {
    throw DecodeFail{ServiceErrorCode::kOption,
                     "option '" + name + "' must be a boolean"};
  }
  return v.boolean;
}

/// Apply one member of the request's "options" object onto the spec, with
/// the CLI flag parser's exact validation rules (same ranges, same
/// messages where they exist).
void apply_option(const std::string& key, const JsonValue& v, ServiceRequest& out) {
  OptimizerOptions& options = out.spec.options;
  if (key == "k1") {
    options.selection.k1 = option_uint(key, v);
  } else if (key == "k2") {
    options.selection.k2 = option_uint(key, v);
  } else if (key == "theta") {
    options.selection.theta = option_double(key, v);
    if (options.selection.theta <= 0 || options.selection.theta > 1) {
      throw DecodeFail{ServiceErrorCode::kOption, "option 'theta' must be in (0, 1]"};
    }
  } else if (key == "scap") {
    options.selection.heuristic_cap = option_uint(key, v);
  } else if (key == "budget") {
    options.impl_budget = option_uint(key, v);
    out.budget_set = true;
  } else if (key == "threads") {
    options.threads = option_uint(key, v);
  } else if (key == "incremental") {
    options.incremental = option_bool(key, v);
  } else if (key == "cache_mb") {
    const std::size_t mb = option_uint(key, v);
    if (mb == 0) {
      throw DecodeFail{ServiceErrorCode::kOption,
                       "option 'cache_mb' must be at least 1 (MiB)"};
    }
    if (mb > (std::numeric_limits<std::size_t>::max() >> 20)) {
      throw DecodeFail{ServiceErrorCode::kOption,
                       "option 'cache_mb' overflows the byte budget"};
    }
    out.spec.cache_bytes = mb << 20;
  } else if (key == "impl") {
    out.spec.impl_index = option_uint(key, v);
  } else if (key == "metric") {
    if (!v.is_string()) {
      throw DecodeFail{ServiceErrorCode::kOption, "option 'metric' must be a string"};
    }
    if (v.string == "l1") {
      options.selection.metric = LpMetric::L1;
    } else if (v.string == "l2") {
      options.selection.metric = LpMetric::L2;
    } else if (v.string == "linf") {
      options.selection.metric = LpMetric::LInf;
    } else {
      throw DecodeFail{ServiceErrorCode::kOption,
                       "unknown metric '" + v.string + "' (expected l1, l2 or linf)"};
    }
  } else {
    throw DecodeFail{ServiceErrorCode::kOption, "unknown option '" + key + "'"};
  }
}

const std::string& required_string(const JsonValue& request, const std::string& key) {
  const JsonValue* v = request.find(key);
  if (v == nullptr) {
    throw DecodeFail{ServiceErrorCode::kSchema, "missing request member '" + key + "'"};
  }
  if (!v->is_string()) {
    throw DecodeFail{ServiceErrorCode::kSchema,
                     "request member '" + key + "' must be a string"};
  }
  return v->string;
}

}  // namespace

const char* to_string(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kParse:
      return "E_PARSE";
    case ServiceErrorCode::kSchema:
      return "E_SCHEMA";
    case ServiceErrorCode::kCommand:
      return "E_COMMAND";
    case ServiceErrorCode::kOption:
      return "E_OPTION";
    case ServiceErrorCode::kInput:
      return "E_INPUT";
    case ServiceErrorCode::kBudget:
      return "E_BUDGET";
    case ServiceErrorCode::kOversized:
      return "E_OVERSIZED";
    case ServiceErrorCode::kOverloaded:
      return "E_OVERLOADED";
    case ServiceErrorCode::kDeadline:
      return "E_DEADLINE";
    case ServiceErrorCode::kInternal:
      return "E_INTERNAL";
  }
  return "E_INTERNAL";
}

bool decode_request(const std::string& frame, ServiceRequest& out, ServiceError& error) {
  out = ServiceRequest{};
  const telemetry::JsonParseResult parsed = telemetry::parse_json(frame);
  if (!parsed.value.has_value()) {
    error = {ServiceErrorCode::kParse, "bad JSON: " + parsed.error};
    return false;
  }
  try {
    const JsonValue& doc = *parsed.value;
    const JsonValue* request = doc.find("fpopt_request");
    if (request == nullptr || !request->is_object() || doc.object.size() != 1) {
      throw DecodeFail{ServiceErrorCode::kSchema,
                       "frame must be a {\"fpopt_request\": {...}} object"};
    }
    // The id is echoed even into schema-error responses, so recover it
    // before any other member can fail validation.
    if (const JsonValue* id = request->find("id")) {
      if (id->is_string()) {
        out.id_json = telemetry::json_quote(id->string);
      } else if (id->is_number() && id->is_integer) {
        out.id_json = std::to_string(id->integer);
      } else if (id->kind != JsonValue::Kind::Null) {
        throw DecodeFail{ServiceErrorCode::kSchema,
                         "request 'id' must be a string, an integer or null"};
      }
    }
    const JsonValue* version = request->find("schema_version");
    if (version == nullptr || !version->is_number() || !version->is_integer) {
      throw DecodeFail{ServiceErrorCode::kSchema,
                       "missing integer request member 'schema_version'"};
    }
    if (version->integer != kServiceSchemaVersion) {
      throw DecodeFail{ServiceErrorCode::kSchema,
                       "unsupported schema_version " + std::to_string(version->integer) +
                           " (this server speaks " +
                           std::to_string(kServiceSchemaVersion) + ")"};
    }
    out.spec.command = required_string(*request, "command");
    // The CLI's default: no simulated memory limit unless asked for.
    out.spec.options.impl_budget = 0;

    const bool control = out.is_control();
    const bool known = control || out.spec.command == "stats" ||
                       out.spec.command == "optimize" || out.spec.command == "place";
    if (!known) {
      throw DecodeFail{ServiceErrorCode::kCommand,
                       "unknown command '" + out.spec.command + "'"};
    }
    for (const auto& [key, value] : request->object) {
      if (key == "id" || key == "schema_version" || key == "command") continue;
      if (key == "report") {
        if (!value.is_bool()) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "request member 'report' must be a boolean"};
        }
        out.want_report = value.boolean;
      } else if (key == "trace") {
        if (control) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "command '" + out.spec.command + "' takes no 'trace'"};
        }
        if (!value.is_bool()) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "request member 'trace' must be a boolean"};
        }
        out.trace = value.boolean;
      } else if (key == "format") {
        if (out.spec.command != "metrics") {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "only the metrics command takes 'format'"};
        }
        if (!value.is_string() || (value.string != "json" && value.string != "prometheus")) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "request member 'format' must be \"json\" or \"prometheus\""};
        }
        out.format = value.string;
      } else if (key == "pick") {
        if (out.spec.command != "trace") {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "only the trace command takes 'pick'"};
        }
        if (!value.is_string() || (value.string != "recent" && value.string != "slowest" &&
                                   value.string != "list")) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "request member 'pick' must be \"recent\", \"slowest\" or \"list\""};
        }
        out.pick = value.string;
      } else if (key == "priority") {
        if (control) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "command '" + out.spec.command + "' takes no 'priority'"};
        }
        if (!value.is_number() || !value.is_integer || value.integer < 0 ||
            value.integer > 2) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "request member 'priority' must be an integer in 0..2 "
                           "(2 = most urgent)"};
        }
        out.priority = static_cast<int>(value.integer);
      } else if (key == "deadline_ms") {
        if (control) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "command '" + out.spec.command + "' takes no 'deadline_ms'"};
        }
        // Bounded so arrival + deadline can never overflow the clock.
        constexpr std::int64_t kMaxDeadlineMs = 86'400'000;  // 24h
        if (!value.is_number() || !value.is_integer || value.integer < 0 ||
            value.integer > kMaxDeadlineMs) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "request member 'deadline_ms' must be an integer in 0.." +
                               std::to_string(kMaxDeadlineMs)};
        }
        out.deadline_ms = static_cast<std::uint64_t>(value.integer);
      } else if (key == "topology" || key == "library" || key == "options") {
        if (control) {
          throw DecodeFail{ServiceErrorCode::kSchema,
                           "command '" + out.spec.command + "' takes no '" + key + "'"};
        }
        if (key == "options") {
          if (!value.is_object()) {
            throw DecodeFail{ServiceErrorCode::kSchema,
                             "request member 'options' must be an object"};
          }
          for (const auto& [okey, ovalue] : value.object) {
            apply_option(okey, ovalue, out);
          }
        }
        // topology / library re-checked below via required_string.
      } else {
        throw DecodeFail{ServiceErrorCode::kSchema,
                         "unknown request member '" + key + "'"};
      }
    }
    if (!control) {
      out.topology = required_string(*request, "topology");
      out.library = required_string(*request, "library");
    }
  } catch (const DecodeFail& f) {
    error = {f.code, f.message};
    return false;
  }
  return true;
}

namespace {

/// `report_json` arrives as RunReport::to_json(false) — the compact
/// wrapper document {"fpopt_run_report":{...}}. Splice out the inner
/// object so the response carries "fpopt_run_report" as a direct member
/// (which is exactly where validate_embedded_run_reports looks).
std::string report_inner(const std::string& report_json) {
  constexpr const char* kPrefix = "{\"fpopt_run_report\":";
  const std::size_t plen = std::string(kPrefix).size();
  if (report_json.size() > plen + 1 && report_json.rfind(kPrefix, 0) == 0 &&
      report_json.back() == '}') {
    return report_json.substr(plen, report_json.size() - plen - 1);
  }
  return report_json;
}

}  // namespace

std::string build_ok_response(const std::string& id_json, const std::string& output,
                              const std::string& report_json) {
  std::string line = "{\"fpopt_response\":{\"schema_version\":" +
                     std::to_string(kServiceSchemaVersion) + ",\"id\":" + id_json +
                     ",\"status\":\"ok\",\"output\":" + telemetry::json_quote(output);
  if (!report_json.empty()) {
    line += ",\"fpopt_run_report\":" + report_inner(report_json);
  }
  line += "}}";
  return line;
}

std::string build_error_response(const std::string& id_json, const ServiceError& error,
                                 const std::string& report_json) {
  std::string line = "{\"fpopt_response\":{\"schema_version\":" +
                     std::to_string(kServiceSchemaVersion) + ",\"id\":" + id_json +
                     ",\"status\":\"error\",\"error\":{\"code\":\"" +
                     to_string(error.code) +
                     "\",\"message\":" + telemetry::json_quote(error.message) + "}";
  if (!report_json.empty()) {
    line += ",\"fpopt_run_report\":" + report_inner(report_json);
  }
  line += "}}";
  return line;
}

std::vector<std::string> validate_service_response(const telemetry::JsonValue& doc) {
  std::vector<std::string> errors;
  const auto fail = [&errors](std::string msg) { errors.push_back(std::move(msg)); };

  if (!doc.is_object() || doc.object.size() != 1) {
    fail("response must be a single-member {\"fpopt_response\": {...}} object");
    return errors;
  }
  const JsonValue* r = doc.find("fpopt_response");
  if (r == nullptr || !r->is_object()) {
    fail("missing object member 'fpopt_response'");
    return errors;
  }
  const JsonValue* version = r->find("schema_version");
  if (version == nullptr || !version->is_number() || !version->is_integer ||
      version->integer != kServiceSchemaVersion) {
    fail("fpopt_response.schema_version must be the integer " +
         std::to_string(kServiceSchemaVersion));
  }
  const JsonValue* id = r->find("id");
  if (id == nullptr) {
    fail("fpopt_response.id is required (null for unidentifiable requests)");
  } else if (!id->is_string() && !(id->is_number() && id->is_integer) &&
             id->kind != JsonValue::Kind::Null) {
    fail("fpopt_response.id must be a string, an integer or null");
  }
  const JsonValue* status = r->find("status");
  const std::string status_text = (status != nullptr && status->is_string())
                                      ? status->string
                                      : std::string();
  if (status_text != "ok" && status_text != "error") {
    fail("fpopt_response.status must be \"ok\" or \"error\"");
    return errors;
  }
  const JsonValue* output = r->find("output");
  const JsonValue* err = r->find("error");
  if (status_text == "ok") {
    if (output == nullptr || !output->is_string()) {
      fail("ok response requires a string 'output'");
    }
    if (err != nullptr) fail("ok response must not carry 'error'");
  } else {
    if (output != nullptr) fail("error response must not carry 'output'");
    if (err == nullptr || !err->is_object()) {
      fail("error response requires an object 'error'");
    } else {
      const JsonValue* code = err->find("code");
      static const char* kCodes[] = {"E_PARSE",     "E_SCHEMA",     "E_COMMAND",
                                     "E_OPTION",    "E_INPUT",      "E_BUDGET",
                                     "E_OVERSIZED", "E_OVERLOADED", "E_DEADLINE",
                                     "E_INTERNAL"};
      bool code_ok = false;
      if (code != nullptr && code->is_string()) {
        for (const char* c : kCodes) code_ok = code_ok || code->string == c;
      }
      if (!code_ok) fail("error.code must be one of the documented E_* codes");
      const JsonValue* message = err->find("message");
      if (message == nullptr || !message->is_string()) {
        fail("error.message must be a string");
      }
    }
  }
  if (const JsonValue* report = r->find("fpopt_run_report")) {
    for (std::string& e : telemetry::validate_run_report(*report)) {
      errors.push_back("fpopt_run_report: " + std::move(e));
    }
  }
  for (const auto& [key, value] : r->object) {
    (void)value;
    if (key != "schema_version" && key != "id" && key != "status" && key != "output" &&
        key != "error" && key != "fpopt_run_report") {
      fail("unknown fpopt_response member '" + key + "'");
    }
  }
  return errors;
}

}  // namespace fpopt
