#include "service/metrics.h"

#include <string>

namespace fpopt {
namespace {

constexpr const char* kOutcomeHelp =
    "Frames handled, by result (ok or the E_* error code answered)";

/// Registration order of the outcome label values: index 0 = ok, then
/// the E_* codes in enum order (outcome_index below must agree).
const char* outcome_label(int index) {
  if (index == 0) return "ok";
  return to_string(static_cast<ServiceErrorCode>(index - 1));
}

int outcome_index(bool ok, ServiceErrorCode code) {
  if (ok) return 0;
  return 1 + static_cast<int>(code);
}

}  // namespace

ServiceMetrics::ServiceMetrics(const DispatchGate& gate, const SharedMemoCache* cache) {
  for (int i = 0; i < kOutcomes; ++i) {
    outcomes_[i] =
        &registry_.counter("fpoptd_requests_total", kOutcomeHelp, "outcome", outcome_label(i));
  }
  registry_.counter_fn(
      "fpoptd_requests_shed_total",
      "Requests shed because their deadline expired before dispatch (E_DEADLINE)",
      [&gate] { return gate.shed(); });
  request_seconds_ = &registry_.histogram("fpoptd_request_seconds",
                                          "End-to-end frame handling latency in seconds");
  execute_seconds_ = &registry_.histogram(
      "fpoptd_execute_seconds", "Execute-phase latency of dispatched run requests in seconds");
  for (int p = 0; p < 3; ++p) {
    queue_wait_[p] =
        &registry_.histogram("fpoptd_queue_wait_seconds",
                             "Time dispatched requests spent blocked in the dispatch gate",
                             "priority", std::to_string(p));
  }
  for (int p = 0; p < 3; ++p) {
    registry_.gauge_fn(
        "fpoptd_queue_depth", "Requests currently waiting in the dispatch gate",
        [&gate, p] {
          return static_cast<double>(gate.waiting_by_priority()[static_cast<std::size_t>(p)]);
        },
        "priority",
        std::to_string(p));
  }
  registry_.gauge_fn("fpoptd_inflight", "Run requests currently executing", [this] {
    // relaxed: monitoring read of a commutative counter.
    return static_cast<double>(executing_.load(std::memory_order_relaxed));
  });
  registry_.gauge_fn("fpoptd_gate_in_use", "Bounded-gate execution slots currently held",
                     [&gate] { return static_cast<double>(gate.in_use()); });

  registry_.gauge_fn("fpoptd_connections_live", "Live connection threads", [this] {
    std::lock_guard<std::mutex> lock(attach_mu_);
    return connections_ != nullptr ? static_cast<double>(connections_->live()) : 0.0;
  });
  registry_.counter_fn("fpoptd_connections_total", "Connections ever accepted",
                       [this]() -> std::uint64_t {
                         std::lock_guard<std::mutex> lock(attach_mu_);
                         return connections_ != nullptr ? connections_->total_spawned() : 0;
                       });
  registry_.counter_fn("fpoptd_connections_rejected_total",
                       "Connections refused at the connection cap (E_OVERLOADED)",
                       [this]() -> std::uint64_t {
                         std::lock_guard<std::mutex> lock(attach_mu_);
                         return connections_ != nullptr ? connections_->rejected() : 0;
                       });

  const struct {
    const char* family;
    const char* help;
    std::size_t MemoCacheStats::*field;
  } kCacheCounters[] = {
      {"fpoptd_cache_hits_total", "Shared memo-cache hits", &MemoCacheStats::hits},
      {"fpoptd_cache_misses_total", "Shared memo-cache misses", &MemoCacheStats::misses},
      {"fpoptd_cache_insertions_total", "Shared memo-cache insertions",
       &MemoCacheStats::insertions},
      {"fpoptd_cache_evictions_total", "Shared memo-cache evictions (byte budget)",
       &MemoCacheStats::evictions},
  };
  for (const auto& row : kCacheCounters) {
    auto field = row.field;
    registry_.counter_fn(row.family, row.help, [cache, field]() -> std::uint64_t {
      return cache != nullptr ? cache->stats().*field : 0;
    });
  }
  registry_.gauge_fn("fpoptd_cache_bytes", "Shared memo-cache footprint in bytes", [cache] {
    return cache != nullptr ? static_cast<double>(cache->bytes()) : 0.0;
  });
  registry_.gauge_fn("fpoptd_cache_peak_bytes", "Largest shared memo-cache footprint ever held",
                     [cache] {
                       return cache != nullptr ? static_cast<double>(cache->stats().peak_bytes)
                                               : 0.0;
                     });

  trace_events_dropped_ = &registry_.counter(
      "fpoptd_trace_events_dropped_total",
      "Trace events lost to ring-buffer overflow while capturing request traces");
  registry_.counter_fn("fpoptd_log_lines_total", "Structured log lines written",
                       [this]() -> std::uint64_t {
                         std::lock_guard<std::mutex> lock(attach_mu_);
                         return log_ != nullptr ? log_->lines() : 0;
                       });
}

telemetry::Counter& ServiceMetrics::outcome(bool ok, ServiceErrorCode code) {
  return *outcomes_[outcome_index(ok, code)];
}

telemetry::Histogram& ServiceMetrics::queue_wait_seconds(int priority) {
  if (priority < 0) priority = 0;
  if (priority > 2) priority = 2;
  return *queue_wait_[priority];
}

void ServiceMetrics::attach_connections(const ConnectionRegistry* connections) {
  std::lock_guard<std::mutex> lock(attach_mu_);
  connections_ = connections;
}

void ServiceMetrics::attach_log(const telemetry::LogSink* log) {
  std::lock_guard<std::mutex> lock(attach_mu_);
  log_ = log;
}

}  // namespace fpopt
