// ServiceMetrics: the daemon's metric surface, one registry wiring the
// Service request path, DispatchGate, ConnectionRegistry, SharedMemoCache
// and LogSink into named families (all prefixed fpoptd_):
//
//   fpoptd_requests_total{outcome=ok|E_*}     every frame, by result
//   fpoptd_requests_shed_total                E_DEADLINE sheds (== gate)
//   fpoptd_request_seconds                    end-to-end handle_frame latency
//   fpoptd_execute_seconds                    execute-phase latency (dispatched runs)
//   fpoptd_queue_wait_seconds{priority}       time blocked in the gate
//   fpoptd_queue_depth{priority}              waiters in the gate, live
//   fpoptd_inflight                           run requests executing now
//   fpoptd_gate_in_use                        bounded-gate slots held
//   fpoptd_connections_{live,total,rejected_total}
//   fpoptd_cache_{hits,misses,insertions,evictions}_total, _bytes, _peak_bytes
//   fpoptd_trace_events_dropped_total         ring-buffer drops in request traces
//   fpoptd_log_lines_total                    structured log lines written
//
// Every series is pre-registered in the constructor so two snapshots
// with equal values are byte-identical and exposition never changes
// shape under traffic. Publishing is relaxed-atomic only (metrics.h);
// gauges backed by other subsystems are read through callbacks at
// scrape time.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "service/server.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"

namespace fpopt {

class ServiceMetrics {
 public:
  /// Number of request outcomes: "ok" plus the ten E_* codes.
  static constexpr int kOutcomes = 11;

  /// `gate` must outlive this object; `cache` may be null (families still
  /// register and read 0 so the exposition shape is config-independent).
  ServiceMetrics(const DispatchGate& gate, const SharedMemoCache* cache);

  [[nodiscard]] telemetry::MetricsRegistry& registry() { return registry_; }

  /// The requests_total series for one outcome ("ok" when `ok`).
  [[nodiscard]] telemetry::Counter& outcome(bool ok, ServiceErrorCode code);
  [[nodiscard]] telemetry::Histogram& request_seconds() { return *request_seconds_; }
  [[nodiscard]] telemetry::Histogram& execute_seconds() { return *execute_seconds_; }
  [[nodiscard]] telemetry::Histogram& queue_wait_seconds(int priority);
  [[nodiscard]] telemetry::Counter& trace_events_dropped() { return *trace_events_dropped_; }

  /// Bind the socket transport's connection registry / the daemon's log
  /// sink once they exist (families are registered up front; until bound
  /// they read 0). The transport detaches (nullptr) before its registry
  /// dies; attach_mu_ is held across scrape callbacks so a detach cannot
  /// race a scraper mid-read.
  void attach_connections(const ConnectionRegistry* connections);
  void attach_log(const telemetry::LogSink* log);

  /// Bracket the execute phase (feeds the fpoptd_inflight gauge).
  void begin_execute() {
    // relaxed: commutative counter read only by monitoring scrapes.
    executing_.fetch_add(1, std::memory_order_relaxed);
  }
  void end_execute() {
    // relaxed: commutative counter read only by monitoring scrapes.
    executing_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  telemetry::MetricsRegistry registry_;
  telemetry::Counter* outcomes_[kOutcomes] = {};
  telemetry::Histogram* request_seconds_ = nullptr;
  telemetry::Histogram* execute_seconds_ = nullptr;
  telemetry::Histogram* queue_wait_[3] = {};
  telemetry::Counter* trace_events_dropped_ = nullptr;
  std::atomic<std::int64_t> executing_{0};
  /// Guards the attachment pointers during scrapes and re-attachment.
  mutable std::mutex attach_mu_;
  const ConnectionRegistry* connections_ = nullptr;
  const telemetry::LogSink* log_ = nullptr;
};

}  // namespace fpopt
