#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

namespace fpopt {
namespace {

/// Poll interval for shutdown-flag checks. Purely a liveness knob: how
/// quickly a blocked transport notices the flag. No output depends on it.
constexpr int kPollMillis = 100;

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away; their loss, not the daemon's
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void connection_main(Service& service, int fd) {
  LineSplitter splitter(service.config().max_frame_bytes);
  char chunk[4096];
  bool open = true;
  while (open && !service.shutdown_requested()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n == 0) break;  // client EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    splitter.feed(chunk, static_cast<std::size_t>(n),
                  [&](const std::string& frame, bool /*oversized*/) {
                    // Oversized frames arrive truncated past the limit;
                    // handle_frame classifies them E_OVERSIZED by size.
                    if (!write_all(fd, service.handle_frame(frame) + "\n")) open = false;
                  });
  }
  // A trailing unterminated line at EOF is still one frame.
  if (open && splitter.has_partial() && !service.shutdown_requested()) {
    write_all(fd, service.handle_frame(splitter.partial()) + "\n");
  }
  ::close(fd);
}

}  // namespace

int serve_stdio(Service& service, std::istream& in, std::ostream& out) {
  LineSplitter splitter(service.config().max_frame_bytes);
  char chunk[4096];
  bool done = false;
  while (!done && in.good()) {
    in.read(chunk, sizeof chunk);
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    splitter.feed(chunk, static_cast<std::size_t>(n),
                  [&](const std::string& frame, bool /*oversized*/) {
                    if (done) return;  // drop frames queued after shutdown
                    out << service.handle_frame(frame) << '\n' << std::flush;
                    done = service.shutdown_requested();
                  });
  }
  if (!done && splitter.has_partial()) {
    out << service.handle_frame(splitter.partial()) << '\n' << std::flush;
  }
  return 0;
}

int serve_unix(Service& service, const std::string& socket_path, std::ostream& err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    err << "fpoptd: socket path too long: " << socket_path << '\n';
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    err << "fpoptd: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, SOMAXCONN) < 0) {
    err << "fpoptd: bind " << socket_path << ": " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }

  std::vector<std::thread> connections;
  while (!service.shutdown_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back([&service, fd] { connection_main(service, fd); });
  }
  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  return 0;
}

}  // namespace fpopt
