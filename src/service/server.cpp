#include "service/server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "service/metrics.h"
#include "telemetry/log.h"

namespace fpopt {
namespace {

/// Poll interval for shutdown-flag checks. Purely a liveness knob: how
/// quickly a blocked transport notices the flag. No output depends on it.
constexpr int kPollMillis = 100;

/// Backoff when accept(2) fails with EMFILE/ENFILE: reaping finished
/// connections frees their descriptors, and sleeping keeps the loop from
/// burning a core on a condition only clients can clear.
constexpr int kAcceptBackoffMillis = 50;

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away; their loss, not the daemon's
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void connection_main(Service& service, int fd) {
  LineSplitter splitter(service.config().max_frame_bytes);
  char chunk[4096];
  bool open = true;
  while (open && !service.shutdown_requested()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n == 0) break;  // client EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    splitter.feed(chunk, static_cast<std::size_t>(n),
                  [&](const std::string& frame, bool /*oversized*/) {
                    // Oversized frames arrive truncated past the limit;
                    // handle_frame classifies them E_OVERSIZED by size.
                    if (!write_all(fd, service.handle_frame(frame) + "\n")) open = false;
                  });
  }
  // A trailing unterminated line at EOF is still one frame.
  if (open && splitter.has_partial() && !service.shutdown_requested()) {
    write_all(fd, service.handle_frame(splitter.partial()) + "\n");
  }
  ::close(fd);
}

/// The accept loop both socket transports share: registry-bounded
/// thread-per-connection, self-reaping, EMFILE backoff, drain on
/// shutdown. Owns (and closes) `listen_fd`. `transport` labels the
/// connection-lifecycle log lines ("unix" / "tcp").
int serve_listener(Service& service, int listen_fd, ConnectionRegistry& registry,
                   const char* transport) {
  if (service.metrics() != nullptr) service.metrics()->attach_connections(&registry);
  telemetry::LogSink* log = service.log();
  // Listener-scoped connection ids for log correlation (log identity
  // only; the registry keeps its own bookkeeping ids).
  // relaxed: ids only need to be unique; nothing orders against them.
  std::atomic<std::uint64_t> next_conn{0};
  while (!service.shutdown_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    // Join connection threads that exited since the last pass, so the
    // thread count tracks live clients even while we sit idle.
    registry.reap();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE) {
        registry.reap();
        std::this_thread::sleep_for(std::chrono::milliseconds(kAcceptBackoffMillis));
      }
      continue;
    }
    // relaxed: see next_conn above.
    const std::uint64_t conn = next_conn.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!registry.spawn([&service, fd, conn, transport, log] {
          telemetry::LogEvent(log, telemetry::LogLevel::kInfo, "conn_open")
              .str("transport", transport)
              .num("conn", conn);
          connection_main(service, fd);
          telemetry::LogEvent(log, telemetry::LogLevel::kInfo, "conn_close")
              .str("transport", transport)
              .num("conn", conn);
        })) {
      // Over the connection cap: one machine-readable refusal, then a
      // clean close — the client sees why instead of a hang or a reset.
      telemetry::LogEvent(log, telemetry::LogLevel::kWarn, "conn_overloaded")
          .str("transport", transport)
          .num("conn", conn)
          .num("cap", registry.max_live());
      write_all(fd,
                build_error_response(
                    "null",
                    {ServiceErrorCode::kOverloaded,
                     "server is at its connection cap of " +
                         std::to_string(registry.max_live()) +
                         "; retry later or raise --max-connections"},
                    "") +
                    "\n");
      ::close(fd);
    }
  }
  registry.drain();
  ::close(listen_fd);
  if (service.metrics() != nullptr) service.metrics()->attach_connections(nullptr);
  return 0;
}

}  // namespace

ConnectionRegistry::~ConnectionRegistry() { drain(); }

bool ConnectionRegistry::spawn(std::function<void()> body) {
  reap();
  std::lock_guard<std::mutex> lk(mu_);
  if (max_live_ != 0 && live_.size() >= max_live_) {
    ++rejected_;
    return false;
  }
  const std::uint64_t id = next_id_++;
  ++total_;
  // finish() cannot race the emplace: it blocks on mu_ until we return.
  live_.emplace(id, std::thread([this, id, body = std::move(body)] {
                  body();
                  finish(id);
                }));
  peak_live_ = std::max(peak_live_, live_.size());
  return true;
}

void ConnectionRegistry::finish(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = live_.find(id);
  // Moving our own handle out is fine — a std::thread object is only a
  // handle; the thread itself exits right after this returns and the
  // next reap() joins the (by then finished) handle.
  finished_.push_back(std::move(it->second));
  live_.erase(it);
  cv_.notify_all();
}

void ConnectionRegistry::reap() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lk(mu_);
    done.swap(finished_);
  }
  for (std::thread& t : done) t.join();
}

void ConnectionRegistry::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return live_.empty(); });
  std::vector<std::thread> done;
  done.swap(finished_);
  lk.unlock();
  for (std::thread& t : done) t.join();
}

std::size_t ConnectionRegistry::live() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.size();
}

std::size_t ConnectionRegistry::peak_live() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_live_;
}

std::uint64_t ConnectionRegistry::total_spawned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

std::uint64_t ConnectionRegistry::rejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

int serve_stdio(Service& service, std::istream& in, std::ostream& out) {
  LineSplitter splitter(service.config().max_frame_bytes);
  char chunk[4096];
  bool done = false;
  while (!done && in.good()) {
    in.read(chunk, sizeof chunk);
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    splitter.feed(chunk, static_cast<std::size_t>(n),
                  [&](const std::string& frame, bool /*oversized*/) {
                    if (done) return;  // drop frames queued after shutdown
                    out << service.handle_frame(frame) << '\n' << std::flush;
                    done = service.shutdown_requested();
                  });
  }
  if (!done && splitter.has_partial()) {
    out << service.handle_frame(splitter.partial()) << '\n' << std::flush;
  }
  return 0;
}

int serve_unix(Service& service, const std::string& socket_path, std::ostream& err,
               ConnectionRegistry* registry) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    err << "fpoptd: socket path too long: " << socket_path << '\n';
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  // Probe before replacing: a *live* daemon still answers connect(2) on
  // its socket, and unlinking it would silently steal its clients. Only
  // a stale file (connect refused / not a socket) may be replaced.
  {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool alive =
          ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
      ::close(probe);
      if (alive) {
        err << "fpoptd: socket " << socket_path
            << " is served by a live daemon; refusing to replace it (shut it "
               "down first or pick another path)\n";
        return 1;
      }
    }
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    err << "fpoptd: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, SOMAXCONN) < 0) {
    err << "fpoptd: bind " << socket_path << ": " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }

  ConnectionRegistry local(service.config().max_connections);
  const int rc = serve_listener(service, listen_fd, registry ? *registry : local, "unix");
  ::unlink(socket_path.c_str());
  return rc;
}

namespace {

/// Bind + listen on "host:port" (serve_tcp's address grammar). Returns
/// the listening fd, or -1 with a message on `err`. `who` names the flag
/// in error messages; `on_bound` receives the actually-bound port.
int bind_tcp_listener(const std::string& host_port, std::ostream& err, const char* who,
                      const std::function<void(unsigned short)>& on_bound) {
  // Split "host:port" at the last colon; "[v6::addr]:port" brackets are
  // stripped, a leading-colon ":port" binds every interface.
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    err << "fpoptd: " << who << " needs <host:port>, got '" << host_port << "'\n";
    return -1;
  }
  std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
    host = host.substr(1, host.size() - 2);
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* found = nullptr;
  const int gai =
      ::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(), &hints, &found);
  if (gai != 0) {
    err << "fpoptd: cannot resolve " << host_port << ": " << ::gai_strerror(gai) << '\n';
    return -1;
  }

  int listen_fd = -1;
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    listen_fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (listen_fd < 0) continue;
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(listen_fd, SOMAXCONN) == 0) {
      break;
    }
    ::close(listen_fd);
    listen_fd = -1;
  }
  ::freeaddrinfo(found);
  if (listen_fd < 0) {
    err << "fpoptd: cannot listen on " << host_port << ": " << std::strerror(errno)
        << '\n';
    return -1;
  }

  if (on_bound) {
    // Report the kernel-chosen port for ":0" binds before accepting.
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    unsigned short bound_port = 0;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        bound_port = ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        bound_port = ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    on_bound(bound_port);
  }
  return listen_fd;
}

}  // namespace

int serve_tcp(Service& service, const std::string& host_port, std::ostream& err,
              ConnectionRegistry* registry,
              std::function<void(unsigned short)> on_bound) {
  const int listen_fd = bind_tcp_listener(host_port, err, "--listen", on_bound);
  if (listen_fd < 0) return 1;
  ConnectionRegistry local(service.config().max_connections);
  return serve_listener(service, listen_fd, registry ? *registry : local, "tcp");
}

namespace {

/// Minimal HTTP/1.0 request framing for the metrics endpoint: read until
/// the blank line ending the request head (bounded, briefly), answer one
/// response, close. Scrapes are rare and tiny; one connection at a time
/// is plenty, and a stalled scraper cannot wedge the daemon past the
/// read deadline below.
std::string http_response(Service& service, const std::string& head) {
  std::string body;
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) line_end = head.size();
  const std::string request_line = head.substr(0, line_end);
  const bool is_get = request_line.rfind("GET ", 0) == 0;
  const std::size_t path_end = request_line.find(' ', 4);
  const std::string path =
      is_get ? request_line.substr(4, path_end == std::string::npos ? std::string::npos
                                                                    : path_end - 4)
             : std::string();
  if (!is_get) {
    status = "405 Method Not Allowed";
    content_type = "text/plain; charset=utf-8";
    body = "only GET is supported\n";
  } else if (path != "/metrics" && path != "/") {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "try /metrics\n";
  } else if (service.metrics() == nullptr) {
    status = "503 Service Unavailable";
    content_type = "text/plain; charset=utf-8";
    body = "metrics are disabled in this server's configuration\n";
  } else {
    body = service.metrics()->registry().to_prometheus();
  }
  return "HTTP/1.0 " + status + "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

void serve_one_scrape(Service& service, int fd) {
  std::string head;
  // Bounded read: at most ~20 poll intervals (~2s) and 16 KiB of head.
  for (int spins = 0; spins < 20 && head.size() < (16u << 10); ++spins) {
    if (head.find("\r\n\r\n") != std::string::npos) break;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    char chunk[2048];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    head.append(chunk, static_cast<std::size_t>(n));
  }
  if (!head.empty()) write_all(fd, http_response(service, head));
  ::close(fd);
}

}  // namespace

int serve_metrics_http(Service& service, const std::string& host_port, std::ostream& err,
                       std::function<void(unsigned short)> on_bound) {
  // Capture the actually-bound port so the log line resolves ":0" — a
  // kernel-chosen port an operator could not otherwise discover.
  unsigned short bound_port = 0;
  const auto observe_bound = [&](unsigned short port) {
    bound_port = port;
    if (on_bound) on_bound(port);
  };
  const int listen_fd = bind_tcp_listener(host_port, err, "--metrics-port", observe_bound);
  if (listen_fd < 0) return 1;
  telemetry::LogEvent(service.log(), telemetry::LogLevel::kInfo, "metrics_listener")
      .str("endpoint", host_port)
      .num("port", bound_port);
  while (!service.shutdown_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    serve_one_scrape(service, fd);
  }
  ::close(listen_fd);
  return 0;
}

}  // namespace fpopt
