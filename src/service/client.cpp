#include "service/client.h"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "service/protocol.h"
#include "telemetry/json.h"

namespace fpopt {
namespace {

struct ClientError {
  std::string message;
};

constexpr const char* kUsage =
    "usage: fpopt client --connect <endpoint> [command ...]\n"
    "  <endpoint>: a Unix socket path, unix://<path>, or tcp://<host:port>\n"
    "  (no command)                      pipe JSONL request frames from stdin,\n"
    "                                    print response frames as they arrive\n"
    "  stats|optimize|place <topology-file> <library-file> [flags]\n"
    "                                    run one remote command; prints the\n"
    "                                    standalone CLI's byte-exact output\n"
    "  ping | shutdown                   control verbs\n"
    "  metrics [--format json|prometheus]\n"
    "                                    print the daemon's metrics snapshot\n"
    "  trace [--pick recent|slowest|list]\n"
    "                                    print a retained request trace\n"
    "flags: --k1 N --k2 N --theta X --scap N --budget N --threads N\n"
    "       --metric l1|l2|linf --incremental --cache-mb N --impl I --id S\n"
    "       --priority 0|1|2 --deadline-ms N --trace\n";

/// True for the verbs that carry no topology/library payload.
bool is_control_verb(const std::string& command) {
  return command == "ping" || command == "shutdown" || command == "metrics" ||
         command == "trace";
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw ClientError{"cannot open '" + path + "'"};
  std::ostringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) throw ClientError{"socket path too long: " + path};
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ClientError{std::string("socket: ") + std::strerror(errno)};
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw ClientError{"cannot connect to '" + path + "': " + reason};
  }
  return fd;
}

int connect_tcp(const std::string& host_port) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    throw ClientError{"tcp endpoint needs <host:port>, got '" + host_port + "'"};
  }
  std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
    host = host.substr(1, host.size() - 2);
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &found);
  if (gai != 0) {
    throw ClientError{"cannot resolve '" + host_port + "': " + ::gai_strerror(gai)};
  }
  int fd = -1;
  std::string reason = "no usable address";
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    reason = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) throw ClientError{"cannot connect to '" + host_port + "': " + reason};
  return fd;
}

/// `--connect` endpoint: `tcp://host:port`, `unix://path`, or a bare
/// Unix socket path (the historical form).
int connect_endpoint(const std::string& target) {
  constexpr const char* kTcp = "tcp://";
  constexpr const char* kUnix = "unix://";
  if (target.rfind(kTcp, 0) == 0) return connect_tcp(target.substr(std::strlen(kTcp)));
  if (target.rfind(kUnix, 0) == 0) return connect_unix(target.substr(std::strlen(kUnix)));
  return connect_unix(target);
}

/// Send `frames` (already newline-terminated as one byte stream) and
/// invoke `on_response` for each response line, fully pipelined: one poll
/// loop interleaves writes and reads so the daemon can work on every
/// request concurrently. Returns when `expected` responses arrived or the
/// daemon closed the connection.
template <typename Fn>
void pump(int fd, const std::string& outgoing, std::size_t expected, Fn&& on_response) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  std::size_t sent = 0;
  std::size_t received = 0;
  std::string partial;
  char chunk[4096];
  while (received < expected) {
    pollfd pfd{fd, POLLIN, 0};
    if (sent < outgoing.size()) pfd.events |= POLLOUT;
    if (::poll(&pfd, 1, -1) < 0) {
      if (errno == EINTR) continue;
      throw ClientError{std::string("poll: ") + std::strerror(errno)};
    }
    if ((pfd.revents & POLLOUT) != 0 && sent < outgoing.size()) {
      const ssize_t n =
          ::send(fd, outgoing.data() + sent, outgoing.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        throw ClientError{std::string("send: ") + std::strerror(errno)};
      }
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    if ((pfd.revents & (POLLIN | POLLHUP)) != 0) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
        throw ClientError{std::string("read: ") + std::strerror(errno)};
      }
      if (n == 0) {
        if (received < expected) {
          throw ClientError{"daemon closed the connection after " +
                            std::to_string(received) + " of " +
                            std::to_string(expected) + " responses"};
        }
        break;
      }
      for (ssize_t i = 0; i < n; ++i) {
        if (chunk[i] == '\n') {
          on_response(partial);
          partial.clear();
          ++received;
        } else {
          partial.push_back(chunk[i]);
        }
      }
    }
  }
}

struct ClientArgs {
  std::string endpoint;
  std::string command;  ///< empty = frames passthrough mode
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;  ///< JSON key -> token
  std::string id_json = "null";
  std::string priority;     ///< top-level "priority" token; empty = omit
  std::string deadline_ms;  ///< top-level "deadline_ms" token; empty = omit
  std::string format;       ///< metrics verb: "json"/"prometheus"; empty = omit
  std::string pick;         ///< trace verb: "recent"/"slowest"/"list"; empty = omit
  bool trace = false;       ///< run commands: request a server-side trace capture
};

/// JSON token for a numeric flag value; client-side validation is
/// deliberately thin — the daemon re-validates everything and its error
/// message travels back in the response.
std::string number_token(const std::string& flag, const std::string& value) {
  if (value.empty()) throw ClientError{"flag " + flag + " needs a value"};
  std::size_t pos = 0;
  try {
    (void)std::stod(value, &pos);
  } catch (...) {
    pos = 0;
  }
  if (pos != value.size()) throw ClientError{"bad value '" + value + "' for " + flag};
  return value;
}

ClientArgs parse_client_args(const std::vector<std::string>& args) {
  ClientArgs parsed;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw ClientError{"flag " + a + " needs a value"};
      return args[++i];
    };
    if (a == "--connect") {
      parsed.endpoint = need_value();
    } else if (a == "--id") {
      parsed.id_json = telemetry::json_quote(need_value());
    } else if (a == "--priority") {
      parsed.priority = number_token(a, need_value());
    } else if (a == "--deadline-ms") {
      parsed.deadline_ms = number_token(a, need_value());
    } else if (a == "--format") {
      parsed.format = need_value();
    } else if (a == "--pick") {
      parsed.pick = need_value();
    } else if (a == "--trace") {
      parsed.trace = true;
    } else if (a == "--incremental") {
      parsed.options.emplace_back("incremental", "true");
    } else if (a == "--metric") {
      parsed.options.emplace_back("metric", telemetry::json_quote(need_value()));
    } else if (a == "--k1" || a == "--k2" || a == "--theta" || a == "--scap" ||
               a == "--budget" || a == "--threads" || a == "--impl") {
      const std::string key = a.substr(2);
      parsed.options.emplace_back(key, number_token(a, need_value()));
    } else if (a == "--cache-mb") {
      parsed.options.emplace_back("cache_mb", number_token(a, need_value()));
    } else if (a.rfind("--", 0) == 0) {
      throw ClientError{"unknown flag " + a};
    } else if (parsed.command.empty()) {
      parsed.command = a;
    } else {
      parsed.positional.push_back(a);
    }
  }
  if (parsed.endpoint.empty()) throw ClientError{"--connect <endpoint> is required"};
  return parsed;
}

std::string build_request(const ClientArgs& parsed) {
  std::string body = "{\"fpopt_request\":{\"schema_version\":" +
                     std::to_string(kServiceSchemaVersion) +
                     ",\"id\":" + parsed.id_json +
                     ",\"command\":" + telemetry::json_quote(parsed.command);
  if (is_control_verb(parsed.command)) {
    if (!parsed.format.empty()) body += ",\"format\":" + telemetry::json_quote(parsed.format);
    if (!parsed.pick.empty()) body += ",\"pick\":" + telemetry::json_quote(parsed.pick);
  } else {
    if (parsed.positional.size() < 2) {
      throw ClientError{"command '" + parsed.command +
                        "' needs <topology-file> <library-file>"};
    }
    body += ",\"topology\":" + telemetry::json_quote(read_file(parsed.positional[0]));
    body += ",\"library\":" + telemetry::json_quote(read_file(parsed.positional[1]));
    if (!parsed.options.empty()) {
      body += ",\"options\":{";
      for (std::size_t i = 0; i < parsed.options.size(); ++i) {
        if (i > 0) body += ',';
        body += telemetry::json_quote(parsed.options[i].first) + ':' +
                parsed.options[i].second;
      }
      body += '}';
    }
    if (!parsed.priority.empty()) body += ",\"priority\":" + parsed.priority;
    if (!parsed.deadline_ms.empty()) body += ",\"deadline_ms\":" + parsed.deadline_ms;
    if (parsed.trace) body += ",\"trace\":true";
  }
  body += "}}";
  return body;
}

int run_frames_mode(const ClientArgs& parsed, std::istream& in, std::ostream& out) {
  std::vector<std::string> frames;
  std::string line;
  while (std::getline(in, line)) frames.push_back(line);
  if (frames.empty()) return 0;
  std::string outgoing;
  for (const std::string& f : frames) {
    outgoing += f;
    outgoing += '\n';
  }
  const int fd = connect_endpoint(parsed.endpoint);
  try {
    pump(fd, outgoing, frames.size(),
         [&](const std::string& response) { out << response << '\n' << std::flush; });
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return 0;
}

int run_command_mode(const ClientArgs& parsed, std::ostream& out, std::ostream& err) {
  const std::string request = build_request(parsed) + "\n";
  const int fd = connect_endpoint(parsed.endpoint);
  std::string response;
  try {
    pump(fd, request, 1, [&](const std::string& line) { response = line; });
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  const telemetry::JsonParseResult doc = telemetry::parse_json(response);
  if (!doc.value.has_value()) {
    throw ClientError{"daemon sent unparseable JSON: " + doc.error};
  }
  const std::vector<std::string> violations = validate_service_response(*doc.value);
  if (!violations.empty()) {
    throw ClientError{"daemon response violates the schema: " + violations.front()};
  }
  const telemetry::JsonValue& r = *doc.value->find("fpopt_response");
  if (r.find("status")->string == "ok") {
    out << r.find("output")->string;
    return 0;
  }
  const telemetry::JsonValue* error = r.find("error");
  const std::string& code = error->find("code")->string;
  err << "fpopt: " << error->find("message")->string << " [" << code << "]\n";
  return client_exit_code(code);
}

}  // namespace

int client_exit_code(const std::string& error_code) {
  // Keep this table in sync with the header comment and the exit-code
  // test table in service_observability_test.cpp.
  if (error_code == "E_INPUT") return 3;
  if (error_code == "E_OPTION") return 4;
  if (error_code == "E_BUDGET") return 5;
  if (error_code == "E_DEADLINE") return 6;
  if (error_code == "E_OVERLOADED") return 7;
  if (error_code == "E_OVERSIZED") return 8;
  if (error_code == "E_SCHEMA") return 9;
  if (error_code == "E_COMMAND") return 10;
  if (error_code == "E_PARSE") return 11;
  return 12;  // E_INTERNAL and anything a newer daemon invents
}

int run_client(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
               std::ostream& err) {
  try {
    const ClientArgs parsed = parse_client_args(args);
    if (parsed.command.empty()) return run_frames_mode(parsed, in, out);
    return run_command_mode(parsed, out, err);
  } catch (const ClientError& e) {
    err << "fpopt client: " << e.message << '\n' << kUsage;
    return 2;
  }
}

}  // namespace fpopt
