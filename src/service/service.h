// The fpoptd request engine: one frame in, one response line out.
//
// A Service owns the two resources a batching daemon shares across
// requests — one process-wide work-stealing ThreadPool and one
// SharedMemoCache — and executes every request through the same
// execution core as the standalone CLI (io/command.h). The determinism
// contracts underneath (parallel engine bit-identical for every worker
// count, incremental engine byte-identical for any cache content) are
// what make this safe: a response is a pure function of its request
// document, no matter what other requests ran before or concurrently.
//
// handle_frame is thread-safe; the transports (server.h) call it from one
// thread per connection. Each request gets its own CacheSession over the
// shared cache (committed on success, rolled back on failure) and its
// own BudgetTracker-driven admission: an over-budget run is rejected
// with an E_BUDGET error response carrying the run report (aborted=true)
// — the daemon never crashes or drops the connection for it.
//
// Run commands additionally pass a DispatchGate: with --max-inflight N
// set, at most N requests execute concurrently, freed slots go to the
// most urgent waiting request ("priority" 0..2), and a request whose
// "deadline_ms" expires while still queued is shed with E_DEADLINE
// before doing any work. Requests that set neither field behave exactly
// as before — the gate can delay them but never changes their bytes.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>

#include "cache/shared_cache.h"
#include "runtime/thread_pool.h"
#include "service/protocol.h"
#include "telemetry/log.h"

namespace fpopt {

class ServiceMetrics;

struct ServiceConfig {
  /// Workers of the process-wide pool serving every parallel request
  /// (options.threads > 0). 0 = no shared pool; each parallel request
  /// then spins up a run-owned pool, standalone-style.
  unsigned pool_workers = 0;
  /// Share one memo cache across incremental requests. Off = every
  /// incremental request gets a cold run-local cache (the standalone
  /// behavior), which is the daemon-side control for equivalence tests.
  bool shared_cache = true;
  /// Byte budget of the shared cache (0 = unlimited).
  std::size_t cache_bytes = MemoCache::kDefaultByteBudget;
  /// Frames longer than this are answered with E_OVERSIZED (and the
  /// transports resynchronize to the next newline). 0 = unlimited.
  std::size_t max_frame_bytes = 8u << 20;
  /// Admission control: implementation budget applied to any request that
  /// does not set "budget" itself. 0 = unlimited (the CLI default).
  std::size_t default_impl_budget = 0;
  /// Connection cap of the socket transports (Unix and TCP): a connection
  /// accepted past this many live ones is answered E_OVERLOADED and
  /// closed. 0 = unlimited.
  std::size_t max_connections = 256;
  /// Run-command requests executing at once; excess requests queue in the
  /// priority-aware DispatchGate in front of the shared pool. 0 =
  /// unlimited (no queuing, the gate is a pass-through).
  unsigned max_inflight = 0;
  /// Publish per-request metrics into a ServiceMetrics registry served by
  /// the `metrics` admin verb and --metrics-port. Off answers the verb
  /// with E_OPTION and skips every publication (the bench's control leg
  /// for measuring observability overhead at runtime; FPOPT_TELEMETRY=OFF
  /// is the compile-time zero-overhead path).
  bool metrics = true;
  /// Structured JSONL log sink (telemetry/log.h), owned by the caller and
  /// outliving the Service. Null = no logging.
  telemetry::LogSink* log = nullptr;
  /// Retain the captured traces of up to this many recent requests (plus
  /// the slowest ever) for the `trace` admin verb. 0 = request tracing
  /// off: "trace": true requests run untraced and the verb errors.
  std::size_t trace_requests = 0;
  /// Also capture every Nth run request (1 = all, 0 = only requests that
  /// ask with "trace": true). Capture serializes execution (one traced
  /// request at a time, alone in the engine), so sampling every request
  /// is a debugging mode, not a production default.
  std::size_t trace_sample = 0;
};

/// Priority-aware admission queue in front of the shared ThreadPool: at
/// most `slots` run-command requests execute at once; the rest wait, and
/// each freed slot goes to the most urgent (then oldest) waiter. A waiter
/// whose deadline expires before it is dispatched is shed (acquire
/// returns false) and never runs. The gate orders only *dispatch*; the
/// bytes of every dispatched response are unaffected by it.
class DispatchGate {
 public:
  /// The gate's clock. Deadlines are traffic policy by design: they pick
  /// which requests run, never what a dispatched request answers.
  using Clock = std::chrono::steady_clock;  // FPOPT-LINT-OK(wall-clock): deadline shedding is time-driven traffic policy; response bytes of dispatched requests never depend on it

  /// `slots` concurrent executions (0 = unlimited: acquire never blocks).
  explicit DispatchGate(unsigned slots) : slots_(slots) {}
  DispatchGate(const DispatchGate&) = delete;
  DispatchGate& operator=(const DispatchGate&) = delete;

  /// Block until a slot is free and no more urgent request is waiting.
  /// Returns false — without ever dispatching — when `deadline` passed
  /// first (including a deadline already expired on entry, even for an
  /// unlimited gate). `priority` is 0..2, higher = dispatched earlier.
  [[nodiscard]] bool acquire(int priority,
                             const std::optional<Clock::time_point>& deadline);

  /// Return the slot taken by a successful bounded acquire.
  void release();

  /// Requests currently blocked in acquire (test/stats observability).
  [[nodiscard]] std::size_t waiting() const;
  /// Waiters split by priority (index 0..2), for the queue-depth gauges.
  [[nodiscard]] std::array<std::size_t, 3> waiting_by_priority() const;
  /// Slots currently held (0 when the gate is unlimited).
  [[nodiscard]] unsigned in_use() const;
  /// Requests shed because their deadline expired before dispatch.
  [[nodiscard]] std::uint64_t shed() const;

 private:
  const unsigned slots_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  unsigned in_use_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t shed_ = 0;
  /// Waiters as (-priority, arrival seq): the set's begin() is always the
  /// most urgent, then oldest, waiter — the one a freed slot belongs to.
  std::set<std::pair<int, std::uint64_t>> queue_;
};

/// Monotonic service counters (never reset; read with relaxed loads —
/// they order nothing, they only report).
struct ServiceStats {
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_error = 0;
  std::uint64_t frames = 0;         ///< every frame seen, well-formed or not
  std::uint64_t requests_shed = 0;  ///< E_DEADLINE: expired before dispatch
};

class Service {
 public:
  explicit Service(ServiceConfig config);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Process one frame (one line, newline stripped) and return the
  /// response line (no trailing newline). Never throws; every failure
  /// becomes an error response. Thread-safe.
  [[nodiscard]] std::string handle_frame(const std::string& frame);

  /// Set once a shutdown request has been processed; the transports
  /// drain and exit when they see it.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Raise the shutdown flag from outside the protocol — fpoptd uses
  /// this to stop the metrics HTTP sidecar when the frame transport
  /// exits for its own reasons (stdin EOF, listener failure).
  void request_shutdown() { shutdown_.store(true, std::memory_order_release); }

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] ServiceStats stats() const;
  /// The cross-request cache, or nullptr when shared_cache is off.
  [[nodiscard]] const SharedMemoCache* cache() const {
    return cache_.has_value() ? &*cache_ : nullptr;
  }
  /// The dispatch gate every run-command request passes through (exposed
  /// so tests can saturate it deterministically and stats can read it).
  [[nodiscard]] DispatchGate& gate() { return gate_; }
  /// The metric registry behind the `metrics` verb, or nullptr when
  /// config.metrics is off. The transports and fpoptd attach the
  /// connection registry / log sink through this.
  [[nodiscard]] ServiceMetrics* metrics() { return metrics_.get(); }
  /// The structured log sink, or nullptr when logging is off.
  [[nodiscard]] telemetry::LogSink* log() const { return config_.log; }

  /// One retained request trace: the Chrome trace-event document a
  /// traced request exported, plus the index fields the `trace` verb's
  /// "list" pick reports.
  struct RetainedTrace {
    std::uint64_t request_id = 0;
    std::string command;
    double seconds = 0;  ///< traced request's execute-phase wall time
    std::uint64_t dropped_events = 0;
    std::string json;  ///< complete Chrome trace-event JSON document
  };

 private:
  /// Per-request accounting filled by handle_request and published by
  /// handle_frame (metrics + one structured log line per request).
  struct RequestOutcome {
    bool ok = false;
    ServiceErrorCode error = ServiceErrorCode::kInternal;  ///< valid when !ok
    bool dispatched = false;  ///< run command that passed the gate
    double gate_wait_seconds = 0;
    double execute_seconds = 0;
    std::optional<double> deadline_slack_ms;  ///< remaining at dispatch
    std::uint64_t cache_hits = 0;
    bool traced = false;
  };

  [[nodiscard]] std::string handle_request(const ServiceRequest& request,
                                           std::uint64_t request_id, RequestOutcome& outcome);
  [[nodiscard]] std::string handle_metrics_verb(const ServiceRequest& request,
                                                RequestOutcome& outcome);
  [[nodiscard]] std::string handle_trace_verb(const ServiceRequest& request,
                                              RequestOutcome& outcome);
  void retain_trace(RetainedTrace trace);
  void log_request(const ServiceRequest& request, std::uint64_t request_id,
                   const RequestOutcome& outcome, double seconds);

  ServiceConfig config_;
  DispatchGate gate_;
  std::optional<ThreadPool> pool_;
  std::optional<SharedMemoCache> cache_;
  std::unique_ptr<ServiceMetrics> metrics_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> frames_{0};
  /// Server-assigned request ids: monotonically increasing, first id 1.
  std::atomic<std::uint64_t> next_request_id_{0};
  /// Run-command arrivals, for trace_sample's every-Nth selection.
  std::atomic<std::uint64_t> run_seq_{0};
  /// Request-trace capture: one capture at a time (capture_mu_), and the
  /// traced request runs alone — it takes exec_mu_ exclusively while
  /// every untraced run request holds it shared, giving the quiescence
  /// TraceSession's export contract needs without stopping the daemon.
  std::mutex trace_capture_mu_;
  std::shared_mutex exec_mu_;
  mutable std::mutex traces_mu_;
  std::deque<RetainedTrace> traces_;  ///< most recent last, bounded
  RetainedTrace slowest_;
  bool have_slowest_ = false;
};

}  // namespace fpopt
