// The fpoptd request engine: one frame in, one response line out.
//
// A Service owns the two resources a batching daemon shares across
// requests — one process-wide work-stealing ThreadPool and one
// SharedMemoCache — and executes every request through the same
// execution core as the standalone CLI (io/command.h). The determinism
// contracts underneath (parallel engine bit-identical for every worker
// count, incremental engine byte-identical for any cache content) are
// what make this safe: a response is a pure function of its request
// document, no matter what other requests ran before or concurrently.
//
// handle_frame is thread-safe; the transports (server.h) call it from one
// thread per connection. Each request gets its own CacheSession over the
// shared cache (committed on success, rolled back on failure) and its
// own BudgetTracker-driven admission: an over-budget run is rejected
// with an E_BUDGET error response carrying the run report (aborted=true)
// — the daemon never crashes or drops the connection for it.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "cache/shared_cache.h"
#include "runtime/thread_pool.h"
#include "service/protocol.h"

namespace fpopt {

struct ServiceConfig {
  /// Workers of the process-wide pool serving every parallel request
  /// (options.threads > 0). 0 = no shared pool; each parallel request
  /// then spins up a run-owned pool, standalone-style.
  unsigned pool_workers = 0;
  /// Share one memo cache across incremental requests. Off = every
  /// incremental request gets a cold run-local cache (the standalone
  /// behavior), which is the daemon-side control for equivalence tests.
  bool shared_cache = true;
  /// Byte budget of the shared cache (0 = unlimited).
  std::size_t cache_bytes = MemoCache::kDefaultByteBudget;
  /// Frames longer than this are answered with E_OVERSIZED (and the
  /// transports resynchronize to the next newline). 0 = unlimited.
  std::size_t max_frame_bytes = 8u << 20;
  /// Admission control: implementation budget applied to any request that
  /// does not set "budget" itself. 0 = unlimited (the CLI default).
  std::size_t default_impl_budget = 0;
};

/// Monotonic service counters (never reset; read with relaxed loads —
/// they order nothing, they only report).
struct ServiceStats {
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_error = 0;
  std::uint64_t frames = 0;  ///< every frame seen, well-formed or not
};

class Service {
 public:
  explicit Service(ServiceConfig config);
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Process one frame (one line, newline stripped) and return the
  /// response line (no trailing newline). Never throws; every failure
  /// becomes an error response. Thread-safe.
  [[nodiscard]] std::string handle_frame(const std::string& frame);

  /// Set once a shutdown request has been processed; the transports
  /// drain and exit when they see it.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] ServiceStats stats() const;
  /// The cross-request cache, or nullptr when shared_cache is off.
  [[nodiscard]] const SharedMemoCache* cache() const {
    return cache_.has_value() ? &*cache_ : nullptr;
  }

 private:
  [[nodiscard]] std::string handle_request(const ServiceRequest& request, bool& ok);

  ServiceConfig config_;
  std::optional<ThreadPool> pool_;
  std::optional<SharedMemoCache> cache_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> frames_{0};
};

}  // namespace fpopt
