// fpoptd transports: pump JSONL frames between clients and a Service.
//
// Two interchangeable front ends over the same Service::handle_frame:
//  * serve_stdio — one client on stdin/stdout; the test harness's and
//    shell pipelines' transport (`fpoptd --stdio`).
//  * serve_unix — an AF_UNIX stream socket, one thread per connection,
//    many pipelined clients at once (`fpoptd --socket <path>`).
//
// Both resynchronize after an oversized frame (answer E_OVERSIZED, then
// discard bytes to the next newline) and exit cleanly when a client sends
// the shutdown command. The transports only move bytes; every decision
// about a frame's meaning lives in the Service, so the two front ends
// cannot diverge in behavior.
#pragma once

#include <iosfwd>
#include <string>

#include "service/service.h"

namespace fpopt {

/// Serve one client on an istream/ostream pair until EOF or shutdown.
/// Returns 0 (clean exit) — every request-level failure is an error
/// response, not an exit code.
int serve_stdio(Service& service, std::istream& in, std::ostream& out);

/// Bind `socket_path` (an existing stale socket file is replaced) and
/// serve connections until a shutdown request. Returns 0 on clean
/// shutdown, 1 on transport setup failure (message on `err`).
int serve_unix(Service& service, const std::string& socket_path, std::ostream& err);

/// Incremental JSONL splitter with oversized-frame resynchronization:
/// feed raw bytes, get complete lines back. Once a partial line exceeds
/// `max_line` the splitter reports it oversized exactly once and then
/// silently discards until the next newline. max_line 0 = unlimited.
/// (Header-exposed so the protocol tests can fuzz it directly.)
class LineSplitter {
 public:
  explicit LineSplitter(std::size_t max_line) : max_line_(max_line) {}

  /// Consume a chunk of raw bytes. For each complete or oversized frame,
  /// invokes `frame(line, oversized)` in input order; an oversized
  /// frame's text is truncated to max_line + 1 bytes (enough for the
  /// Service to see it is over the limit, bounded memory regardless of
  /// how much garbage a client streams).
  template <typename Fn>
  void feed(const char* data, std::size_t size, Fn&& frame) {
    for (std::size_t i = 0; i < size; ++i) {
      const char c = data[i];
      if (c == '\n') {
        if (discarding_) {
          discarding_ = false;
        } else {
          frame(buffer_, false);
        }
        buffer_.clear();
        continue;
      }
      if (discarding_) continue;
      buffer_.push_back(c);
      if (max_line_ != 0 && buffer_.size() > max_line_) {
        frame(buffer_, true);
        buffer_.clear();
        discarding_ = true;
      }
    }
  }

  /// True when a final unterminated partial line is pending at EOF.
  [[nodiscard]] bool has_partial() const { return !discarding_ && !buffer_.empty(); }
  [[nodiscard]] const std::string& partial() const { return buffer_; }

 private:
  std::size_t max_line_;
  std::string buffer_;
  bool discarding_ = false;
};

}  // namespace fpopt
