// fpoptd transports: pump JSONL frames between clients and a Service.
//
// Three interchangeable front ends over the same Service::handle_frame:
//  * serve_stdio — one client on stdin/stdout; the test harness's and
//    shell pipelines' transport (`fpoptd --stdio`).
//  * serve_unix — an AF_UNIX stream socket, one thread per connection,
//    many pipelined clients at once (`fpoptd --socket <path>`).
//  * serve_tcp — the same thread-per-connection loop on a TCP listener
//    (`fpoptd --listen <host:port>`), for multi-host traffic.
//
// All resynchronize after an oversized frame (answer E_OVERSIZED, then
// discard bytes to the next newline) and exit cleanly when a client sends
// the shutdown command. The transports only move bytes; every decision
// about a frame's meaning lives in the Service, so the front ends cannot
// diverge in behavior.
//
// Connection lifecycle (both socket transports): every connection thread
// registers in a ConnectionRegistry and removes itself on exit; the
// accept loop joins finished threads between connections (no grow-only
// thread vector), refuses connections past the configured cap with one
// E_OVERLOADED response and a clean close, and backs off instead of
// spinning when accept(2) runs out of file descriptors. Shutdown drains
// the registry before the listener closes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace fpopt {

/// Bookkeeping for the thread-per-connection transports: a bounded set of
/// live connection threads that reap themselves. A connection thread's
/// last act is to hand its own std::thread handle to the finished list;
/// the accept loop joins those handles between connections, so the live
/// thread count tracks live clients instead of growing with every
/// connection ever served. Header-exposed so the lifecycle tests can
/// observe live/peak counts directly.
class ConnectionRegistry {
 public:
  /// Cap of concurrently live connection threads (0 = unlimited).
  explicit ConnectionRegistry(std::size_t max_live) : max_live_(max_live) {}
  ~ConnectionRegistry();
  ConnectionRegistry(const ConnectionRegistry&) = delete;
  ConnectionRegistry& operator=(const ConnectionRegistry&) = delete;

  /// Join already-finished threads, then start `body` on a registered
  /// connection thread. Returns false (spawning nothing) at the cap.
  [[nodiscard]] bool spawn(std::function<void()> body);

  /// Join every thread that has already finished. Called by the accept
  /// loop between connections; cheap when nothing finished.
  void reap();

  /// Block until every live connection thread has exited, then join them
  /// all. The accept loop calls this once shutdown is requested (the
  /// connection threads observe the same flag and drain out).
  void drain();

  [[nodiscard]] std::size_t max_live() const { return max_live_; }
  /// Currently live connection threads.
  [[nodiscard]] std::size_t live() const;
  /// High-water mark of live(), over the registry's lifetime.
  [[nodiscard]] std::size_t peak_live() const;
  /// Every connection thread ever spawned.
  [[nodiscard]] std::uint64_t total_spawned() const;
  /// Connections refused at the cap.
  [[nodiscard]] std::uint64_t rejected() const;

 private:
  void finish(std::uint64_t id);

  const std::size_t max_live_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_id_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t peak_live_ = 0;
  std::map<std::uint64_t, std::thread> live_;
  std::vector<std::thread> finished_;  ///< exited, handle not yet joined
};

/// Serve one client on an istream/ostream pair until EOF or shutdown.
/// Returns 0 (clean exit) — every request-level failure is an error
/// response, not an exit code.
int serve_stdio(Service& service, std::istream& in, std::ostream& out);

/// Bind `socket_path` and serve connections until a shutdown request.
/// A stale socket file (no listener behind it) is replaced; a *live*
/// daemon's socket — one that still answers connect(2) — is refused with
/// a distinct error, never stolen. Returns 0 on clean shutdown, 1 on
/// transport setup failure (message on `err`). `registry` overrides the
/// internally-created one (cap `service.config().max_connections`) so
/// tests can observe connection lifecycle.
int serve_unix(Service& service, const std::string& socket_path, std::ostream& err,
               ConnectionRegistry* registry = nullptr);

/// Bind `host_port` ("127.0.0.1:7070", "[::1]:7070", ":7070" = all
/// interfaces; port 0 = kernel-chosen) and serve TCP connections until a
/// shutdown request, sharing the connection loop — and therefore every
/// protocol behavior — with serve_unix. `on_bound` (when set) receives
/// the actually-bound port before accepting begins. Returns 0 on clean
/// shutdown, 1 on setup failure.
int serve_tcp(Service& service, const std::string& host_port, std::ostream& err,
              ConnectionRegistry* registry = nullptr,
              std::function<void(unsigned short)> on_bound = nullptr);

/// Serve the Prometheus exposition of `service.metrics()` over plain
/// HTTP on `host_port` (same address grammar as serve_tcp) until a
/// shutdown request: GET /metrics (or /) answers 200 text/plain, other
/// paths 404, non-GET 405, and a metrics-disabled server 503. One
/// scrape is handled at a time with a bounded read deadline, so a
/// stalled scraper cannot wedge the daemon. Runs on the caller's
/// thread — fpoptd starts it on a sidecar thread next to the frame
/// transport. Returns 0 on clean shutdown, 1 on setup failure.
int serve_metrics_http(Service& service, const std::string& host_port, std::ostream& err,
                       std::function<void(unsigned short)> on_bound = nullptr);

/// Incremental JSONL splitter with oversized-frame resynchronization:
/// feed raw bytes, get complete lines back. Once a partial line exceeds
/// `max_line` the splitter reports it oversized exactly once and then
/// silently discards until the next newline. max_line 0 = unlimited.
/// (Header-exposed so the protocol tests can fuzz it directly.)
class LineSplitter {
 public:
  explicit LineSplitter(std::size_t max_line) : max_line_(max_line) {}

  /// Consume a chunk of raw bytes. For each complete or oversized frame,
  /// invokes `frame(line, oversized)` in input order; an oversized
  /// frame's text is truncated to max_line + 1 bytes (enough for the
  /// Service to see it is over the limit, bounded memory regardless of
  /// how much garbage a client streams).
  template <typename Fn>
  void feed(const char* data, std::size_t size, Fn&& frame) {
    for (std::size_t i = 0; i < size; ++i) {
      const char c = data[i];
      if (c == '\n') {
        if (discarding_) {
          discarding_ = false;
        } else {
          frame(buffer_, false);
        }
        buffer_.clear();
        continue;
      }
      if (discarding_) continue;
      buffer_.push_back(c);
      if (max_line_ != 0 && buffer_.size() > max_line_) {
        frame(buffer_, true);
        buffer_.clear();
        discarding_ = true;
      }
    }
  }

  /// True when a final unterminated partial line is pending at EOF.
  [[nodiscard]] bool has_partial() const { return !discarding_ && !buffer_.empty(); }
  [[nodiscard]] const std::string& partial() const { return buffer_; }

 private:
  std::size_t max_line_;
  std::string buffer_;
  bool discarding_ = false;
};

}  // namespace fpopt
