// `fpopt client` — talk to a running fpoptd over its Unix socket.
//
// Two modes share one connection and one poll-driven pump:
//  * Frames passthrough (no command verb): every line on stdin is sent
//    to the daemon verbatim and every response line is printed as it
//    arrives. The pump keeps many requests in flight at once (writes and
//    reads interleave through one poll loop), so a batch of N requests
//    costs one round trip of daemon work, not N sequential ones.
//  * Command mode (`fpopt client --connect S optimize t.fp lib.mod
//    --k1 8 ...`): builds one request from the standalone CLI's flag
//    surface, sends it, and prints the response's output field — which
//    the service guarantees is byte-identical to standalone `fpopt`
//    stdout. Error responses render as `fpopt: <message>` on stderr with
//    exit code 2, mirroring the standalone tool.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpopt {

/// Run the client on argv-style arguments (the leading "client" verb
/// excluded). Returns the process exit code.
int run_client(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
               std::ostream& err);

}  // namespace fpopt
