// `fpopt client` — talk to a running fpoptd over its Unix socket.
//
// Two modes share one connection and one poll-driven pump:
//  * Frames passthrough (no command verb): every line on stdin is sent
//    to the daemon verbatim and every response line is printed as it
//    arrives. The pump keeps many requests in flight at once (writes and
//    reads interleave through one poll loop), so a batch of N requests
//    costs one round trip of daemon work, not N sequential ones.
//  * Command mode (`fpopt client --connect S optimize t.fp lib.mod
//    --k1 8 ...`): builds one request from the standalone CLI's flag
//    surface, sends it, and prints the response's output field — which
//    the service guarantees is byte-identical to standalone `fpopt`
//    stdout. Error responses render as one `fpopt: <message> [<code>]`
//    line on stderr with a distinct exit code per error class (see
//    client_exit_code), so shell scripts can branch on *why* a request
//    failed without parsing stderr.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpopt {

/// Exit code for a server error envelope, by its E_* code string. Each
/// error class gets its own code so callers can distinguish retryable
/// congestion from caller bugs:
///
///   0  success                        7  E_OVERLOADED  (retryable)
///   2  client-side usage/transport    8  E_OVERSIZED
///   3  E_INPUT                        9  E_SCHEMA
///   4  E_OPTION                      10  E_COMMAND
///   5  E_BUDGET                      11  E_PARSE
///   6  E_DEADLINE  (retryable)       12  E_INTERNAL
///
/// Unknown code strings (a newer daemon) map to 12.
[[nodiscard]] int client_exit_code(const std::string& error_code);

/// Run the client on argv-style arguments (the leading "client" verb
/// excluded). Returns the process exit code (see client_exit_code).
int run_client(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
               std::ostream& err);

}  // namespace fpopt
