#include "service/service.h"

#include <sstream>

#include "floorplan/serialize.h"

namespace fpopt {

bool DispatchGate::acquire(int priority,
                           const std::optional<Clock::time_point>& deadline) {
  std::unique_lock<std::mutex> lk(mu_);
  // A deadline already in the past sheds unconditionally — "never runs"
  // must hold even when a slot is free (deadline_ms: 0 is the
  // deterministic always-shed request the tests lean on).
  if (deadline.has_value() && Clock::now() >= *deadline) {  // FPOPT-LINT-OK(wall-clock): deadline shedding, traffic policy only
    ++shed_;
    return false;
  }
  if (slots_ == 0) return true;
  const std::pair<int, std::uint64_t> me{-priority, next_seq_++};
  queue_.insert(me);
  const auto ready = [&] { return in_use_ < slots_ && *queue_.begin() == me; };
  while (!ready()) {
    if (deadline.has_value()) {
      if (cv_.wait_until(lk, *deadline) == std::cv_status::timeout && !ready()) {
        queue_.erase(me);
        ++shed_;
        // The slot this waiter was competing for may now belong to a
        // lower-priority one; let the queue re-evaluate.
        cv_.notify_all();
        return false;
      }
    } else {
      cv_.wait(lk);
    }
  }
  queue_.erase(me);
  ++in_use_;
  // More than one slot may be free; wake the next-best waiter too.
  cv_.notify_all();
  return true;
}

void DispatchGate::release() {
  if (slots_ == 0) return;  // unlimited gate: acquire took nothing
  {
    std::lock_guard<std::mutex> lk(mu_);
    --in_use_;
  }
  cv_.notify_all();
}

std::size_t DispatchGate::waiting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

unsigned DispatchGate::in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_use_;
}

std::uint64_t DispatchGate::shed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_;
}

Service::Service(ServiceConfig config)
    : config_(config), gate_(config.max_inflight) {
  if (config_.pool_workers > 0) pool_.emplace(config_.pool_workers);
  if (config_.shared_cache) cache_.emplace(config_.cache_bytes);
}

ServiceStats Service::stats() const {
  ServiceStats s;
  // Counters only report; they synchronize nothing.
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = requests_error_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.requests_shed = gate_.shed();
  return s;
}

std::string Service::handle_frame(const std::string& frame) {
  // Counters only report; they synchronize nothing, so relaxed suffices.
  frames_.fetch_add(1, std::memory_order_relaxed);
  if (config_.max_frame_bytes != 0 && frame.size() > config_.max_frame_bytes) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    return build_error_response(
        "null",
        {ServiceErrorCode::kOversized,
         "frame of " + std::to_string(frame.size()) + " bytes exceeds the limit of " +
             std::to_string(config_.max_frame_bytes)},
        "");
  }
  ServiceRequest request;
  ServiceError error;
  if (!decode_request(frame, request, error)) {
    // Counters only report; they synchronize nothing, so relaxed suffices.
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    return build_error_response(request.id_json, error, "");
  }
  std::string response;
  bool ok = false;
  try {
    response = handle_request(request, ok);
  } catch (const std::exception& e) {
    response = build_error_response(request.id_json,
                                    {ServiceErrorCode::kInternal, e.what()}, "");
  } catch (...) {
    response = build_error_response(
        request.id_json, {ServiceErrorCode::kInternal, "unknown failure"}, "");
  }
  // Counters only report; they synchronize nothing, so relaxed suffices.
  (ok ? requests_ok_ : requests_error_).fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::string Service::handle_request(const ServiceRequest& request, bool& ok) {
  if (request.spec.command == "ping") {
    ok = true;
    return build_ok_response(request.id_json, "pong\n", "");
  }
  if (request.spec.command == "shutdown") {
    // Release pairs with the acquire load in shutdown_requested(): a
    // transport that observes the flag also observes this response.
    shutdown_.store(true, std::memory_order_release);
    ok = true;
    return build_ok_response(request.id_json, "shutting down\n", "");
  }

  // Admission control: a request that names no budget runs under the
  // server's default cap (0 = unlimited, the CLI default).
  CommandSpec spec = request.spec;
  if (!request.budget_set && config_.default_impl_budget > 0) {
    spec.options.impl_budget = config_.default_impl_budget;
  }

  // Dispatch gate, ahead of any per-request work: a shed request burns no
  // parse or optimize cycles. The deadline is relative to decode time.
  std::optional<DispatchGate::Clock::time_point> deadline;
  if (request.deadline_ms.has_value()) {
    deadline = DispatchGate::Clock::now() +  // FPOPT-LINT-OK(wall-clock): deadline anchor, traffic policy only
               std::chrono::milliseconds(*request.deadline_ms);
  }
  if (!gate_.acquire(request.priority, deadline)) {
    return build_error_response(
        request.id_json,
        {ServiceErrorCode::kDeadline,
         "deadline of " + std::to_string(*request.deadline_ms) +
             " ms expired before dispatch"},
        "");
  }
  struct GateSlot {
    DispatchGate& gate;
    ~GateSlot() { gate.release(); }
  } slot{gate_};

  FloorplanTree tree;
  try {
    tree = parse_floorplan(request.topology, parse_module_library(request.library));
  } catch (const ParseError& e) {
    return build_error_response(request.id_json,
                                {ServiceErrorCode::kInput,
                                 std::string("parse error: ") + e.what()},
                                "");
  }
  {
    const auto problems = tree.validate();
    if (!problems.empty()) {
      return build_error_response(
          request.id_json,
          {ServiceErrorCode::kInput, "invalid floorplan: " + problems.front()}, "");
    }
  }

  // Per-request isolation: an incremental run gets its own session over
  // the shared cache. The session publishes only on success; every
  // failure path below leaves the shared store byte-exactly as the
  // committed trajectories built it.
  std::optional<CacheSession> session;
  CommandEnv env;
  env.pool = pool_.has_value() ? &*pool_ : nullptr;
  if (spec.options.incremental && cache_.has_value()) {
    session.emplace(*cache_);
    env.cache = &*session;
  }

  telemetry::RunReport report("fpoptd", spec.command);
  telemetry::RunReport* report_ptr = request.want_report ? &report : nullptr;
  std::ostringstream out;
  try {
    execute_command(spec, tree, env, out, report_ptr);
  } catch (const CommandError& e) {
    if (session.has_value()) session->rollback();
    // An over-budget abort still reports (aborted=true), exactly like
    // `fpopt --stats` on the same inputs — the report rode through
    // execute_command before the abort surfaced.
    const std::string report_json =
        (request.want_report && e.over_budget) ? report.to_json(false) : std::string();
    return build_error_response(
        request.id_json,
        {e.over_budget ? ServiceErrorCode::kBudget : ServiceErrorCode::kOption,
         e.message},
        report_json);
  } catch (...) {
    if (session.has_value()) session->rollback();
    throw;
  }
  if (session.has_value()) session->commit();
  ok = true;
  return build_ok_response(request.id_json, out.str(),
                           request.want_report ? report.to_json(false) : std::string());
}

}  // namespace fpopt
