#include "service/service.h"

#include <sstream>

#include "floorplan/serialize.h"
#include "service/metrics.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace fpopt {

bool DispatchGate::acquire(int priority,
                           const std::optional<Clock::time_point>& deadline) {
  std::unique_lock<std::mutex> lk(mu_);
  // A deadline already in the past sheds unconditionally — "never runs"
  // must hold even when a slot is free (deadline_ms: 0 is the
  // deterministic always-shed request the tests lean on).
  if (deadline.has_value() && Clock::now() >= *deadline) {  // FPOPT-LINT-OK(wall-clock): deadline shedding, traffic policy only
    ++shed_;
    return false;
  }
  if (slots_ == 0) return true;
  const std::pair<int, std::uint64_t> me{-priority, next_seq_++};
  queue_.insert(me);
  const auto ready = [&] { return in_use_ < slots_ && *queue_.begin() == me; };
  while (!ready()) {
    if (deadline.has_value()) {
      if (cv_.wait_until(lk, *deadline) == std::cv_status::timeout && !ready()) {
        queue_.erase(me);
        ++shed_;
        // The slot this waiter was competing for may now belong to a
        // lower-priority one; let the queue re-evaluate.
        cv_.notify_all();
        return false;
      }
    } else {
      cv_.wait(lk);
    }
  }
  queue_.erase(me);
  ++in_use_;
  // More than one slot may be free; wake the next-best waiter too.
  cv_.notify_all();
  return true;
}

void DispatchGate::release() {
  if (slots_ == 0) return;  // unlimited gate: acquire took nothing
  {
    std::lock_guard<std::mutex> lk(mu_);
    --in_use_;
  }
  cv_.notify_all();
}

std::size_t DispatchGate::waiting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::array<std::size_t, 3> DispatchGate::waiting_by_priority() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::array<std::size_t, 3> out{};
  for (const auto& [neg_priority, seq] : queue_) {
    (void)seq;
    const int p = -neg_priority;
    if (p >= 0 && p < 3) ++out[static_cast<std::size_t>(p)];
  }
  return out;
}

unsigned DispatchGate::in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_use_;
}

std::uint64_t DispatchGate::shed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_;
}

Service::Service(ServiceConfig config)
    : config_(config), gate_(config.max_inflight) {
  if (config_.pool_workers > 0) pool_.emplace(config_.pool_workers);
  if (config_.shared_cache) cache_.emplace(config_.cache_bytes);
  if (config_.metrics) {
    metrics_ = std::make_unique<ServiceMetrics>(gate_, cache_.has_value() ? &*cache_ : nullptr);
    metrics_->attach_log(config_.log);
  }
}

Service::~Service() = default;

ServiceStats Service::stats() const {
  ServiceStats s;
  // Counters only report; they synchronize nothing.
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = requests_error_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.requests_shed = gate_.shed();
  return s;
}

std::string Service::handle_frame(const std::string& frame) {
  const telemetry::StopWatch watch;
  // relaxed: ids only need to be unique and increasing as a set; nothing
  // orders against their allocation.
  const std::uint64_t request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Counters only report; they synchronize nothing, so relaxed suffices.
  frames_.fetch_add(1, std::memory_order_relaxed);

  ServiceRequest request;
  RequestOutcome outcome;
  std::string response;
  if (config_.max_frame_bytes != 0 && frame.size() > config_.max_frame_bytes) {
    outcome.error = ServiceErrorCode::kOversized;
    response = build_error_response(
        "null",
        {ServiceErrorCode::kOversized,
         "frame of " + std::to_string(frame.size()) + " bytes exceeds the limit of " +
             std::to_string(config_.max_frame_bytes)},
        "");
  } else {
    ServiceError error;
    if (!decode_request(frame, request, error)) {
      outcome.error = error.code;
      response = build_error_response(request.id_json, error, "");
    } else {
      try {
        response = handle_request(request, request_id, outcome);
      } catch (const std::exception& e) {
        outcome.ok = false;
        outcome.error = ServiceErrorCode::kInternal;
        response = build_error_response(request.id_json,
                                        {ServiceErrorCode::kInternal, e.what()}, "");
      } catch (...) {
        outcome.ok = false;
        outcome.error = ServiceErrorCode::kInternal;
        response = build_error_response(
            request.id_json, {ServiceErrorCode::kInternal, "unknown failure"}, "");
      }
    }
  }
  // Counters only report; they synchronize nothing, so relaxed suffices.
  (outcome.ok ? requests_ok_ : requests_error_).fetch_add(1, std::memory_order_relaxed);

  const double seconds = watch.seconds();
  if (metrics_ != nullptr) {
    metrics_->outcome(outcome.ok, outcome.error).inc();
    metrics_->request_seconds().observe_seconds(seconds);
    if (outcome.dispatched) {
      metrics_->execute_seconds().observe_seconds(outcome.execute_seconds);
      metrics_->queue_wait_seconds(request.priority).observe_seconds(outcome.gate_wait_seconds);
    }
  }
  log_request(request, request_id, outcome, seconds);
  return response;
}

std::string Service::handle_request(const ServiceRequest& request, std::uint64_t request_id,
                                    RequestOutcome& outcome) {
  const auto fail = [&](ServiceErrorCode code, const std::string& message,
                        const std::string& report_json = std::string()) {
    outcome.error = code;
    return build_error_response(request.id_json, {code, message}, report_json);
  };

  if (request.spec.command == "ping") {
    outcome.ok = true;
    return build_ok_response(request.id_json, "pong\n", "");
  }
  if (request.spec.command == "shutdown") {
    // Release pairs with the acquire load in shutdown_requested(): a
    // transport that observes the flag also observes this response.
    shutdown_.store(true, std::memory_order_release);
    outcome.ok = true;
    return build_ok_response(request.id_json, "shutting down\n", "");
  }
  if (request.spec.command == "metrics") return handle_metrics_verb(request, outcome);
  if (request.spec.command == "trace") return handle_trace_verb(request, outcome);

  // Admission control: a request that names no budget runs under the
  // server's default cap (0 = unlimited, the CLI default).
  CommandSpec spec = request.spec;
  if (!request.budget_set && config_.default_impl_budget > 0) {
    spec.options.impl_budget = config_.default_impl_budget;
  }

  // Dispatch gate, ahead of any per-request work: a shed request burns no
  // parse or optimize cycles. The deadline is relative to decode time.
  std::optional<DispatchGate::Clock::time_point> deadline;
  if (request.deadline_ms.has_value()) {
    deadline = DispatchGate::Clock::now() +  // FPOPT-LINT-OK(wall-clock): deadline anchor, traffic policy only
               std::chrono::milliseconds(*request.deadline_ms);
  }
  const telemetry::StopWatch gate_watch;
  if (!gate_.acquire(request.priority, deadline)) {
    return fail(ServiceErrorCode::kDeadline,
                "deadline of " + std::to_string(*request.deadline_ms) +
                    " ms expired before dispatch");
  }
  outcome.gate_wait_seconds = gate_watch.seconds();
  outcome.dispatched = true;
  if (deadline.has_value()) {
    outcome.deadline_slack_ms =
        std::chrono::duration<double, std::milli>(  // FPOPT-LINT-OK(wall-clock): log/metric measurement of remaining deadline, never control flow
            *deadline - DispatchGate::Clock::now())
            .count();
  }
  struct GateSlot {
    DispatchGate& gate;
    ~GateSlot() { gate.release(); }
  } slot{gate_};
  struct ExecScope {
    ServiceMetrics* metrics;
    explicit ExecScope(ServiceMetrics* m) : metrics(m) {
      if (metrics != nullptr) metrics->begin_execute();
    }
    ~ExecScope() {
      if (metrics != nullptr) metrics->end_execute();
    }
  } exec_scope{metrics_.get()};

  FloorplanTree tree;
  try {
    tree = parse_floorplan(request.topology, parse_module_library(request.library));
  } catch (const ParseError& e) {
    return fail(ServiceErrorCode::kInput, std::string("parse error: ") + e.what());
  }
  {
    const auto problems = tree.validate();
    if (!problems.empty()) {
      return fail(ServiceErrorCode::kInput, "invalid floorplan: " + problems.front());
    }
  }

  // Per-request isolation: an incremental run gets its own session over
  // the shared cache. The session publishes only on success; every
  // failure path below leaves the shared store byte-exactly as the
  // committed trajectories built it.
  std::optional<CacheSession> session;
  CommandEnv env;
  env.pool = pool_.has_value() ? &*pool_ : nullptr;
  if (spec.options.incremental && cache_.has_value()) {
    session.emplace(*cache_);
    env.cache = &*session;
  }

  // Request-trace capture. A traced request runs alone: it serializes
  // against other captures (trace_capture_mu_) and takes the execution
  // lock exclusively while untraced runs hold it shared — the armed
  // TraceSession therefore records exactly this request's spans, and the
  // export below happens after provable quiescence. Untraced requests pay
  // one shared-lock acquisition, and only when request tracing is on.
  const bool trace_enabled = config_.trace_requests > 0;
  // relaxed: the arrival index only feeds every-Nth sampling; no ordering.
  const std::uint64_t run_index = run_seq_.fetch_add(1, std::memory_order_relaxed);
  const bool traced =
      trace_enabled && (request.trace || (config_.trace_sample > 0 &&
                                          run_index % config_.trace_sample == 0));
  std::unique_lock<std::mutex> capture_lock;
  std::unique_lock<std::shared_mutex> exclusive_exec;
  std::shared_lock<std::shared_mutex> shared_exec;
  std::optional<telemetry::TraceSession> trace_session;
  std::optional<telemetry::TraceSpan> request_span;
  if (traced) {
    capture_lock = std::unique_lock<std::mutex>(trace_capture_mu_);
    exclusive_exec = std::unique_lock<std::shared_mutex>(exec_mu_);
    trace_session.emplace();
    trace_session->set_meta("tool", "fpoptd");
    trace_session->set_meta("command", spec.command);
    trace_session->set_meta("request_id", std::to_string(request_id));
    telemetry::trace_thread_name("fpoptd-request");
    // The whole request becomes one span whose identity *is* the
    // server-assigned request id — fpopt_trace sees the correlation.
    request_span.emplace(telemetry::TraceCat::kPhase, "request", request_id);
  } else if (trace_enabled) {
    shared_exec = std::shared_lock<std::shared_mutex>(exec_mu_);
  }

  telemetry::RunReport report("fpoptd", spec.command);
  telemetry::RunReport* report_ptr = request.want_report ? &report : nullptr;
  std::ostringstream out;
  const telemetry::StopWatch exec_watch;
  const auto finalize_trace = [&] {
    if (!trace_session.has_value()) return;
    request_span.reset();  // close the request span before export
    RetainedTrace rt;
    rt.request_id = request_id;
    rt.command = spec.command;
    rt.seconds = outcome.execute_seconds;
    rt.dropped_events = trace_session->dropped_events();
    rt.json = trace_session->to_json();
    trace_session.reset();  // disarm before the locks release
    outcome.traced = true;
    if (metrics_ != nullptr && rt.dropped_events > 0) {
      metrics_->trace_events_dropped().add(rt.dropped_events);
    }
    if (config_.log != nullptr) {
      telemetry::LogEvent(config_.log, telemetry::LogLevel::kDebug, "request_trace")
          .num("request_id", rt.request_id)
          .str("command", rt.command)
          .dbl("execute_seconds", rt.seconds)
          .num("dropped_events", rt.dropped_events);
    }
    retain_trace(std::move(rt));
  };
  try {
    execute_command(spec, tree, env, out, report_ptr);
    outcome.execute_seconds = exec_watch.seconds();
  } catch (const CommandError& e) {
    outcome.execute_seconds = exec_watch.seconds();
    finalize_trace();
    if (session.has_value()) session->rollback();
    // An over-budget abort still reports (aborted=true), exactly like
    // `fpopt --stats` on the same inputs — the report rode through
    // execute_command before the abort surfaced.
    const std::string report_json =
        (request.want_report && e.over_budget) ? report.to_json(false) : std::string();
    return fail(e.over_budget ? ServiceErrorCode::kBudget : ServiceErrorCode::kOption,
                e.message, report_json);
  } catch (...) {
    outcome.execute_seconds = exec_watch.seconds();
    finalize_trace();
    if (session.has_value()) session->rollback();
    throw;
  }
  finalize_trace();
  if (session.has_value()) {
    outcome.cache_hits = session->stats().hits;
    session->commit();
  }
  outcome.ok = true;
  return build_ok_response(request.id_json, out.str(),
                           request.want_report ? report.to_json(false) : std::string());
}

std::string Service::handle_metrics_verb(const ServiceRequest& request,
                                         RequestOutcome& outcome) {
  if (metrics_ == nullptr) {
    outcome.error = ServiceErrorCode::kOption;
    return build_error_response(
        request.id_json,
        {ServiceErrorCode::kOption, "metrics are disabled in this server's configuration"}, "");
  }
  const std::string body = request.format == "prometheus" ? metrics_->registry().to_prometheus()
                                                          : metrics_->registry().to_json();
  outcome.ok = true;
  return build_ok_response(request.id_json, body, "");
}

std::string Service::handle_trace_verb(const ServiceRequest& request, RequestOutcome& outcome) {
  const auto fail = [&](const std::string& message) {
    outcome.error = ServiceErrorCode::kOption;
    return build_error_response(request.id_json, {ServiceErrorCode::kOption, message}, "");
  };
  if (config_.trace_requests == 0) {
    return fail("request tracing is off (start fpoptd with --trace-requests)");
  }
  std::lock_guard<std::mutex> lock(traces_mu_);
  const std::string pick = request.pick.empty() ? "recent" : request.pick;
  if (pick == "list") {
    std::ostringstream body;
    body << "{\"fpopt_request_traces\":{\"schema_version\":1,\"recent\":[";
    for (std::size_t i = 0; i < traces_.size(); ++i) {
      const RetainedTrace& rt = traces_[i];
      if (i != 0) body << ",";
      body << "{\"request_id\":" << rt.request_id
           << ",\"command\":" << telemetry::json_quote(rt.command)
           << ",\"seconds\":" << telemetry::json_number(rt.seconds)
           << ",\"dropped_events\":" << rt.dropped_events << "}";
    }
    body << "],\"slowest\":";
    if (have_slowest_) {
      body << "{\"request_id\":" << slowest_.request_id
           << ",\"command\":" << telemetry::json_quote(slowest_.command)
           << ",\"seconds\":" << telemetry::json_number(slowest_.seconds)
           << ",\"dropped_events\":" << slowest_.dropped_events << "}";
    } else {
      body << "null";
    }
    body << "}}\n";
    outcome.ok = true;
    return build_ok_response(request.id_json, body.str(), "");
  }
  if (pick == "slowest") {
    if (!have_slowest_) return fail("no request trace retained yet");
    outcome.ok = true;
    return build_ok_response(request.id_json, slowest_.json, "");
  }
  if (traces_.empty()) return fail("no request trace retained yet");
  outcome.ok = true;
  return build_ok_response(request.id_json, traces_.back().json, "");
}

void Service::retain_trace(RetainedTrace trace) {
  std::lock_guard<std::mutex> lock(traces_mu_);
  if (!have_slowest_ || trace.seconds > slowest_.seconds) {
    slowest_ = trace;
    have_slowest_ = true;
  }
  traces_.push_back(std::move(trace));
  while (traces_.size() > config_.trace_requests) traces_.pop_front();
}

void Service::log_request(const ServiceRequest& request, std::uint64_t request_id,
                          const RequestOutcome& outcome, double seconds) {
  telemetry::LogSink* sink = config_.log;
  if (sink == nullptr || !sink->enabled(telemetry::LogLevel::kInfo)) return;
  telemetry::LogEvent ev(sink, telemetry::LogLevel::kInfo, "request");
  ev.num("request_id", request_id);
  ev.str("id", request.id_json);
  ev.str("command", request.spec.command.empty() ? "?" : request.spec.command);
  ev.str("outcome", outcome.ok ? "ok" : to_string(outcome.error));
  ev.dbl("latency_ms", seconds * 1e3);
  if (outcome.dispatched) {
    ev.num_signed("priority", request.priority);
    ev.dbl("queue_ms", outcome.gate_wait_seconds * 1e3);
    ev.dbl("execute_ms", outcome.execute_seconds * 1e3);
    if (request.deadline_ms.has_value()) ev.num("deadline_ms", *request.deadline_ms);
    if (outcome.deadline_slack_ms.has_value()) {
      ev.dbl("deadline_slack_ms", *outcome.deadline_slack_ms);
    }
    ev.num("cache_hits", outcome.cache_hits);
    if (outcome.traced) ev.flag("traced", true);
  }
}

}  // namespace fpopt
