#include "telemetry/telemetry.h"

namespace fpopt::telemetry {

void PhaseProfile::record(const char* name, double seconds) {
  if constexpr (!kEnabled) {
    (void)name;
    (void)seconds;
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (PhaseSample& e : entries_) {
    if (e.name == name) {
      ++e.count;
      e.seconds += seconds;
      return;
    }
  }
  entries_.push_back({name, 1, seconds});
}

std::vector<PhaseSample> PhaseProfile::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_;
}

}  // namespace fpopt::telemetry
