#include "telemetry/trace.h"

#include <cassert>
#include <chrono>
#include <ostream>
#include <sstream>

#include "telemetry/json.h"

namespace fpopt::telemetry {
namespace {

// The armed session. Hooks take the relaxed fast path (load, compare to
// the thread-local cache); registration synchronizes under the session
// mutex, and the arm/disarm edges happen while no instrumented work runs
// (the session lifecycle rule), so acquire/release ordering on this
// pointer is only needed at those quiet edges.
std::atomic<TraceSession*> g_session{nullptr};

// Bumped on every arm. The thread-local cache below is validated against
// (session pointer, arm epoch): pointer equality alone is not enough,
// because a later session constructed at the address of a destroyed one
// (same stack slot across sequential runs) would revive a cache entry
// whose ring was freed with the old session.
std::atomic<std::uint64_t> g_arm_epoch{0};

// Per-thread cache of the resolved ring so the hot path never locks.
struct ThreadSlot {
  TraceSession* session = nullptr;
  std::uint64_t epoch = 0;
  TraceRing* ring = nullptr;
};
thread_local ThreadSlot t_slot;

TraceRing* acquire_ring() {
  // acquire: pairs with the release CAS in the TraceSession constructor,
  // so a non-null session implies its rings are fully constructed.
  TraceSession* session = g_session.load(std::memory_order_acquire);
  if (session == nullptr) return nullptr;
  // Relaxed is enough: the epoch only changes at arm/disarm edges, which
  // the lifecycle rule places outside any instrumented work.
  const std::uint64_t epoch = g_arm_epoch.load(std::memory_order_relaxed);
  if (t_slot.session == session && t_slot.epoch == epoch) return t_slot.ring;
  TraceRing* ring = session->ring_for_this_thread();
  t_slot = {session, epoch, ring};
  return ring;
}

}  // namespace

const char* trace_cat_name(TraceCat cat) {
  switch (cat) {
    case TraceCat::kPhase: return "phase";
    case TraceCat::kNode: return "node";
    case TraceCat::kKernel: return "kernel";
    case TraceCat::kCache: return "cache";
    case TraceCat::kPool: return "pool";
    case TraceCat::kAnneal: return "anneal";
  }
  return "unknown";
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceSession::TraceSession(TraceOptions opts) : opts_(opts), start_ns_(trace_now_ns()) {
  if constexpr (kEnabled) {
    TraceSession* expected = nullptr;
    // release on success: publishes this fully-constructed session to the
    // acquire load in acquire_ring(); relaxed on failure (assert path).
    const bool armed =
        g_session.compare_exchange_strong(expected, this, std::memory_order_release,
                                          std::memory_order_relaxed);
    assert(armed && "only one TraceSession may be armed at a time");
    (void)armed;
    // relaxed: the epoch only changes at arm/disarm edges, outside any
    // instrumented work (see acquire_ring).
    g_arm_epoch.fetch_add(1, std::memory_order_relaxed);
  }
}

TraceSession::~TraceSession() {
  if constexpr (kEnabled) {
    TraceSession* expected = this;
    // release: makes every ring write of this session visible before any
    // later session re-arms; relaxed on failure (already disarmed).
    g_session.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                      std::memory_order_relaxed);
  }
}

TraceSession* TraceSession::current() {
  if constexpr (!kEnabled) return nullptr;
  // relaxed: callers only use the pointer from the arming thread, which
  // created the session; cross-thread access goes through acquire_ring.
  return g_session.load(std::memory_order_relaxed);
}

void TraceSession::set_meta(std::string key, std::string value) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : meta_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

TraceRing* TraceSession::ring_for_this_thread() {
  const std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<TraceRing>(opts_.ring_capacity));
  return rings_.back().get();
}

std::uint64_t TraceSession::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void TraceSession::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) dropped += ring->dropped();

  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {";
  bool first_meta = true;
  for (const auto& [key, value] : meta_) {
    out << (first_meta ? "\n    " : ",\n    ") << json_quote(key) << ": "
        << json_quote(value);
    first_meta = false;
  }
  out << (first_meta ? "\n    " : ",\n    ") << "\"telemetry\": "
      << json_quote(kEnabled ? "on" : "off");
  out << ",\n    \"dropped_events\": " << json_quote(std::to_string(dropped));
  out << "\n  },\n  \"traceEvents\": [";

  bool first_event = true;
  auto sep = [&] {
    out << (first_event ? "\n    " : ",\n    ");
    first_event = false;
  };

  for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
    const TraceRing& ring = *rings_[tid];
    if (!ring.name.empty()) {
      sep();
      out << R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << tid
          << R"(, "args": {"name": )" << json_quote(ring.name) << "}}";
    }
    for (const TraceEvent& e : ring.events()) {
      sep();
      // Rebase onto the session start; an event stamped before arming
      // (impossible under the lifecycle rule, but cheap to guard) clamps
      // to zero rather than wrapping.
      const std::uint64_t rel_ns = e.start_ns >= start_ns_ ? e.start_ns - start_ns_ : 0;
      out << "{\"name\": " << json_quote(e.name != nullptr ? e.name : "")
          << ", \"cat\": " << json_quote(trace_cat_name(e.cat))
          << (e.instant ? R"(, "ph": "i", "s": "t")" : R"(, "ph": "X")")
          << ", \"pid\": 1, \"tid\": " << tid
          << ", \"ts\": " << json_number(static_cast<double>(rel_ns) / 1000.0);
      if (!e.instant) {
        out << ", \"dur\": " << json_number(static_cast<double>(e.dur_ns) / 1000.0);
      }
      out << ", \"args\": {\"id\": " << e.id << ", \"arg\": " << e.arg;
      if (e.left >= 0) out << ", \"left\": " << e.left;
      if (e.right >= 0) out << ", \"right\": " << e.right;
      out << "}}";
    }
  }
  out << "\n  ]\n}\n";
}

std::string TraceSession::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void TraceSpan::begin(TraceCat cat, const char* name, std::uint64_t id,
                      std::uint64_t arg) {
  ring_ = acquire_ring();
  if (ring_ == nullptr) return;
  event_.name = name;
  event_.cat = cat;
  event_.id = id;
  event_.arg = arg;
  event_.start_ns = trace_now_ns();
}

void TraceSpan::end() {
  event_.dur_ns = trace_now_ns() - event_.start_ns;
  ring_->push(event_);
}

void trace_instant(TraceCat cat, const char* name, std::uint64_t id, std::uint64_t arg) {
  if constexpr (!kEnabled) return;
  TraceRing* ring = acquire_ring();
  if (ring == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.id = id;
  e.arg = arg;
  e.start_ns = trace_now_ns();
  e.instant = true;
  ring->push(e);
}

void trace_thread_name(const std::string& name) {
  if constexpr (!kEnabled) return;
  TraceRing* ring = acquire_ring();
  if (ring == nullptr) return;
  if (ring->name.empty()) ring->name = name;
}

}  // namespace fpopt::telemetry
