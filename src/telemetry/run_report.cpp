#include "telemetry/run_report.h"

#include <algorithm>
#include <sstream>

#include "telemetry/json.h"

namespace fpopt::telemetry {

namespace {

/// Indentation helper: pretty mode gets newline + spaces, compact gets
/// nothing (and no space after ':').
struct Layout {
  bool pretty;
  [[nodiscard]] std::string nl(int depth) const {
    if (!pretty) return "";
    return "\n" + std::string(static_cast<std::size_t>(depth) * 2, ' ');
  }
  [[nodiscard]] const char* colon() const { return pretty ? ": " : ":"; }
};

}  // namespace

std::string RunReport::to_json(bool pretty) const {
  const Layout fmt{pretty};
  std::ostringstream s;
  s << '{' << fmt.nl(1) << "\"fpopt_run_report\"" << fmt.colon() << '{';
  const auto field = [&](const char* key, bool first = false) -> std::ostringstream& {
    if (!first) s << ',';
    s << fmt.nl(2) << '"' << key << '"' << fmt.colon();
    return s;
  };
  field("schema_version", true) << kRunReportSchemaVersion;
  field("tool") << json_quote(tool_);
  field("command") << json_quote(command_);
  field("aborted") << (aborted_ ? "true" : "false");
  field("telemetry") << (kEnabled ? "true" : "false");

  field("config") << '{';
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i != 0) s << ',';
    s << fmt.nl(3) << json_quote(config_[i].first) << fmt.colon()
      << json_quote(config_[i].second);
  }
  s << (config_.empty() ? "" : fmt.nl(2)) << '}';

  field("counters") << '{';
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) s << ',';
    s << fmt.nl(3) << json_quote(counters_[i].first) << fmt.colon() << counters_[i].second;
  }
  s << (counters_.empty() ? "" : fmt.nl(2)) << '}';

  field("gauges") << '{';
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) s << ',';
    s << fmt.nl(3) << json_quote(gauges_[i].first) << fmt.colon()
      << json_number(gauges_[i].second);
  }
  s << (gauges_.empty() ? "" : fmt.nl(2)) << '}';

  field("phases") << '[';
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i != 0) s << ',';
    s << fmt.nl(3) << "{\"name\"" << fmt.colon() << json_quote(phases_[i].name)
      << ",\"count\"" << fmt.colon() << phases_[i].count << ",\"seconds\"" << fmt.colon()
      << json_number(phases_[i].seconds) << '}';
  }
  s << (phases_.empty() ? "" : fmt.nl(2)) << ']';

  field("pool") << "{\"workers\"" << fmt.colon() << '[';
  for (std::size_t i = 0; i < pool_.workers.size(); ++i) {
    const WorkerStats& w = pool_.workers[i];
    if (i != 0) s << ',';
    s << fmt.nl(3) << "{\"tasks_run\"" << fmt.colon() << w.tasks_run << ",\"steals\""
      << fmt.colon() << w.steals << ",\"shared_pops\"" << fmt.colon() << w.shared_pops
      << ",\"idle_seconds\"" << fmt.colon() << json_number(w.idle_seconds) << '}';
  }
  s << (pool_.workers.empty() ? "" : fmt.nl(2)) << "]}";

  field("seconds") << json_number(seconds_);
  s << fmt.nl(1) << '}' << fmt.nl(0) << '}';
  if (pretty) s << '\n';
  return s.str();
}

std::string RunReport::to_table() const {
  std::ostringstream s;
  s << "run report (" << tool_ << ' ' << command_ << ")"
    << (aborted_ ? "  ** ABORTED **" : "") << '\n';
  if (!kEnabled) s << "  [built with FPOPT_TELEMETRY=OFF: timers and pool stats are off]\n";

  std::size_t width = 12;
  for (const auto& [k, _] : counters_) width = std::max(width, k.size());
  for (const auto& [k, _] : gauges_) width = std::max(width, k.size());

  if (!config_.empty()) {
    s << "  config:\n";
    for (const auto& [k, v] : config_) {
      s << "    " << k << std::string(width > k.size() ? width - k.size() : 0, ' ') << "  "
        << v << '\n';
    }
  }
  s << "  counters:\n";
  for (const auto& [k, v] : counters_) {
    s << "    " << k << std::string(width > k.size() ? width - k.size() : 0, ' ') << "  " << v
      << '\n';
  }
  if (!gauges_.empty()) {
    s << "  gauges:\n";
    for (const auto& [k, v] : gauges_) {
      s << "    " << k << std::string(width > k.size() ? width - k.size() : 0, ' ') << "  "
        << json_number(v) << '\n';
    }
  }
  if (!phases_.empty()) {
    s << "  phases:\n";
    for (const PhaseSample& p : phases_) {
      s << "    " << p.name << std::string(width > p.name.size() ? width - p.name.size() : 0, ' ')
        << "  " << json_number(p.seconds) << " s (" << p.count
        << (p.count == 1 ? " scope)" : " scopes)") << '\n';
    }
  }
  if (!pool_.workers.empty()) {
    s << "  pool:\n";
    for (std::size_t i = 0; i < pool_.workers.size(); ++i) {
      const WorkerStats& w = pool_.workers[i];
      s << "    " << (i + 1 == pool_.workers.size() ? "external" : "worker " + std::to_string(i))
        << ": " << w.tasks_run << " tasks, " << w.steals << " steals, " << w.shared_pops
        << " shared pops, idle " << json_number(w.idle_seconds) << " s\n";
    }
  }
  s << "  seconds: " << json_number(seconds_) << '\n';
  return s.str();
}

}  // namespace fpopt::telemetry
