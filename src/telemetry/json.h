// Minimal JSON document model + recursive-descent parser.
//
// Exists so the repo can *validate* its own machine-readable outputs
// (--stats-json reports, the BENCH_*.json run-report blocks) without an
// external JSON dependency. Scope is deliberately small: UTF-8 passthrough
// (no \u escapes beyond ASCII), numbers as double with an exact-integer
// side channel, objects preserving insertion order (so a re-dump of a
// deterministic document is itself deterministic).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace fpopt::telemetry {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  /// True when the token was an integer literal that fits std::int64_t;
  /// `integer` then holds the exact value.
  bool is_integer = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::Bool; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Compact deterministic re-serialization (keys in stored order).
  [[nodiscard]] std::string dump() const;
};

struct JsonParseResult {
  std::optional<JsonValue> value;  ///< empty on error
  std::string error;               ///< human-readable position + reason
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
[[nodiscard]] JsonParseResult parse_json(const std::string& text);

/// Escape a string for embedding in a JSON document (adds the quotes).
[[nodiscard]] std::string json_quote(const std::string& s);

/// Format a double as a JSON-legal number token: shortest round-trip
/// representation, never nan/inf (clamped to 0 with no digits lost in
/// practice — report gauges are always finite).
[[nodiscard]] std::string json_number(double v);

}  // namespace fpopt::telemetry
