// Offline analysis of Chrome trace-event JSON produced by TraceSession
// (src/telemetry/trace.h): structural validation, per-category flame
// aggregation, critical-path extraction over the T' dependency schedule,
// and deterministic-identity diffing of two traces. Shared between
// tools/fpopt_trace and the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace fpopt::telemetry {

/// One trace event lifted out of the JSON document. `dur_us` is 0 for
/// instants; `left`/`right` are -1 when absent.
struct LoadedEvent {
  std::string name;
  std::string cat;
  bool instant = false;
  int tid = 0;
  double ts_us = 0;
  double dur_us = 0;
  std::uint64_t id = 0;
  std::uint64_t arg = 0;
  std::int64_t left = -1;
  std::int64_t right = -1;
};

struct LoadedTrace {
  std::vector<LoadedEvent> events;  ///< "X" and "i" events, metadata excluded
  std::vector<std::pair<std::string, std::string>> other_data;
  std::uint64_t dropped_events = 0;
};

/// Structural validation of a parsed trace document: required top-level
/// shape, per-event required fields and types, ph in {"X","i","M"},
/// non-negative ts/dur. Appends one message per problem; returns true
/// when the document is a valid trace.
bool validate_trace_document(const JsonValue& doc, std::vector<std::string>& errors);

/// Parse + validate + lift. On failure returns false and sets `error`
/// (parse error or the first validation message; all validation messages
/// go to `error` newline-joined).
bool load_trace(const std::string& text, LoadedTrace& out, std::string& error);

/// Aggregated wall time per (cat, name). `total_us` counts the full span
/// extent; `self_us` subtracts directly nested spans on the same thread
/// (flame-graph self time). Instants contribute counts only.
struct FlameRow {
  std::string cat;
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0;
  double self_us = 0;
};

/// Rows sorted by self time descending (ties: total, then cat/name).
std::vector<FlameRow> flame_rows(const LoadedTrace& trace);

/// Critical path over the T' dependency schedule: node-category spans
/// carry their children's node ids, so cp(v) = dur(v) + max(cp(left),
/// cp(right)) and the reported path is the dependency chain that
/// lower-bounds parallel makespan. `makespan_us` is max(end) - min(start)
/// over node spans (the measured schedule length).
struct CriticalPathResult {
  bool ok = false;
  std::string error;               ///< set when !ok (no node spans, duplicate ids, ...)
  double path_us = 0;              ///< critical-path time
  double makespan_us = 0;          ///< measured node-schedule extent
  std::vector<std::uint64_t> chain;  ///< node ids, root first
};

CriticalPathResult critical_path(const LoadedTrace& trace);

/// Deterministic-identity comparison of two traces. Events in
/// deterministic categories (everything except "pool") are compared as a
/// multiset of (cat, name, id, arg) — timestamps, durations and thread
/// ids never participate, mirroring the §9/§10 determinism contract.
/// Pool events and timings are reported as informational deltas only.
struct TraceDiff {
  bool identical = false;           ///< deterministic multisets equal
  std::vector<std::string> differences;  ///< one line per identity mismatch
  std::vector<std::string> notes;        ///< informational (timing, pool traffic)
};

TraceDiff diff_traces(const LoadedTrace& a, const LoadedTrace& b);

}  // namespace fpopt::telemetry
