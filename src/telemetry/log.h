// Structured JSONL logging for the long-lived daemon: one JSON object
// per line, leveled, with deterministic field order (fields render in
// the order the call site adds them, after the fixed ts/level/event
// prefix). A LogSink serializes whole lines under one mutex so
// concurrent emitters never interleave bytes.
//
// Under FPOPT_TELEMETRY=OFF, `LogSink::enabled()` is constant false and
// LogEvent never formats anything — logging compiles to no-ops just
// like the rest of the telemetry layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "telemetry/telemetry.h"

namespace fpopt::telemetry {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug"/"info"/"warn"/"error" -> level; returns false on unknown name.
bool parse_log_level(const std::string& name, LogLevel& out);
/// Level -> fixed lowercase name ("off" for kOff).
const char* log_level_name(LogLevel level);

/// Thread-safe sink writing one line per event to an ostream the caller
/// owns (stderr or a --log-file stream). `stamp_time=false` drops the
/// wall-clock `ts_ms` field for byte-deterministic test output.
class LogSink {
 public:
  explicit LogSink(std::ostream& out, LogLevel min_level = LogLevel::kInfo,
                   bool stamp_time = true)
      : out_(&out), min_level_(min_level), stamp_time_(stamp_time) {}

  [[nodiscard]] bool enabled(LogLevel level) const {
    return kEnabled && level >= min_level_ && level < LogLevel::kOff;
  }
  [[nodiscard]] bool stamp_time() const { return stamp_time_; }

  /// Append one already-formatted line (no trailing newline) and flush.
  void write_line(const std::string& line);

  /// Lines written so far (0 when telemetry is compiled out).
  [[nodiscard]] std::uint64_t lines() const {
    // relaxed: monitoring read of a commutative counter.
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  std::ostream* out_;
  LogLevel min_level_;
  bool stamp_time_;
  std::mutex mu_;
  std::atomic<std::uint64_t> lines_{0};
};

/// Builder for one log line. Fields render in call order after the
/// fixed prefix {"ts_ms":...,"level":...,"event":...}. The line is
/// written on destruction (or emit()); when the sink is null or the
/// level is below threshold the builder does no formatting at all.
class LogEvent {
 public:
  LogEvent(LogSink* sink, LogLevel level, const char* event);
  ~LogEvent() { emit(); }
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& str(const char* key, const std::string& value);
  LogEvent& num(const char* key, std::uint64_t value);
  LogEvent& num_signed(const char* key, std::int64_t value);
  LogEvent& dbl(const char* key, double value);
  LogEvent& flag(const char* key, bool value);

  /// Write the line now (idempotent).
  void emit();

 private:
  [[nodiscard]] bool live() const { return sink_ != nullptr; }
  LogSink* sink_;  ///< null when suppressed: all appends are no-ops
  std::string line_;
};

}  // namespace fpopt::telemetry
