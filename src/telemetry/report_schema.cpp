#include "telemetry/report_schema.h"

#include "telemetry/run_report.h"

namespace fpopt::telemetry {

namespace {

class Checker {
 public:
  std::vector<std::string> errors;

  void require(bool ok, const std::string& what) {
    if (!ok) errors.push_back(what);
  }

  /// Fetch a required member; records an error and returns nullptr when
  /// absent.
  const JsonValue* member(const JsonValue& obj, const char* key) {
    const JsonValue* v = obj.find(key);
    require(v != nullptr, std::string("missing required key \"") + key + '"');
    return v;
  }

  void check_uint(const JsonValue* v, const std::string& what) {
    if (v == nullptr) return;
    require(v->is_number() && v->is_integer && v->integer >= 0,
            what + " must be a non-negative integer");
  }

  void check_number(const JsonValue* v, const std::string& what) {
    if (v == nullptr) return;
    require(v->is_number(), what + " must be a number");
  }

  void check_report(const JsonValue& report) {
    if (!report.is_object()) {
      errors.push_back("fpopt_run_report must be an object");
      return;
    }
    if (const JsonValue* v = member(report, "schema_version")) {
      require(v->is_number() && v->is_integer && v->integer == kRunReportSchemaVersion,
              "schema_version must be " + std::to_string(kRunReportSchemaVersion));
    }
    if (const JsonValue* v = member(report, "tool")) {
      require(v->is_string() && !v->string.empty(), "tool must be a non-empty string");
    }
    if (const JsonValue* v = member(report, "command")) {
      require(v->is_string() && !v->string.empty(), "command must be a non-empty string");
    }
    if (const JsonValue* v = member(report, "aborted")) {
      require(v->is_bool(), "aborted must be a bool");
    }
    if (const JsonValue* v = member(report, "telemetry")) {
      require(v->is_bool(), "telemetry must be a bool");
    }
    if (const JsonValue* v = member(report, "config")) {
      require(v->is_object(), "config must be an object");
      if (v->is_object()) {
        for (const auto& [k, val] : v->object) {
          require(val.is_string(), "config." + k + " must be a string");
        }
      }
    }
    if (const JsonValue* v = member(report, "counters")) {
      require(v->is_object(), "counters must be an object");
      if (v->is_object()) {
        for (const auto& [k, val] : v->object) {
          check_uint(&val, "counters." + k);
          require(k.find('.') != std::string::npos,
                  "counter \"" + k + "\" must use the <subsystem>.<name> naming scheme");
        }
      }
    }
    if (const JsonValue* v = member(report, "gauges")) {
      require(v->is_object(), "gauges must be an object");
      if (v->is_object()) {
        for (const auto& [k, val] : v->object) check_number(&val, "gauges." + k);
      }
    }
    if (const JsonValue* v = member(report, "phases")) {
      require(v->is_array(), "phases must be an array");
      if (v->is_array()) {
        for (const JsonValue& p : v->array) {
          if (!p.is_object()) {
            errors.push_back("phases entries must be objects");
            continue;
          }
          if (const JsonValue* n = member(p, "name")) {
            require(n->is_string(), "phase name must be a string");
          }
          check_uint(member(p, "count"), "phase count");
          check_number(member(p, "seconds"), "phase seconds");
        }
      }
    }
    if (const JsonValue* v = member(report, "pool")) {
      require(v->is_object(), "pool must be an object");
      const JsonValue* workers = v->is_object() ? member(*v, "workers") : nullptr;
      if (workers != nullptr) {
        require(workers->is_array(), "pool.workers must be an array");
        if (workers->is_array()) {
          for (const JsonValue& w : workers->array) {
            if (!w.is_object()) {
              errors.push_back("pool.workers entries must be objects");
              continue;
            }
            check_uint(member(w, "tasks_run"), "worker tasks_run");
            check_uint(member(w, "steals"), "worker steals");
            check_uint(member(w, "shared_pops"), "worker shared_pops");
            check_number(member(w, "idle_seconds"), "worker idle_seconds");
          }
        }
      }
    }
    check_number(member(report, "seconds"), "seconds");
  }
};

void find_reports(const JsonValue& node, std::vector<const JsonValue*>& out) {
  if (node.is_object()) {
    if (const JsonValue* r = node.find("fpopt_run_report")) out.push_back(r);
    for (const auto& [_, v] : node.object) find_reports(v, out);
  } else if (node.is_array()) {
    for (const JsonValue& v : node.array) find_reports(v, out);
  }
}

}  // namespace

std::vector<std::string> validate_run_report(const JsonValue& report) {
  Checker c;
  const JsonValue* inner = report.find("fpopt_run_report");
  if (inner == nullptr) {
    // Allow being handed the inner object directly.
    c.check_report(report);
  } else {
    c.check_report(*inner);
  }
  return c.errors;
}

std::vector<std::string> validate_embedded_run_reports(const JsonValue& doc) {
  std::vector<const JsonValue*> reports;
  find_reports(doc, reports);
  if (reports.empty()) return {"no fpopt_run_report block found in the document"};
  std::vector<std::string> errors;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    Checker c;
    c.check_report(*reports[i]);
    for (std::string& e : c.errors) {
      errors.push_back("report #" + std::to_string(i) + ": " + std::move(e));
    }
  }
  return errors;
}

}  // namespace fpopt::telemetry
