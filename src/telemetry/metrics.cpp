#include "telemetry/metrics.h"

#include <cassert>
#include <sstream>
#include <utility>

#include "telemetry/json.h"

namespace fpopt::telemetry {
namespace {

/// Bucket upper bound in seconds, rendered once so JSON and Prometheus
/// agree byte-for-byte on the `le` values.
std::string le_seconds(std::size_t i) {
  return json_number(static_cast<double>(Histogram::upper_ns(i)) * 1e-9);
}

std::string u64_str(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) {
    // relaxed: monitoring read; see observe_ns.
    n += b.load(std::memory_order_relaxed);
  }
  return n;
}

double Histogram::sum_seconds() const {
  // relaxed: monitoring read; see observe_ns.
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets + 1, 0);
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    // relaxed: monitoring read; see observe_ns.
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family_slot(const std::string& name,
                                                      const std::string& help, Kind kind) {
  for (auto& fam : families_) {
    if (fam->name == name) {
      assert(fam->kind == kind && "metric family re-registered with a different type");
      return *fam;
    }
  }
  families_.push_back(std::make_unique<Family>());
  Family& fam = *families_.back();
  fam.name = name;
  fam.help = help;
  fam.kind = kind;
  return fam;
}

MetricsRegistry::Series& MetricsRegistry::series_slot(Family& fam, const std::string& label_key,
                                                      const std::string& label_value) {
  for (Series& s : fam.series) {
    if (s.label_key == label_key && s.label_value == label_value) return s;
  }
  fam.series.emplace_back();
  Series& s = fam.series.back();
  s.label_key = label_key;
  s.label_value = label_value;
  return s;
}

Counter& MetricsRegistry::counter(const std::string& family, const std::string& help,
                                  const std::string& label_key, const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(family_slot(family, help, Kind::kCounter), label_key, label_value);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& family, const std::string& help,
                              const std::string& label_key, const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(family_slot(family, help, Kind::kGauge), label_key, label_value);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& family, const std::string& help,
                                      const std::string& label_key,
                                      const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(family_slot(family, help, Kind::kHistogram), label_key, label_value);
  if (!s.histogram) s.histogram = std::make_unique<Histogram>();
  return *s.histogram;
}

void MetricsRegistry::counter_fn(const std::string& family, const std::string& help,
                                 std::function<std::uint64_t()> fn, const std::string& label_key,
                                 const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(family_slot(family, help, Kind::kCounterFn), label_key, label_value);
  s.counter_fn = std::move(fn);
}

void MetricsRegistry::gauge_fn(const std::string& family, const std::string& help,
                               std::function<double()> fn, const std::string& label_key,
                               const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_slot(family_slot(family, help, Kind::kGaugeFn), label_key, label_value);
  s.gauge_fn = std::move(fn);
}

namespace {

/// Callback metrics read state owned by other subsystems; when telemetry
/// is compiled out the whole layer must be inert, so render zeros.
std::uint64_t eval_counter_fn(const std::function<std::uint64_t()>& fn) {
  if constexpr (!kEnabled) return 0;
  return fn ? fn() : 0;
}
double eval_gauge_fn(const std::function<double()>& fn) {
  if constexpr (!kEnabled) return 0;
  return fn ? fn() : 0;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;

  auto open_family = [](std::ostringstream& os, bool& first, const Family& fam) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(fam.name) << ",\"help\":" << json_quote(fam.help)
       << ",\"series\":[";
  };
  auto labels_json = [](const Series& s) {
    if (s.label_key.empty()) return std::string("{}");
    return "{" + json_quote(s.label_key) + ":" + json_quote(s.label_value) + "}";
  };

  for (const auto& fam_ptr : families_) {
    const Family& fam = *fam_ptr;
    switch (fam.kind) {
      case Kind::kCounter:
      case Kind::kCounterFn: {
        open_family(counters, first_counter, fam);
        for (std::size_t i = 0; i < fam.series.size(); ++i) {
          const Series& s = fam.series[i];
          const std::uint64_t v =
              fam.kind == Kind::kCounter ? s.counter->get() : eval_counter_fn(s.counter_fn);
          if (i != 0) counters << ",";
          counters << "{\"labels\":" << labels_json(s) << ",\"value\":" << u64_str(v) << "}";
        }
        counters << "]}";
        break;
      }
      case Kind::kGauge:
      case Kind::kGaugeFn: {
        open_family(gauges, first_gauge, fam);
        for (std::size_t i = 0; i < fam.series.size(); ++i) {
          const Series& s = fam.series[i];
          const double v = fam.kind == Kind::kGauge ? s.gauge->get() : eval_gauge_fn(s.gauge_fn);
          if (i != 0) gauges << ",";
          gauges << "{\"labels\":" << labels_json(s) << ",\"value\":" << json_number(v) << "}";
        }
        gauges << "]}";
        break;
      }
      case Kind::kHistogram: {
        open_family(histograms, first_histogram, fam);
        for (std::size_t i = 0; i < fam.series.size(); ++i) {
          const Series& s = fam.series[i];
          const std::vector<std::uint64_t> buckets = s.histogram->bucket_counts();
          if (i != 0) histograms << ",";
          histograms << "{\"labels\":" << labels_json(s) << ",\"buckets\":[";
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < buckets.size(); ++b) {
            cumulative += buckets[b];
            if (b != 0) histograms << ",";
            histograms << "{\"le\":";
            if (b == Histogram::kBuckets) {
              histograms << "\"+Inf\"";
            } else {
              histograms << le_seconds(b);
            }
            histograms << ",\"count\":" << u64_str(cumulative) << "}";
          }
          histograms << "],\"count\":" << u64_str(cumulative)
                     << ",\"sum_seconds\":" << json_number(s.histogram->sum_seconds()) << "}";
        }
        histograms << "]}";
        break;
      }
    }
  }

  std::ostringstream out;
  out << "{\"fpopt_metrics\":{\"schema_version\":1,\"telemetry\":" << (kEnabled ? "true" : "false")
      << ",\"counters\":[" << counters.str() << "],\"gauges\":[" << gauges.str()
      << "],\"histograms\":[" << histograms.str() << "]}}\n";
  return out.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  auto label_block = [](const Series& s) {
    if (s.label_key.empty()) return std::string();
    return "{" + s.label_key + "=" + json_quote(s.label_value) + "}";
  };
  for (const auto& fam_ptr : families_) {
    const Family& fam = *fam_ptr;
    const bool is_counter = fam.kind == Kind::kCounter || fam.kind == Kind::kCounterFn;
    const bool is_histogram = fam.kind == Kind::kHistogram;
    out << "# HELP " << fam.name << " " << fam.help << "\n";
    out << "# TYPE " << fam.name << " "
        << (is_histogram ? "histogram" : (is_counter ? "counter" : "gauge")) << "\n";
    for (const Series& s : fam.series) {
      if (is_histogram) {
        const std::vector<std::uint64_t> buckets = s.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < buckets.size(); ++b) {
          cumulative += buckets[b];
          out << fam.name << "_bucket{";
          if (!s.label_key.empty()) out << s.label_key << "=" << json_quote(s.label_value) << ",";
          out << "le=";
          if (b == Histogram::kBuckets) {
            out << "\"+Inf\"";
          } else {
            out << "\"" << le_seconds(b) << "\"";
          }
          out << "} " << u64_str(cumulative) << "\n";
        }
        out << fam.name << "_sum" << label_block(s) << " " << json_number(s.histogram->sum_seconds())
            << "\n";
        out << fam.name << "_count" << label_block(s) << " " << u64_str(cumulative) << "\n";
      } else if (is_counter) {
        const std::uint64_t v =
            fam.kind == Kind::kCounter ? s.counter->get() : eval_counter_fn(s.counter_fn);
        out << fam.name << label_block(s) << " " << u64_str(v) << "\n";
      } else {
        const double v = fam.kind == Kind::kGauge ? s.gauge->get() : eval_gauge_fn(s.gauge_fn);
        out << fam.name << label_block(s) << " " << json_number(v) << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace fpopt::telemetry
