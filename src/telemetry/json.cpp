#include "telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fpopt::telemetry {

namespace {

/// Appends `code` (a Unicode scalar value) to `out` as UTF-8.
void append_utf8(std::string& out, unsigned code) {
  if (code <= 0x7F) {
    out += static_cast<char>(code);
  } else if (code <= 0x7FF) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else if (code <= 0xFFFF) {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code >> 18));
    out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult out;
    JsonValue v;
    if (!parse_value(v)) {
      out.error = error_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      out.error = at() + "trailing characters after the document";
      return out;
    }
    out.value = std::move(v);
    return out;
  }

 private:
  [[nodiscard]] std::string at() const {
    return "json offset " + std::to_string(pos_) + ": ";
  }

  bool fail(const std::string& why) {
    if (error_.empty()) error_ = at() + why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > 64) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.kind = JsonValue::Kind::String;
        ok = parse_string(out.string);
        break;
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        ok = literal("true", 4);
        break;
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        ok = literal("false", 5);
        break;
      case 'n':
        out.kind = JsonValue::Kind::Null;
        ok = literal("null", 4);
        break;
      default: ok = parse_number(out); break;
    }
    --depth_;
    return ok;
  }

  bool parse_hex4(unsigned& code) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            if (!parse_hex4(code)) return false;
            // Surrogate pairs: a high surrogate must be followed by a
            // \uXXXX low surrogate; the pair decodes to one supplementary
            // code point. Lone surrogates are malformed.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
                return fail("high surrogate without a low surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              if (!parse_hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return fail("high surrogate without a low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return fail("lone low surrogate");
            }
            append_utf8(out, code);
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool any_digit = false;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        any_digit = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!any_digit) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    out.kind = JsonValue::Kind::Number;
    out.number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      const auto res =
          std::from_chars(token.data(), token.data() + token.size(), out.integer);
      out.is_integer =
          res.ec == std::errc() && res.ptr == token.data() + token.size();
    }
    return true;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::dump() const {
  switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return boolean ? "true" : "false";
    case Kind::Number:
      if (is_integer) return std::to_string(integer);
      return json_number(number);
    case Kind::String: return json_quote(string);
    case Kind::Array: {
      std::string s = "[";
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) s += ',';
        s += array[i].dump();
      }
      return s + "]";
    }
    case Kind::Object: {
      std::string s = "{";
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i != 0) s += ',';
        s += json_quote(object[i].first);
        s += ':';
        s += object[i].second.dump();
      }
      return s + "}";
    }
  }
  return "null";
}

JsonParseResult parse_json(const std::string& text) { return Parser(text).run(); }

namespace {

void append_u_escape(std::string& out, unsigned code) {
  char buf[8];
  if (code > 0xFFFF) {
    // Supplementary plane: JSON \u escapes are UTF-16, so emit the
    // surrogate pair.
    code -= 0x10000;
    std::snprintf(buf, sizeof buf, "\\u%04x", 0xD800 + (code >> 10));
    out += buf;
    std::snprintf(buf, sizeof buf, "\\u%04x", 0xDC00 + (code & 0x3FF));
    out += buf;
    return;
  }
  std::snprintf(buf, sizeof buf, "\\u%04x", code);
  out += buf;
}

/// Decodes one UTF-8 sequence at s[i]; advances i past it and returns the
/// code point, or returns 0xFFFD (advancing one byte) on malformed input.
unsigned decode_utf8(const std::string& s, std::size_t& i) {
  const auto byte = [&](std::size_t j) { return static_cast<unsigned char>(s[j]); };
  const unsigned lead = byte(i);
  std::size_t len = 0;
  unsigned code = 0;
  if (lead < 0xC0) {
    ++i;  // stray continuation byte (ASCII is handled by the caller)
    return 0xFFFD;
  }
  if (lead < 0xE0) { len = 2; code = lead & 0x1F; }
  else if (lead < 0xF0) { len = 3; code = lead & 0x0F; }
  else if (lead < 0xF8) { len = 4; code = lead & 0x07; }
  else { ++i; return 0xFFFD; }
  if (i + len > s.size()) { ++i; return 0xFFFD; }
  for (std::size_t j = 1; j < len; ++j) {
    if ((byte(i + j) & 0xC0) != 0x80) { ++i; return 0xFFFD; }
    code = (code << 6) | (byte(i + j) & 0x3F);
  }
  // Reject overlong encodings, surrogates and out-of-range values.
  static constexpr unsigned kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (code < kMin[len] || code > 0x10FFFF || (code >= 0xD800 && code <= 0xDFFF)) {
    ++i;
    return 0xFFFD;
  }
  i += len;
  return code;
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      append_u_escape(out, u);
      ++i;
    } else if (u < 0x80) {
      out += c;
      ++i;
    } else {
      // Non-ASCII: escape as \uXXXX so the emitted document is pure
      // ASCII regardless of the consumer's encoding handling.
      append_u_escape(out, decode_utf8(s, i));
    }
  }
  return out + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  // %.17g round-trips every finite double; trim to the shortest form that
  // still round-trips so the output stays readable and deterministic.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace fpopt::telemetry
