// Low-overhead, thread-safe run instrumentation: monotonic counters,
// gauges, and nestable scoped phase timers.
//
// Everything here is *measurement*, never control flow: the optimizer's
// algorithmic counters (OptimizerStats) stay plain struct fields that ride
// the deterministic per-node profile plumbing, while this layer adds the
// pieces that need concurrency-safety or wall-clock access — thread-pool
// counters, per-phase timings — plus the RunReport document they all end
// up in (run_report.h).
//
// Determinism contract (docs/ALGORITHMS.md §9):
//  * Counter is a relaxed std::atomic<u64>: increments commute, so sums
//    are order-independent — a parallel run's counter totals equal the
//    serial run's regardless of schedule ("aggregated-deterministic").
//  * Timings (PhaseProfile, idle times) are wall-clock measurements and
//    are *excluded* from every byte-identical comparison; RunReport keeps
//    them in separate sections from the counters for exactly that reason.
//
// Compile-time switch: configuring with -DFPOPT_TELEMETRY=OFF defines
// FPOPT_TELEMETRY_DISABLED, which turns every mutation and every timer
// scope in this header into a no-op (kEnabled == false). Instrumentation
// statements still *compile* in both modes — the disabled bodies are real
// (empty) functions, not macros that swallow their arguments — so a
// telemetry-off build cannot silently rot.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fpopt::telemetry {

#if defined(FPOPT_TELEMETRY_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic named-by-its-owner counter. Relaxed atomic: increments from
/// any thread, order-independent totals, no synchronization edges.
class Counter {
 public:
  void add(std::uint64_t n) {
    // relaxed: commutative increment, no reader orders against it.
    if constexpr (kEnabled) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  [[nodiscard]] std::uint64_t get() const {
    // relaxed: totals are read after the run quiesces (pool joined).
    if constexpr (kEnabled) return value_.load(std::memory_order_relaxed);
    return 0;
  }
  void reset() {
    // relaxed: reset only happens between runs, never concurrently.
    if constexpr (kEnabled) value_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. bytes currently cached).
/// Also supports a monotonic max-fold for peak tracking.
class Gauge {
 public:
  void set(double v) {
    // relaxed: last-write-wins measurement, no cross-thread ordering.
    if constexpr (kEnabled) value_.store(v, std::memory_order_relaxed);
  }
  void fold_max(double v) {
    if constexpr (kEnabled) {
      // relaxed CAS loop: max-fold is commutative and publishes no other
      // data; the final value is read only after the run quiesces.
      double cur = value_.load(std::memory_order_relaxed);
      while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
      }
    }
  }
  [[nodiscard]] double get() const {
    // relaxed: read after the run quiesces (pool joined).
    if constexpr (kEnabled) return value_.load(std::memory_order_relaxed);
    return 0;
  }

 private:
  std::atomic<double> value_{0};
};

/// One named phase's accumulated timing.
struct PhaseSample {
  std::string name;
  std::uint64_t count = 0;  ///< scopes entered
  double seconds = 0;       ///< total wall time inside the phase
};

/// Accumulates scoped wall-time per named phase. Scopes nest freely (a
/// nested scope's time counts toward both phases) and may run on any
/// thread; entries keep first-use order, so the emitted phase list is
/// deterministic for a deterministic call sequence. The per-scope cost is
/// two steady_clock reads plus one small mutex acquisition — phases are
/// coarse (a handful per run), never per-node.
class PhaseProfile {
 public:
  class Scope {
   public:
    Scope(PhaseProfile* profile, const char* name) : profile_(profile), name_(name) {
      if constexpr (kEnabled) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if constexpr (kEnabled) {
        if (profile_ != nullptr) {
          profile_->record(name_, std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - start_)
                                      .count());
        }
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfile* profile_;
    const char* name_;
    std::chrono::steady_clock::time_point start_;
  };

  /// RAII scope; `name` must outlive the scope (string literals do).
  [[nodiscard]] Scope scope(const char* name) { return Scope(this, name); }

  void record(const char* name, double seconds);

  /// Snapshot in first-use order (empty when telemetry is disabled).
  [[nodiscard]] std::vector<PhaseSample> samples() const;

 private:
  mutable std::mutex mu_;
  std::vector<PhaseSample> entries_;
};

/// One pool worker's lifetime counters. The last entry of
/// PoolStats::workers is a synthetic slot for non-worker threads that
/// execute pool tasks (TaskGroup::wait helping from the coordinator).
struct WorkerStats {
  std::uint64_t tasks_run = 0;    ///< tasks executed by this thread
  std::uint64_t steals = 0;       ///< tasks taken from another worker's deque
  std::uint64_t shared_pops = 0;  ///< tasks taken from the injection queue
  double idle_seconds = 0;        ///< wall time asleep waiting for work
};

struct PoolStats {
  std::vector<WorkerStats> workers;

  [[nodiscard]] std::uint64_t total_tasks() const {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) n += w.tasks_run;
    return n;
  }
  [[nodiscard]] std::uint64_t total_steals() const {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) n += w.steals;
    return n;
  }
  [[nodiscard]] double total_idle_seconds() const {
    double s = 0;
    for (const WorkerStats& w : workers) s += w.idle_seconds;
    return s;
  }
};

}  // namespace fpopt::telemetry
