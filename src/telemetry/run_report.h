// The per-run telemetry document: everything a run wants to report,
// rendered as deterministic JSON (--stats-json, BENCH_*.json blocks) or a
// human-readable table (--stats).
//
// Section layout and the determinism contract (docs/ALGORITHMS.md §9):
//  * config  — string key/values describing the run's knobs.
//  * counters — named u64 monotonic counters, dotted naming scheme
//    "<subsystem>.<counter>" (optimizer.total_generated, cache.hits,
//    anneal.moves, pool.tasks_run). For a serial run these are
//    byte-identical across repeat runs; for a parallel run every
//    non-pool counter equals the serial value (order-independent sums).
//  * gauges  — named doubles *derived from counters or exact run state*
//    (prune ratio, hit rate, selection error sums): same determinism as
//    the counters they derive from.
//  * phases  — scoped wall-time per phase; timing, never compared.
//  * pool    — per-worker thread-pool stats; scheduling-dependent by
//    nature, never compared.
//  * seconds — total wall time of the run.
//
// JSON schema (schema_version 1) — validated by report_schema.h:
//   {"fpopt_run_report": {
//      "schema_version": 1, "tool": str, "command": str,
//      "aborted": bool, "telemetry": bool,
//      "config": {str: str, ...},
//      "counters": {str: uint, ...},
//      "gauges": {str: number, ...},
//      "phases": [{"name": str, "count": uint, "seconds": number}, ...],
//      "pool": {"workers": [{"tasks_run": uint, "steals": uint,
//                            "shared_pops": uint, "idle_seconds": number}]},
//      "seconds": number}}
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace fpopt::telemetry {

inline constexpr int kRunReportSchemaVersion = 1;

class RunReport {
 public:
  RunReport(std::string tool, std::string command)
      : tool_(std::move(tool)), command_(std::move(command)) {}

  void set_aborted(bool aborted) { aborted_ = aborted; }
  void set_seconds(double seconds) { seconds_ = seconds; }
  void add_config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
  }
  void add_counter(std::string name, std::uint64_t value) {
    counters_.emplace_back(std::move(name), value);
  }
  void add_gauge(std::string name, double value) {
    gauges_.emplace_back(std::move(name), value);
  }
  void add_phase(PhaseSample sample) { phases_.push_back(std::move(sample)); }
  void add_phases(const std::vector<PhaseSample>& samples) {
    for (const PhaseSample& s : samples) phases_.push_back(s);
  }
  void set_pool(PoolStats pool) { pool_ = std::move(pool); }

  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] const std::string& tool() const { return tool_; }
  [[nodiscard]] const std::string& command() const { return command_; }
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>& counters() const {
    return counters_;
  }

  /// The full document. `pretty` indents for files meant to be read;
  /// compact single-line form embeds inside other JSON (BENCH_*.json).
  [[nodiscard]] std::string to_json(bool pretty = true) const;

  /// Human-readable table for --stats.
  [[nodiscard]] std::string to_table() const;

 private:
  std::string tool_;
  std::string command_;
  bool aborted_ = false;
  double seconds_ = 0;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<PhaseSample> phases_;
  PoolStats pool_;
};

}  // namespace fpopt::telemetry
