#include "telemetry/log.h"

#include <chrono>
#include <ostream>

#include "telemetry/json.h"

namespace fpopt::telemetry {

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "debug") {
    out = LogLevel::kDebug;
  } else if (name == "info") {
    out = LogLevel::kInfo;
  } else if (name == "warn") {
    out = LogLevel::kWarn;
  } else if (name == "error") {
    out = LogLevel::kError;
  } else if (name == "off") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

void LogSink::write_line(const std::string& line) {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
  out_->flush();
  // relaxed: commutative counter, read only for monitoring.
  lines_.fetch_add(1, std::memory_order_relaxed);
}

LogEvent::LogEvent(LogSink* sink, LogLevel level, const char* event)
    : sink_(sink != nullptr && sink->enabled(level) ? sink : nullptr) {
  if (!live()) return;
  line_ = "{";
  if (sink_->stamp_time()) {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
    line_ += "\"ts_ms\":" + std::to_string(ms) + ",";
  }
  line_ += "\"level\":" + json_quote(log_level_name(level)) + ",\"event\":" + json_quote(event);
}

LogEvent& LogEvent::str(const char* key, const std::string& value) {
  if (live()) line_ += "," + json_quote(key) + ":" + json_quote(value);
  return *this;
}

LogEvent& LogEvent::num(const char* key, std::uint64_t value) {
  if (live()) line_ += "," + json_quote(key) + ":" + std::to_string(value);
  return *this;
}

LogEvent& LogEvent::num_signed(const char* key, std::int64_t value) {
  if (live()) line_ += "," + json_quote(key) + ":" + std::to_string(value);
  return *this;
}

LogEvent& LogEvent::dbl(const char* key, double value) {
  if (live()) line_ += "," + json_quote(key) + ":" + json_number(value);
  return *this;
}

LogEvent& LogEvent::flag(const char* key, bool value) {
  if (live()) line_ += "," + json_quote(key) + ":" + (value ? std::string("true") : std::string("false"));
  return *this;
}

void LogEvent::emit() {
  if (!live()) return;
  line_ += "}";
  sink_->write_line(line_);
  sink_ = nullptr;
}

}  // namespace fpopt::telemetry
