// Structural schema validation for metrics snapshots (metrics.h,
// schema_version 1) in both exposition formats: the JSON snapshot the
// `metrics` admin verb returns and the Prometheus text format served on
// --metrics-port. Used by tests and by `fpopt_report_check --metrics`
// (the "fpopt_metrics_check" CI gate).
#pragma once

#include <string>
#include <vector>

#include "telemetry/json.h"

namespace fpopt::telemetry {

/// Validate one metrics wrapper object (the {"fpopt_metrics": ...}
/// value). Returns human-readable violations; empty = valid.
[[nodiscard]] std::vector<std::string> validate_metrics_snapshot(const JsonValue& snapshot);

/// Recursively find every metrics block embedded anywhere in `doc`
/// (objects holding an "fpopt_metrics" key) and validate each. Reports a
/// violation when no block exists at all.
[[nodiscard]] std::vector<std::string> validate_embedded_metrics(const JsonValue& doc);

/// Validate Prometheus text exposition: HELP/TYPE lines, sample-line
/// syntax, TYPE-before-samples per family, cumulative histogram buckets
/// ending at le="+Inf" with a matching _count.
[[nodiscard]] std::vector<std::string> validate_prometheus_text(const std::string& text);

}  // namespace fpopt::telemetry
