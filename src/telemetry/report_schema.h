// Structural schema validation for run-report JSON (run_report.h,
// schema_version 1). Used by the tests, and by tools/fpopt_report_check
// (the CI gate over --stats-json outputs and the run-report blocks that
// the benches embed in BENCH_*.json).
#pragma once

#include <string>
#include <vector>

#include "telemetry/json.h"

namespace fpopt::telemetry {

/// Validate one run-report wrapper object (the {"fpopt_run_report": ...}
/// value). Returns human-readable violations; empty = valid.
[[nodiscard]] std::vector<std::string> validate_run_report(const JsonValue& report);

/// Recursively find every run-report block embedded anywhere in `doc`
/// (objects holding an "fpopt_run_report" key) and validate each.
/// Reports a violation when no block exists at all.
[[nodiscard]] std::vector<std::string> validate_embedded_run_reports(const JsonValue& doc);

}  // namespace fpopt::telemetry
