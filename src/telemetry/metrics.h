// Lock-cheap service metrics: monotonic counters, gauges, and
// log2-bucketed latency histograms with exact counts, collected in a
// MetricsRegistry that renders deterministic JSON snapshots and
// Prometheus text exposition.
//
// Design contract (docs/OBSERVABILITY.md):
//  * The hot path touches only relaxed atomics — registration happens
//    once at startup under a mutex and hands back stable pointers, so
//    publishing a sample is a handful of fetch_adds with no lock.
//  * Families and series render in registration order, so two snapshots
//    with equal values are byte-identical (scrape output is diffable).
//  * Histogram buckets are Prometheus-style cumulative with inclusive
//    upper bounds: b0 covers (..1us], b_i covers (..1us*2^i], plus a
//    final +Inf overflow bucket. `count` is derived from the buckets at
//    render time so a snapshot is always self-consistent.
//  * Under FPOPT_TELEMETRY=OFF every mutation is a real empty function
//    and callback metrics are not evaluated: snapshots keep their full
//    shape with all-zero values (validators still pass).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace fpopt::telemetry {

/// Wall-clock stopwatch for latency measurement. Lives in the telemetry
/// layer so instrumented code outside src/telemetry/ never touches a
/// clock primitive directly (fpopt_lint wall-clock rule); compiles to a
/// no-op returning 0 under FPOPT_TELEMETRY=OFF.
class StopWatch {
 public:
  StopWatch() {
    if constexpr (kEnabled) start_ = std::chrono::steady_clock::now();
  }
  [[nodiscard]] double seconds() const {
    if constexpr (kEnabled) {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    }
    return 0;
  }

 private:
  std::chrono::steady_clock::time_point start_{};
};

/// Log2-bucketed latency histogram. Thread-safe, relaxed-atomic buckets;
/// exact total count (sum of buckets) and an exact nanosecond sum.
class Histogram {
 public:
  /// Finite bucket upper bounds are 1us * 2^i for i in [0, kBuckets);
  /// the last finite bound is ~134 seconds. Index kBuckets is +Inf.
  static constexpr std::size_t kBuckets = 28;

  /// Upper bound of finite bucket `i` in nanoseconds (inclusive).
  [[nodiscard]] static constexpr std::uint64_t upper_ns(std::size_t i) {
    return std::uint64_t{1000} << i;
  }

  void observe_ns(std::uint64_t ns) {
    if constexpr (kEnabled) {
      std::size_t i = 0;
      while (i < kBuckets && ns > upper_ns(i)) ++i;
      // relaxed: commutative increments; snapshots are taken either after
      // quiescence (tests) or as monitoring reads that tolerate a sample
      // landing between the bucket and sum loads.
      buckets_[i].fetch_add(1, std::memory_order_relaxed);
      sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    }
  }
  void observe_seconds(double seconds) {
    if constexpr (kEnabled) {
      if (seconds < 0) seconds = 0;
      observe_ns(static_cast<std::uint64_t>(seconds * 1e9));
    }
  }

  /// Total observations (sum of all buckets, including overflow).
  [[nodiscard]] std::uint64_t count() const;
  /// Total observed time in seconds.
  [[nodiscard]] double sum_seconds() const;
  /// Non-cumulative per-bucket counts, kBuckets + 1 entries (last = +Inf).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Registry of metric families. Register every series once at startup
/// (mutex-protected, returns stable pointers), then publish lock-free.
/// Callback-backed series (counter_fn/gauge_fn) read a value owned
/// elsewhere (e.g. DispatchGate queue depth) at render time.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or fetch) a counter series. `label_key`/`label_value`
  /// distinguish series within one family ("" = unlabeled singleton).
  Counter& counter(const std::string& family, const std::string& help,
                   const std::string& label_key = "", const std::string& label_value = "");
  Gauge& gauge(const std::string& family, const std::string& help,
               const std::string& label_key = "", const std::string& label_value = "");
  Histogram& histogram(const std::string& family, const std::string& help,
                       const std::string& label_key = "", const std::string& label_value = "");
  /// Counter whose value lives elsewhere; `fn` is called at render time.
  void counter_fn(const std::string& family, const std::string& help,
                  std::function<std::uint64_t()> fn, const std::string& label_key = "",
                  const std::string& label_value = "");
  void gauge_fn(const std::string& family, const std::string& help,
                std::function<double()> fn, const std::string& label_key = "",
                const std::string& label_value = "");

  /// Compact one-line JSON snapshot: {"fpopt_metrics":{...}}\n.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition (HELP/TYPE per family, then samples).
  [[nodiscard]] std::string to_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCounterFn, kGaugeFn };

  struct Series {
    std::string label_key;
    std::string label_value;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<Series> series;
  };

  Family& family_slot(const std::string& name, const std::string& help, Kind kind);
  Series& series_slot(Family& fam, const std::string& label_key, const std::string& label_value);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace fpopt::telemetry
