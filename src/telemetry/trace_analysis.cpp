#include "telemetry/trace_analysis.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace fpopt::telemetry {
namespace {

bool is_uint(const JsonValue& v) { return v.is_number() && v.is_integer && v.integer >= 0; }

std::string event_label(std::size_t index, const JsonValue& e) {
  std::ostringstream out;
  out << "traceEvents[" << index << "]";
  if (const JsonValue* name = e.find("name"); name != nullptr && name->is_string()) {
    out << " (" << name->string << ")";
  }
  return out.str();
}

/// Multiset key for the determinism contract: everything an event
/// promises to reproduce across runs, nothing it measures.
struct Identity {
  std::string cat;
  std::string name;
  std::uint64_t id;
  std::uint64_t arg;

  bool operator<(const Identity& o) const {
    if (cat != o.cat) return cat < o.cat;
    if (name != o.name) return name < o.name;
    if (id != o.id) return id < o.id;
    return arg < o.arg;
  }
};

std::map<Identity, std::uint64_t> identity_multiset(const LoadedTrace& trace) {
  std::map<Identity, std::uint64_t> out;
  for (const LoadedEvent& e : trace.events) {
    if (e.cat == "pool") continue;
    ++out[Identity{e.cat, e.name, e.id, e.arg}];
  }
  return out;
}

std::string identity_str(const Identity& id) {
  std::ostringstream out;
  out << id.cat << "/" << id.name << " id=" << id.id << " arg=" << id.arg;
  return out.str();
}

}  // namespace

bool validate_trace_document(const JsonValue& doc, std::vector<std::string>& errors) {
  const std::size_t before = errors.size();
  if (!doc.is_object()) {
    errors.push_back("top level: expected an object");
    return false;
  }
  const JsonValue* other = doc.find("otherData");
  if (other == nullptr || !other->is_object()) {
    errors.push_back("otherData: missing or not an object");
  } else {
    for (const auto& [key, value] : other->object) {
      if (!value.is_string()) errors.push_back("otherData." + key + ": expected a string");
    }
    if (other->find("dropped_events") == nullptr) {
      errors.push_back("otherData.dropped_events: missing");
    }
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    errors.push_back("traceEvents: missing or not an array");
    return errors.size() == before;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string label = event_label(i, e);
    if (!e.is_object()) {
      errors.push_back(label + ": expected an object");
      continue;
    }
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string()) {
      errors.push_back(label + ": missing string \"ph\"");
      continue;
    }
    const JsonValue* name = e.find("name");
    if (name == nullptr || !name->is_string()) {
      errors.push_back(label + ": missing string \"name\"");
    }
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (pid == nullptr || !is_uint(*pid)) errors.push_back(label + ": missing integer \"pid\"");
    if (tid == nullptr || !is_uint(*tid)) errors.push_back(label + ": missing integer \"tid\"");
    if (ph->string == "M") continue;  // metadata events carry no timestamps
    if (ph->string != "X" && ph->string != "i") {
      errors.push_back(label + ": unsupported ph \"" + ph->string + "\"");
      continue;
    }
    const JsonValue* ts = e.find("ts");
    if (ts == nullptr || !ts->is_number() || ts->number < 0) {
      errors.push_back(label + ": missing non-negative number \"ts\"");
    }
    if (ph->string == "X") {
      const JsonValue* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0) {
        errors.push_back(label + ": missing non-negative number \"dur\"");
      }
    }
    const JsonValue* cat = e.find("cat");
    if (cat == nullptr || !cat->is_string()) {
      errors.push_back(label + ": missing string \"cat\"");
    }
    const JsonValue* args = e.find("args");
    if (args == nullptr || !args->is_object() || args->find("id") == nullptr ||
        !is_uint(*args->find("id"))) {
      errors.push_back(label + ": missing args.id (non-negative integer)");
    }
  }
  return errors.size() == before;
}

bool load_trace(const std::string& text, LoadedTrace& out, std::string& error) {
  JsonParseResult parsed = parse_json(text);
  if (!parsed.value.has_value()) {
    error = "parse error: " + parsed.error;
    return false;
  }
  const JsonValue& doc = *parsed.value;
  std::vector<std::string> errors;
  if (!validate_trace_document(doc, errors)) {
    std::ostringstream joined;
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (i > 0) joined << "\n";
      joined << errors[i];
    }
    error = joined.str();
    return false;
  }

  out = LoadedTrace{};
  for (const auto& [key, value] : doc.find("otherData")->object) {
    out.other_data.emplace_back(key, value.string);
    if (key == "dropped_events") {
      out.dropped_events = static_cast<std::uint64_t>(std::stoull(value.string));
    }
  }
  for (const JsonValue& e : doc.find("traceEvents")->array) {
    const std::string& ph = e.find("ph")->string;
    if (ph == "M") continue;
    LoadedEvent ev;
    ev.name = e.find("name")->string;
    ev.cat = e.find("cat")->string;
    ev.instant = ph == "i";
    ev.tid = static_cast<int>(e.find("tid")->integer);
    ev.ts_us = e.find("ts")->number;
    if (const JsonValue* dur = e.find("dur"); dur != nullptr) ev.dur_us = dur->number;
    const JsonValue* args = e.find("args");
    ev.id = static_cast<std::uint64_t>(args->find("id")->integer);
    if (const JsonValue* arg = args->find("arg"); arg != nullptr && is_uint(*arg)) {
      ev.arg = static_cast<std::uint64_t>(arg->integer);
    }
    if (const JsonValue* left = args->find("left"); left != nullptr && left->is_number()) {
      ev.left = left->integer;
    }
    if (const JsonValue* right = args->find("right"); right != nullptr && right->is_number()) {
      ev.right = right->integer;
    }
    out.events.push_back(std::move(ev));
  }
  return true;
}

std::vector<FlameRow> flame_rows(const LoadedTrace& trace) {
  // Group spans per thread and recover nesting by interval containment:
  // within one thread, spans sorted by (start asc, end desc) visit every
  // parent before its children, so a stack of open intervals yields the
  // directly-enclosing span for self-time accounting.
  struct Interval {
    double start, end;
    std::size_t row;
  };
  std::map<std::pair<std::string, std::string>, FlameRow> rows;
  auto row_of = [&](const LoadedEvent& e) -> FlameRow& {
    FlameRow& row = rows[{e.cat, e.name}];
    if (row.name.empty()) {
      row.cat = e.cat;
      row.name = e.name;
    }
    return row;
  };

  std::map<int, std::vector<const LoadedEvent*>> by_tid;
  for (const LoadedEvent& e : trace.events) {
    if (e.instant) {
      ++row_of(e).count;
      continue;
    }
    by_tid[e.tid].push_back(&e);
  }

  // Stable row addresses are needed below, so materialize rows for every
  // span name first (std::map nodes never move).
  for (auto& [tid, spans] : by_tid) {
    for (const LoadedEvent* e : spans) row_of(*e);
  }

  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(), [](const LoadedEvent* a, const LoadedEvent* b) {
      const double a_end = a->ts_us + a->dur_us;
      const double b_end = b->ts_us + b->dur_us;
      if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
      return a_end > b_end;
    });
    struct Open {
      double end;
      FlameRow* row;
    };
    std::vector<Open> stack;
    for (const LoadedEvent* e : spans) {
      const double end = e->ts_us + e->dur_us;
      while (!stack.empty() && stack.back().end <= e->ts_us) {
        stack.pop_back();
      }
      FlameRow& row = row_of(*e);
      ++row.count;
      row.total_us += e->dur_us;
      row.self_us += e->dur_us;
      if (!stack.empty()) {
        // Attribute this span's extent as child time of its parent.
        stack.back().row->self_us -= e->dur_us;
      }
      stack.push_back(Open{end, &row});
    }
  }

  std::vector<FlameRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const FlameRow& a, const FlameRow& b) {
    if (a.self_us != b.self_us) return a.self_us > b.self_us;
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    if (a.cat != b.cat) return a.cat < b.cat;
    return a.name < b.name;
  });
  return out;
}

CriticalPathResult critical_path(const LoadedTrace& trace) {
  CriticalPathResult result;

  struct NodeSpan {
    double dur_us = 0;
    double start_us = 0;
    std::int64_t left = -1;
    std::int64_t right = -1;
  };
  std::unordered_map<std::uint64_t, NodeSpan> nodes;
  double min_start = 0, max_end = 0;
  bool any = false;
  for (const LoadedEvent& e : trace.events) {
    if (e.cat != "node" || e.instant) continue;
    auto [it, inserted] = nodes.emplace(e.id, NodeSpan{e.dur_us, e.ts_us, e.left, e.right});
    if (!inserted) {
      result.error =
          "duplicate node id " + std::to_string(e.id) +
          " — trace covers more than one optimize run; critpath needs a single-run trace";
      return result;
    }
    const double end = e.ts_us + e.dur_us;
    if (!any || e.ts_us < min_start) min_start = e.ts_us;
    if (!any || end > max_end) max_end = end;
    any = true;
  }
  if (!any) {
    result.error = "no node-category spans in trace (was it captured with telemetry on?)";
    return result;
  }

  // cp(v) = dur(v) + max(cp(left), cp(right)), memoized with an explicit
  // stack (T' can be arbitrarily skewed; no recursion).
  std::unordered_map<std::uint64_t, double> cp;
  cp.reserve(nodes.size());
  auto compute_cp = [&](std::uint64_t root) {
    std::vector<std::uint64_t> stack{root};
    while (!stack.empty()) {
      const std::uint64_t id = stack.back();
      if (cp.count(id) != 0) {
        stack.pop_back();
        continue;
      }
      const auto it = nodes.find(id);
      if (it == nodes.end()) {
        // A child referenced but never traced (dropped event): treat as
        // zero-cost so the path stays a lower bound.
        cp[id] = 0;
        stack.pop_back();
        continue;
      }
      const NodeSpan& node = it->second;
      bool ready = true;
      double best_child = 0;
      for (const std::int64_t child : {node.left, node.right}) {
        if (child < 0) continue;
        const auto child_cp = cp.find(static_cast<std::uint64_t>(child));
        if (child_cp == cp.end()) {
          stack.push_back(static_cast<std::uint64_t>(child));
          ready = false;
        } else {
          best_child = std::max(best_child, child_cp->second);
        }
      }
      if (!ready) continue;
      cp[id] = node.dur_us + best_child;
      stack.pop_back();
    }
  };
  // Iterate node ids in sorted order: cp values are order-independent
  // (memoized pure function), but the argmax below breaks ties by visit
  // order, and the winning chain is printed — unordered_map order here
  // would leak into the report (rule unordered-iter, docs/LINT.md).
  std::vector<std::uint64_t> sorted_ids;
  sorted_ids.reserve(nodes.size());
  for (auto it = nodes.begin(); it != nodes.end(); ++it) {  // FPOPT-LINT-OK(unordered-iter): collects keys for an explicit sort two lines down
    sorted_ids.push_back(it->first);
  }
  std::sort(sorted_ids.begin(), sorted_ids.end());
  for (const std::uint64_t id : sorted_ids) compute_cp(id);

  std::uint64_t best_id = 0;
  double best = -1;
  for (const std::uint64_t id : sorted_ids) {
    if (cp[id] > best) {
      best = cp[id];
      best_id = id;
    }
  }
  result.path_us = best;
  result.makespan_us = max_end - min_start;

  // Walk the argmax chain root-first.
  std::int64_t cursor = static_cast<std::int64_t>(best_id);
  while (cursor >= 0) {
    const std::uint64_t id = static_cast<std::uint64_t>(cursor);
    result.chain.push_back(id);
    const auto it = nodes.find(id);
    if (it == nodes.end()) break;
    std::int64_t next = -1;
    double next_cp = -1;
    for (const std::int64_t child : {it->second.left, it->second.right}) {
      if (child < 0) continue;
      const double child_cp = cp.count(static_cast<std::uint64_t>(child)) != 0
                                  ? cp[static_cast<std::uint64_t>(child)]
                                  : 0;
      if (child_cp > next_cp) {
        next_cp = child_cp;
        next = child;
      }
    }
    cursor = next;
  }
  result.ok = true;
  return result;
}

TraceDiff diff_traces(const LoadedTrace& a, const LoadedTrace& b) {
  TraceDiff diff;
  const std::map<Identity, std::uint64_t> ma = identity_multiset(a);
  const std::map<Identity, std::uint64_t> mb = identity_multiset(b);

  auto report = [&](const Identity& id, std::uint64_t count_a, std::uint64_t count_b) {
    std::ostringstream line;
    line << identity_str(id) << ": " << count_a << " vs " << count_b;
    diff.differences.push_back(line.str());
  };
  auto it_a = ma.begin();
  auto it_b = mb.begin();
  while (it_a != ma.end() || it_b != mb.end()) {
    if (it_b == mb.end() || (it_a != ma.end() && it_a->first < it_b->first)) {
      report(it_a->first, it_a->second, 0);
      ++it_a;
    } else if (it_a == ma.end() || it_b->first < it_a->first) {
      report(it_b->first, 0, it_b->second);
      ++it_b;
    } else {
      if (it_a->second != it_b->second) report(it_a->first, it_a->second, it_b->second);
      ++it_a;
      ++it_b;
    }
  }
  diff.identical = diff.differences.empty();

  // Informational: timing movement per (cat, name) and pool traffic.
  std::map<std::pair<std::string, std::string>, double> time_a, time_b;
  std::uint64_t pool_a = 0, pool_b = 0;
  for (const LoadedEvent& e : a.events) {
    if (e.cat == "pool") ++pool_a;
    time_a[{e.cat, e.name}] += e.dur_us;
  }
  for (const LoadedEvent& e : b.events) {
    if (e.cat == "pool") ++pool_b;
    time_b[{e.cat, e.name}] += e.dur_us;
  }
  for (const auto& [key, us_a] : time_a) {
    const auto it = time_b.find(key);
    const double us_b = it != time_b.end() ? it->second : 0;
    const double delta = us_b - us_a;
    if (us_a <= 0 && us_b <= 0) continue;
    std::ostringstream line;
    line << key.first << "/" << key.second << ": " << us_a << "us -> " << us_b
         << "us (" << (delta >= 0 ? "+" : "") << delta << "us)";
    diff.notes.push_back(line.str());
  }
  if (pool_a != 0 || pool_b != 0) {
    std::ostringstream line;
    line << "pool traffic (scheduling, not compared): " << pool_a << " vs " << pool_b
         << " events";
    diff.notes.push_back(line.str());
  }
  return diff;
}

}  // namespace fpopt::telemetry
