#include "telemetry/metrics_schema.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace fpopt::telemetry {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

bool nonneg_integer(const JsonValue& v) { return v.is_number() && v.is_integer && v.integer >= 0; }

std::string labels_key(const JsonValue& labels) { return labels.dump(); }

void check_series_array(const JsonValue& family, const std::string& where, bool histogram,
                        std::vector<std::string>& out) {
  const JsonValue* name = family.find("name");
  const JsonValue* help = family.find("help");
  const JsonValue* series = family.find("series");
  if (name == nullptr || !name->is_string() || !valid_metric_name(name->string)) {
    out.push_back(where + ": family is missing a valid string \"name\"");
    return;
  }
  const std::string fam = name->string;
  if (help == nullptr || !help->is_string() || help->string.empty()) {
    out.push_back(fam + ": missing non-empty string \"help\"");
  }
  if (series == nullptr || !series->is_array() || series->array.empty()) {
    out.push_back(fam + ": missing non-empty \"series\" array");
    return;
  }
  std::set<std::string> seen_labels;
  for (const JsonValue& s : series->array) {
    if (!s.is_object()) {
      out.push_back(fam + ": series entry is not an object");
      continue;
    }
    const JsonValue* labels = s.find("labels");
    if (labels == nullptr || !labels->is_object()) {
      out.push_back(fam + ": series is missing the \"labels\" object");
      continue;
    }
    for (const auto& [k, v] : labels->object) {
      if (!v.is_string()) out.push_back(fam + ": label \"" + k + "\" is not a string");
    }
    if (!seen_labels.insert(labels_key(*labels)).second) {
      out.push_back(fam + ": duplicate series labels " + labels->dump());
    }
    if (!histogram) {
      const JsonValue* value = s.find("value");
      if (value == nullptr || !value->is_number()) {
        out.push_back(fam + ": series is missing a numeric \"value\"");
      }
      continue;
    }
    const JsonValue* buckets = s.find("buckets");
    const JsonValue* count = s.find("count");
    const JsonValue* sum = s.find("sum_seconds");
    if (buckets == nullptr || !buckets->is_array() || buckets->array.empty()) {
      out.push_back(fam + ": histogram series is missing the \"buckets\" array");
      continue;
    }
    if (sum == nullptr || !sum->is_number() || sum->number < 0) {
      out.push_back(fam + ": histogram series needs a non-negative \"sum_seconds\"");
    }
    double prev_le = -1;
    std::int64_t prev_count = 0;
    bool saw_inf = false;
    for (const JsonValue& b : buckets->array) {
      const JsonValue* le = b.find("le");
      const JsonValue* c = b.find("count");
      if (le == nullptr || c == nullptr || !nonneg_integer(*c)) {
        out.push_back(fam + ": histogram bucket needs \"le\" and a non-negative integer \"count\"");
        break;
      }
      if (c->integer < prev_count) {
        out.push_back(fam + ": histogram bucket counts are not cumulative");
        break;
      }
      prev_count = c->integer;
      if (le->is_string() && le->string == "+Inf") {
        saw_inf = true;
      } else if (saw_inf) {
        out.push_back(fam + ": histogram has buckets after le=\"+Inf\"");
        break;
      } else if (!le->is_number() || le->number <= prev_le) {
        out.push_back(fam + ": histogram \"le\" bounds must be increasing numbers");
        break;
      } else {
        prev_le = le->number;
      }
    }
    if (!saw_inf) out.push_back(fam + ": histogram is missing the le=\"+Inf\" overflow bucket");
    if (count == nullptr || !nonneg_integer(*count) || count->integer != prev_count) {
      out.push_back(fam + ": histogram \"count\" must equal the final cumulative bucket count");
    }
  }
}

}  // namespace

std::vector<std::string> validate_metrics_snapshot(const JsonValue& snapshot) {
  std::vector<std::string> out;
  if (!snapshot.is_object()) {
    out.emplace_back("fpopt_metrics: value is not an object");
    return out;
  }
  const JsonValue* version = snapshot.find("schema_version");
  if (version == nullptr || !version->is_number() || version->integer != 1) {
    out.emplace_back("fpopt_metrics: schema_version must be the integer 1");
  }
  const JsonValue* telemetry = snapshot.find("telemetry");
  if (telemetry == nullptr || !telemetry->is_bool()) {
    out.emplace_back("fpopt_metrics: missing boolean \"telemetry\"");
  }
  std::set<std::string> family_names;
  const struct {
    const char* key;
    bool histogram;
  } kSections[] = {{"counters", false}, {"gauges", false}, {"histograms", true}};
  for (const auto& section : kSections) {
    const JsonValue* arr = snapshot.find(section.key);
    if (arr == nullptr || !arr->is_array()) {
      out.push_back(std::string("fpopt_metrics: missing \"") + section.key + "\" array");
      continue;
    }
    for (const JsonValue& family : arr->array) {
      if (!family.is_object()) {
        out.push_back(std::string(section.key) + ": family entry is not an object");
        continue;
      }
      const JsonValue* name = family.find("name");
      if (name != nullptr && name->is_string() && !family_names.insert(name->string).second) {
        out.push_back(name->string + ": duplicate family name");
      }
      check_series_array(family, section.key, section.histogram, out);
    }
  }
  for (const auto& [key, value] : snapshot.object) {
    (void)value;
    if (key != "schema_version" && key != "telemetry" && key != "counters" && key != "gauges" &&
        key != "histograms") {
      out.push_back("fpopt_metrics: unknown member \"" + key + "\"");
    }
  }
  return out;
}

namespace {

void find_metrics_blocks(const JsonValue& doc, std::vector<const JsonValue*>& blocks) {
  if (doc.is_object()) {
    const JsonValue* inner = doc.find("fpopt_metrics");
    if (inner != nullptr) blocks.push_back(inner);
    for (const auto& [key, value] : doc.object) {
      (void)key;
      find_metrics_blocks(value, blocks);
    }
  } else if (doc.is_array()) {
    for (const JsonValue& v : doc.array) find_metrics_blocks(v, blocks);
  }
}

}  // namespace

std::vector<std::string> validate_embedded_metrics(const JsonValue& doc) {
  std::vector<const JsonValue*> blocks;
  find_metrics_blocks(doc, blocks);
  if (blocks.empty()) return {"document contains no \"fpopt_metrics\" block"};
  std::vector<std::string> out;
  for (const JsonValue* block : blocks) {
    std::vector<std::string> v = validate_metrics_snapshot(*block);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

namespace {

/// One parsed Prometheus sample line: name, raw label block, value.
struct Sample {
  std::string name;
  std::string labels;
  std::string value;
};

bool parse_sample_line(const std::string& line, Sample& out) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out.name = line.substr(0, i);
  if (!valid_metric_name(out.name)) return false;
  if (i < line.size() && line[i] == '{') {
    const std::size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    out.labels = line.substr(i + 1, close - i - 1);
    i = close + 1;
  } else {
    out.labels.clear();
  }
  if (i >= line.size() || line[i] != ' ') return false;
  out.value = line.substr(i + 1);
  if (out.value.empty()) return false;
  char* end = nullptr;
  std::strtod(out.value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Strip a trailing `le="..."` pair; returns the bound via `le`.
bool split_le(const std::string& labels, std::string& rest, std::string& le) {
  const std::string key = "le=\"";
  const std::size_t pos = labels.rfind(key);
  if (pos == std::string::npos) return false;
  const std::size_t close = labels.find('"', pos + key.size());
  if (close == std::string::npos || close + 1 != labels.size()) return false;
  le = labels.substr(pos + key.size(), close - pos - key.size());
  rest = labels.substr(0, pos);
  if (!rest.empty() && rest.back() == ',') rest.pop_back();
  return true;
}

}  // namespace

std::vector<std::string> validate_prometheus_text(const std::string& text) {
  std::vector<std::string> out;
  std::map<std::string, std::string> family_type;  // name -> counter|gauge|histogram
  // Per (histogram family, non-le labels): cumulative bucket state.
  struct BucketState {
    double prev_le = -1;
    std::int64_t prev_count = -1;
    bool saw_inf = false;
    std::int64_t inf_count = 0;
    bool counted = false;  // _count line seen and matched
  };
  std::map<std::string, BucketState> buckets;

  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  bool any_sample = false;
  auto fail = [&](const std::string& msg) {
    out.push_back("line " + std::to_string(lineno) + ": " + msg);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name, tail;
      meta >> hash >> kind >> name;
      std::getline(meta, tail);
      if (kind == "TYPE") {
        if (tail != " counter" && tail != " gauge" && tail != " histogram") {
          fail("TYPE must be counter, gauge or histogram");
        } else if (!family_type.emplace(name, tail.substr(1)).second) {
          fail("duplicate TYPE for family " + name);
        }
      } else if (kind != "HELP") {
        fail("unknown comment directive (expected HELP or TYPE)");
      }
      continue;
    }
    Sample sample;
    if (!parse_sample_line(line, sample)) {
      fail("malformed sample line");
      continue;
    }
    any_sample = true;
    std::string base = sample.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (base.size() > s.size() && base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          family_type.count(base.substr(0, base.size() - s.size())) != 0 &&
          family_type.at(base.substr(0, base.size() - s.size())) == "histogram") {
        base = base.substr(0, base.size() - s.size());
        break;
      }
    }
    const auto type_it = family_type.find(base);
    if (type_it == family_type.end()) {
      fail("sample " + sample.name + " has no preceding TYPE line");
      continue;
    }
    if (type_it->second != "histogram") continue;
    std::string rest;
    std::string le;
    const std::string suffix = sample.name.substr(base.size());
    if (suffix == "_bucket") {
      if (!split_le(sample.labels, rest, le)) {
        fail("histogram bucket is missing the le label");
        continue;
      }
      BucketState& st = buckets[base + "|" + rest];
      const std::int64_t count = std::strtoll(sample.value.c_str(), nullptr, 10);
      if (st.prev_count >= 0 && count < st.prev_count) fail("bucket counts are not cumulative");
      st.prev_count = count;
      if (le == "+Inf") {
        if (st.saw_inf) fail("duplicate le=\"+Inf\" bucket");
        st.saw_inf = true;
        st.inf_count = count;
      } else {
        if (st.saw_inf) fail("bucket after le=\"+Inf\"");
        const double bound = std::strtod(le.c_str(), nullptr);
        if (bound <= st.prev_le) fail("bucket le bounds must be increasing");
        st.prev_le = bound;
      }
    } else if (suffix == "_count") {
      BucketState& st = buckets[base + "|" + sample.labels];
      if (!st.saw_inf) {
        fail("histogram _count before its le=\"+Inf\" bucket");
      } else if (std::strtoll(sample.value.c_str(), nullptr, 10) != st.inf_count) {
        fail("histogram _count does not match the +Inf bucket");
      } else {
        st.counted = true;
      }
    }
  }
  for (const auto& [key, st] : buckets) {
    const std::string fam = key.substr(0, key.find('|'));
    if (!st.saw_inf) out.push_back(fam + ": histogram is missing the le=\"+Inf\" bucket");
    if (!st.counted) out.push_back(fam + ": histogram is missing a matching _count sample");
  }
  if (!any_sample) out.emplace_back("exposition contains no sample lines");
  return out;
}

}  // namespace fpopt::telemetry
