// Low-overhead event tracing of the optimizer schedule: who evaluated
// which T' node when, on which worker, and what the kernels underneath
// were doing (ISSUE 5 tentpole).
//
// Model: a process-wide TraceSession is armed by the CLI (--trace=FILE)
// or a test; every instrumented scope (TraceSpan) or point (trace_instant)
// appends one fixed-size event to a per-thread ring buffer. Rings are
// single-producer — only the owning thread writes — and are harvested by
// the session exporter after the traced work has quiesced, so the hot
// path is one relaxed atomic load (is a session armed?) plus one
// steady_clock read per span boundary, with no locks and no allocation.
// A ring that fills up drops further events and counts the drops
// (bounded memory by construction); the exporter reports the total.
//
// Determinism contract (docs/ALGORITHMS.md §10, mirroring §9): every
// event carries a deterministic identity (category, name, id, arg) whose
// values derive from the run's structure — node ids for node/cache
// events, DP problem sizes for kernel events, attempt indices for
// annealing events — never from wall clock or scheduling. Timestamps,
// durations and thread ids are measurement and are excluded from every
// byte-identical comparison (fpopt_trace diff compares the deterministic
// identity multiset; pool-category events are scheduling by nature and
// are compared by aggregate only).
//
// Export is Chrome trace-event JSON ("X" complete + "i" instant events,
// microsecond timestamps relative to session start), loadable in Perfetto
// or chrome://tracing and analyzed offline by tools/fpopt_trace.
//
// Lifecycle rule: arm/disarm the session only while no instrumented work
// is running (create it before optimize/anneal, export after they return
// — worker pools are per-run and joined inside, so this is the natural
// CLI shape). One session may be armed at a time.
//
// Compile-out: with FPOPT_TELEMETRY=OFF every hook compiles to an empty
// body (telemetry::kEnabled == false) and an armed session exports a
// valid, empty trace document.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace fpopt::telemetry {

/// Event category. Deterministic-identity categories (everything except
/// kPool) promise the same (name, id, arg) multiset for every run of the
/// same workload at any thread count; kPool events are scheduling.
enum class TraceCat : std::uint8_t {
  kPhase,   ///< coarse run phases (restructure, evaluate, calibrate, search)
  kNode,    ///< one T' node evaluation; id = node id, args carry child ids
  kKernel,  ///< selection/CSPP kernels; id = problem size n, arg = k
  kCache,   ///< memo serve/publish/epoch; id = node id
  kPool,    ///< work-stealing traffic; scheduling-dependent, never compared
  kAnneal,  ///< annealing moves; id = attempt index
};

[[nodiscard]] const char* trace_cat_name(TraceCat cat);

/// One captured event. `start_ns` is absolute steady-clock nanoseconds;
/// the exporter rebases onto the session start. `left`/`right` are child
/// node ids for kNode spans (-1 = no child).
struct TraceEvent {
  const char* name = nullptr;  ///< static string (literal)
  std::uint64_t id = 0;
  std::uint64_t arg = 0;
  std::int64_t left = -1;
  std::int64_t right = -1;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  TraceCat cat = TraceCat::kPhase;
  bool instant = false;
};

/// One thread's bounded event buffer. Single producer (the owning
/// thread); the session reads it only after producers quiesced.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) { events_.reserve(capacity); }

  void push(const TraceEvent& e) {
    if (events_.size() < events_.capacity()) {
      events_.push_back(e);
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Perfetto thread label; set once by the owning thread (trace_thread_name).
  std::string name;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

struct TraceOptions {
  /// Events per thread before the ring starts dropping (and counting).
  std::size_t ring_capacity = 1 << 16;
};

/// The armed trace: owns every thread's ring, the time base, and the
/// export. Construction arms (at most one at a time), destruction
/// disarms; see the lifecycle rule in the header comment.
class TraceSession {
 public:
  explicit TraceSession(TraceOptions opts = {});
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The armed session, or nullptr. Always nullptr when telemetry is
  /// compiled out (hooks never fire).
  [[nodiscard]] static TraceSession* current();

  /// Key/value pairs for the exported document's "otherData" section
  /// (tool, command, threads, ...). Call from the coordinating thread.
  void set_meta(std::string key, std::string value);

  /// Chrome trace-event JSON. Call only after traced work has quiesced.
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

  /// Sum of per-ring drop counts (0 when nothing overflowed).
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// The calling thread's ring, registering it on first use. Internal
  /// (used by the hook implementations).
  [[nodiscard]] TraceRing* ring_for_this_thread();

 private:
  TraceOptions opts_;
  std::uint64_t start_ns_ = 0;  ///< steady-clock origin of the session
  mutable std::mutex mu_;       ///< guards rings_ registration and meta_
  std::vector<std::unique_ptr<TraceRing>> rings_;  ///< tid = index
  std::vector<std::pair<std::string, std::string>> meta_;
};

/// Absolute steady-clock nanoseconds (the event time base).
[[nodiscard]] std::uint64_t trace_now_ns();

/// RAII span: captures [construction, destruction) into the current
/// session's ring for this thread. A span constructed while no session is
/// armed (or with telemetry compiled out) costs one relaxed load and does
/// nothing. `name` must be a string literal.
class TraceSpan {
 public:
  TraceSpan(TraceCat cat, const char* name, std::uint64_t id = 0, std::uint64_t arg = 0) {
    if constexpr (kEnabled) begin(cat, name, id, arg);
  }
  ~TraceSpan() {
    if constexpr (kEnabled) {
      if (ring_ != nullptr) end();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Payload recorded at destruction (e.g. the result list size, known
  /// only at the end of the scope).
  void set_arg(std::uint64_t arg) {
    if constexpr (kEnabled) event_.arg = arg;
  }
  /// Child node ids for kNode spans (-1 = absent); feeds critical-path
  /// extraction in fpopt_trace.
  void set_children(std::int64_t left, std::int64_t right) {
    if constexpr (kEnabled) {
      event_.left = left;
      event_.right = right;
    }
  }

 private:
  void begin(TraceCat cat, const char* name, std::uint64_t id, std::uint64_t arg);
  void end();

  TraceRing* ring_ = nullptr;
  TraceEvent event_;
};

/// A point event on the current thread's ring; no-op when no session is
/// armed. `name` must be a string literal.
void trace_instant(TraceCat cat, const char* name, std::uint64_t id = 0,
                   std::uint64_t arg = 0);

/// Label the calling thread in the exported trace ("worker 2"). No-op
/// when no session is armed; safe to call on every pool start.
void trace_thread_name(const std::string& name);

}  // namespace fpopt::telemetry
