// Sets of irreducible L-lists: the store for all non-redundant
// implementations of an L-shaped block (Section 3 of the paper).
//
// For a fixed top-edge width w2 the non-redundant implementations form a
// 3-D Pareto-minimal set over (w1, h1, h2), which is generally *not* a
// single chain; the DAC'90 optimizer therefore keeps a set of chains.
// Chains arrive naturally from the combine loops (one per generation
// context); `canonicalize()` then removes cross-chain redundancy and
// re-partitions each w2 group into irreducible chains.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "shape/l_list.h"

namespace fpopt {

class LListSet {
 public:
  LListSet() = default;

  /// Append a chain (empty chains are ignored).
  void add(LList list);

  [[nodiscard]] std::span<const LList> lists() const { return lists_; }
  [[nodiscard]] std::size_t list_count() const { return lists_.size(); }
  [[nodiscard]] std::size_t total_size() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  /// All entries of all chains, flattened (chain order, then chain index).
  [[nodiscard]] std::vector<LEntry> all_entries() const;

  /// Remove every implementation dominated by another one anywhere in the
  /// set (global Pareto-minimal prune per w2 group, keeping one copy of
  /// duplicates), then re-partition each group into irreducible chains.
  /// Entry ids are preserved. Returns the number of entries removed.
  std::size_t canonicalize();

  /// Replace the stored chains wholesale (each must be irreducible).
  void replace_lists(std::vector<LList> lists);

  friend bool operator==(const LListSet&, const LListSet&) = default;

 private:
  std::vector<LList> lists_;
  std::size_t total_ = 0;
};

/// Partition `entries` (all sharing one w2, mutually non-dominating) into
/// irreducible chains. Exposed separately for unit testing.
[[nodiscard]] std::vector<LList> partition_into_chains(std::vector<LEntry> entries);

/// Pareto-minimal subset of `entries` under Definition 1 dominance (one
/// copy kept for exact duplicates). All entries must share one w2.
/// Exposed separately for unit testing.
[[nodiscard]] std::vector<LEntry> pareto_min_l_entries(std::vector<LEntry> entries);

}  // namespace fpopt
