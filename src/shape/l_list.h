// Irreducible L-lists (Definitions 3 and 5 of the paper).
//
// Within one L-list all implementations share the top-edge width w2, while
// w1 strictly decreases and (h1, h2) componentwise never decreases. This is
// the chain structure the DAC'90 optimizer produces naturally: combining a
// child R-list (w decreasing, h increasing) with one fixed sibling
// implementation yields exactly such a chain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/l_impl.h"
#include "geometry/types.h"

namespace fpopt {

/// An L implementation plus the producer-assigned provenance key. Shape
/// transformations (pruning, chain partition, L_Selection) preserve ids so
/// the optimizer can map survivors back to the child implementations that
/// generated them.
struct LEntry {
  LImpl shape;
  std::uint32_t id = 0;

  friend bool operator==(const LEntry&, const LEntry&) = default;
};

/// True iff `chain` is an irreducible L-list: constant w2, strictly
/// decreasing w1, componentwise non-decreasing (h1,h2) with consecutive
/// elements distinct, and every element canonically valid.
[[nodiscard]] bool is_irreducible_l_chain(std::span<const LImpl> chain);

/// An irreducible L-list. Invariant: is_irreducible_l_chain(shapes) holds.
class LList {
 public:
  LList() = default;

  /// Build from a "pre-chain": candidates already in generation order
  /// (w2 constant, w1 non-increasing, (h1,h2) non-decreasing, ties and
  /// dominated entries allowed). Dominated entries are pruned in one
  /// stack sweep. Asserts the monotone precondition in debug builds.
  [[nodiscard]] static LList from_prechain(std::span<const LEntry> cands);

  /// Adopt entries that already form an irreducible chain (debug-checked).
  [[nodiscard]] static LList from_chain_unchecked(std::vector<LEntry> entries);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const LEntry& operator[](std::size_t i) const { return entries_[i]; }
  [[nodiscard]] std::span<const LEntry> entries() const { return entries_; }

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

  /// Common top-edge width of the chain. Precondition: non-empty.
  [[nodiscard]] Dim w2() const { return entries_.front().shape.w2; }

  /// Shapes only, for algorithms that do not care about ids.
  [[nodiscard]] std::vector<LImpl> shapes() const;

  /// New chain holding entries()[i] for each i in `kept` (strictly
  /// increasing). Subsets of irreducible chains stay irreducible.
  [[nodiscard]] LList subset(std::span<const std::size_t> kept) const;

  friend bool operator==(const LList&, const LList&) = default;

 private:
  std::vector<LEntry> entries_;
};

}  // namespace fpopt
