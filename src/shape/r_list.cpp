#include "shape/r_list.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#if defined(FPOPT_VALIDATE)
#include "check/check_shapes.h"  // FPOPT-LINT-OK(layering): FPOPT_VALIDATE post-condition hook; compiled to no-ops by default
#endif

namespace fpopt {

std::vector<std::size_t> prune_rect_candidates(std::span<const RectImpl> cands) {
  std::vector<std::size_t> order(cands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Sort by (w asc, h asc): a candidate is redundant iff some candidate
  // seen earlier in this order already has h <= its h.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cands[a].w != cands[b].w ? cands[a].w < cands[b].w : cands[a].h < cands[b].h;
  });

  std::vector<std::size_t> kept;
  Dim min_h = std::numeric_limits<Dim>::max();
  for (std::size_t idx : order) {
    if (cands[idx].h < min_h) {
      kept.push_back(idx);
      min_h = cands[idx].h;
    }
  }
  // kept is currently (w asc, h desc); R-list order is w strictly desc.
  std::reverse(kept.begin(), kept.end());
  return kept;
}

RList RList::from_candidates(std::vector<RectImpl> cands) {
  const std::vector<std::size_t> kept = prune_rect_candidates(cands);
  RList out;
  out.impls_.reserve(kept.size());
  for (std::size_t idx : kept) out.impls_.push_back(cands[idx]);
  assert(is_irreducible_r_list(out.impls_));
  return out;
}

RList RList::from_sorted_unchecked(std::vector<RectImpl> impls) {
#if defined(FPOPT_VALIDATE)
  enforce(check_r_list(impls, "from_sorted_unchecked"), "RList::from_sorted_unchecked");
#else
  assert(is_irreducible_r_list(impls));
#endif
  RList out;
  out.impls_ = std::move(impls);
  return out;
}

std::size_t RList::min_area_index() const {
  assert(!impls_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < impls_.size(); ++i) {
    if (impls_[i].area() < impls_[best].area()) best = i;
  }
  return best;
}

RList RList::subset(std::span<const std::size_t> kept) const {
  RList out;
  out.impls_.reserve(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    assert(kept[i] < impls_.size());
    assert(i == 0 || kept[i - 1] < kept[i]);
    out.impls_.push_back(impls_[kept[i]]);
  }
  assert(is_irreducible_r_list(out.impls_));
  return out;
}

}  // namespace fpopt
