// Irreducible R-lists (Definitions 4 and 5 of the paper).
//
// An irreducible R-list is the canonical store of all non-redundant
// implementations of a rectangular block: widths strictly decreasing,
// heights strictly increasing, no implementation dominating another.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "geometry/rect_impl.h"
#include "geometry/staircase.h"
#include "geometry/types.h"

namespace fpopt {

/// Prune a candidate set down to its Pareto-minimal (non-redundant) subset.
///
/// Returns the indices of the kept candidates, ordered by width strictly
/// decreasing (the R-list order). Exact duplicates keep one copy. The index
/// form exists so callers (the optimizer) can subset parallel provenance
/// arrays with the same result.
[[nodiscard]] std::vector<std::size_t> prune_rect_candidates(std::span<const RectImpl> cands);

/// An irreducible R-list. Invariant: is_irreducible_r_list(impls()) holds.
class RList {
 public:
  RList() = default;

  /// Build from an arbitrary candidate multiset by dominance pruning.
  [[nodiscard]] static RList from_candidates(std::vector<RectImpl> cands);

  /// Adopt a vector that is already an irreducible R-list (checked by
  /// assertion in debug builds).
  [[nodiscard]] static RList from_sorted_unchecked(std::vector<RectImpl> impls);

  [[nodiscard]] std::size_t size() const { return impls_.size(); }
  [[nodiscard]] bool empty() const { return impls_.empty(); }
  [[nodiscard]] const RectImpl& operator[](std::size_t i) const { return impls_[i]; }
  [[nodiscard]] std::span<const RectImpl> impls() const { return impls_; }

  [[nodiscard]] auto begin() const { return impls_.begin(); }
  [[nodiscard]] auto end() const { return impls_.end(); }

  /// Index of the minimum-area implementation (the optimizer's root pick).
  /// Precondition: non-empty.
  [[nodiscard]] std::size_t min_area_index() const;

  /// Smallest feasible height given a width budget, or std::nullopt if no
  /// implementation fits in `w`.
  [[nodiscard]] std::optional<Dim> min_height_at(Dim w) const {
    return staircase_min_height(impls_, w);
  }

  /// New R-list holding impls()[i] for each i in `kept` (strictly
  /// increasing indices). Any such subset of an irreducible list is itself
  /// irreducible.
  [[nodiscard]] RList subset(std::span<const std::size_t> kept) const;

  friend bool operator==(const RList&, const RList&) = default;

 private:
  std::vector<RectImpl> impls_;
};

}  // namespace fpopt
