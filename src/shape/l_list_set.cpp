#include "shape/l_list_set.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace fpopt {

void LListSet::add(LList list) {
  if (list.empty()) return;
  total_ += list.size();
  lists_.push_back(std::move(list));
}

std::vector<LEntry> LListSet::all_entries() const {
  std::vector<LEntry> out;
  out.reserve(total_);
  for (const LList& l : lists_) {
    out.insert(out.end(), l.begin(), l.end());
  }
  return out;
}

void LListSet::replace_lists(std::vector<LList> lists) {
  lists_.clear();
  total_ = 0;
  for (LList& l : lists) add(std::move(l));
}

std::vector<LEntry> pareto_min_l_entries(std::vector<LEntry> entries) {
#ifndef NDEBUG
  for (const LEntry& e : entries) {
    assert(e.shape.w2 == entries.front().shape.w2);
  }
#endif
  // Sweep in (w1 asc, h1 asc, h2 asc) order. Everything already kept has
  // w1 <= current (and for w1 ties, h1 <=), so the current entry is
  // redundant iff some kept entry has both heights <=. The kept heights
  // form a 2-D staircase: a map h1 -> min h2 over kept entries with that
  // h1 or less, with values strictly decreasing as h1 grows.
  std::sort(entries.begin(), entries.end(), [](const LEntry& a, const LEntry& b) {
    if (a.shape.w1 != b.shape.w1) return a.shape.w1 < b.shape.w1;
    if (a.shape.h1 != b.shape.h1) return a.shape.h1 < b.shape.h1;
    return a.shape.h2 < b.shape.h2;
  });

  std::map<Dim, Dim> frontier;  // h1 -> smallest h2 at h1' <= h1
  std::vector<LEntry> kept;
  kept.reserve(entries.size());
  for (const LEntry& e : entries) {
    auto it = frontier.upper_bound(e.shape.h1);
    if (it != frontier.begin()) {
      const Dim min_h2_below = std::prev(it)->second;
      if (min_h2_below <= e.shape.h2) continue;  // dominated by a kept entry
    }
    kept.push_back(e);
    // Insert (h1, h2) into the staircase: erase entries it supersedes.
    auto [pos, inserted] = frontier.insert_or_assign(e.shape.h1, e.shape.h2);
    (void)inserted;
    for (auto nxt = std::next(pos); nxt != frontier.end() && nxt->second >= pos->second;) {
      nxt = frontier.erase(nxt);
    }
  }
  return kept;
}

std::vector<LList> partition_into_chains(std::vector<LEntry> entries) {
  // Chain order is w1 strictly decreasing with (h1,h2) non-decreasing, so
  // process in (w1 desc, h1 asc, h2 asc) order and first-fit each entry
  // onto a chain whose tail has strictly larger w1 and componentwise <=
  // heights. Entries sharing a w1 value are mutually unchainable; first-fit
  // handles that automatically because tails gain the current w1 as soon
  // as one batch member lands on them.
  std::sort(entries.begin(), entries.end(), [](const LEntry& a, const LEntry& b) {
    if (a.shape.w1 != b.shape.w1) return a.shape.w1 > b.shape.w1;
    if (a.shape.h1 != b.shape.h1) return a.shape.h1 < b.shape.h1;
    return a.shape.h2 < b.shape.h2;
  });

  std::vector<std::vector<LEntry>> chains;
  for (const LEntry& e : entries) {
    bool placed = false;
    for (auto& chain : chains) {
      const LImpl& tail = chain.back().shape;
      if (tail.w1 > e.shape.w1 && tail.h1 <= e.shape.h1 && tail.h2 <= e.shape.h2) {
        chain.push_back(e);
        placed = true;
        break;
      }
    }
    if (!placed) chains.push_back({e});
  }

  std::vector<LList> out;
  out.reserve(chains.size());
  for (auto& chain : chains) {
    out.push_back(LList::from_chain_unchecked(std::move(chain)));
  }
  return out;
}

std::size_t LListSet::canonicalize() {
  if (lists_.empty()) return 0;
  std::vector<LEntry> entries = all_entries();
  const std::size_t before = entries.size();

  // Group by w2.
  std::sort(entries.begin(), entries.end(), [](const LEntry& a, const LEntry& b) {
    return a.shape.w2 < b.shape.w2;
  });

  std::vector<LList> new_lists;
  for (std::size_t lo = 0; lo < entries.size();) {
    std::size_t hi = lo + 1;
    while (hi < entries.size() && entries[hi].shape.w2 == entries[lo].shape.w2) ++hi;
    std::vector<LEntry> group(entries.begin() + static_cast<std::ptrdiff_t>(lo),
                              entries.begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<LList> chains = partition_into_chains(pareto_min_l_entries(std::move(group)));
    for (LList& c : chains) new_lists.push_back(std::move(c));
    lo = hi;
  }

  replace_lists(std::move(new_lists));
  return before - total_;
}

}  // namespace fpopt
