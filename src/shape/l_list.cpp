#include "shape/l_list.h"

#include <cassert>

#if defined(FPOPT_VALIDATE)
#include "check/check_shapes.h"  // FPOPT-LINT-OK(layering): FPOPT_VALIDATE post-condition hook; compiled to no-ops by default
#endif

namespace fpopt {

bool is_irreducible_l_chain(std::span<const LImpl> chain) {
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (!chain[i].valid()) return false;
    if (i == 0) continue;
    const LImpl& p = chain[i - 1];
    const LImpl& c = chain[i];
    if (p.w2 != c.w2) return false;
    if (!(p.w1 > c.w1)) return false;          // strict, or one would dominate
    if (p.h1 > c.h1 || p.h2 > c.h2) return false;  // non-decreasing heights
  }
  return true;
}

LList LList::from_prechain(std::span<const LEntry> cands) {
  LList out;
  out.entries_.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const LEntry& c = cands[i];
    assert(c.shape.valid());
#ifndef NDEBUG
    if (i > 0) {
      const LImpl& p = cands[i - 1].shape;
      assert(p.w2 == c.shape.w2 && p.w1 >= c.shape.w1 && p.h1 <= c.shape.h1 &&
             p.h2 <= c.shape.h2 && "from_prechain requires monotone generation order");
    }
#endif
    // In pre-chain order an earlier entry dominates a later one only when
    // the heights are equal (earlier is then redundant: same heights,
    // larger width), and a later dominates an earlier only when w1 ties.
    while (!out.entries_.empty() && out.entries_.back().shape.dominates(c.shape)) {
      out.entries_.pop_back();
    }
    if (!out.entries_.empty() && c.shape.dominates(out.entries_.back().shape)) {
      continue;  // c itself is redundant
    }
    out.entries_.push_back(c);
  }
  assert(is_irreducible_l_chain(out.shapes()));
  return out;
}

LList LList::from_chain_unchecked(std::vector<LEntry> entries) {
  LList out;
  out.entries_ = std::move(entries);
#if defined(FPOPT_VALIDATE)
  enforce(check_l_list(out, "from_chain_unchecked"), "LList::from_chain_unchecked");
#else
  assert(is_irreducible_l_chain(out.shapes()));
#endif
  return out;
}

std::vector<LImpl> LList::shapes() const {
  std::vector<LImpl> out;
  out.reserve(entries_.size());
  for (const LEntry& e : entries_) out.push_back(e.shape);
  return out;
}

LList LList::subset(std::span<const std::size_t> kept) const {
  LList out;
  out.entries_.reserve(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    assert(kept[i] < entries_.size());
    assert(i == 0 || kept[i - 1] < kept[i]);
    out.entries_.push_back(entries_[kept[i]]);
  }
  assert(is_irreducible_l_chain(out.shapes()));
  return out;
}

}  // namespace fpopt
