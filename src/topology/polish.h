// Normalized Polish expressions for slicing floorplans (Wong & Liu,
// DAC'86 — the companion work by the same group that produces the
// floorplan *topology* this paper's optimizer consumes; see the paper's
// introduction: "a general approach to floorplan design is to first
// determine the topology ... based on the topology, several optimization
// problems can then be addressed").
//
// A Polish expression over n operands (module ids) and the operators V
// and H is a postfix encoding of a slicing tree. It is *normalized* when
// no two identical operators are adjacent, which makes the encoding of a
// skewed slicing tree unique. The classic neighborhood has three moves:
//   M1: swap two adjacent operands;
//   M2: complement a maximal chain of operators (V<->H);
//   M3: swap an adjacent operand/operator pair (guarded by the balloting
//       property and normalization).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "floorplan/module.h"
#include "floorplan/tree.h"
#include "optimize/placement.h"
#include "shape/r_list.h"
#include "workload/rng.h"

namespace fpopt {

/// One token of a Polish expression.
struct PolishToken {
  static constexpr std::int32_t kV = -1;  ///< vertical cut (children side by side)
  static constexpr std::int32_t kH = -2;  ///< horizontal cut (children stacked)

  std::int32_t value = 0;  ///< >= 0: module id; kV / kH: operator

  [[nodiscard]] bool is_operand() const { return value >= 0; }
  [[nodiscard]] bool is_operator() const { return value < 0; }

  friend bool operator==(const PolishToken&, const PolishToken&) = default;
};

/// A normalized Polish expression over modules 0..n-1.
class PolishExpr {
 public:
  PolishExpr() = default;

  /// The canonical starting point: m0 m1 V m2 V ... (a left-deep chain of
  /// alternating-direction slices when `alternate`, all-V otherwise).
  [[nodiscard]] static PolishExpr initial(std::size_t module_count, bool alternate = true);

  /// Adopt a token sequence (debug-checked for validity + normalization).
  [[nodiscard]] static PolishExpr from_tokens_unchecked(std::vector<PolishToken> tokens);

  [[nodiscard]] const std::vector<PolishToken>& tokens() const { return tokens_; }
  [[nodiscard]] std::size_t operand_count() const { return (tokens_.size() + 1) / 2; }

  /// Full validity check: each module id 0..n-1 appears exactly once, the
  /// balloting property holds (every prefix has more operands than
  /// operators), and the expression is normalized.
  [[nodiscard]] bool valid() const;

  /// Apply one random move (M1/M2/M3 chosen uniformly among applicable
  /// instances). Returns false if no applicable instance was found for
  /// the sampled move kind (the caller simply retries).
  bool random_move(Pcg32& rng);

  /// The slicing tree this expression encodes, over the given modules.
  [[nodiscard]] FloorplanTree to_tree(std::vector<Module> modules) const;

  /// Minimum floorplan area over all implementation choices (Stockmeyer
  /// evaluation of the encoded slicing tree); the annealer's cost.
  [[nodiscard]] Area min_area(const std::vector<Module>& modules) const;

  /// Root shape curve of the encoded slicing tree.
  [[nodiscard]] RList shape_curve(const std::vector<Module>& modules) const;

  /// Minimum-area placement of the encoded slicing tree, traced directly
  /// from the expression (no engine round trip); the rooms tile the chip
  /// exactly. Used by the wirelength-aware annealing cost.
  [[nodiscard]] Placement place(const std::vector<Module>& modules) const;

  /// "m0 m1 V m2 H" style rendering (module ids, not names).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PolishExpr&, const PolishExpr&) = default;

 private:
  std::vector<PolishToken> tokens_;
};

}  // namespace fpopt
