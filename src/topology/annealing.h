// Simulated-annealing topology search over normalized Polish expressions
// (Wong & Liu, DAC'86): the upstream step that produces the slicing
// topology this paper's optimizer then area-optimizes. The cost of an
// expression is the exact minimum floorplan area of the slicing tree it
// encodes (Stockmeyer evaluation of the shape curves), so the search
// optimizes the same objective the downstream flow reports.
#pragma once

#include <cstdint>

#include "net/netlist.h"
#include "topology/polish.h"

namespace fpopt {

struct AnnealingOptions {
  std::uint64_t seed = 1;
  /// 0 = calibrate from the mean uphill move at the start (accept ~85%).
  double initial_temperature = 0;
  double cooling = 0.90;               ///< geometric schedule
  std::size_t moves_per_temperature = 0;  ///< 0 = 10 * module count
  double freeze_ratio = 1e-4;          ///< stop when T < freeze_ratio * T0
  std::size_t max_total_moves = 100'000;
  /// Optional Wong-Liu wirelength term: cost = area + lambda * HPWL2 of
  /// the expression's min-area placement. nullptr = area only.
  const Netlist* netlist = nullptr;
  double lambda = 0;
};

struct AnnealingResult {
  PolishExpr best;
  Area best_area = 0;       ///< area of the best expression
  Area initial_area = 0;
  double best_cost = 0;     ///< area + lambda * HPWL2 (== area when no netlist)
  double initial_cost = 0;
  std::size_t moves = 0;
  std::size_t accepted = 0;
  double seconds = 0;
};

/// Search for a low-area slicing topology over the given modules.
/// Deterministic for a fixed seed. Preconditions: >= 2 modules, none with
/// an empty implementation list.
[[nodiscard]] AnnealingResult anneal_slicing_topology(const std::vector<Module>& modules,
                                                      const AnnealingOptions& opts = {});

}  // namespace fpopt
