// Simulated-annealing topology search over normalized Polish expressions
// (Wong & Liu, DAC'86): the upstream step that produces the slicing
// topology this paper's optimizer then area-optimizes. The cost of an
// expression is the exact minimum floorplan area of the slicing tree it
// encodes (Stockmeyer evaluation of the shape curves), so the search
// optimizes the same objective the downstream flow reports.
//
// Randomness: every move attempt draws from its own PCG32 stream derived
// from (seed, attempt index), so the mutation and acceptance randomness
// of attempt i never depends on how many draws earlier attempts consumed.
// This keeps reject-heavy stretches (cold temperatures) from correlating
// move choices across the schedule and makes trajectories replayable
// attempt by attempt (see annealing_move_rng).
//
// With AnnealingOptions::incremental the cost is evaluated by the area
// optimizer in incremental mode against a run-local memo cache
// (src/cache/): after a move only the dirty root-path of T' is
// recomputed, clean subtrees are served from cache, and the cache is
// epoch-rolled-back on reject so its contents always reflect the accepted
// trajectory. Costs are identical to the Stockmeyer path, so the search
// trajectory is unchanged — only the per-move work shrinks.
#pragma once

#include <cstdint>

#include "cache/memo_cache.h"
#include "net/netlist.h"
#include "telemetry/telemetry.h"
#include "topology/polish.h"

namespace fpopt {

struct AnnealingOptions {
  std::uint64_t seed = 1;
  /// 0 = calibrate from the mean uphill move at the start (accept ~85%).
  double initial_temperature = 0;
  double cooling = 0.90;               ///< geometric schedule
  std::size_t moves_per_temperature = 0;  ///< 0 = 10 * module count
  double freeze_ratio = 1e-4;          ///< stop when T < freeze_ratio * T0
  std::size_t max_total_moves = 100'000;
  /// Optional Wong-Liu wirelength term: cost = area + lambda * HPWL2 of
  /// the expression's min-area placement. nullptr = area only.
  const Netlist* netlist = nullptr;
  double lambda = 0;
  /// Evaluate costs through the incremental optimizer engine backed by a
  /// run-local memo cache (accept commits the cache epoch, reject rolls
  /// it back). Same costs, same trajectory, less work per move.
  bool incremental = false;
  /// Byte budget of the run-local memo cache (0 = unlimited); only used
  /// when `incremental` is set.
  std::size_t cache_bytes = MemoCache::kDefaultByteBudget;
};

struct AnnealingResult {
  PolishExpr best;
  Area best_area = 0;       ///< area of the best expression
  Area initial_area = 0;
  double best_cost = 0;     ///< area + lambda * HPWL2 (== area when no netlist)
  double initial_cost = 0;
  std::size_t moves = 0;
  std::size_t accepted = 0;
  /// Attempts drawn from the move-RNG namespace, including ones whose
  /// sampled move kind had no applicable instance (moves <= attempts).
  std::size_t attempts = 0;
  /// Cache-epoch outcomes (incremental mode): commits == accepted moves,
  /// rollbacks == rejected moves. Both zero unless opts.incremental.
  std::size_t epoch_commits = 0;
  std::size_t epoch_rollbacks = 0;
  double seconds = 0;
  MemoCacheStats cache_stats;  ///< all zero unless opts.incremental
  /// Wall-clock of the "calibrate" and "search" phases; timing only.
  /// Empty under FPOPT_TELEMETRY=OFF.
  std::vector<telemetry::PhaseSample> phases;
};

/// The PCG32 stream move attempt `attempt` draws from (first the mutation
/// draws, then the acceptance draw). Exposed so tests can replay a
/// trajectory attempt by attempt; attempts are counted from 0 across the
/// whole run, including attempts whose sampled move kind had no
/// applicable instance.
[[nodiscard]] Pcg32 annealing_move_rng(std::uint64_t seed, std::uint64_t attempt);

/// Search for a low-area slicing topology over the given modules.
/// Deterministic for a fixed seed. Preconditions: >= 2 modules, none with
/// an empty implementation list.
[[nodiscard]] AnnealingResult anneal_slicing_topology(const std::vector<Module>& modules,
                                                      const AnnealingOptions& opts = {});

}  // namespace fpopt
