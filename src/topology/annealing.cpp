#include "topology/annealing.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <optional>

#include "optimize/optimizer.h"
#include "telemetry/trace.h"

namespace fpopt {

namespace {

// Distinct PCG32 stream namespaces for the calibration probes and the
// main-loop move attempts. PCG streams are selected by the 63 low bits of
// the sequence constant, so base + index never collides across the two
// namespaces for any realistic attempt count.
constexpr std::uint64_t kCalibrationStreamBase = 0x4341'4C49'0000'0000ULL;  // "CALI"
constexpr std::uint64_t kMoveStreamBase = 0x4D4F'5645'0000'0000ULL;         // "MOVE"

}  // namespace

Pcg32 annealing_move_rng(std::uint64_t seed, std::uint64_t attempt) {
  return Pcg32(seed, kMoveStreamBase + attempt);
}

AnnealingResult anneal_slicing_topology(const std::vector<Module>& modules,
                                        const AnnealingOptions& opts) {
  assert(modules.size() >= 2);
  assert(opts.netlist == nullptr || opts.netlist->module_count() == modules.size());
  const auto start = std::chrono::steady_clock::now();  // FPOPT-LINT-OK(wall-clock): reported wall time only, excluded from determinism comparisons

  // Run-local memo cache for the incremental cost path. Costs are
  // identical to the Stockmeyer path (the engine with no selection limits
  // is the exact algorithm), so the trajectory does not depend on
  // opts.incremental.
  std::optional<MemoCache> cache;
  OptimizerOptions eopts;
  if (opts.incremental) {
    cache.emplace(opts.cache_bytes);
    eopts.impl_budget = 0;  // a cost evaluation must never abort
    eopts.incremental = true;
    eopts.cache = &*cache;
  }

  const bool wired = opts.netlist != nullptr && opts.lambda > 0;
  const auto area_of = [&](const PolishExpr& e) -> Area {
    if (!opts.incremental) return e.min_area(modules);
    return optimize_floorplan(e.to_tree(modules), eopts).best_area;
  };
  const auto cost_of = [&](const PolishExpr& e) -> double {
    if (!wired) return static_cast<double>(area_of(e));
    const Placement p = e.place(modules);
    return static_cast<double>(p.chip_area()) +
           opts.lambda * static_cast<double>(hpwl2(*opts.netlist, p));
  };

  PolishExpr current = PolishExpr::initial(modules.size());
  double current_cost = cost_of(current);

  AnnealingResult result;
  result.best = current;
  result.best_cost = current_cost;
  result.initial_cost = current_cost;
  result.initial_area = current.min_area(modules);
  result.best_area = result.initial_area;

  // Calibrate T0 so an average uphill move is accepted with p ~ 0.85.
  // Each probe draws from its own stream so the calibration consumes no
  // randomness from the move-attempt namespace.
  telemetry::PhaseProfile phases;
  double t0 = opts.initial_temperature;
  if (t0 <= 0) {
    const auto scope = phases.scope("calibrate");
    const telemetry::TraceSpan span(telemetry::TraceCat::kPhase, "calibrate");
    PolishExpr probe = current;
    double probe_cost = current_cost;
    double uphill_sum = 0;
    std::size_t uphill_count = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
      Pcg32 probe_rng(opts.seed, kCalibrationStreamBase + i);
      if (!probe.random_move(probe_rng)) continue;
      const double cost = cost_of(probe);
      if (cost > probe_cost) {
        uphill_sum += cost - probe_cost;
        ++uphill_count;
      }
      probe_cost = cost;
    }
    const double mean_uphill = uphill_count > 0
                                   ? uphill_sum / static_cast<double>(uphill_count)
                                   : current_cost * 0.05;
    t0 = -mean_uphill / std::log(0.85);
  }

  const std::size_t moves_per_temp =
      opts.moves_per_temperature > 0 ? opts.moves_per_temperature : 10 * modules.size();

  // Every attempt — including ones whose sampled move kind had no
  // applicable instance — advances the attempt counter, so the stream an
  // attempt draws from depends only on (seed, attempt index), never on
  // the accept/reject history before it.
  std::uint64_t attempt = 0;
  double temperature = t0;
  const auto search_start = std::chrono::steady_clock::now();  // FPOPT-LINT-OK(wall-clock): phase-timer input only, never steers the search
  telemetry::TraceSpan search_span(telemetry::TraceCat::kPhase, "search");
  while (temperature > opts.freeze_ratio * t0 && result.moves < opts.max_total_moves) {
    for (std::size_t m = 0; m < moves_per_temp && result.moves < opts.max_total_moves; ++m) {
      Pcg32 move_rng = annealing_move_rng(opts.seed, attempt++);
      PolishExpr candidate = current;
      if (!candidate.random_move(move_rng)) continue;
      ++result.moves;
      // Trace identity is the attempt index — the same (seed, attempt)
      // pair that selects the move's PCG32 stream, so a traced trajectory
      // lines up one-to-one with a replayed one. arg = 1 on accept.
      telemetry::TraceSpan move_span(telemetry::TraceCat::kAnneal, "move", attempt - 1);
      // The candidate's freshly computed nodes enter the cache inside an
      // epoch: kept on accept, removed on reject, so the cache always
      // reflects exactly the accepted trajectory.
      if (cache) cache->begin_epoch();
      const double candidate_cost = cost_of(candidate);
      const double delta = candidate_cost - current_cost;
      if (delta <= 0 || move_rng.unit() < std::exp(-delta / temperature)) {
        move_span.set_arg(1);
        if (cache) {
          cache->commit_epoch();
          ++result.epoch_commits;
          telemetry::trace_instant(telemetry::TraceCat::kAnneal, "epoch_commit",
                                   attempt - 1);
        }
        current = std::move(candidate);
        current_cost = candidate_cost;
        ++result.accepted;
        if (current_cost < result.best_cost) {
          result.best = current;
          result.best_cost = current_cost;
          result.best_area = current.min_area(modules);
        }
      } else {
        if (cache) {
          cache->rollback_epoch();
          ++result.epoch_rollbacks;
          telemetry::trace_instant(telemetry::TraceCat::kAnneal, "epoch_rollback",
                                   attempt - 1);
        }
      }
    }
    temperature *= opts.cooling;
  }
  phases.record("search", std::chrono::duration<double>(std::chrono::steady_clock::now() -  // FPOPT-LINT-OK(wall-clock): phase-timer input only, never steers the search
                                                        search_start)
                              .count());

  result.attempts = attempt;
  if (cache) result.cache_stats = cache->stats();
  result.phases = phases.samples();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();  // FPOPT-LINT-OK(wall-clock): reported wall time only, excluded from determinism comparisons
  return result;
}

}  // namespace fpopt
