#include "topology/annealing.h"

#include <cassert>
#include <chrono>
#include <cmath>

namespace fpopt {

AnnealingResult anneal_slicing_topology(const std::vector<Module>& modules,
                                        const AnnealingOptions& opts) {
  assert(modules.size() >= 2);
  assert(opts.netlist == nullptr || opts.netlist->module_count() == modules.size());
  const auto start = std::chrono::steady_clock::now();
  Pcg32 rng(opts.seed);

  const bool wired = opts.netlist != nullptr && opts.lambda > 0;
  const auto cost_of = [&](const PolishExpr& e) -> double {
    if (!wired) return static_cast<double>(e.min_area(modules));
    const Placement p = e.place(modules);
    return static_cast<double>(p.chip_area()) +
           opts.lambda * static_cast<double>(hpwl2(*opts.netlist, p));
  };

  PolishExpr current = PolishExpr::initial(modules.size());
  double current_cost = cost_of(current);

  AnnealingResult result;
  result.best = current;
  result.best_cost = current_cost;
  result.initial_cost = current_cost;
  result.initial_area = current.min_area(modules);
  result.best_area = result.initial_area;

  // Calibrate T0 so an average uphill move is accepted with p ~ 0.85.
  double t0 = opts.initial_temperature;
  if (t0 <= 0) {
    PolishExpr probe = current;
    double probe_cost = current_cost;
    double uphill_sum = 0;
    std::size_t uphill_count = 0;
    for (int i = 0; i < 64; ++i) {
      if (!probe.random_move(rng)) continue;
      const double cost = cost_of(probe);
      if (cost > probe_cost) {
        uphill_sum += cost - probe_cost;
        ++uphill_count;
      }
      probe_cost = cost;
    }
    const double mean_uphill = uphill_count > 0
                                   ? uphill_sum / static_cast<double>(uphill_count)
                                   : current_cost * 0.05;
    t0 = -mean_uphill / std::log(0.85);
  }

  const std::size_t moves_per_temp =
      opts.moves_per_temperature > 0 ? opts.moves_per_temperature : 10 * modules.size();

  double temperature = t0;
  while (temperature > opts.freeze_ratio * t0 && result.moves < opts.max_total_moves) {
    for (std::size_t m = 0; m < moves_per_temp && result.moves < opts.max_total_moves; ++m) {
      PolishExpr candidate = current;
      if (!candidate.random_move(rng)) continue;
      ++result.moves;
      const double candidate_cost = cost_of(candidate);
      const double delta = candidate_cost - current_cost;
      if (delta <= 0 || rng.unit() < std::exp(-delta / temperature)) {
        current = std::move(candidate);
        current_cost = candidate_cost;
        ++result.accepted;
        if (current_cost < result.best_cost) {
          result.best = current;
          result.best_cost = current_cost;
          result.best_area = current.min_area(modules);
        }
      }
    }
    temperature *= opts.cooling;
  }

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace fpopt
