#include "topology/polish.h"

#include <cassert>
#include <sstream>

#include "optimize/combine.h"

namespace fpopt {
namespace {

/// Balloting + normalization in one O(n) pass, no allocation (used inside
/// the move loop; operand multiplicity cannot change under moves).
bool balloting_and_normal_ok(const std::vector<PolishToken>& tokens) {
  std::size_t operands = 0, operators = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_operand()) {
      ++operands;
    } else {
      ++operators;
      if (operands <= operators) return false;  // balloting property
      if (i > 0 && tokens[i - 1] == tokens[i]) return false;  // normalization
    }
  }
  return operators + 1 == operands;
}

}  // namespace

PolishExpr PolishExpr::initial(std::size_t module_count, bool alternate) {
  assert(module_count >= 1);
  PolishExpr e;
  e.tokens_.push_back({0});
  std::int32_t op = PolishToken::kV;
  for (std::size_t i = 1; i < module_count; ++i) {
    e.tokens_.push_back({static_cast<std::int32_t>(i)});
    e.tokens_.push_back({op});
    if (alternate) op = op == PolishToken::kV ? PolishToken::kH : PolishToken::kV;
  }
  assert(e.valid());
  return e;
}

PolishExpr PolishExpr::from_tokens_unchecked(std::vector<PolishToken> tokens) {
  // Deliberately no validity assertion: callers (and tests) may build a
  // sequence first and interrogate valid() afterwards.
  PolishExpr e;
  e.tokens_ = std::move(tokens);
  return e;
}

bool PolishExpr::valid() const {
  if (tokens_.empty()) return false;
  if (!balloting_and_normal_ok(tokens_)) return false;
  // Every module id 0..n-1 exactly once.
  const std::size_t n = operand_count();
  std::vector<bool> seen(n, false);
  for (const PolishToken& t : tokens_) {
    if (!t.is_operand()) continue;
    const auto id = static_cast<std::size_t>(t.value);
    if (id >= n || seen[id]) return false;
    seen[id] = true;
  }
  return true;
}

bool PolishExpr::random_move(Pcg32& rng) {
  const std::uint32_t kind = rng.below(3);

  if (kind == 0) {
    // M1: swap two operands adjacent in the operand subsequence.
    std::vector<std::size_t> operand_pos;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].is_operand()) operand_pos.push_back(i);
    }
    if (operand_pos.size() < 2) return false;
    const std::size_t p = rng.below(static_cast<std::uint32_t>(operand_pos.size() - 1));
    std::swap(tokens_[operand_pos[p]].value, tokens_[operand_pos[p + 1]].value);
    return true;
  }

  if (kind == 1) {
    // M2: complement one maximal chain of operators.
    std::vector<std::size_t> chain_starts;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].is_operator() && (i == 0 || tokens_[i - 1].is_operand())) {
        chain_starts.push_back(i);
      }
    }
    if (chain_starts.empty()) return false;
    std::size_t i = chain_starts[rng.below(static_cast<std::uint32_t>(chain_starts.size()))];
    for (; i < tokens_.size() && tokens_[i].is_operator(); ++i) {
      tokens_[i].value =
          tokens_[i].value == PolishToken::kV ? PolishToken::kH : PolishToken::kV;
    }
    return true;
  }

  // M3: swap one adjacent operand/operator pair, keeping the expression
  // valid and normalized. Try a few random positions before giving up.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::size_t i = rng.below(static_cast<std::uint32_t>(tokens_.size() - 1));
    if (tokens_[i].is_operand() == tokens_[i + 1].is_operand()) continue;
    std::swap(tokens_[i], tokens_[i + 1]);
    if (balloting_and_normal_ok(tokens_)) return true;
    std::swap(tokens_[i], tokens_[i + 1]);  // revert
  }
  return false;
}

FloorplanTree PolishExpr::to_tree(std::vector<Module> modules) const {
  assert(valid());
  assert(modules.size() == operand_count());
  std::vector<std::unique_ptr<FloorplanNode>> stack;
  for (const PolishToken& t : tokens_) {
    if (t.is_operand()) {
      stack.push_back(FloorplanNode::leaf(static_cast<std::size_t>(t.value)));
      continue;
    }
    assert(stack.size() >= 2);
    auto right = std::move(stack.back());
    stack.pop_back();
    auto left = std::move(stack.back());
    stack.pop_back();
    std::vector<std::unique_ptr<FloorplanNode>> children;
    children.push_back(std::move(left));
    children.push_back(std::move(right));
    stack.push_back(FloorplanNode::slice(
        t.value == PolishToken::kV ? SliceDir::Vertical : SliceDir::Horizontal,
        std::move(children)));
  }
  assert(stack.size() == 1);
  return FloorplanTree(std::move(modules), std::move(stack.back()));
}

RList PolishExpr::shape_curve(const std::vector<Module>& modules) const {
  assert(valid());
  assert(modules.size() == operand_count());
  BudgetTracker budget(0);
  OptimizerStats stats;
  std::vector<RList> stack;
  for (const PolishToken& t : tokens_) {
    if (t.is_operand()) {
      stack.push_back(modules[static_cast<std::size_t>(t.value)].impls);
      continue;
    }
    RList right = std::move(stack.back());
    stack.pop_back();
    RList left = std::move(stack.back());
    stack.pop_back();
    stack.push_back(
        combine_slice(left, right, t.value == PolishToken::kH, budget, stats).list);
  }
  assert(stack.size() == 1);
  return std::move(stack.back());
}

namespace {

/// One evaluated node of the expression's slicing tree.
struct EvalNode {
  bool is_leaf = true;
  bool horizontal = false;     // slice direction (internal nodes)
  std::size_t module_id = 0;   // leaves
  std::size_t left = 0, right = 0;
  RList curve;
  std::vector<Prov> prov;  // internal nodes: child list indices per impl
};

void assign_rooms(const std::vector<EvalNode>& nodes, std::size_t idx, std::size_t impl_idx,
                  PlacedRect room, const std::vector<Module>& modules,
                  std::vector<ModulePlacement>& rooms) {
  const EvalNode& node = nodes[idx];
  const RectImpl impl = node.curve[impl_idx];
  assert(room.w >= impl.w && room.h >= impl.h);
  if (node.is_leaf) {
    rooms.push_back({node.module_id, room, impl});
    return;
  }
  const Prov p = node.prov[impl_idx];
  const RectImpl left_impl = nodes[node.left].curve[p.left];
  if (node.horizontal) {
    assign_rooms(nodes, node.left, p.left, {room.x, room.y, room.w, left_impl.h}, modules,
                 rooms);
    assign_rooms(nodes, node.right, p.right,
                 {room.x, room.y + left_impl.h, room.w, room.h - left_impl.h}, modules, rooms);
  } else {
    assign_rooms(nodes, node.left, p.left, {room.x, room.y, left_impl.w, room.h}, modules,
                 rooms);
    assign_rooms(nodes, node.right, p.right,
                 {room.x + left_impl.w, room.y, room.w - left_impl.w, room.h}, modules, rooms);
  }
}

}  // namespace

Placement PolishExpr::place(const std::vector<Module>& modules) const {
  assert(valid());
  assert(modules.size() == operand_count());
  BudgetTracker budget(0);
  OptimizerStats stats;

  std::vector<EvalNode> nodes;
  nodes.reserve(tokens_.size());
  std::vector<std::size_t> stack;
  for (const PolishToken& t : tokens_) {
    if (t.is_operand()) {
      EvalNode leaf;
      leaf.module_id = static_cast<std::size_t>(t.value);
      leaf.curve = modules[leaf.module_id].impls;
      leaf.prov.resize(leaf.curve.size());
      for (std::size_t i = 0; i < leaf.prov.size(); ++i) {
        leaf.prov[i] = {static_cast<std::uint32_t>(i), 0};
      }
      nodes.push_back(std::move(leaf));
      stack.push_back(nodes.size() - 1);
      continue;
    }
    EvalNode internal;
    internal.is_leaf = false;
    internal.horizontal = t.value == PolishToken::kH;
    internal.right = stack.back();
    stack.pop_back();
    internal.left = stack.back();
    stack.pop_back();
    RCombineResult merged = combine_slice(nodes[internal.left].curve,
                                          nodes[internal.right].curve, internal.horizontal,
                                          budget, stats);
    internal.curve = std::move(merged.list);
    internal.prov = std::move(merged.prov);
    nodes.push_back(std::move(internal));
    stack.push_back(nodes.size() - 1);
  }
  assert(stack.size() == 1);

  const std::size_t root = stack.back();
  const std::size_t pick = nodes[root].curve.min_area_index();
  const RectImpl chip = nodes[root].curve[pick];
  Placement placement;
  placement.width = chip.w;
  placement.height = chip.h;
  assign_rooms(nodes, root, pick, {0, 0, chip.w, chip.h}, modules, placement.rooms);
  return placement;
}

Area PolishExpr::min_area(const std::vector<Module>& modules) const {
  const RList curve = shape_curve(modules);
  return curve[curve.min_area_index()].area();
}

std::string PolishExpr::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (i > 0) out << ' ';
    if (tokens_[i].is_operand()) {
      out << 'm' << tokens_[i].value;
    } else {
      out << (tokens_[i].value == PolishToken::kV ? 'V' : 'H');
    }
  }
  return out.str();
}

}  // namespace fpopt
