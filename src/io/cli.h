// The fpopt command-line tool, as a library function so tests can drive
// it. The thin real main() lives in tools/fpopt_cli.cpp.
//
// Usage:
//   fpopt stats    <topology-file> <library-file>
//   fpopt optimize <topology-file> <library-file> [selection flags]
//   fpopt place    <topology-file> <library-file> [selection flags] [--impl I]
//   fpopt svg      <topology-file> <library-file> <out.svg> [selection flags]
//   fpopt anneal   <library-file> [--seed N] [--moves N]
//                  [--netlist <file> --lambda X] [--out <topology-file>]
//
// Selection flags: --k1 N, --k2 N, --theta X, --scap N, --budget N,
//                  --metric l1|l2|linf  (defaults: exact run, budget 0).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fpopt {

/// Run the tool on argv-style arguments (program name excluded).
/// Returns the process exit code; all output goes to `out` / `err`.
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace fpopt
