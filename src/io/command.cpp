#include "io/command.h"

#include <optional>

#include "floorplan/serialize.h"
#include "io/run_report_build.h"
#include "telemetry/json.h"
#include "telemetry/trace.h"

namespace fpopt {

void add_command_config(telemetry::RunReport& report, const CommandSpec& spec) {
  const SelectionConfig& sel = spec.options.selection;
  report.add_config("k1", std::to_string(sel.k1));
  report.add_config("k2", std::to_string(sel.k2));
  report.add_config("theta", telemetry::json_number(sel.theta));
  report.add_config("scap", std::to_string(sel.heuristic_cap));
  report.add_config("metric", sel.metric == LpMetric::L1    ? "l1"
                              : sel.metric == LpMetric::L2 ? "l2"
                                                           : "linf");
  report.add_config("budget", std::to_string(spec.options.impl_budget));
  report.add_config("threads", std::to_string(spec.options.threads));
  report.add_config("incremental", spec.options.incremental ? "true" : "false");
}

OptimizeOutcome optimize_for_command(const CommandSpec& spec, const FloorplanTree& tree,
                                     const CommandEnv& env, telemetry::RunReport* report) {
  OptimizerOptions options = spec.options;
  options.pool = env.pool;
  // Incremental mode runs against the injected shared view when the host
  // provides one; a standalone run gets a run-local cache (cold, so every
  // node misses and is published — the flag pays off where the cache
  // persists: across annealing moves, or across daemon requests).
  std::optional<MemoCache> local_cache;
  CacheView* cache = nullptr;
  if (options.incremental) {
    cache = env.cache;
    if (cache == nullptr) {
      local_cache.emplace(spec.cache_bytes);
      cache = &*local_cache;
    }
    options.cache = cache;
  }
  OptimizeOutcome result = optimize_floorplan(tree, options);
  // The report is written even for an aborted run (flagged aborted=true)
  // so a budget sweep can post-process every outcome uniformly.
  if (report != nullptr) {
    add_command_config(*report, spec);
    report_optimizer(*report, result);
    if (cache != nullptr) report_cache(*report, cache->stats());
    // When the run is being traced, surface ring-buffer overflow in the
    // report: a nonzero count means the Chrome trace is incomplete and
    // fpopt_trace check will warn about it.
    if (const telemetry::TraceSession* session = telemetry::TraceSession::current()) {
      report->add_counter("trace.events_dropped", session->dropped_events());
    }
    if (env.report_ready) env.report_ready();
  }
  if (result.out_of_memory) {
    throw CommandError{"out of memory: exceeded the --budget of " +
                           std::to_string(options.impl_budget) + " implementations",
                       true};
  }
  return result;
}

Placement trace_command_placement(const FloorplanTree& tree, const OptimizeOutcome& outcome,
                                  std::optional<std::size_t> impl_index) {
  std::size_t pick = 0;
  if (!impl_index.has_value()) {
    pick = outcome.root.min_area_index();
  } else if (*impl_index >= outcome.root.size()) {
    throw CommandError{"--impl " + std::to_string(*impl_index) +
                       " out of range (curve has " + std::to_string(outcome.root.size()) +
                       " implementations)"};
  } else {
    pick = *impl_index;
  }
  return trace_placement(tree, outcome, pick);
}

namespace {

void command_stats(const FloorplanTree& tree, std::ostream& out) {
  const TreeStats s = tree.stats();
  std::size_t impls = 0;
  for (const Module& m : tree.modules()) impls += m.impls.size();
  out << "topology:     " << to_topology_string(tree) << '\n'
      << "modules:      " << tree.module_count() << " (" << impls << " implementations)\n"
      << "slice nodes:  " << s.slice_count << '\n'
      << "wheel nodes:  " << s.wheel_count << '\n'
      << "tree depth:   " << s.depth << '\n';
}

void command_optimize(const CommandSpec& spec, const FloorplanTree& tree,
                      const CommandEnv& env, std::ostream& out,
                      telemetry::RunReport* report) {
  const OptimizeOutcome result = optimize_for_command(spec, tree, env, report);
  out << "best area:    " << result.best_area << '\n'
      << "shape curve:  " << result.root.size() << " implementations\n";
  for (const RectImpl& r : result.root) out << "  " << r.w << " x " << r.h << '\n';
  out << "peak stored:  " << result.stats.peak_stored << " implementations\n"
      << "generated:    " << result.stats.total_generated << " candidates\n"
      << "R_Selection:  " << result.stats.r_selection_calls << " calls, removed "
      << result.stats.r_selected_away << '\n'
      << "L_Selection:  " << result.stats.l_selection_calls << " calls, removed "
      << result.stats.l_selected_away << '\n';
}

void command_place(const CommandSpec& spec, const FloorplanTree& tree, const CommandEnv& env,
                   std::ostream& out, telemetry::RunReport* report) {
  const OptimizeOutcome result = optimize_for_command(spec, tree, env, report);
  const Placement p = trace_command_placement(tree, result, spec.impl_index);
  const auto problems = validate_placement(p, tree);
  if (!problems.empty()) throw CommandError{"internal error: " + problems.front()};
  out << "chip " << p.width << " x " << p.height << " area " << p.chip_area() << " waste "
      << (p.chip_area() - p.total_module_area()) << '\n';
  for (const ModulePlacement& m : p.rooms) {
    out << tree.module(m.module_id).name << " room x=" << m.room.x << " y=" << m.room.y
        << " w=" << m.room.w << " h=" << m.room.h << " impl " << m.impl.w << "x" << m.impl.h
        << '\n';
  }
}

}  // namespace

void execute_command(const CommandSpec& spec, const FloorplanTree& tree,
                     const CommandEnv& env, std::ostream& out,
                     telemetry::RunReport* report) {
  if (spec.command == "stats") {
    command_stats(tree, out);
  } else if (spec.command == "optimize") {
    command_optimize(spec, tree, env, out, report);
  } else if (spec.command == "place") {
    command_place(spec, tree, env, out, report);
  } else {
    throw CommandError{"unknown command '" + spec.command + "'"};
  }
}

}  // namespace fpopt
