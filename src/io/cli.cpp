#include "io/cli.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "cache/memo_cache.h"
#include "floorplan/serialize.h"
#include "io/svg.h"
#include "optimize/optimizer.h"
#include "net/netlist.h"
#include "optimize/placement.h"
#include "topology/annealing.h"

namespace fpopt {
namespace {

struct CliError {
  std::string message;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CliError{"cannot open '" + path + "'"};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct ParsedArgs {
  std::string command;
  std::vector<std::string> positional;
  OptimizerOptions options;
  std::size_t impl_index = static_cast<std::size_t>(-1);  // place: -1 = min area
  std::size_t cache_bytes = MemoCache::kDefaultByteBudget;  // --cache-mb
  // anneal:
  AnnealingOptions anneal;
  std::string netlist_path;
  std::string out_path;
};

long parse_long(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(value, &pos);
    if (pos != value.size() || v < 0) throw CliError{""};
    return v;
  } catch (...) {
    throw CliError{"bad value '" + value + "' for " + flag};
  }
}

ParsedArgs parse_args(const std::vector<std::string>& args) {
  if (args.empty()) throw CliError{"no command given"};
  ParsedArgs parsed;
  parsed.command = args[0];
  parsed.options.impl_budget = 0;  // CLI default: no simulated limit

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      parsed.positional.push_back(a);
      continue;
    }
    const auto need_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw CliError{"flag " + a + " needs a value"};
      return args[++i];
    };
    if (a == "--k1") {
      parsed.options.selection.k1 = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--k2") {
      parsed.options.selection.k2 = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--theta") {
      const std::string& v = need_value();
      try {
        parsed.options.selection.theta = std::stod(v);
      } catch (...) {
        throw CliError{"bad value '" + v + "' for --theta"};
      }
      if (parsed.options.selection.theta <= 0 || parsed.options.selection.theta > 1) {
        throw CliError{"--theta must be in (0, 1]"};
      }
    } else if (a == "--scap") {
      parsed.options.selection.heuristic_cap =
          static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--budget") {
      parsed.options.impl_budget = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--threads") {
      parsed.options.threads = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--incremental") {
      parsed.options.incremental = true;
      parsed.anneal.incremental = true;
    } else if (a == "--cache-mb") {
      parsed.cache_bytes = static_cast<std::size_t>(parse_long(a, need_value())) << 20;
      parsed.anneal.cache_bytes = parsed.cache_bytes;
    } else if (a == "--impl") {
      parsed.impl_index = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--seed") {
      parsed.anneal.seed = static_cast<std::uint64_t>(parse_long(a, need_value()));
    } else if (a == "--moves") {
      parsed.anneal.max_total_moves = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--lambda") {
      const std::string& v = need_value();
      try {
        parsed.anneal.lambda = std::stod(v);
      } catch (...) {
        throw CliError{"bad value '" + v + "' for --lambda"};
      }
    } else if (a == "--netlist") {
      parsed.netlist_path = need_value();
    } else if (a == "--out") {
      parsed.out_path = need_value();
    } else if (a == "--metric") {
      const std::string& v = need_value();
      if (v == "l1") {
        parsed.options.selection.metric = LpMetric::L1;
      } else if (v == "l2") {
        parsed.options.selection.metric = LpMetric::L2;
      } else if (v == "linf") {
        parsed.options.selection.metric = LpMetric::LInf;
      } else {
        throw CliError{"unknown metric '" + v + "' (expected l1, l2 or linf)"};
      }
    } else {
      throw CliError{"unknown flag " + a};
    }
  }
  return parsed;
}

FloorplanTree load_tree(const ParsedArgs& parsed) {
  if (parsed.positional.size() < 2) {
    throw CliError{"command '" + parsed.command + "' needs <topology-file> <library-file>"};
  }
  FloorplanTree tree = parse_floorplan(read_file(parsed.positional[0]),
                                       parse_module_library(read_file(parsed.positional[1])));
  const auto errors = tree.validate();
  if (!errors.empty()) throw CliError{"invalid floorplan: " + errors.front()};
  return tree;
}

OptimizeOutcome optimize_or_throw(const FloorplanTree& tree, const ParsedArgs& parsed) {
  OptimizerOptions options = parsed.options;
  // --incremental on a one-shot command runs against a run-local cache
  // (cold, so every node misses and is published); it exists to exercise
  // the incremental engine from the CLI — the flag pays off in `anneal`,
  // where the cache persists across moves.
  std::optional<MemoCache> cache;
  if (options.incremental) {
    cache.emplace(parsed.cache_bytes);
    options.cache = &*cache;
  }
  OptimizeOutcome out = optimize_floorplan(tree, options);
  if (out.out_of_memory) {
    throw CliError{"out of memory: exceeded the --budget of " +
                   std::to_string(options.impl_budget) + " implementations"};
  }
  return out;
}

int cmd_stats(const ParsedArgs& parsed, std::ostream& out) {
  const FloorplanTree tree = load_tree(parsed);
  const TreeStats s = tree.stats();
  std::size_t impls = 0;
  for (const Module& m : tree.modules()) impls += m.impls.size();
  out << "topology:     " << to_topology_string(tree) << '\n'
      << "modules:      " << tree.module_count() << " (" << impls << " implementations)\n"
      << "slice nodes:  " << s.slice_count << '\n'
      << "wheel nodes:  " << s.wheel_count << '\n'
      << "tree depth:   " << s.depth << '\n';
  return 0;
}

int cmd_optimize(const ParsedArgs& parsed, std::ostream& out) {
  const FloorplanTree tree = load_tree(parsed);
  const OptimizeOutcome result = optimize_or_throw(tree, parsed);
  out << "best area:    " << result.best_area << '\n'
      << "shape curve:  " << result.root.size() << " implementations\n";
  for (const RectImpl& r : result.root) out << "  " << r.w << " x " << r.h << '\n';
  out << "peak stored:  " << result.stats.peak_stored << " implementations\n"
      << "generated:    " << result.stats.total_generated << " candidates\n"
      << "R_Selection:  " << result.stats.r_selection_calls << " calls, removed "
      << result.stats.r_selected_away << '\n'
      << "L_Selection:  " << result.stats.l_selection_calls << " calls, removed "
      << result.stats.l_selected_away << '\n';
  return 0;
}

Placement trace_chosen(const FloorplanTree& tree, const OptimizeOutcome& result,
                       const ParsedArgs& parsed) {
  std::size_t pick = parsed.impl_index;
  if (pick == static_cast<std::size_t>(-1)) {
    pick = result.root.min_area_index();
  } else if (pick >= result.root.size()) {
    throw CliError{"--impl " + std::to_string(pick) + " out of range (curve has " +
                   std::to_string(result.root.size()) + " implementations)"};
  }
  return trace_placement(tree, result, pick);
}

int cmd_place(const ParsedArgs& parsed, std::ostream& out) {
  const FloorplanTree tree = load_tree(parsed);
  const OptimizeOutcome result = optimize_or_throw(tree, parsed);
  const Placement p = trace_chosen(tree, result, parsed);
  const auto problems = validate_placement(p, tree);
  if (!problems.empty()) throw CliError{"internal error: " + problems.front()};
  out << "chip " << p.width << " x " << p.height << " area " << p.chip_area() << " waste "
      << (p.chip_area() - p.total_module_area()) << '\n';
  for (const ModulePlacement& m : p.rooms) {
    out << tree.module(m.module_id).name << " room x=" << m.room.x << " y=" << m.room.y
        << " w=" << m.room.w << " h=" << m.room.h << " impl " << m.impl.w << "x" << m.impl.h
        << '\n';
  }
  return 0;
}

int cmd_svg(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.positional.size() < 3) {
    throw CliError{"svg needs <topology-file> <library-file> <out.svg>"};
  }
  const FloorplanTree tree = load_tree(parsed);
  const OptimizeOutcome result = optimize_or_throw(tree, parsed);
  const Placement p = trace_chosen(tree, result, parsed);
  std::ofstream file(parsed.positional[2], std::ios::binary);
  if (!file) throw CliError{"cannot write '" + parsed.positional[2] + "'"};
  file << placement_to_svg(p, tree);
  out << "wrote " << parsed.positional[2] << " (" << p.width << " x " << p.height << ")\n";
  return 0;
}

int cmd_anneal(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.positional.empty()) throw CliError{"anneal needs <library-file>"};
  std::vector<Module> modules = parse_module_library(read_file(parsed.positional[0]));
  if (modules.size() < 2) throw CliError{"anneal needs at least 2 modules"};

  AnnealingOptions sa = parsed.anneal;
  Netlist netlist;
  if (!parsed.netlist_path.empty()) {
    netlist = parse_netlist(read_file(parsed.netlist_path), modules);
    const auto errors = netlist.validate();
    if (!errors.empty()) throw CliError{"invalid netlist: " + errors.front()};
    sa.netlist = &netlist;
    if (sa.lambda <= 0) sa.lambda = 1.0;
  }

  const AnnealingResult r = anneal_slicing_topology(modules, sa);
  const FloorplanTree tree = r.best.to_tree(modules);
  out << "moves:        " << r.moves << " (" << r.accepted << " accepted)" << '\n'
      << "area:         " << r.initial_area << " -> " << r.best_area << '\n';
  if (sa.incremental) {
    out << "memo cache:   " << r.cache_stats.hits << '/' << r.cache_stats.probes()
        << " node hits, " << r.cache_stats.evictions << " evictions" << '\n';
  }
  if (sa.netlist != nullptr) {
    out << "cost:         " << r.initial_cost << " -> " << r.best_cost << " (lambda "
        << sa.lambda << ")" << '\n'
        << "HPWL2:        " << hpwl2(netlist, r.best.place(modules)) << '\n';
  }
  out << "topology:     " << to_topology_string(tree) << '\n';
  if (!parsed.out_path.empty()) {
    std::ofstream file(parsed.out_path, std::ios::binary);
    if (!file) throw CliError{"cannot write '" + parsed.out_path + "'"};
    file << to_topology_string(tree) << '\n';
    out << "wrote " << parsed.out_path << '\n';
  }
  return 0;
}

constexpr const char* kUsage =
    "usage: fpopt <command> ... [flags]\n"
    "commands:\n"
    "  stats | optimize | place [--impl I] | svg <out.svg>   (args: <topology-file> <library-file>)\n"
    "  anneal <library-file> [--seed N --moves N --netlist F --lambda X --out F]\n"
    "flags: --k1 N --k2 N --theta X --scap N --budget N --threads N --metric l1|l2|linf\n"
    "       --incremental [--cache-mb N]   (memo-cached re-optimization; see docs)\n";

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    const ParsedArgs parsed = parse_args(args);
    if (parsed.command == "stats") return cmd_stats(parsed, out);
    if (parsed.command == "optimize") return cmd_optimize(parsed, out);
    if (parsed.command == "place") return cmd_place(parsed, out);
    if (parsed.command == "svg") return cmd_svg(parsed, out);
    if (parsed.command == "anneal") return cmd_anneal(parsed, out);
    if (parsed.command == "help" || parsed.command == "--help") {
      out << kUsage;
      return 0;
    }
    throw CliError{"unknown command '" + parsed.command + "'"};
  } catch (const CliError& e) {
    err << "fpopt: " << e.message << '\n' << kUsage;
    return 2;
  } catch (const ParseError& e) {
    err << "fpopt: parse error: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    err << "fpopt: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace fpopt
