#include "io/cli.h"

#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "cache/memo_cache.h"
#include "floorplan/serialize.h"
#include "io/command.h"
#include "kernel/kernel.h"
#include "io/run_report_build.h"
#include "io/svg.h"
#include "optimize/optimizer.h"
#include "net/netlist.h"
#include "optimize/placement.h"
#include "telemetry/json.h"
#include "telemetry/trace.h"
#include "topology/annealing.h"

namespace fpopt {
namespace {

struct CliError {
  std::string message;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CliError{"cannot open '" + path + "'"};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct ParsedArgs {
  std::string command;
  std::vector<std::string> positional;
  OptimizerOptions options;
  std::optional<std::size_t> impl_index;  // place: unset = min area
  std::size_t cache_bytes = MemoCache::kDefaultByteBudget;  // --cache-mb
  bool show_stats = false;      // --stats: human-readable run report
  std::string stats_json_path;  // --stats-json: write the JSON run report
  std::string trace_path;       // --trace: write a Chrome trace-event JSON
  kernel::KernelMode kernel_mode = kernel::KernelMode::Auto;  // --kernel
  // anneal:
  AnnealingOptions anneal;
  std::string netlist_path;
  std::string out_path;

  [[nodiscard]] CommandSpec spec() const {
    return CommandSpec{command, options, impl_index, cache_bytes};
  }
};

long parse_long(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(value, &pos);
    if (pos != value.size() || v < 0) throw CliError{""};
    return v;
  } catch (...) {
    throw CliError{"bad value '" + value + "' for " + flag};
  }
}

/// Full-range unsigned index (e.g. --impl). Parsed with stoull so every
/// representable std::size_t — including the maximal one, which the old
/// code reserved as an "unset" sentinel — is a legitimate value that gets
/// a proper range check downstream instead of a parse failure.
std::size_t parse_index(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    // stoull silently wraps "-1"; reject any sign explicitly.
    if (value.empty() || value[0] == '-' || value[0] == '+') throw CliError{""};
    const unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size() || v > std::numeric_limits<std::size_t>::max()) throw CliError{""};
    return static_cast<std::size_t>(v);
  } catch (...) {
    throw CliError{"bad value '" + value + "' for " + flag};
  }
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    // stod parses the longest valid prefix; trailing garbage ("0.5xyz")
    // must be a hard error, exactly like parse_long.
    if (pos != value.size()) throw CliError{""};
    return v;
  } catch (...) {
    throw CliError{"bad value '" + value + "' for " + flag};
  }
}

ParsedArgs parse_args(const std::vector<std::string>& args) {
  if (args.empty()) throw CliError{"no command given"};
  ParsedArgs parsed;
  parsed.command = args[0];
  parsed.options.impl_budget = 0;  // CLI default: no simulated limit

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      parsed.positional.push_back(a);
      continue;
    }
    const auto need_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw CliError{"flag " + a + " needs a value"};
      return args[++i];
    };
    if (a == "--k1") {
      parsed.options.selection.k1 = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--k2") {
      parsed.options.selection.k2 = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--theta") {
      parsed.options.selection.theta = parse_double(a, need_value());
      if (parsed.options.selection.theta <= 0 || parsed.options.selection.theta > 1) {
        throw CliError{"--theta must be in (0, 1]"};
      }
    } else if (a == "--scap") {
      parsed.options.selection.heuristic_cap =
          static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--budget") {
      parsed.options.impl_budget = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--threads") {
      parsed.options.threads = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--incremental") {
      parsed.options.incremental = true;
      parsed.anneal.incremental = true;
    } else if (a == "--cache-mb") {
      const std::size_t mb = static_cast<std::size_t>(parse_long(a, need_value()));
      if (mb == 0) throw CliError{"--cache-mb must be at least 1 (MiB)"};
      if (mb > (std::numeric_limits<std::size_t>::max() >> 20)) {
        throw CliError{"--cache-mb " + std::to_string(mb) +
                       " overflows the byte budget (max " +
                       std::to_string(std::numeric_limits<std::size_t>::max() >> 20) + ")"};
      }
      parsed.cache_bytes = mb << 20;
      parsed.anneal.cache_bytes = parsed.cache_bytes;
    } else if (a == "--impl") {
      parsed.impl_index = parse_index(a, need_value());
    } else if (a == "--stats") {
      parsed.show_stats = true;
    } else if (a == "--stats-json") {
      parsed.stats_json_path = need_value();
    } else if (a == "--trace") {
      parsed.trace_path = need_value();
    } else if (a.rfind("--trace=", 0) == 0) {
      // Equals form too, for symmetry with fpopt_audit (where plain
      // --trace N means something else).
      parsed.trace_path = a.substr(8);
      if (parsed.trace_path.empty()) throw CliError{"flag --trace= needs a file name"};
    } else if (a == "--seed") {
      parsed.anneal.seed = static_cast<std::uint64_t>(parse_long(a, need_value()));
    } else if (a == "--moves") {
      parsed.anneal.max_total_moves = static_cast<std::size_t>(parse_long(a, need_value()));
    } else if (a == "--lambda") {
      parsed.anneal.lambda = parse_double(a, need_value());
    } else if (a == "--netlist") {
      parsed.netlist_path = need_value();
    } else if (a == "--out") {
      parsed.out_path = need_value();
    } else if (a == "--kernel" || a.rfind("--kernel=", 0) == 0) {
      const std::string v = a == "--kernel" ? need_value() : a.substr(9);
      const auto mode = kernel::parse_kernel_mode(v);
      if (!mode) {
        throw CliError{"unknown kernel '" + v + "' (expected scalar, avx2 or auto)"};
      }
      parsed.kernel_mode = *mode;
    } else if (a == "--metric") {
      const std::string& v = need_value();
      if (v == "l1") {
        parsed.options.selection.metric = LpMetric::L1;
      } else if (v == "l2") {
        parsed.options.selection.metric = LpMetric::L2;
      } else if (v == "linf") {
        parsed.options.selection.metric = LpMetric::LInf;
      } else {
        throw CliError{"unknown metric '" + v + "' (expected l1, l2 or linf)"};
      }
    } else {
      throw CliError{"unknown flag " + a};
    }
  }
  return parsed;
}

FloorplanTree load_tree(const ParsedArgs& parsed) {
  if (parsed.positional.size() < 2) {
    throw CliError{"command '" + parsed.command + "' needs <topology-file> <library-file>"};
  }
  FloorplanTree tree = parse_floorplan(read_file(parsed.positional[0]),
                                       parse_module_library(read_file(parsed.positional[1])));
  const auto errors = tree.validate();
  if (!errors.empty()) throw CliError{"invalid floorplan: " + errors.front()};
  return tree;
}

bool wants_report(const ParsedArgs& parsed) {
  return parsed.show_stats || !parsed.stats_json_path.empty();
}

void emit_report(const telemetry::RunReport& report, const ParsedArgs& parsed,
                 std::ostream& out) {
  if (!parsed.stats_json_path.empty()) {
    std::ofstream file(parsed.stats_json_path, std::ios::binary);
    if (!file) throw CliError{"cannot write '" + parsed.stats_json_path + "'"};
    file << report.to_json(true);
  }
  if (parsed.show_stats) out << report.to_table();
}

/// Run the command through the shared execution core (io/command.h — the
/// same path the fpoptd daemon uses, which is what keeps daemon responses
/// byte-identical to this CLI). Reports are emitted even when the run
/// aborts over budget, before the abort is rethrown as the CLI error.
int run_command(const ParsedArgs& parsed, std::ostream& out) {
  const FloorplanTree tree = load_tree(parsed);
  telemetry::RunReport report("fpopt", parsed.command);
  telemetry::RunReport* report_ptr = wants_report(parsed) ? &report : nullptr;
  CommandEnv env;
  // Render --stats / --stats-json as soon as the report is populated:
  // ahead of the command output, and even when the run then aborts over
  // budget — a budget sweep post-processes every outcome uniformly.
  env.report_ready = [&] { emit_report(report, parsed, out); };
  try {
    execute_command(parsed.spec(), tree, env, out, report_ptr);
  } catch (const CommandError& e) {
    throw CliError{e.message};
  }
  return 0;
}

int cmd_svg(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.positional.size() < 3) {
    throw CliError{"svg needs <topology-file> <library-file> <out.svg>"};
  }
  const FloorplanTree tree = load_tree(parsed);
  telemetry::RunReport report("fpopt", parsed.command);
  telemetry::RunReport* report_ptr = wants_report(parsed) ? &report : nullptr;
  CommandEnv env;
  env.report_ready = [&] { emit_report(report, parsed, out); };
  std::optional<OptimizeOutcome> result;
  try {
    result = optimize_for_command(parsed.spec(), tree, env, report_ptr);
  } catch (const CommandError& e) {
    throw CliError{e.message};
  }
  Placement p;
  try {
    p = trace_command_placement(tree, *result, parsed.impl_index);
  } catch (const CommandError& e) {
    throw CliError{e.message};
  }
  std::ofstream file(parsed.positional[2], std::ios::binary);
  if (!file) throw CliError{"cannot write '" + parsed.positional[2] + "'"};
  file << placement_to_svg(p, tree);
  out << "wrote " << parsed.positional[2] << " (" << p.width << " x " << p.height << ")\n";
  return 0;
}

int cmd_anneal(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.positional.empty()) throw CliError{"anneal needs <library-file>"};
  std::vector<Module> modules = parse_module_library(read_file(parsed.positional[0]));
  if (modules.size() < 2) throw CliError{"anneal needs at least 2 modules"};

  AnnealingOptions sa = parsed.anneal;
  Netlist netlist;
  if (!parsed.netlist_path.empty()) {
    netlist = parse_netlist(read_file(parsed.netlist_path), modules);
    const auto errors = netlist.validate();
    if (!errors.empty()) throw CliError{"invalid netlist: " + errors.front()};
    sa.netlist = &netlist;
    if (sa.lambda <= 0) sa.lambda = 1.0;
  }

  const AnnealingResult r = anneal_slicing_topology(modules, sa);
  const FloorplanTree tree = r.best.to_tree(modules);
  out << "moves:        " << r.moves << " (" << r.accepted << " accepted)" << '\n'
      << "area:         " << r.initial_area << " -> " << r.best_area << '\n';
  if (sa.incremental) {
    out << "memo cache:   " << r.cache_stats.hits << '/' << r.cache_stats.probes()
        << " node hits, " << r.cache_stats.evictions << " evictions" << '\n';
  }
  if (sa.netlist != nullptr) {
    out << "cost:         " << r.initial_cost << " -> " << r.best_cost << " (lambda "
        << sa.lambda << ")" << '\n'
        << "HPWL2:        " << hpwl2(netlist, r.best.place(modules)) << '\n';
  }
  out << "topology:     " << to_topology_string(tree) << '\n';
  if (!parsed.out_path.empty()) {
    std::ofstream file(parsed.out_path, std::ios::binary);
    if (!file) throw CliError{"cannot write '" + parsed.out_path + "'"};
    file << to_topology_string(tree) << '\n';
    out << "wrote " << parsed.out_path << '\n';
  }
  if (wants_report(parsed)) {
    telemetry::RunReport report("fpopt", "anneal");
    report.add_config("seed", std::to_string(sa.seed));
    report.add_config("max_moves", std::to_string(sa.max_total_moves));
    report.add_config("lambda", telemetry::json_number(sa.lambda));
    report.add_config("incremental", sa.incremental ? "true" : "false");
    report_annealing(report, r);
    if (sa.incremental) report_cache(report, r.cache_stats);
    emit_report(report, parsed, out);
  }
  return 0;
}

constexpr const char* kUsage =
    "usage: fpopt <command> ... [flags]\n"
    "commands:\n"
    "  stats | optimize | place [--impl I] | svg <out.svg>   (args: <topology-file> <library-file>)\n"
    "  anneal <library-file> [--seed N --moves N --netlist F --lambda X --out F]\n"
    "  client --connect <socket> ...   (send requests to a running fpoptd; see docs/SERVICE.md)\n"
    "flags: --k1 N --k2 N --theta X --scap N --budget N --threads N --metric l1|l2|linf\n"
    "       --kernel scalar|avx2|auto   (row-sweep backend; results are bit-identical)\n"
    "       --incremental [--cache-mb N]   (memo-cached re-optimization; see docs)\n"
    "       --stats (run-report table) --stats-json F (JSON run report; see docs §9)\n"
    "       --trace F (Chrome trace-event JSON of the run; see docs §10)\n";

int dispatch(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.command == "stats" || parsed.command == "optimize" || parsed.command == "place") {
    return run_command(parsed, out);
  }
  if (parsed.command == "svg") return cmd_svg(parsed, out);
  if (parsed.command == "anneal") return cmd_anneal(parsed, out);
  if (parsed.command == "help" || parsed.command == "--help") {
    out << kUsage;
    return 0;
  }
  throw CliError{"unknown command '" + parsed.command + "'"};
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    const ParsedArgs parsed = parse_args(args);
    // Select the row-sweep backend for the whole process before any work
    // runs. Outputs are bit-identical either way (kernel/sweep.h), so the
    // flag is a performance/debugging knob, never a result knob — which is
    // also why it is deliberately NOT recorded as trace meta: traces from
    // both backends must diff clean (CI checks this).
    if (!kernel::set_kernel_mode(parsed.kernel_mode)) {
      throw CliError{std::string{"--kernel avx2 requested but this "} +
                     (kernel::avx2_compiled() ? "CPU lacks AVX2"
                                              : "build has FPOPT_AVX2=OFF")};
    }
    if (parsed.trace_path.empty()) return dispatch(parsed, out);

    // Arm the trace for the whole command; the session must outlive every
    // instrumented scope (pools are created and joined inside the
    // commands, so this bracket satisfies the lifecycle rule). The file
    // is written even when the command fails (e.g. a budget abort) — a
    // partial schedule is exactly what one wants to look at then.
    telemetry::TraceSession session;
    session.set_meta("tool", "fpopt");
    session.set_meta("command", parsed.command);
    session.set_meta("threads", std::to_string(parsed.options.threads));
    telemetry::trace_thread_name("main");
    const auto write_trace = [&] {
      std::ofstream file(parsed.trace_path, std::ios::binary);
      if (!file) throw CliError{"cannot write '" + parsed.trace_path + "'"};
      session.write_json(file);
    };
    try {
      const int code = dispatch(parsed, out);
      write_trace();
      return code;
    } catch (...) {
      write_trace();
      throw;
    }
  } catch (const CliError& e) {
    err << "fpopt: " << e.message << '\n' << kUsage;
    return 2;
  } catch (const ParseError& e) {
    err << "fpopt: parse error: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    err << "fpopt: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace fpopt
