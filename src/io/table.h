// Column-aligned text tables for the experiment reports.
#pragma once

#include <string>
#include <vector>

namespace fpopt {

class TextTable {
 public:
  /// Column titles; every row must supply exactly this many cells.
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header underline; numeric-looking cells right-align.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fpopt
