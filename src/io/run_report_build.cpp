#include "io/run_report_build.h"

namespace fpopt {

namespace {

std::uint64_t u64(std::size_t v) { return static_cast<std::uint64_t>(v); }

}  // namespace

void report_optimizer(telemetry::RunReport& report, const OptimizeOutcome& outcome) {
  const OptimizerStats& s = outcome.stats;
  report.set_aborted(outcome.out_of_memory);
  report.add_counter("optimizer.nodes_evaluated", u64(s.nodes_evaluated));
  report.add_counter("optimizer.total_generated", u64(s.total_generated));
  report.add_counter("optimizer.peak_stored", u64(s.peak_stored));
  report.add_counter("optimizer.final_stored", u64(s.final_stored));
  report.add_counter("optimizer.peak_transient", u64(s.peak_transient));
  report.add_counter("optimizer.peak_live", u64(s.peak_live));
  report.add_counter("optimizer.max_rlist_len", u64(s.max_rlist_len));
  report.add_counter("optimizer.max_llist_len", u64(s.max_llist_len));
  report.add_counter("optimizer.r_selection_calls", u64(s.r_selection_calls));
  report.add_counter("optimizer.l_selection_calls", u64(s.l_selection_calls));
  report.add_counter("optimizer.r_selected_away", u64(s.r_selected_away));
  report.add_counter("optimizer.l_selected_away", u64(s.l_selected_away));
  report.add_counter("optimizer.cspp_calls", u64(s.cspp_calls));
  report.add_counter("optimizer.cspp_monge_calls", u64(s.cspp_monge_calls));
  report.add_counter("optimizer.l_heuristic_prereductions", u64(s.l_heuristic_prereductions));
  report.add_gauge("optimizer.r_selection_error", s.r_selection_error);
  report.add_gauge("optimizer.l_selection_error", s.l_selection_error);
  const std::size_t pruned = s.r_selected_away + s.l_selected_away;
  report.add_gauge("optimizer.prune_ratio",
                   s.total_generated == 0
                       ? 0.0
                       : static_cast<double>(pruned) / static_cast<double>(s.total_generated));
  report.add_phases(outcome.phases);
  if (!outcome.pool_stats.workers.empty()) report.set_pool(outcome.pool_stats);
  report.set_seconds(s.seconds);
}

void report_cache(telemetry::RunReport& report, const MemoCacheStats& stats) {
  report.add_counter("cache.hits", u64(stats.hits));
  report.add_counter("cache.misses", u64(stats.misses));
  report.add_counter("cache.insertions", u64(stats.insertions));
  report.add_counter("cache.evictions", u64(stats.evictions));
  report.add_counter("cache.rollback_discards", u64(stats.rollback_discards));
  report.add_counter("cache.peak_bytes", u64(stats.peak_bytes));
  report.add_gauge("cache.hit_rate", stats.hit_rate());
}

void report_annealing(telemetry::RunReport& report, const AnnealingResult& result) {
  report.add_counter("anneal.attempts", u64(result.attempts));
  report.add_counter("anneal.moves", u64(result.moves));
  report.add_counter("anneal.accepted", u64(result.accepted));
  report.add_counter("anneal.epoch_commits", u64(result.epoch_commits));
  report.add_counter("anneal.epoch_rollbacks", u64(result.epoch_rollbacks));
  report.add_gauge("anneal.accept_ratio",
                   result.moves == 0 ? 0.0
                                     : static_cast<double>(result.accepted) /
                                           static_cast<double>(result.moves));
  report.add_phases(result.phases);
  report.set_seconds(result.seconds);
}

}  // namespace fpopt
