#include "io/svg.h"

#include <sstream>

namespace fpopt {
namespace {

/// Distinct-ish fill colors cycled per module (pastel HSL wheel).
std::string fill_color(std::size_t idx) {
  const int hue = static_cast<int>((idx * 47) % 360);
  std::ostringstream out;
  out << "hsl(" << hue << ",65%,78%)";
  return out.str();
}

}  // namespace

std::string placement_to_svg(const Placement& placement, const FloorplanTree& tree,
                             const SvgOptions& opts) {
  const double s = opts.scale;
  const double width = static_cast<double>(placement.width) * s;
  const double height = static_cast<double>(placement.height) * s;
  // SVG y grows downward; chip y grows upward: flip via y' = H - (y + h).
  const auto flip = [&](Dim y, Dim h) { return height - static_cast<double>(y + h) * s; };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width + 2 << "' height='"
      << height + 2 << "' viewBox='-1 -1 " << width + 2 << ' ' << height + 2 << "'>\n";
  svg << "  <rect x='0' y='0' width='" << width << "' height='" << height
      << "' fill='white' stroke='black' stroke-width='1.5'/>\n";

  for (const ModulePlacement& m : placement.rooms) {
    const std::string& name = tree.module(m.module_id).name;
    // Room outline (the basic rectangle).
    svg << "  <rect x='" << static_cast<double>(m.room.x) * s << "' y='"
        << flip(m.room.y, m.room.h) << "' width='" << static_cast<double>(m.room.w) * s
        << "' height='" << static_cast<double>(m.room.h) * s
        << "' fill='" << (opts.shade_waste ? "hsl(0,0%,92%)" : "none")
        << "' stroke='dimgray' stroke-width='0.8'/>\n";
    // Module implementation, anchored at the room's bottom-left corner.
    svg << "  <rect x='" << static_cast<double>(m.room.x) * s << "' y='"
        << flip(m.room.y, m.impl.h) << "' width='" << static_cast<double>(m.impl.w) * s
        << "' height='" << static_cast<double>(m.impl.h) * s << "' fill='"
        << fill_color(m.module_id) << "' stroke='black' stroke-width='0.5'/>\n";
    if (opts.label_rooms) {
      const double cx = (static_cast<double>(m.room.x) + static_cast<double>(m.room.w) / 2) * s;
      const double cy = height - (static_cast<double>(m.room.y) +
                                  static_cast<double>(m.room.h) / 2) * s;
      svg << "  <text x='" << cx << "' y='" << cy
          << "' font-size='" << std::max(6.0, s * 1.6)
          << "' text-anchor='middle' dominant-baseline='central' font-family='monospace'>"
          << name << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace fpopt
