// SVG rendering of placements — the standard way floorplan results are
// inspected. Pure string generation, no external dependencies.
#pragma once

#include <string>

#include "floorplan/tree.h"
#include "optimize/placement.h"

namespace fpopt {

struct SvgOptions {
  double scale = 6.0;        ///< pixels per grid unit
  bool label_rooms = true;   ///< print module names inside rooms
  bool shade_waste = true;   ///< hatch the slack between room and module
};

/// Standalone SVG document showing every room (outline), every module
/// implementation (filled, bottom-left anchored inside its room), and the
/// chip boundary.
[[nodiscard]] std::string placement_to_svg(const Placement& placement,
                                           const FloorplanTree& tree,
                                           const SvgOptions& opts = {});

}  // namespace fpopt
