// Builders that translate the subsystems' stats structs into RunReport
// sections, keeping the counter naming scheme ("<subsystem>.<name>", see
// docs/ALGORITHMS.md §9) in exactly one place. Used by the fpopt CLI, the
// fpopt_audit tool and the bench harnesses.
#pragma once

#include "cache/memo_cache.h"
#include "optimize/optimizer.h"
#include "telemetry/run_report.h"
#include "topology/annealing.h"

namespace fpopt {

/// Append the optimizer sections: "optimizer.*" counters, the derived
/// gauges (selection errors, prune ratio), the run phases, the pool stats
/// (parallel runs only), the abort flag and the wall time.
void report_optimizer(telemetry::RunReport& report, const OptimizeOutcome& outcome);

/// Append "cache.*" memo-cache counters plus the hit-rate gauge.
void report_cache(telemetry::RunReport& report, const MemoCacheStats& stats);

/// Append "anneal.*" counters/gauges, the annealing phases and wall time.
void report_annealing(telemetry::RunReport& report, const AnnealingResult& result);

}  // namespace fpopt
