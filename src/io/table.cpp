#include "io/table.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <sstream>

namespace fpopt {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '+' ||
          c == '%' || c == '>' || c == ' ' || c == 'e')) {
      return false;
    }
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << " | ";
      const std::size_t pad = widths[c] - cells[c].size();
      if (align_numeric && looks_numeric(cells[c])) {
        out << std::string(pad, ' ') << cells[c];
      } else {
        out << cells[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit(header_, false);
  std::size_t total = header_.empty() ? 0 : 3 * (header_.size() - 1);
  for (const std::size_t w : widths) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
  return out.str();
}

}  // namespace fpopt
