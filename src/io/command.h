// The shared execution core of the fpopt CLI and the fpoptd service.
//
// One stats / optimize / place command runs over an already-parsed
// floorplan tree and prints exactly the standalone CLI's output text —
// the daemon builds its responses through this same code path, so a
// daemon response body and a standalone `fpopt` stdout are byte-identical
// by construction (the service equivalence suite enforces it end to end).
//
// A CommandEnv injects the long-lived resources a daemon shares across
// requests: a CacheView (a CacheSession over the cross-request
// SharedMemoCache) and a process-wide ThreadPool. Both default to null,
// which reproduces the standalone behavior — a run-local cold cache in
// incremental mode and a run-owned pool for threads > 0.
#pragma once

#include <functional>
#include <optional>
#include <ostream>
#include <string>

#include "cache/memo_cache.h"
#include "floorplan/tree.h"
#include "optimize/optimizer.h"
#include "optimize/placement.h"
#include "telemetry/run_report.h"

namespace fpopt {

class ThreadPool;  // src/runtime/thread_pool.h

/// A user-facing command failure (bad arguments, over-budget abort). The
/// CLI renders it on stderr with usage; the daemon maps it to a
/// machine-readable error response.
struct CommandError {
  std::string message;
  bool over_budget = false;  ///< the run aborted over the implementation budget
};

/// Everything a command needs beyond the tree itself. Mirrors the CLI
/// flag surface (io/cli.h) minus file paths.
struct CommandSpec {
  std::string command;  ///< "stats" | "optimize" | "place"
  OptimizerOptions options;
  std::optional<std::size_t> impl_index;  ///< place: unset = min area
  /// Byte budget of the run-local cache created when `options.incremental`
  /// is set and no shared cache is injected.
  std::size_t cache_bytes = MemoCache::kDefaultByteBudget;
};

/// Shared resources injected by a long-running host; both null for the
/// standalone CLI.
struct CommandEnv {
  CacheView* cache = nullptr;  ///< overrides the run-local incremental cache
  ThreadPool* pool = nullptr;  ///< overrides the run-owned pool (threads > 0)
  /// Invoked once the run report is populated — after the optimize step,
  /// before any command output and before an over-budget abort surfaces.
  /// The CLI renders --stats / --stats-json here, which is what puts the
  /// stats table ahead of the command output, byte-compatibly with every
  /// release so far. Ignored when no report was requested.
  std::function<void()> report_ready;
};

/// Run the optimizer for a command, filling `report` (when non-null) with
/// the same sections `fpopt --stats` renders — even for an over-budget
/// abort, which is reported (aborted=true) and then thrown as a
/// CommandError with over_budget set, the CLI's exact message included.
[[nodiscard]] OptimizeOutcome optimize_for_command(const CommandSpec& spec,
                                                   const FloorplanTree& tree,
                                                   const CommandEnv& env,
                                                   telemetry::RunReport* report);

/// Resolve the implementation a placement command traces: the requested
/// index (throws CommandError when out of range) or the min-area one.
[[nodiscard]] Placement trace_command_placement(const FloorplanTree& tree,
                                                const OptimizeOutcome& outcome,
                                                std::optional<std::size_t> impl_index);

/// Run one stats / optimize / place command, writing the standalone CLI's
/// byte-exact stdout text to `out`. Throws CommandError on failure (the
/// report, when requested, is still filled as far as the run got).
void execute_command(const CommandSpec& spec, const FloorplanTree& tree,
                     const CommandEnv& env, std::ostream& out,
                     telemetry::RunReport* report);

/// Append the command's knobs as report config entries (the scheme the
/// CLI, the daemon and the benches all share).
void add_command_config(telemetry::RunReport& report, const CommandSpec& spec);

}  // namespace fpopt
