// error(l_i, l_j) for L-shaped blocks (Section 4.3 of the paper).
//
// Implementations in one irreducible L-list are points of R^4 whose
// pairwise distance measures shape difference; w2 is constant within a
// list so only (w1, h1, h2) contribute. The cost of discarding l_q between
// two kept neighbors l_i < l_q < l_j is its distance to the nearer one
// (Lemma 3), and
//     error(l_i, l_j) = sum_{i<q<j} min(dist(l_i,l_q), dist(l_q,l_j)).
//
// Footnote 2 of the paper allows any L_p metric; we provide L1 (the
// paper's Manhattan default), L2 and Linf.
//
// Evaluators:
//  * compute_l_error_table: Algorithm Compute_L_Error, the literal O(n^3)
//    triple loop, any metric.
//  * L1ErrorOracle: for the L1 metric the chain is isometric to points on
//    a line: along an irreducible L-list w1 decreases while h1, h2 grow,
//    so for i < j
//        dist_1(l_i, l_j) = (w1_i - w1_j) + (h1_j - h1_i) + (h2_j - h2_i)
//                         = s_j - s_i,      s_q := -w1_q + h1_q + h2_q,
//    with s non-decreasing. error(i, j) then splits at the midpoint
//    (s_i + s_j)/2 and evaluates from prefix sums in O(log n) per query.
//    The resulting cost is the classic concave "nearest selected point on
//    a line" cost, which satisfies the quadrangle inequality (verified by
//    a randomized property test), enabling the Monge DP.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "geometry/l_impl.h"
#include "geometry/types.h"

namespace fpopt {

class ThreadPool;

/// Which L_p metric measures shape difference (paper footnote 2).
enum class LpMetric { L1, L2, LInf };

/// Distance between two implementations of one block under `metric`.
[[nodiscard]] Weight l_dist(const LImpl& a, const LImpl& b, LpMetric metric);

/// Algorithm Compute_L_Error: all error(l_i, l_j), i < j, in a flat
/// triangular table (see triangular_index in r_error.h). O(n^3) time.
/// `chain` must be an irreducible L-list. A non-null `pool` computes the
/// rows concurrently (each row writes its own triangular slice and the
/// per-entry summation order is unchanged, so the table is bit-identical
/// for every worker count).
[[nodiscard]] std::vector<Weight> compute_l_error_table(std::span<const LImpl> chain,
                                                        LpMetric metric,
                                                        ThreadPool* pool = nullptr);

/// O(log n)-per-query error(i, j) evaluation, L1 metric only.
class L1ErrorOracle {
 public:
  explicit L1ErrorOracle(std::span<const LImpl> chain);

  [[nodiscard]] Weight error(std::size_t i, std::size_t j) const;

  /// DP-weight view of error(): what l_selection hands to interval_cspp.
  [[nodiscard]] Weight operator()(std::size_t i, std::size_t j) const { return error(i, j); }

  /// Batched row: out[t] = error(i_lo + t, j) for t in [0, i_end - i_lo).
  /// The split point m(i, j) is non-decreasing in i (the threshold
  /// s_i + s_j grows with i while s is non-decreasing), so one two-pointer
  /// pass fills the row in O(row + j - i_lo) total instead of a binary
  /// search per entry. Chooses exactly the same m as error()'s
  /// upper_bound, hence bit-identical values.
  void fill_row(std::size_t j, std::size_t i_lo, std::size_t i_end, Weight* out) const;

  [[nodiscard]] std::size_t size() const { return s_.size(); }

 private:
  std::vector<Area> s_;       // line coordinate of each chain element
  std::vector<Area> prefix_;  // prefix_[q] = s_0 + ... + s_{q-1}
};

}  // namespace fpopt
