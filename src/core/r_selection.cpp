#include "core/r_selection.h"

#include <cassert>
#include <numeric>

#include "core/interval_cspp.h"
#include "core/r_error.h"

#if defined(FPOPT_VALIDATE)
#include "check/check_certificate.h"  // FPOPT-LINT-OK(layering): FPOPT_VALIDATE post-condition hook; compiled to no-ops by default
#endif

namespace fpopt {

SelectionResult r_selection(const RList& list, std::size_t k, SelectionDp dp,
                            ThreadPool* pool) {
  const std::size_t n = list.size();
  if (k == 0 || k >= n) {
    SelectionResult all;
    all.kept.resize(n);
    std::iota(all.kept.begin(), all.kept.end(), std::size_t{0});
    return all;
  }
  assert(k >= 2 && "a reduced staircase must keep both endpoints");

  // The oracle itself is the DP weight (operator() + fill_row), so the
  // selector takes interval_cspp's batched SoA row path.
  const RErrorOracle oracle(list.impls());

  const IntervalCsppResult path =
      (dp == SelectionDp::Generic)
          ? interval_constrained_shortest_path(n, k, oracle, pool)
          : interval_constrained_shortest_path_monge(n, k, oracle, pool);
  const SelectionResult result{path.indices, path.weight};
#if defined(FPOPT_VALIDATE)
  enforce(check_selection_certificate(list, result, k), "r_selection");
#endif
  return result;
}

SelectionResult r_selection_for_error(const RList& list, Weight max_error, SelectionDp dp,
                                      ThreadPool* pool) {
  assert(max_error >= 0);
  const std::size_t n = list.size();
  if (n <= 2) return r_selection(list, n, dp, pool);

  // Smallest k in [2, n] with optimal_error(k) <= max_error; the optimal
  // error is non-increasing in k, so plain binary search applies.
  std::size_t lo = 2, hi = n;  // error(n) == 0 <= max_error always holds
  SelectionResult best = r_selection(list, n, dp, pool);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    SelectionResult cand = r_selection(list, mid, dp, pool);
    if (cand.error <= max_error) {
      best = std::move(cand);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // The minimal k may never have been evaluated (e.g. when the search
  // narrowed from the failing side); make sure the result matches it.
  if (best.kept.size() != lo) best = r_selection(list, lo, dp, pool);
  return best;
}

}  // namespace fpopt
