#include "core/r_error.h"

#include <cassert>

#include "geometry/staircase.h"

namespace fpopt {

std::vector<Area> compute_r_error_table(std::span<const RectImpl> list) {
  assert(is_irreducible_r_list(list));
  const std::size_t n = list.size();
  std::vector<Area> table(n >= 2 ? n * (n - 1) / 2 : 0, 0);

  // error(i, i+1) = 0 is the zero-initialization above.
  for (std::size_t l = 2; l + 1 <= n; ++l) {
    for (std::size_t i = 0; i + l < n; ++i) {
      const Area prev = table[triangular_index(n, i, i + l - 1)];
      const Area strip =
          (list[i].w - list[i + l - 1].w) * (list[i + l].h - list[i + l - 1].h);
      table[triangular_index(n, i, i + l)] = prev + strip;
    }
  }
  return table;
}

RErrorOracle::RErrorOracle(std::span<const RectImpl> list) {
  assert(is_irreducible_r_list(list));
  const std::size_t n = list.size();
  widths_.resize(n);
  heights_.resize(n);
  prefix_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    widths_[i] = list[i].w;
    heights_[i] = list[i].h;
  }
  for (std::size_t m = 1; m < n; ++m) {
    prefix_[m] = prefix_[m - 1] + (widths_[m - 1] - widths_[m]) * heights_[m];
  }
}

}  // namespace fpopt
