// error(r_i, r_j) for rectangular blocks (Section 4.2 of the paper).
//
// For an irreducible R-list {r_1..r_n}, error(r_i, r_j) is the staircase
// area lost when every corner strictly between r_i and r_j is discarded.
// Two evaluators:
//  * compute_r_error_table: the paper's Algorithm Compute_R_Error, the
//    O(n^2) incremental recurrence
//        error(i, i+1)   = 0
//        error(i, i+l)   = error(i, i+l-1) + (w_i - w_{i+l-1})(h_{i+l} - h_{i+l-1})
//  * RErrorOracle: an O(n)-preprocessing, O(1)-per-query closed form
//        error(i, j) = h_j (w_i - w_j) - (G(j) - G(i)),
//        G(m) = sum_{q<m} (w_q - w_{q+1}) h_{q+1},
//    obtained by splitting the vertical-strip sum; this is what lets
//    R_Selection run without the quadratic table on large lists.
//
// The oracle cost is Monge: for i <= i' <= j <= j',
//   [error(i,j') - error(i,j)] - [error(i',j') - error(i',j)]
//     = (w_i - w_{i'})(h_{j'} - h_j) >= 0,
// which justifies the divide-and-conquer DP in interval_cspp.h.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/rect_impl.h"
#include "geometry/types.h"
#include "kernel/sweep.h"

namespace fpopt {

/// Flat upper-triangular table: entry (i, j), i < j, lives at
/// triangular_index(n, i, j).
[[nodiscard]] constexpr std::size_t triangular_index(std::size_t n, std::size_t i,
                                                     std::size_t j) {
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

/// Algorithm Compute_R_Error: all error(r_i, r_j), O(n^2) time and space.
/// `list` must be an irreducible R-list.
[[nodiscard]] std::vector<Area> compute_r_error_table(std::span<const RectImpl> list);

/// Constant-time error(i, j) queries backed by one prefix-sum pass.
class RErrorOracle {
 public:
  explicit RErrorOracle(std::span<const RectImpl> list);

  [[nodiscard]] Area error(std::size_t i, std::size_t j) const {
    return heights_[j] * (widths_[i] - widths_[j]) - (prefix_[j] - prefix_[i]);
  }

  /// DP-weight view of error(): what the selectors hand to interval_cspp.
  [[nodiscard]] Weight operator()(std::size_t i, std::size_t j) const {
    return static_cast<Weight>(error(i, j));
  }

  /// Batched row: out[t] = (*this)(i_lo + t, j) for t in [0, i_end - i_lo).
  /// Same closed form as error(), evaluated by the SoA sweep kernel
  /// (kernel/sweep.h) — bit-identical to per-query evaluation in both
  /// kernel backends. Enables the vectorized DP path in interval_cspp.h.
  void fill_row(std::size_t j, std::size_t i_lo, std::size_t i_end, Weight* out) const {
    kernel::r_error_row(widths_.data() + i_lo, prefix_.data() + i_lo, i_end - i_lo,
                        widths_[j], heights_[j], prefix_[j], out);
  }

  /// Fused DP relaxation: the first strict minimum of
  /// prev_row[t] + (*this)(i_lo + t, j) over t in [0, i_end - i_lo),
  /// where prev_row points at the DP layer entry for i_lo. One pass, no
  /// scratch row; bit-identical to fill_row + argmin_add and to the
  /// literal scan (kernel/sweep.h contract).
  [[nodiscard]] kernel::RowArgmin best_over_row(const Weight* prev_row, std::size_t j,
                                                std::size_t i_lo, std::size_t i_end) const {
    return kernel::argmin_r_error_row(prev_row, widths_.data() + i_lo,
                                      prefix_.data() + i_lo, i_end - i_lo, widths_[j],
                                      heights_[j], prefix_[j]);
  }

  [[nodiscard]] std::size_t size() const { return widths_.size(); }

 private:
  std::vector<Dim> widths_;
  std::vector<Dim> heights_;
  std::vector<Area> prefix_;  // G(m)
};

}  // namespace fpopt
