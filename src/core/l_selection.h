// Algorithm L_Selection (Section 4.3 of the paper) plus the Section 5
// engineering around it.
//
// Optimally selects k of the n implementations of one irreducible L-list,
// minimizing ERROR(L, L') = sum of each discarded implementation's
// distance to the nearest kept one (Eq. (3)), by reduction to the
// constrained shortest path problem. The paper's complexity is O(n^3),
// dominated by Compute_L_Error; with the L1 metric we additionally provide
// an O(k n log n) path through the line-isometry oracle (see l_error.h).
//
// Section 5 speed-ups, applied per list by reduce_l_list / reduce_l_set:
//  * the heuristic pre-reduction: when a list is longer than S, first
//    uniformly subsample it down to S (keeping both endpoints), then run
//    the optimal selector;
//  * the trigger: reduce an L-block only when K2/X < theta, X the block's
//    current implementation count;
//  * the per-list budget floor(K2 * |L| / N) for a block whose N
//    implementations are spread over several lists.
#pragma once

#include <cstddef>
#include <vector>

#include "core/l_error.h"
#include "core/r_selection.h"  // SelectionResult, SelectionDp
#include "shape/l_list.h"
#include "shape/l_list_set.h"

namespace fpopt {

/// Which cheap pre-reduction implements the paper's unspecified
/// "heuristic version of L_Selection" (Section 5).
enum class LHeuristic {
  UniformSubsample,  ///< evenly spaced positions, endpoints kept
  GreedyDrop,        ///< repeatedly drop the interior element whose
                     ///< Lemma-3 cost against its current neighbors is
                     ///< smallest (heap + doubly linked list)
};

struct LSelectionOptions {
  LpMetric metric = LpMetric::L1;
  /// Auto: Monge DP with the L1 oracle when metric == L1 (cross-checked
  /// against Generic in the tests), otherwise the literal table-based DP.
  SelectionDp dp = SelectionDp::Auto;
  /// Section 5's S: pre-reduce any list longer than this with the cheap
  /// heuristic before running the optimal selector. 0 disables.
  std::size_t heuristic_cap = 0;
  LHeuristic heuristic = LHeuristic::UniformSubsample;
};

/// Optimal k-subset of one irreducible L-list (indices into `chain`).
/// k == 0 or k >= size keeps everything. Endpoints always survive.
/// A non-null `pool` parallelizes the error-table precomputation and the
/// DP layers; results are bit-identical for every worker count.
[[nodiscard]] SelectionResult l_selection(const LList& chain, std::size_t k,
                                          const LSelectionOptions& opts = {},
                                          ThreadPool* pool = nullptr);

/// The unspecified "heuristic version of L_Selection" used for the S cap:
/// evenly spaced positions of 0..n-1 including both endpoints.
[[nodiscard]] std::vector<std::size_t> heuristic_subsample_indices(std::size_t n,
                                                                   std::size_t target);

/// Greedy alternative: repeatedly drop the interior element with the
/// smallest Lemma-3 cost against its surviving neighbors. Returns the
/// kept indices (strictly increasing, endpoints included). O(n log n).
[[nodiscard]] std::vector<std::size_t> greedy_drop_indices(const LList& chain,
                                                           std::size_t target, LpMetric metric);

/// Reduce one chain to `k` entries (heuristic cap first if configured,
/// then optimal selection). Returns the total selection error paid.
[[nodiscard]] Weight reduce_l_list(LList& chain, std::size_t k, const LSelectionOptions& opts,
                                   ThreadPool* pool = nullptr);

struct LReductionReport {
  bool triggered = false;      ///< false when X <= K2/theta (Section 5 trigger)
  std::size_t before = 0;      ///< implementations before reduction
  std::size_t after = 0;       ///< implementations after reduction
  Weight total_error = 0;      ///< sum of per-list selection errors
  std::size_t chains_reduced = 0;  ///< lists the optimal selector ran on
  std::size_t cspp_calls = 0;      ///< interval-CSPP invocations
  std::size_t cspp_monge_calls = 0;  ///< of those, through the Monge DP
  std::size_t heuristic_prereductions = 0;  ///< Section-5 S-cap pre-passes
};

/// Reduce an L-block's whole implementation store from N = set.total_size()
/// to (about) K2, splitting the budget across lists in proportion to their
/// sizes: each list of length |L| gets max(2, floor(K2 |L| / N)).
/// theta in (0, 1]: reduction only happens when K2 < theta * N.
/// A non-null `pool` reduces the chains concurrently (each chain's
/// reduction is independent; the reported total error is summed in chain
/// order, so the report is bit-identical for every worker count).
[[nodiscard]] LReductionReport reduce_l_set(LListSet& set, std::size_t k2, double theta,
                                            const LSelectionOptions& opts = {},
                                            ThreadPool* pool = nullptr);

}  // namespace fpopt
