#include "core/l_selection.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "core/interval_cspp.h"
#include "core/r_error.h"  // triangular_index
#include "runtime/parallel.h"
#include "telemetry/trace.h"

#if defined(FPOPT_VALIDATE)
#include "check/check_certificate.h"  // FPOPT-LINT-OK(layering): FPOPT_VALIDATE post-condition hook; compiled to no-ops by default
#endif

namespace fpopt {
namespace {

SelectionResult keep_everything(std::size_t n) {
  SelectionResult all;
  all.kept.resize(n);
  std::iota(all.kept.begin(), all.kept.end(), std::size_t{0});
  return all;
}

/// ERROR(L, L') of a concrete kept set, evaluated against the *original*
/// chain by Lemma 3 (each discarded element pays its distance to the
/// nearer kept neighbor). Used to report the true cost after the
/// heuristic + optimal two-stage reduction.
Weight l_subset_error(std::span<const LImpl> chain, std::span<const std::size_t> kept,
                      LpMetric metric) {
  assert(kept.size() >= 2 && kept.front() == 0 && kept.back() == chain.size() - 1);
  Weight total = 0;
  for (std::size_t seg = 0; seg + 1 < kept.size(); ++seg) {
    const LImpl& left = chain[kept[seg]];
    const LImpl& right = chain[kept[seg + 1]];
    for (std::size_t q = kept[seg] + 1; q < kept[seg + 1]; ++q) {
      total += std::min(l_dist(left, chain[q], metric), l_dist(chain[q], right, metric));
    }
  }
  return total;
}

}  // namespace

SelectionResult l_selection(const LList& chain, std::size_t k, const LSelectionOptions& opts,
                            ThreadPool* pool) {
  const std::size_t n = chain.size();
  if (k == 0 || k >= n) return keep_everything(n);
  assert(k >= 2 && "a reduced L-list must keep both chain endpoints");

  const std::vector<LImpl> shapes = chain.shapes();

  SelectionResult result;
  if (opts.metric == LpMetric::L1) {
    // Passed as the weight directly: operator() + fill_row give the DP
    // its batched two-pointer row path (see l_error.h).
    const L1ErrorOracle oracle(shapes);
    const IntervalCsppResult path =
        (opts.dp == SelectionDp::Generic)
            ? interval_constrained_shortest_path(n, k, oracle, pool)
            : interval_constrained_shortest_path_monge(n, k, oracle, pool);
    result = {path.indices, path.weight};
  } else {
    // Non-L1 metrics: the paper's table-based path (Compute_L_Error is the
    // O(n^3) dominant cost of Theorem 3). Monge is only established for L1,
    // so Auto falls back to the literal DP here.
    const std::vector<Weight> table = compute_l_error_table(shapes, opts.metric, pool);
    const auto weight = [&table, n](std::size_t i, std::size_t j) {
      return table[triangular_index(n, i, j)];
    };
    const IntervalCsppResult path = interval_constrained_shortest_path(n, k, weight, pool);
    result = {path.indices, path.weight};
  }
#if defined(FPOPT_VALIDATE)
  enforce(check_l_selection_certificate(chain, result, k, opts.metric), "l_selection");
#endif
  return result;
}

std::vector<std::size_t> greedy_drop_indices(const LList& chain, std::size_t target,
                                             LpMetric metric) {
  assert(target >= 2);
  const std::size_t n = chain.size();
  if (target >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }
  const std::vector<LImpl> shapes = chain.shapes();

  // Doubly linked list over surviving positions + lazy min-heap of
  // (cost, position, version); stale heap entries are skipped.
  std::vector<std::size_t> prev(n), next(n);
  std::vector<std::uint32_t> version(n, 0);
  std::vector<bool> alive(n, true);
  for (std::size_t i = 0; i < n; ++i) {
    prev[i] = i == 0 ? n : i - 1;
    next[i] = i + 1;
  }

  struct HeapEntry {
    Weight cost;
    std::size_t pos;
    std::uint32_t version;
    bool operator>(const HeapEntry& o) const { return cost > o.cost; }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  const auto cost_of = [&](std::size_t i) {
    return std::min(l_dist(shapes[prev[i]], shapes[i], metric),
                    l_dist(shapes[i], shapes[next[i]], metric));
  };
  for (std::size_t i = 1; i + 1 < n; ++i) heap.push({cost_of(i), i, 0});

  std::size_t survivors = n;
  while (survivors > target && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (!alive[top.pos] || top.version != version[top.pos]) continue;
    // Drop it; its neighbors' costs change.
    alive[top.pos] = false;
    --survivors;
    const std::size_t l = prev[top.pos], r = next[top.pos];
    next[l] = r;
    prev[r] = l;
    for (const std::size_t nb : {l, r}) {
      if (nb == 0 || nb == n - 1) continue;  // endpoints never dropped
      heap.push({cost_of(nb), nb, ++version[nb]});
    }
  }

  std::vector<std::size_t> kept;
  kept.reserve(target);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) kept.push_back(i);
  }
  return kept;
}

std::vector<std::size_t> heuristic_subsample_indices(std::size_t n, std::size_t target) {
  assert(target >= 2);
  std::vector<std::size_t> idx;
  if (target >= n) {
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    return idx;
  }
  idx.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    // Evenly spaced floor positions; strictly increasing because
    // (n-1)/(target-1) >= 1, and i == target-1 lands exactly on n-1.
    idx.push_back(i * (n - 1) / (target - 1));
  }
  return idx;
}

Weight reduce_l_list(LList& chain, std::size_t k, const LSelectionOptions& opts,
                     ThreadPool* pool) {
  const std::size_t n = chain.size();
  if (k == 0 || n <= k) return 0;

  const LList original = chain;
  std::vector<std::size_t> survivors;

  if (opts.heuristic_cap > 0 && n > opts.heuristic_cap &&
      opts.heuristic_cap > std::max<std::size_t>(k, 2)) {
    // Two-stage reduction: cheap heuristic to S, then optimal to k.
    const std::vector<std::size_t> coarse =
        opts.heuristic == LHeuristic::GreedyDrop
            ? greedy_drop_indices(chain, opts.heuristic_cap, opts.metric)
            : heuristic_subsample_indices(n, opts.heuristic_cap);
    const LList coarse_chain = chain.subset(coarse);
    const SelectionResult sel = l_selection(coarse_chain, k, opts, pool);
    survivors.reserve(sel.kept.size());
    for (std::size_t pos : sel.kept) survivors.push_back(coarse[pos]);
  } else {
    survivors = l_selection(chain, k, opts, pool).kept;
  }

  chain = original.subset(survivors);
  const Weight error = l_subset_error(original.shapes(), survivors, opts.metric);
#if defined(FPOPT_VALIDATE)
  // The two-stage (heuristic + optimal) reduction still has to hand back a
  // well-formed selection whose reported cost matches Lemma 3 against the
  // *original* chain.
  enforce(check_l_selection_certificate(original, SelectionResult{survivors, error}, k,
                                        opts.metric, "reduce_l_list"),
          "reduce_l_list");
#endif
  return error;
}

LReductionReport reduce_l_set(LListSet& set, std::size_t k2, double theta,
                              const LSelectionOptions& opts, ThreadPool* pool) {
  // id = set size before reduction (deterministic); untriggered calls
  // still record a (cheap) span so trace diffs see every invocation.
  telemetry::TraceSpan span(telemetry::TraceCat::kKernel, "reduce_l_set", set.total_size(),
                            k2);
  LReductionReport report;
  report.before = set.total_size();
  report.after = set.total_size();

  const std::size_t n_total = set.total_size();
  if (k2 == 0 || n_total <= k2) return report;
  // Section 5 trigger: only reduce when K2/X < theta.
  if (!(static_cast<double>(k2) / static_cast<double>(n_total) < theta)) return report;

  report.triggered = true;
  const std::span<const LList> lists = set.lists();
  std::vector<LList> reduced(lists.size());
  std::vector<Weight> errors(lists.size(), 0);
  // Chains reduce independently; run them concurrently and let each chain
  // also use the pool internally for its error table / DP layers. The
  // per-chain errors are summed in chain order below, so the report (a
  // sum of doubles) does not depend on completion order.
  parallel_for(pool, 0, lists.size(), 1, [&](std::size_t i) {
    LList copy = lists[i];
    const std::size_t budget =
        std::max<std::size_t>(2, k2 * lists[i].size() / n_total);  // floor(K2 |L| / N)
    errors[i] = reduce_l_list(copy, budget, opts, pool);
    reduced[i] = std::move(copy);
  });
  for (const Weight e : errors) report.total_error += e;
  // Counters are derived from the same deterministic per-chain conditions
  // reduce_l_list applies, so the report does not depend on scheduling.
  for (std::size_t i = 0; i < lists.size(); ++i) {
    const std::size_t budget = std::max<std::size_t>(2, k2 * lists[i].size() / n_total);
    if (lists[i].size() <= budget) continue;
    ++report.chains_reduced;
    ++report.cspp_calls;
    if (opts.metric == LpMetric::L1 && opts.dp != SelectionDp::Generic) {
      ++report.cspp_monge_calls;
    }
    if (opts.heuristic_cap > 0 && lists[i].size() > opts.heuristic_cap &&
        opts.heuristic_cap > std::max<std::size_t>(budget, 2)) {
      ++report.heuristic_prereductions;
    }
  }
  set.replace_lists(std::move(reduced));
  report.after = set.total_size();
  return report;
}

}  // namespace fpopt
