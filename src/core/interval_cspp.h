// Constrained shortest path specialized to the complete interval DAG.
//
// Both selection algorithms build the same graph shape: vertices are the
// list positions 0..n-1 and there is an edge (i, j) for every i < j, with
// weight error(i, j). The constrained shortest path from 0 to n-1 with
// exactly k vertices is then the optimal k-subset that keeps both
// endpoints. Specializing the DP to this DAG avoids materializing the
// O(n^2) edges: weights are queried through a callable.
//
// Two evaluators are provided:
//  * interval_constrained_shortest_path: the literal layered DP,
//    O(k n^2) weight queries (the paper's complexity).
//  * interval_constrained_shortest_path_monge: divide-and-conquer row
//    minima, O(k n log n) queries, *exact* whenever the weight satisfies
//    the quadrangle inequality
//        w(i,j) + w(i',j') <= w(i,j') + w(i',j)   for i <= i' <= j <= j'.
//    The staircase area cost of R_Selection is Monge (see r_error.h), and
//    so is the L1 chain cost of L_Selection; tests cross-check both
//    evaluators on random inputs.
//
// Both evaluators optionally run their per-layer work on a ThreadPool:
// the literal DP splits the layer's row range across workers (each row's
// predecessor scan is independent), and the Monge divide-and-conquer
// spawns its two independent half-intervals as tasks. Every DP cell is
// computed by exactly the same scan as in serial mode and written to its
// own slot, so results are bit-identical for every worker count. The
// weight callable must be safe to invoke concurrently (the oracles in
// r_error.h / l_error.h are: const queries over immutable prefix sums).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/types.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "telemetry/trace.h"

namespace fpopt {

struct IntervalCsppResult {
  std::vector<std::size_t> indices;  ///< k selected positions, front()==0, back()==n-1
  Weight weight = 0;
};

namespace detail {

/// Shared path-retrieval: parent[l][j] = predecessor of j on the best
/// l-vertex path ending at j.
inline IntervalCsppResult retrieve_interval_path(
    const std::vector<std::vector<std::uint32_t>>& parent, std::size_t n, std::size_t k,
    Weight total) {
  IntervalCsppResult out;
  out.weight = total;
  out.indices.resize(k);
  std::size_t j = n - 1;
  for (std::size_t l = k; l >= 2; --l) {
    out.indices[l - 1] = j;
    j = parent[l][j];
  }
  assert(j == 0);
  out.indices[0] = 0;
  return out;
}

}  // namespace detail

/// Literal layered DP over the complete interval DAG.
/// `weight(i, j)` must be valid for all 0 <= i < j <= n-1 and non-negative.
/// Preconditions: n >= 2, 2 <= k <= n. A non-null `pool` splits each
/// layer's rows across workers (identical results, see header comment).
template <typename WeightFn>
[[nodiscard]] IntervalCsppResult interval_constrained_shortest_path(std::size_t n, std::size_t k,
                                                                    WeightFn&& weight,
                                                                    ThreadPool* pool = nullptr) {
  assert(n >= 2 && k >= 2 && k <= n);
  // Kernel spans are identified by problem size, never by which node (or
  // which reduce_l_set chain) called them: the caller's identity is
  // thread-local context that parallel_for would smear across workers,
  // while (n, k) is a pure function of the input.
  telemetry::TraceSpan span(telemetry::TraceCat::kKernel, "cspp", n, k);

  std::vector<Weight> prev(n, kInfiniteWeight);
  std::vector<Weight> cur(n, kInfiniteWeight);
  std::vector<std::vector<std::uint32_t>> parent(k + 1, std::vector<std::uint32_t>(n, 0));

  // A row j scans O(j) predecessors; size chunks so each task does a few
  // thousand weight queries regardless of n.
  const std::size_t row_grain = std::max<std::size_t>(8, 8192 / std::max<std::size_t>(n, 1));

  prev[0] = 0;  // layer 1: only the first element is reachable
  for (std::size_t l = 2; l <= k; ++l) {
    // With exactly l vertices used and k - l still to come, position j must
    // satisfy j >= l-1 and j <= n-1-(k-l).
    const std::size_t j_lo = l - 1;
    const std::size_t j_hi = n - 1 - (k - l);
    std::fill(cur.begin(), cur.end(), kInfiniteWeight);
    std::vector<std::uint32_t>& parent_row = parent[l];
    parallel_for(pool, j_lo, j_hi + 1, row_grain, [&](std::size_t j) {
      Weight best = kInfiniteWeight;
      std::uint32_t best_i = 0;
      for (std::size_t i = l - 2; i < j; ++i) {
        if (prev[i] == kInfiniteWeight) continue;
        const Weight cand = prev[i] + static_cast<Weight>(weight(i, j));
        if (cand < best) {
          best = cand;
          best_i = static_cast<std::uint32_t>(i);
        }
      }
      cur[j] = best;
      parent_row[j] = best_i;
    });
    std::swap(prev, cur);
  }

  assert(prev[n - 1] != kInfiniteWeight);
  return detail::retrieve_interval_path(parent, n, k, prev[n - 1]);
}

namespace detail {

/// Divide-and-conquer row-minima for one DP layer: for each j in
/// [j_lo, j_hi] find argmin_{i in [i_lo, min(i_hi, j-1)]} prev[i] + w(i,j),
/// relying on argmin monotonicity (valid for Monge weights).
template <typename WeightFn>
void monge_layer(const std::vector<Weight>& prev, std::vector<Weight>& cur,
                 std::vector<std::uint32_t>& parent_row, WeightFn& weight, std::size_t j_lo,
                 std::size_t j_hi, std::size_t i_lo, std::size_t i_hi) {
  if (j_lo > j_hi) return;
  const std::size_t j_mid = j_lo + (j_hi - j_lo) / 2;

  Weight best = kInfiniteWeight;
  std::size_t best_i = i_lo;
  const std::size_t i_end = std::min(i_hi, j_mid - 1);
  for (std::size_t i = i_lo; i <= i_end; ++i) {
    const Weight cand = prev[i] + static_cast<Weight>(weight(i, j_mid));
    if (cand < best) {
      best = cand;
      best_i = i;
    }
  }
  cur[j_mid] = best;
  parent_row[j_mid] = static_cast<std::uint32_t>(best_i);

  if (j_mid > j_lo) monge_layer(prev, cur, parent_row, weight, j_lo, j_mid - 1, i_lo, best_i);
  if (j_mid < j_hi) monge_layer(prev, cur, parent_row, weight, j_mid + 1, j_hi, best_i, i_hi);
}

/// Row intervals narrower than this are not worth a task submission.
inline constexpr std::size_t kMongeTaskSpan = 384;

/// Task-parallel variant of monge_layer: the two half-intervals after the
/// midpoint cell are independent, so the left half is spawned into `group`
/// while this frame loops on the right half. Every cell runs the exact
/// serial scan (first-minimum tie-break preserved), so the filled layer is
/// bit-identical to monge_layer's.
template <typename WeightFn>
void monge_layer_tasks(const std::vector<Weight>& prev, std::vector<Weight>& cur,
                       std::vector<std::uint32_t>& parent_row, WeightFn& weight,
                       std::size_t j_lo, std::size_t j_hi, std::size_t i_lo, std::size_t i_hi,
                       TaskGroup& group) {
  for (;;) {
    if (j_lo > j_hi) return;
    if (j_hi - j_lo < kMongeTaskSpan) {
      monge_layer(prev, cur, parent_row, weight, j_lo, j_hi, i_lo, i_hi);
      return;
    }
    const std::size_t j_mid = j_lo + (j_hi - j_lo) / 2;
    Weight best = kInfiniteWeight;
    std::size_t best_i = i_lo;
    const std::size_t i_end = std::min(i_hi, j_mid - 1);
    for (std::size_t i = i_lo; i <= i_end; ++i) {
      const Weight cand = prev[i] + static_cast<Weight>(weight(i, j_mid));
      if (cand < best) {
        best = cand;
        best_i = i;
      }
    }
    cur[j_mid] = best;
    parent_row[j_mid] = static_cast<std::uint32_t>(best_i);

    if (j_mid > j_lo) {
      group.run([&prev, &cur, &parent_row, &weight, &group, j_lo, j_end = j_mid - 1, i_lo,
                 i_cap = best_i] {
        monge_layer_tasks(prev, cur, parent_row, weight, j_lo, j_end, i_lo, i_cap, group);
      });
    }
    if (j_mid == j_hi) return;
    j_lo = j_mid + 1;
    i_lo = best_i;
  }
}

}  // namespace detail

/// Same contract as interval_constrained_shortest_path, but O(k n log n)
/// weight queries. Exact only for quadrangle-inequality weights. A
/// non-null `pool` runs the divide-and-conquer halves as parallel tasks.
template <typename WeightFn>
[[nodiscard]] IntervalCsppResult interval_constrained_shortest_path_monge(
    std::size_t n, std::size_t k, WeightFn&& weight, ThreadPool* pool = nullptr) {
  assert(n >= 2 && k >= 2 && k <= n);
  telemetry::TraceSpan span(telemetry::TraceCat::kKernel, "cspp_monge", n, k);

  std::vector<Weight> prev(n, kInfiniteWeight);
  std::vector<Weight> cur(n, kInfiniteWeight);
  std::vector<std::vector<std::uint32_t>> parent(k + 1, std::vector<std::uint32_t>(n, 0));

  prev[0] = 0;
  for (std::size_t l = 2; l <= k; ++l) {
    const std::size_t j_lo = l - 1;
    const std::size_t j_hi = n - 1 - (k - l);
    // Predecessors live in [l-2, j_hi - 1]; prev[] is finite on that whole
    // range in a complete interval DAG, so no infinity handling is needed
    // inside the divide-and-conquer.
    std::fill(cur.begin(), cur.end(), kInfiniteWeight);
    if (pool != nullptr && j_hi - j_lo >= detail::kMongeTaskSpan) {
      TaskGroup group(pool);
      detail::monge_layer_tasks(prev, cur, parent[l], weight, j_lo, j_hi, l - 2, j_hi - 1,
                                group);
      group.wait();
    } else {
      detail::monge_layer(prev, cur, parent[l], weight, j_lo, j_hi, l - 2, j_hi - 1);
    }
    std::swap(prev, cur);
  }

  assert(prev[n - 1] != kInfiniteWeight);
  return detail::retrieve_interval_path(parent, n, k, prev[n - 1]);
}

}  // namespace fpopt
