// Constrained shortest path specialized to the complete interval DAG.
//
// Both selection algorithms build the same graph shape: vertices are the
// list positions 0..n-1 and there is an edge (i, j) for every i < j, with
// weight error(i, j). The constrained shortest path from 0 to n-1 with
// exactly k vertices is then the optimal k-subset that keeps both
// endpoints. Specializing the DP to this DAG avoids materializing the
// O(n^2) edges: weights are queried through a callable.
//
// Two evaluators are provided:
//  * interval_constrained_shortest_path: the literal layered DP,
//    O(k n^2) weight queries (the paper's complexity).
//  * interval_constrained_shortest_path_monge: divide-and-conquer row
//    minima, O(k n log n) queries, *exact* whenever the weight satisfies
//    the quadrangle inequality
//        w(i,j) + w(i',j') <= w(i,j') + w(i',j)   for i <= i' <= j <= j'.
//    The staircase area cost of R_Selection is Monge (see r_error.h), and
//    so is the L1 chain cost of L_Selection; tests cross-check both
//    evaluators on random inputs.
//
// Both evaluators optionally run their per-layer work on a ThreadPool:
// the literal DP splits the layer's row range across workers (each row's
// predecessor scan is independent), and the Monge divide-and-conquer
// spawns its two independent half-intervals as tasks. Every DP cell is
// computed by exactly the same scan as in serial mode and written to its
// own slot, so results are bit-identical for every worker count. The
// weight callable must be safe to invoke concurrently (the oracles in
// r_error.h / l_error.h are: const queries over immutable prefix sums).
#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "geometry/types.h"
#include "kernel/arena.h"
#include "kernel/kernel.h"
#include "kernel/sweep.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "telemetry/trace.h"

namespace fpopt {

struct IntervalCsppResult {
  std::vector<std::size_t> indices;  ///< k selected positions, front()==0, back()==n-1
  Weight weight = 0;
};

/// Weights that can materialize a whole predecessor row at once:
/// fill_row(j, i_lo, i_end, out) writes out[t] = weight(i_lo + t, j) for
/// t in [0, i_end - i_lo). The oracles in r_error.h / l_error.h model
/// this; such weights take the SoA kernel path below (row fill + vector
/// argmin), which is pinned bit-identical to the literal scan.
template <typename W>
concept RowFillWeight = requires(const W& w, std::size_t j, std::size_t i_lo,
                                 std::size_t i_end, Weight* out) {
  w.fill_row(j, i_lo, i_end, out);
};

/// Weights that can additionally run the whole DP relaxation fused:
/// best_over_row(prev_row, j, i_lo, i_end) returns the first strict
/// minimum of prev_row[t] + weight(i_lo + t, j) in one pass, no scratch
/// row (r_error.h models this with the fused sweep kernel). Preferred
/// over RowFillWeight on the AVX2 backend.
template <typename W>
concept RowArgminWeight = requires(const W& w, const Weight* prev_row, std::size_t j,
                                   std::size_t i_lo, std::size_t i_end) {
  { w.best_over_row(prev_row, j, i_lo, i_end) } -> std::same_as<kernel::RowArgmin>;
};

namespace detail {

/// Best predecessor of j among i in [i_lo, i_end] (inclusive, non-empty):
/// minimizes prev[i] + weight(i, j), first minimum winning, infinite
/// prev[i] never winning. Row-fill weights batch the row into arena
/// scratch and run the argmin kernel when the AVX2 backend is active; the
/// kernel performs the identical per-element double addition and
/// strict-< tie-break, and an infinite prev[i] stays infinite under the
/// addition, so both branches return the same bits
/// (tests/kernel_equivalence_test.cpp). On the scalar backend the fused
/// literal loop below wins — batching pays a store/reload per element
/// that only vector width amortizes — so `--kernel scalar` keeps the
/// exact pre-kernel-pass code path and speed.
template <typename WeightFn>
std::pair<Weight, std::size_t> best_predecessor(const std::vector<Weight>& prev,
                                                WeightFn& weight, std::size_t j,
                                                std::size_t i_lo, std::size_t i_end) {
  assert(i_lo <= i_end && i_end < j);
  if constexpr (RowArgminWeight<std::remove_cvref_t<WeightFn>>) {
    if (kernel::kernel_backend() == kernel::KernelBackend::Avx2) {
      const kernel::RowArgmin best =
          weight.best_over_row(prev.data() + i_lo, j, i_lo, i_end + 1);
      return {best.value, i_lo + best.index};
    }
  } else if constexpr (RowFillWeight<std::remove_cvref_t<WeightFn>>) {
    if (kernel::kernel_backend() == kernel::KernelBackend::Avx2) {
      const std::size_t count = i_end - i_lo + 1;
      kernel::ArenaScope scope(kernel::scratch_arena());
      Weight* row = scope.alloc_array<Weight>(count);
      weight.fill_row(j, i_lo, i_end + 1, row);
      const kernel::RowArgmin best = kernel::argmin_add(prev.data() + i_lo, row, count);
      return {best.value, i_lo + best.index};
    }
  }
  Weight best = kInfiniteWeight;
  std::size_t best_i = i_lo;
  for (std::size_t i = i_lo; i <= i_end; ++i) {
    if (prev[i] == kInfiniteWeight) continue;
    const Weight cand = prev[i] + static_cast<Weight>(weight(i, j));
    if (cand < best) {
      best = cand;
      best_i = i;
    }
  }
  return {best, best_i};
}

/// Shared path-retrieval: parent[l][j] = predecessor of j on the best
/// l-vertex path ending at j.
inline IntervalCsppResult retrieve_interval_path(
    const std::vector<std::vector<std::uint32_t>>& parent, std::size_t n, std::size_t k,
    Weight total) {
  IntervalCsppResult out;
  out.weight = total;
  out.indices.resize(k);
  std::size_t j = n - 1;
  for (std::size_t l = k; l >= 2; --l) {
    out.indices[l - 1] = j;
    j = parent[l][j];
  }
  assert(j == 0);
  out.indices[0] = 0;
  return out;
}

}  // namespace detail

/// Literal layered DP over the complete interval DAG.
/// `weight(i, j)` must be valid for all 0 <= i < j <= n-1 and non-negative.
/// Preconditions: n >= 2, 2 <= k <= n. A non-null `pool` splits each
/// layer's rows across workers (identical results, see header comment).
template <typename WeightFn>
[[nodiscard]] IntervalCsppResult interval_constrained_shortest_path(std::size_t n, std::size_t k,
                                                                    WeightFn&& weight,
                                                                    ThreadPool* pool = nullptr) {
  assert(n >= 2 && k >= 2 && k <= n);
  // Kernel spans are identified by problem size, never by which node (or
  // which reduce_l_set chain) called them: the caller's identity is
  // thread-local context that parallel_for would smear across workers,
  // while (n, k) is a pure function of the input.
  telemetry::TraceSpan span(telemetry::TraceCat::kKernel, "cspp", n, k);

  std::vector<Weight> prev(n, kInfiniteWeight);
  std::vector<Weight> cur(n, kInfiniteWeight);
  std::vector<std::vector<std::uint32_t>> parent(k + 1, std::vector<std::uint32_t>(n, 0));

  // A row j scans O(j) predecessors; size chunks so each task does a few
  // thousand weight queries regardless of n.
  const std::size_t row_grain = std::max<std::size_t>(8, 8192 / std::max<std::size_t>(n, 1));

  prev[0] = 0;  // layer 1: only the first element is reachable
  for (std::size_t l = 2; l <= k; ++l) {
    // With exactly l vertices used and k - l still to come, position j must
    // satisfy j >= l-1 and j <= n-1-(k-l).
    const std::size_t j_lo = l - 1;
    const std::size_t j_hi = n - 1 - (k - l);
    std::fill(cur.begin(), cur.end(), kInfiniteWeight);
    std::vector<std::uint32_t>& parent_row = parent[l];
    parallel_for(pool, j_lo, j_hi + 1, row_grain, [&](std::size_t j) {
      const auto [best, best_i] = detail::best_predecessor(prev, weight, j, l - 2, j - 1);
      cur[j] = best;
      parent_row[j] = static_cast<std::uint32_t>(best_i);
    });
    std::swap(prev, cur);
  }

  assert(prev[n - 1] != kInfiniteWeight);
  return detail::retrieve_interval_path(parent, n, k, prev[n - 1]);
}

namespace detail {

/// Divide-and-conquer row-minima for one DP layer: for each j in
/// [j_lo, j_hi] find argmin_{i in [i_lo, min(i_hi, j-1)]} prev[i] + w(i,j),
/// relying on argmin monotonicity (valid for Monge weights).
template <typename WeightFn>
void monge_layer(const std::vector<Weight>& prev, std::vector<Weight>& cur,
                 std::vector<std::uint32_t>& parent_row, WeightFn& weight, std::size_t j_lo,
                 std::size_t j_hi, std::size_t i_lo, std::size_t i_hi) {
  if (j_lo > j_hi) return;
  const std::size_t j_mid = j_lo + (j_hi - j_lo) / 2;

  const auto [best, best_i] =
      best_predecessor(prev, weight, j_mid, i_lo, std::min(i_hi, j_mid - 1));
  cur[j_mid] = best;
  parent_row[j_mid] = static_cast<std::uint32_t>(best_i);

  if (j_mid > j_lo) monge_layer(prev, cur, parent_row, weight, j_lo, j_mid - 1, i_lo, best_i);
  if (j_mid < j_hi) monge_layer(prev, cur, parent_row, weight, j_mid + 1, j_hi, best_i, i_hi);
}

/// Row intervals narrower than this are not worth a task submission.
inline constexpr std::size_t kMongeTaskSpan = 384;

/// Task-parallel variant of monge_layer: the two half-intervals after the
/// midpoint cell are independent, so the left half is spawned into `group`
/// while this frame loops on the right half. Every cell runs the exact
/// serial scan (first-minimum tie-break preserved), so the filled layer is
/// bit-identical to monge_layer's.
template <typename WeightFn>
void monge_layer_tasks(const std::vector<Weight>& prev, std::vector<Weight>& cur,
                       std::vector<std::uint32_t>& parent_row, WeightFn& weight,
                       std::size_t j_lo, std::size_t j_hi, std::size_t i_lo, std::size_t i_hi,
                       TaskGroup& group) {
  for (;;) {
    if (j_lo > j_hi) return;
    if (j_hi - j_lo < kMongeTaskSpan) {
      monge_layer(prev, cur, parent_row, weight, j_lo, j_hi, i_lo, i_hi);
      return;
    }
    const std::size_t j_mid = j_lo + (j_hi - j_lo) / 2;
    const auto [best, best_i] =
        best_predecessor(prev, weight, j_mid, i_lo, std::min(i_hi, j_mid - 1));
    cur[j_mid] = best;
    parent_row[j_mid] = static_cast<std::uint32_t>(best_i);

    if (j_mid > j_lo) {
      group.run([&prev, &cur, &parent_row, &weight, &group, j_lo, j_end = j_mid - 1, i_lo,
                 i_cap = best_i] {
        monge_layer_tasks(prev, cur, parent_row, weight, j_lo, j_end, i_lo, i_cap, group);
      });
    }
    if (j_mid == j_hi) return;
    j_lo = j_mid + 1;
    i_lo = best_i;
  }
}

}  // namespace detail

/// Same contract as interval_constrained_shortest_path, but O(k n log n)
/// weight queries. Exact only for quadrangle-inequality weights. A
/// non-null `pool` runs the divide-and-conquer halves as parallel tasks.
template <typename WeightFn>
[[nodiscard]] IntervalCsppResult interval_constrained_shortest_path_monge(
    std::size_t n, std::size_t k, WeightFn&& weight, ThreadPool* pool = nullptr) {
  assert(n >= 2 && k >= 2 && k <= n);
  telemetry::TraceSpan span(telemetry::TraceCat::kKernel, "cspp_monge", n, k);

  std::vector<Weight> prev(n, kInfiniteWeight);
  std::vector<Weight> cur(n, kInfiniteWeight);
  std::vector<std::vector<std::uint32_t>> parent(k + 1, std::vector<std::uint32_t>(n, 0));

  prev[0] = 0;
  for (std::size_t l = 2; l <= k; ++l) {
    const std::size_t j_lo = l - 1;
    const std::size_t j_hi = n - 1 - (k - l);
    // Predecessors live in [l-2, j_hi - 1]; prev[] is finite on that whole
    // range in a complete interval DAG, so no infinity handling is needed
    // inside the divide-and-conquer.
    std::fill(cur.begin(), cur.end(), kInfiniteWeight);
    if (pool != nullptr && j_hi - j_lo >= detail::kMongeTaskSpan) {
      TaskGroup group(pool);
      detail::monge_layer_tasks(prev, cur, parent[l], weight, j_lo, j_hi, l - 2, j_hi - 1,
                                group);
      group.wait();
    } else {
      detail::monge_layer(prev, cur, parent[l], weight, j_lo, j_hi, l - 2, j_hi - 1);
    }
    std::swap(prev, cur);
  }

  assert(prev[n - 1] != kInfiniteWeight);
  return detail::retrieve_interval_path(parent, n, k, prev[n - 1]);
}

}  // namespace fpopt
