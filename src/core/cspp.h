// The Constrained Shortest Path Problem (Section 4.1 of the paper).
//
// Given a weighted DAG, two vertices s and t, and a positive integer k,
// find a minimum-total-weight path from s to t that visits *exactly k
// vertices*, or report that none exists. This differs from the classical
// shortest path problem in the exact-cardinality constraint, and it is the
// common reduction target of both selection algorithms (R_Selection and
// L_Selection).
//
// The solver is the paper's dynamic program: W(s,v,l) = minimum weight of
// an s->v path with exactly l vertices, O(k * (|V| + |E|)) time (Theorem 1).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "geometry/types.h"

namespace fpopt {

/// A weighted DAG stored as incoming-edge adjacency lists (the DP relaxes
/// over edges *into* each vertex). The graph is not required to be
/// topologically sorted; the exact-cardinality DP never follows a cycle of
/// length < l anyway, but acyclicity is the caller's contract as in the
/// paper (weights must be positive).
class CsppGraph {
 public:
  explicit CsppGraph(std::size_t vertex_count) : in_edges_(vertex_count) {}

  /// Add a directed edge `from -> to` with positive weight.
  void add_edge(std::size_t from, std::size_t to, Weight weight);

  [[nodiscard]] std::size_t vertex_count() const { return in_edges_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  struct InEdge {
    std::size_t from;
    Weight weight;
  };
  [[nodiscard]] std::span<const InEdge> in_edges(std::size_t v) const { return in_edges_[v]; }

 private:
  std::vector<std::vector<InEdge>> in_edges_;
  std::size_t edge_count_ = 0;
};

struct CsppResult {
  std::vector<std::size_t> path;  ///< k vertices, path.front() == s, path.back() == t
  Weight weight = 0;
};

/// Algorithm Constrained_Shortest_Path. Returns nullopt when no s->t path
/// with exactly k vertices exists ("Can not find such a path").
/// Preconditions: s, t < |V|, 1 <= k <= |V|.
[[nodiscard]] std::optional<CsppResult> constrained_shortest_path(const CsppGraph& g,
                                                                  std::size_t s, std::size_t t,
                                                                  std::size_t k);

}  // namespace fpopt
