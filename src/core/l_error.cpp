#include "core/l_error.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "core/r_error.h"  // triangular_index
#include "runtime/parallel.h"
#include "shape/l_list.h"

namespace fpopt {

Weight l_dist(const LImpl& a, const LImpl& b, LpMetric metric) {
  const Area d1 = std::llabs(a.w1 - b.w1);
  const Area d2 = std::llabs(a.w2 - b.w2);
  const Area d3 = std::llabs(a.h1 - b.h1);
  const Area d4 = std::llabs(a.h2 - b.h2);
  switch (metric) {
    case LpMetric::L1:
      return static_cast<Weight>(d1 + d2 + d3 + d4);
    case LpMetric::L2:
      return std::sqrt(static_cast<Weight>(d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4));
    case LpMetric::LInf:
      return static_cast<Weight>(std::max({d1, d2, d3, d4}));
  }
  return 0;  // unreachable
}

std::vector<Weight> compute_l_error_table(std::span<const LImpl> chain, LpMetric metric,
                                          ThreadPool* pool) {
  assert(is_irreducible_l_chain(chain));
  const std::size_t n = chain.size();
  std::vector<Weight> table(n >= 2 ? n * (n - 1) / 2 : 0, 0);
  // Row i owns the contiguous triangular slice for all j > i, so rows can
  // be filled concurrently without sharing any output cell. Rows get
  // cheaper as i grows; a small fixed row grain keeps tasks balanced.
  parallel_for(pool, 0, n >= 2 ? n - 1 : 0, 4, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      Weight e = 0;
      for (std::size_t q = i + 1; q < j; ++q) {
        e += std::min(l_dist(chain[i], chain[q], metric), l_dist(chain[q], chain[j], metric));
      }
      table[triangular_index(n, i, j)] = e;
    }
  });
  return table;
}

L1ErrorOracle::L1ErrorOracle(std::span<const LImpl> chain) {
  assert(is_irreducible_l_chain(chain));
  s_.resize(chain.size());
  prefix_.resize(chain.size() + 1, 0);
  for (std::size_t q = 0; q < chain.size(); ++q) {
    s_[q] = -chain[q].w1 + chain[q].h1 + chain[q].h2;
    prefix_[q + 1] = prefix_[q] + s_[q];
  }
}

void L1ErrorOracle::fill_row(std::size_t j, std::size_t i_lo, std::size_t i_end,
                             Weight* out) const {
  assert(i_lo <= i_end && i_end <= j && j < s_.size());
  const Area s_j = s_[j];
  std::size_t m = i_lo + 1;  // split of the previous i; never moves left
  for (std::size_t i = i_lo; i < i_end; ++i) {
    if (j - i <= 1) {
      out[i - i_lo] = 0;
      continue;
    }
    // Same split as error()'s upper_bound: first m in (i, j) with
    // threshold < 2 s_m. The threshold grows with i and s is sorted, so
    // the split is monotone and the previous m is a valid starting point.
    const Area threshold = s_[i] + s_j;
    if (m < i + 1) m = i + 1;
    while (m < j && 2 * s_[m] <= threshold) ++m;

    const Area left_count = static_cast<Area>(m - i - 1);
    const Area right_count = static_cast<Area>(j - m);
    const Area left_sum = prefix_[m] - prefix_[i + 1];
    const Area right_sum = prefix_[j] - prefix_[m];
    const Area total = (left_sum - left_count * s_[i]) + (right_count * s_j - right_sum);
    out[i - i_lo] = static_cast<Weight>(total);
  }
}

Weight L1ErrorOracle::error(std::size_t i, std::size_t j) const {
  assert(i < j && j < s_.size());
  if (j - i <= 1) return 0;
  // Largest m in (i, j) with s_m - s_i <= s_j - s_m, i.e. 2 s_m <= s_i + s_j.
  // Elements up to m are charged to l_i, the rest to l_j.
  const Area threshold = s_[i] + s_[j];
  const auto begin = s_.begin() + static_cast<std::ptrdiff_t>(i) + 1;
  const auto end = s_.begin() + static_cast<std::ptrdiff_t>(j);
  const auto split = std::upper_bound(begin, end, threshold,
                                      [](Area t, Area sm) { return t < 2 * sm; });
  const std::size_t m = static_cast<std::size_t>(split - s_.begin());  // first index charged to j

  const Area left_count = static_cast<Area>(m - i - 1);
  const Area right_count = static_cast<Area>(j - m);
  const Area left_sum = prefix_[m] - prefix_[i + 1];
  const Area right_sum = prefix_[j] - prefix_[m];
  const Area total = (left_sum - left_count * s_[i]) + (right_count * s_[j] - right_sum);
  return static_cast<Weight>(total);
}

}  // namespace fpopt
