#include "core/cspp.h"

#include <algorithm>
#include <cassert>

namespace fpopt {

void CsppGraph::add_edge(std::size_t from, std::size_t to, Weight weight) {
  assert(from < in_edges_.size() && to < in_edges_.size());
  assert(weight > 0 && "the paper assumes strictly positive edge weights");
  in_edges_[to].push_back({from, weight});
  ++edge_count_;
}

std::optional<CsppResult> constrained_shortest_path(const CsppGraph& g, std::size_t s,
                                                    std::size_t t, std::size_t k) {
  const std::size_t n = g.vertex_count();
  assert(s < n && t < n);
  assert(k >= 1 && k <= n);

  if (k == 1) {
    if (s != t) return std::nullopt;
    return CsppResult{{s}, 0};
  }

  constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  // W(s, v, l) for the current and previous layer; parent[l][v] records the
  // predecessor that realized W(s, v, l) for path retrieval.
  std::vector<Weight> prev(n, kInfiniteWeight);
  std::vector<Weight> cur(n, kInfiniteWeight);
  std::vector<std::vector<std::size_t>> parent(k + 1, std::vector<std::size_t>(n, kNoParent));

  prev[s] = 0;  // W(s, s, 1) = 0

  for (std::size_t l = 2; l <= k; ++l) {
    std::fill(cur.begin(), cur.end(), kInfiniteWeight);
    for (std::size_t v = 0; v < n; ++v) {
      if (v == s) continue;  // no path revisits s with positive weights
      for (const CsppGraph::InEdge& e : g.in_edges(v)) {
        if (prev[e.from] == kInfiniteWeight) continue;
        const Weight cand = prev[e.from] + e.weight;
        if (cand < cur[v]) {
          cur[v] = cand;
          parent[l][v] = e.from;
        }
      }
    }
    std::swap(prev, cur);
  }

  if (prev[t] == kInfiniteWeight) return std::nullopt;

  CsppResult result;
  result.weight = prev[t];
  result.path.resize(k);
  std::size_t v = t;
  for (std::size_t l = k; l >= 2; --l) {
    result.path[l - 1] = v;
    v = parent[l][v];
    assert(v != kNoParent);
  }
  assert(v == s);
  result.path[0] = s;
  return result;
}

}  // namespace fpopt
