// Soft (continuous-shape) module support — the paper's Section 6
// application: "if we consider the case where each module has an infinite
// set of implementations specified by a continuous shape curve, the
// problem can still be solved by first approximating each such curve by a
// large number of points and then applying [9] together with the two
// algorithms."
//
// We sample the hyperbola w*h >= area at every integer width in
// [min_width, max_width] and optionally reduce the sampled staircase to k
// corners with R_Selection — giving the best k-point approximation of the
// continuous curve under the bounded-area metric.
#pragma once

#include <string>

#include "floorplan/module.h"
#include "geometry/types.h"
#include "shape/r_list.h"

namespace fpopt {

/// All non-redundant integer implementations of a soft block of the given
/// area, widths restricted to [min_width, max_width].
/// Preconditions: area >= 1, 1 <= min_width <= max_width.
[[nodiscard]] RList sample_shape_curve(Area area, Dim min_width, Dim max_width);

/// A soft module sampled as above and (when k > 0) optimally reduced to at
/// most k implementations.
[[nodiscard]] Module make_soft_module(std::string name, Area area, Dim min_width, Dim max_width,
                                      std::size_t k = 0);

}  // namespace fpopt
