// Algorithm R_Selection (Section 4.2 of the paper).
//
// Optimally select k of the n implementations of an irreducible R-list so
// that the bounded area between the original staircase and the reduced one
// (ERROR(R, R'), Eq. (2)) is minimal. Reduces to the constrained shortest
// path problem on the complete interval DAG whose edge (r_i, r_j) weighs
// error(r_i, r_j) (Lemma 1); both endpoints r_1 and r_n are always kept.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/types.h"
#include "shape/r_list.h"

namespace fpopt {

class ThreadPool;

/// Outcome of a selection: the kept positions (strictly increasing,
/// always including 0 and n-1 when n >= 2) and the total error paid.
struct SelectionResult {
  std::vector<std::size_t> kept;
  Weight error = 0;
};

/// DP evaluator choice. Auto picks the divide-and-conquer Monge evaluator
/// for the (provably Monge) staircase cost; Generic is the paper's literal
/// O(k n^2) dynamic program, kept as the reference implementation.
enum class SelectionDp { Auto, Generic, Monge };

/// Optimal k-subset of `list`. If k >= list.size() (or k == 0, meaning "no
/// limit"), everything is kept with zero error. Requires k >= 2 when a real
/// reduction happens (the two staircase endpoints must survive). A
/// non-null `pool` parallelizes the DP layers; results are bit-identical
/// for every worker count (see interval_cspp.h).
[[nodiscard]] SelectionResult r_selection(const RList& list, std::size_t k,
                                          SelectionDp dp = SelectionDp::Auto,
                                          ThreadPool* pool = nullptr);

/// Dual problem: the smallest subset whose optimal selection error does
/// not exceed `max_error` (>= 0). Binary-searches k using the fact that
/// the optimal error is non-increasing in k; k == n always qualifies.
[[nodiscard]] SelectionResult r_selection_for_error(const RList& list, Weight max_error,
                                                    SelectionDp dp = SelectionDp::Auto,
                                                    ThreadPool* pool = nullptr);

}  // namespace fpopt
