#include "core/soft_module.h"

#include <cassert>

#include "core/r_selection.h"

namespace fpopt {

RList sample_shape_curve(Area area, Dim min_width, Dim max_width) {
  assert(area >= 1 && min_width >= 1 && min_width <= max_width);
  std::vector<RectImpl> samples;
  samples.reserve(static_cast<std::size_t>(max_width - min_width + 1));
  for (Dim w = min_width; w <= max_width; ++w) {
    samples.push_back({w, (area + w - 1) / w});  // smallest h with w*h >= area
  }
  // Successive widths can share a height (ceil plateaus); pruning keeps
  // the widest... the *narrowest* implementation of each height.
  return RList::from_candidates(std::move(samples));
}

Module make_soft_module(std::string name, Area area, Dim min_width, Dim max_width,
                        std::size_t k) {
  RList curve = sample_shape_curve(area, min_width, max_width);
  if (k != 0 && k < curve.size()) {
    const SelectionResult sel = r_selection(curve, k);
    curve = curve.subset(sel.kept);
  }
  return Module{std::move(name), std::move(curve)};
}

}  // namespace fpopt
