#include "check/check_tree.h"

#include <string>
#include <vector>

namespace fpopt {
namespace {

const char* op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::LeafModule: return "LeafModule";
    case BinaryOp::SliceH: return "SliceH";
    case BinaryOp::SliceV: return "SliceV";
    case BinaryOp::WheelStack: return "WheelStack";
    case BinaryOp::WheelFillNotch: return "WheelFillNotch";
    case BinaryOp::WheelExtend: return "WheelExtend";
    case BinaryOp::WheelClose: return "WheelClose";
  }
  return "?";
}

struct TreeWalker {
  const FloorplanTree& tree;
  std::string_view where;
  CheckResult& res;
  std::size_t next_id = 0;
  std::vector<std::size_t> module_uses;

  [[nodiscard]] std::string node_loc(const BinaryNode& node) const {
    return std::string(where) + " node " + std::to_string(node.id) + " (" +
           op_name(node.op) + ")";
  }

  void walk(const BinaryNode& node) {
    if (!res.room_for_more()) return;
    if (node.id != next_id) {
      res.add("tree/preorder-id", node_loc(node),
              "expected preorder id " + std::to_string(next_id));
    }
    ++next_id;

    if (node.is_leaf()) {
      if (node.left || node.right) {
        res.add("tree/leaf-children", node_loc(node), "leaves must not have children");
      }
      if (node.module_id >= tree.module_count()) {
        res.add("tree/module-id", node_loc(node),
                "module id " + std::to_string(node.module_id) + " out of range (library has " +
                    std::to_string(tree.module_count()) + ")");
      } else {
        ++module_uses[node.module_id];
      }
      return;
    }

    if (!node.left || !node.right) {
      res.add("tree/missing-child", node_loc(node),
              "internal nodes of the binary tree need both children");
      if (node.left) walk(*node.left);
      if (node.right) walk(*node.right);
      return;
    }

    // Cut-type consistency: the op fixes which block kind each child is.
    // Left children of L-consuming ops are L-shaped blocks; every other
    // child (including every right child) is a rectangular block.
    const bool wants_l_left =
        node.op == BinaryOp::WheelFillNotch || node.op == BinaryOp::WheelExtend ||
        node.op == BinaryOp::WheelClose;
    if (wants_l_left != node.left->is_l_block()) {
      res.add("tree/cut-type", node_loc(node),
              std::string("left child ") + op_name(node.left->op) +
                  (wants_l_left ? " should produce an L-shaped block"
                                : " should produce a rectangular block"));
    }
    if (node.right->is_l_block()) {
      res.add("tree/cut-type", node_loc(node),
              std::string("right child ") + op_name(node.right->op) +
                  " should produce a rectangular block");
    }
    walk(*node.left);
    walk(*node.right);
  }
};

}  // namespace

CheckResult check_tree(const BinaryTree& btree, const FloorplanTree& tree,
                       std::string_view where) {
  CheckResult res;
  if (!btree.root) {
    res.add("tree/empty", std::string(where), "binary tree has no root");
    return res;
  }

  TreeWalker walker{tree, where, res, 0, std::vector<std::size_t>(tree.module_count(), 0)};
  walker.walk(*btree.root);

  if (btree.root->is_l_block()) {
    res.add("tree/l-root", walker.node_loc(*btree.root),
            "the root of T' must be a rectangular block");
  }
  if (walker.next_id != btree.node_count) {
    res.add("tree/node-count", std::string(where),
            "node_count says " + std::to_string(btree.node_count) + " but the tree holds " +
                std::to_string(walker.next_id));
  }
  for (std::size_t id = 0; id < walker.module_uses.size() && res.room_for_more(); ++id) {
    if (walker.module_uses[id] != 1) {
      res.add("tree/module-usage", std::string(where),
              "module " + std::to_string(id) + " ('" + tree.module(id).name + "') used " +
                  std::to_string(walker.module_uses[id]) + " times (want exactly 1)");
    }
  }
  return res;
}

}  // namespace fpopt
