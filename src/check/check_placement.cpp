#include "check/check_placement.h"

#include <algorithm>
#include <string>
#include <vector>

namespace fpopt {
namespace {

std::string room_loc(std::string_view where, const FloorplanTree& tree,
                     const ModulePlacement& mp) {
  std::string loc = std::string(where) + " room of module " + std::to_string(mp.module_id);
  if (mp.module_id < tree.module_count()) {
    loc += " ('" + tree.module(mp.module_id).name + "')";
  }
  return loc;
}

}  // namespace

CheckResult check_placement(const Placement& placement, const FloorplanTree& tree,
                            std::string_view where) {
  CheckResult res;
  if (placement.width <= 0 || placement.height <= 0) {
    res.add("placement/chip", std::string(where),
            "chip is " + std::to_string(placement.width) + " x " +
                std::to_string(placement.height) + ", both sides must be positive");
    return res;
  }
  const PlacedRect chip{0, 0, placement.width, placement.height};

  std::vector<std::size_t> uses(tree.module_count(), 0);
  Area room_area = 0;
  Dim max_x2 = 0;
  Dim max_y2 = 0;
  bool rooms_ok = true;
  for (const ModulePlacement& mp : placement.rooms) {
    if (!res.room_for_more()) return res;
    if (mp.module_id >= tree.module_count()) {
      res.add("placement/module-id", room_loc(where, tree, mp),
              "module id out of range (library has " + std::to_string(tree.module_count()) + ")");
      rooms_ok = false;
      continue;
    }
    ++uses[mp.module_id];

    if (!mp.room.valid()) {
      res.add("placement/invalid-room", room_loc(where, tree, mp),
              "room has a non-positive side");
      rooms_ok = false;
      continue;
    }
    if (!chip.contains(mp.room)) {
      res.add("placement/outside-chip", room_loc(where, tree, mp),
              "room sticks out of the " + std::to_string(placement.width) + " x " +
                  std::to_string(placement.height) + " chip");
      rooms_ok = false;
    }
    room_area += mp.room.area();
    max_x2 = std::max(max_x2, mp.room.x2());
    max_y2 = std::max(max_y2, mp.room.y2());

    if (mp.room.w < mp.impl.w || mp.room.h < mp.impl.h) {
      res.add("placement/impl-fit", room_loc(where, tree, mp),
              "chosen implementation " + std::to_string(mp.impl.w) + " x " +
                  std::to_string(mp.impl.h) + " does not fit its " +
                  std::to_string(mp.room.w) + " x " + std::to_string(mp.room.h) + " room");
    }
    const std::span<const RectImpl> impls = tree.module(mp.module_id).impls.impls();
    if (std::find(impls.begin(), impls.end(), mp.impl) == impls.end()) {
      res.add("placement/impl-membership", room_loc(where, tree, mp),
              "chosen implementation " + std::to_string(mp.impl.w) + " x " +
                  std::to_string(mp.impl.h) + " is not in the module's R-list");
    }
  }

  for (std::size_t id = 0; id < uses.size() && res.room_for_more(); ++id) {
    if (uses[id] != 1) {
      res.add("placement/module-usage", std::string(where),
              "module " + std::to_string(id) + " ('" + tree.module(id).name + "') has " +
                  std::to_string(uses[id]) + " rooms (want exactly 1)");
      rooms_ok = false;
    }
  }

  for (std::size_t a = 0; a < placement.rooms.size() && res.room_for_more(); ++a) {
    for (std::size_t b = a + 1; b < placement.rooms.size() && res.room_for_more(); ++b) {
      if (placement.rooms[a].room.overlaps(placement.rooms[b].room)) {
        res.add("placement/overlap", room_loc(where, tree, placement.rooms[a]),
                "room interior intersects the room of module " +
                    std::to_string(placement.rooms[b].module_id));
        rooms_ok = false;
      }
    }
  }

  if (rooms_ok) {
    // With containment and pairwise disjointness established, matching
    // total area proves the rooms tile the chip with no gap.
    if (room_area != chip.area()) {
      res.add("placement/area-accounting", std::string(where),
              "room areas sum to " + std::to_string(room_area) + ", chip area is " +
                  std::to_string(chip.area()));
    }
    if (max_x2 != placement.width || max_y2 != placement.height) {
      res.add("placement/bbox", std::string(where),
              "rooms reach (" + std::to_string(max_x2) + ", " + std::to_string(max_y2) +
                  ") but the reported chip is " + std::to_string(placement.width) + " x " +
                  std::to_string(placement.height));
    }
  }
  return res;
}

}  // namespace fpopt
