// Validator for traced placements (the traceback layer, placement.h).
//
// Re-derives the tiling contract from scratch: one valid room per module
// (each module exactly once), every room inside the chip, no two room
// interiors intersecting, room areas summing to the chip area (with the
// containment and disjointness checks this proves an exact tiling), the
// chip tight against its reported bounding box, and every chosen
// implementation fitting its room and present in its module's R-list.
#pragma once

#include <string_view>

#include "check/check.h"
#include "floorplan/tree.h"
#include "optimize/placement.h"

namespace fpopt {

[[nodiscard]] CheckResult check_placement(const Placement& placement, const FloorplanTree& tree,
                                          std::string_view where = "placement");

}  // namespace fpopt
