// Validators for the shape stores: irreducible R-lists (Definitions 4-5),
// irreducible L-lists (Definition 3) and L-list sets (Section 3).
//
// All monotonicity and dominance conditions are re-derived here from the
// definitions; none of these functions call is_irreducible_r_list /
// is_irreducible_l_chain or the pruning code they audit.
#pragma once

#include <span>
#include <string_view>

#include "check/check.h"
#include "geometry/rect_impl.h"
#include "shape/l_list.h"
#include "shape/l_list_set.h"
#include "shape/r_list.h"

namespace fpopt {

/// Definition 4 + 5: every shape valid, w strictly decreasing, h strictly
/// increasing. Strict bitonicity is exactly dominance-freedom for
/// rectangles: any violation exhibits a pair where one implementation
/// dominates (Definition 1) the other.
[[nodiscard]] CheckResult check_r_list(std::span<const RectImpl> impls,
                                       std::string_view where = "r-list");
[[nodiscard]] CheckResult check_r_list(const RList& list, std::string_view where = "r-list");

/// Definition 3: every shape canonically valid, constant w2, strictly
/// decreasing w1, componentwise non-decreasing (h1, h2). Strictness of the
/// w1 order doubles as within-chain dominance-freedom. The span overload
/// exists so tests can feed doctored chains that LList's own constructors
/// would reject.
[[nodiscard]] CheckResult check_l_list(std::span<const LImpl> chain,
                                       std::string_view where = "l-list");
[[nodiscard]] CheckResult check_l_list(const LList& chain, std::string_view where = "l-list");

/// Every chain of the set irreducible; when `cross_list` is set (the
/// GlobalAtNode / GlobalEager contract), additionally no implementation
/// anywhere in the set is dominated by or duplicates one in another chain
/// of the same w2 group.
[[nodiscard]] CheckResult check_l_list_set(const LListSet& set, bool cross_list = true,
                                           std::string_view where = "l-set");

}  // namespace fpopt
