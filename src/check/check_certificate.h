// Certificate validators for the selection layer (Sections 4.2-4.3).
//
// A SelectionResult is treated as a *claim*: "these kept positions are a
// well-formed selection and discarding the rest costs exactly this much".
// The validators re-derive the cost from the geometric / metric definitions
// (Eq. (2) via staircase_subset_error, Eq. (3) via Lemma 3 with a local
// L_p evaluator) instead of trusting the DP's edge weights, so a bug in
// Compute_R_Error / Compute_L_Error or in the DP itself is caught here.
#pragma once

#include <string_view>

#include "check/check.h"
#include "core/l_error.h"      // LpMetric
#include "core/r_selection.h"  // SelectionResult
#include "shape/l_list.h"
#include "shape/r_list.h"

namespace fpopt {

/// R_Selection certificate. k == 0 or k >= full.size() must keep every
/// position with zero error; otherwise `sel.kept` must be a valid
/// interval-DAG selection of exactly k positions and `sel.error` must equal
/// ERROR(R, R') re-derived geometrically (exact, integer areas).
[[nodiscard]] CheckResult check_selection_certificate(const RList& full,
                                                      const SelectionResult& sel, std::size_t k,
                                                      std::string_view where = "r-selection");

/// L_Selection certificate, same contract against ERROR(L, L'): each
/// discarded implementation pays its Lemma-3 distance to the nearer of its
/// two bracketing survivors, evaluated with a local L_p implementation.
[[nodiscard]] CheckResult check_l_selection_certificate(const LList& chain,
                                                        const SelectionResult& sel, std::size_t k,
                                                        LpMetric metric,
                                                        std::string_view where = "l-selection");

}  // namespace fpopt
