#include "check/check_certificate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "check/check_cspp.h"
#include "geometry/staircase.h"

namespace fpopt {
namespace {

/// True iff the claimed selection is the keep-everything identity with zero
/// error; otherwise appends the violations. Shared by both certificates.
void check_keep_all(std::size_t n, const SelectionResult& sel, std::string_view where,
                    CheckResult& res) {
  bool identity = sel.kept.size() == n;
  for (std::size_t i = 0; identity && i < n; ++i) identity = sel.kept[i] == i;
  if (!identity) {
    res.add("certificate/keep-all", std::string(where),
            "k does not force a reduction, so all " + std::to_string(n) +
                " positions must be kept in order; got " + std::to_string(sel.kept.size()));
  }
  if (sel.error != 0) {
    res.add("certificate/keep-all", std::string(where),
            "keeping everything must cost 0, claimed error is " + std::to_string(sel.error));
  }
}

/// Local L_p distance mirroring the semantics of l_dist (core/l_error.cpp)
/// without linking against it: the certificate must stay an independent
/// re-derivation.
Weight lp_dist(const LImpl& a, const LImpl& b, LpMetric metric) {
  const Area d1 = std::llabs(a.w1 - b.w1);
  const Area d2 = std::llabs(a.w2 - b.w2);
  const Area d3 = std::llabs(a.h1 - b.h1);
  const Area d4 = std::llabs(a.h2 - b.h2);
  switch (metric) {
    case LpMetric::L1:
      return static_cast<Weight>(d1 + d2 + d3 + d4);
    case LpMetric::L2:
      return std::sqrt(static_cast<Weight>(d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4));
    case LpMetric::LInf:
      return static_cast<Weight>(std::max({d1, d2, d3, d4}));
  }
  return 0;  // unreachable
}

}  // namespace

CheckResult check_selection_certificate(const RList& full, const SelectionResult& sel,
                                        std::size_t k, std::string_view where) {
  CheckResult res;
  const std::size_t n = full.size();
  if (k == 0 || k >= n) {
    check_keep_all(n, sel, where, res);
    return res;
  }

  res.merge(check_interval_selection(n, k, sel.kept, where));
  if (!res.ok()) return res;

  // ERROR(R, R') from the area-between-staircases definition (Eq. (2)).
  const Area oracle = staircase_subset_error(full.impls(), sel.kept);
  if (sel.error != static_cast<Weight>(oracle)) {
    res.add("certificate/error", std::string(where),
            "claimed error " + std::to_string(sel.error) +
                " differs from the geometric re-derivation " + std::to_string(oracle));
  }
  return res;
}

CheckResult check_l_selection_certificate(const LList& chain, const SelectionResult& sel,
                                          std::size_t k, LpMetric metric,
                                          std::string_view where) {
  CheckResult res;
  const std::size_t n = chain.size();
  if (k == 0 || k >= n) {
    check_keep_all(n, sel, where, res);
    return res;
  }

  res.merge(check_interval_selection(n, k, sel.kept, where));
  if (!res.ok()) return res;

  // ERROR(L, L') from Lemma 3: every discarded q between kept neighbors
  // i < q < j pays min(dist(l_i, l_q), dist(l_q, l_j)).
  Weight oracle = 0;
  for (std::size_t seg = 0; seg + 1 < sel.kept.size(); ++seg) {
    const std::size_t i = sel.kept[seg];
    const std::size_t j = sel.kept[seg + 1];
    for (std::size_t q = i + 1; q < j; ++q) {
      oracle += std::min(lp_dist(chain[i].shape, chain[q].shape, metric),
                         lp_dist(chain[q].shape, chain[j].shape, metric));
    }
  }
  const Weight tol = 1e-6 * std::max<Weight>(1.0, std::fabs(oracle));
  if (std::fabs(sel.error - oracle) > tol) {
    res.add("certificate/error", std::string(where),
            "claimed error " + std::to_string(sel.error) +
                " differs from the Lemma-3 re-derivation " + std::to_string(oracle));
  }
  return res;
}

}  // namespace fpopt
