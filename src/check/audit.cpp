#include "check/audit.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "check/check_certificate.h"
#include "check/check_placement.h"
#include "check/check_shapes.h"
#include "check/check_tree.h"
#include "core/l_selection.h"
#include "core/r_selection.h"
#include "optimize/artifact_dump.h"
#include "optimize/placement.h"

namespace fpopt {
namespace {

std::string node_where(const BinaryNode& node) {
  return "T' node " + std::to_string(node.id);
}

/// Check one node's stored lists and provenance; recurses over T'.
void audit_node(const BinaryNode& node, const std::vector<NodeResult>& nodes, bool cross_list,
                CheckResult& checks, std::size_t& nodes_checked) {
  if (node.left) audit_node(*node.left, nodes, cross_list, checks, nodes_checked);
  if (node.right) audit_node(*node.right, nodes, cross_list, checks, nodes_checked);
  if (node.id >= nodes.size()) return;  // already reported by check_tree
  const NodeResult& res = nodes[node.id];
  const std::string where = node_where(node);
  ++nodes_checked;

  if (res.is_l != node.is_l_block()) {
    checks.add("audit/node-kind", where,
               std::string("stored result is ") + (res.is_l ? "an L set" : "an R-list") +
                   " but the op produces the other kind");
    return;
  }

  if (res.is_l) {
    checks.merge(check_l_list_set(res.lset, cross_list, where));
    for (const LList& list : res.lset.lists()) {
      for (const LEntry& e : list) {
        if (e.id >= res.lprov.size()) {
          if (!checks.room_for_more()) return;
          checks.add("audit/provenance", where,
                     "L entry id " + std::to_string(e.id) + " has no provenance record (" +
                         std::to_string(res.lprov.size()) + " stored)");
        }
      }
    }
  } else {
    checks.merge(check_r_list(res.rlist, where));
    if (res.rprov.size() != res.rlist.size()) {
      checks.add("audit/provenance", where,
                 "provenance array has " + std::to_string(res.rprov.size()) +
                     " entries for " + std::to_string(res.rlist.size()) + " implementations");
    }
  }
}

/// Evenly spread m sample positions over 0..n-1 (endpoints included).
std::vector<std::size_t> spread_indices(std::size_t n, std::size_t m) {
  std::vector<std::size_t> idx;
  if (n == 0 || m == 0) return idx;
  if (m >= n) {
    idx.resize(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    return idx;
  }
  idx.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t pos = m == 1 ? 0 : i * (n - 1) / (m - 1);
    if (idx.empty() || idx.back() != pos) idx.push_back(pos);
  }
  return idx;
}

}  // namespace

AuditReport audit_optimize(const FloorplanTree& tree, const AuditOptions& opts) {
  AuditReport report;

  for (const std::string& problem : tree.validate()) {
    if (!report.checks.room_for_more()) break;
    report.checks.add("audit/topology", "input tree", problem);
  }
  if (!report.checks.ok()) return report;  // optimize_floorplan requires a well-formed tree

  const OptimizeOutcome outcome = optimize_floorplan(tree, opts.optimizer);
  report.stats = outcome.stats;
  if (outcome.out_of_memory) {
    report.out_of_memory = true;
    return report;
  }

  const OptimizeArtifacts& art = *outcome.artifacts;
  report.checks.merge(check_tree(art.btree, tree));

  const bool cross_list = opts.optimizer.l_pruning != LPruning::PerChain;
  audit_node(*art.btree.root, art.nodes, cross_list, report.checks, report.nodes_checked);

  // The published result: root list irreducible, best area re-derivable.
  report.root_impls = outcome.root.size();
  report.best_area = outcome.best_area;
  report.checks.merge(check_r_list(outcome.root, "root"));
  if (outcome.root.empty()) {
    report.checks.add("audit/best-area", "root", "successful run produced no implementations");
  } else {
    Area best = outcome.root[0].area();
    for (const RectImpl& r : outcome.root) best = std::min(best, r.area());
    if (best != outcome.best_area) {
      report.checks.add("audit/best-area", "root",
                        "claimed best area " + std::to_string(outcome.best_area) +
                            " differs from the root-list minimum " + std::to_string(best));
    }
  }

  // Fresh selection runs on the largest lists, certificates re-derived.
  if (opts.certificate_samples > 0) {
    std::vector<std::pair<std::size_t, const RList*>> rlists;
    std::vector<std::pair<std::size_t, const LList*>> llists;
    for (const NodeResult& res : art.nodes) {
      if (res.is_l) {
        for (const LList& list : res.lset.lists()) {
          if (list.size() >= 3) llists.emplace_back(list.size(), &list);
        }
      } else if (res.rlist.size() >= 3) {
        rlists.emplace_back(res.rlist.size(), &res.rlist);
      }
    }
    const auto by_size_desc = [](const auto& a, const auto& b) { return a.first > b.first; };
    std::sort(rlists.begin(), rlists.end(), by_size_desc);
    std::sort(llists.begin(), llists.end(), by_size_desc);
    rlists.resize(std::min(rlists.size(), opts.certificate_samples));
    llists.resize(std::min(llists.size(), opts.certificate_samples));

    const SelectionConfig& sel = opts.optimizer.selection;
    for (const auto& [size, list] : rlists) {
      const std::size_t k = std::max<std::size_t>(2, size / 2);
      const SelectionResult picked = r_selection(*list, k, sel.dp);
      report.checks.merge(check_selection_certificate(*list, picked, k,
                                                      "certificate n=" + std::to_string(size)));
      ++report.certificates_checked;
    }
    const LSelectionOptions lopts{sel.metric, sel.dp, 0, LHeuristic::UniformSubsample};
    for (const auto& [size, list] : llists) {
      const std::size_t k = std::max<std::size_t>(2, size / 2);
      const SelectionResult picked = l_selection(*list, k, lopts);
      report.checks.merge(check_l_selection_certificate(
          *list, picked, k, sel.metric, "l-certificate n=" + std::to_string(size)));
      ++report.certificates_checked;
    }
  }

  // Trace a spread of root implementations down to concrete placements.
  for (const std::size_t idx : spread_indices(outcome.root.size(), opts.max_traced_placements)) {
    const Placement placement = trace_placement(tree, outcome, idx);
    const std::string where = "placement of root[" + std::to_string(idx) + "]";
    report.checks.merge(check_placement(placement, tree, where));
    const RectImpl& impl = outcome.root[idx];
    if (placement.width != impl.w || placement.height != impl.h) {
      report.checks.add("audit/root-impl", where,
                        "traced chip is " + std::to_string(placement.width) + " x " +
                            std::to_string(placement.height) + " but the root implementation is " +
                            std::to_string(impl.w) + " x " + std::to_string(impl.h));
    }
    ++report.placements_checked;
  }

  return report;
}

IncrementalAuditReport audit_incremental(const FloorplanTree& tree, const AuditOptions& opts) {
  IncrementalAuditReport report;

  for (const std::string& problem : tree.validate()) {
    if (!report.checks.room_for_more()) break;
    report.checks.add("audit/topology", "input tree", problem);
  }
  if (!report.checks.ok()) return report;

  OptimizerOptions scratch_opts = opts.optimizer;
  scratch_opts.incremental = false;
  scratch_opts.cache = nullptr;
  const OptimizeOutcome scratch = optimize_floorplan(tree, scratch_opts);
  const std::string scratch_dump = dump_outcome(tree, scratch);
  report.out_of_memory = scratch.out_of_memory;

  MemoCache cache;
  OptimizerOptions inc_opts = opts.optimizer;
  inc_opts.incremental = true;
  inc_opts.cache = &cache;

  // Cold run: every internal node misses, gets computed and (on success)
  // published. Warm run: every internal node must be served from cache.
  for (const bool warm : {false, true}) {
    const std::string where = warm ? "warm incremental run" : "cold incremental run";
    cache.reset_stats();
    const OptimizeOutcome outcome = optimize_floorplan(tree, inc_opts);
    const MemoCacheStats stats = cache.stats();
    (warm ? report.warm_stats : report.cold_stats) = stats;

    if (dump_outcome(tree, outcome) != scratch_dump) {
      report.checks.add("audit/incremental", where,
                        "canonical artifact dump differs from the scratch run");
    }
    if (warm && !scratch.out_of_memory && stats.hits != stats.probes()) {
      report.checks.add("audit/incremental", where,
                        "expected every internal node to be served from cache, got " +
                            std::to_string(stats.hits) + " hits over " +
                            std::to_string(stats.probes()) + " probes");
    }
    if (!warm && stats.hits != 0) {
      report.checks.add("audit/incremental", where,
                        "fresh cache reported " + std::to_string(stats.hits) + " hits");
    }
  }

  return report;
}

}  // namespace fpopt
