// Validators for the constrained-shortest-path layer (Section 4.1) and the
// interval-DAG selections built on it (Sections 4.2-4.3).
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "check/check.h"
#include "core/cspp.h"

namespace fpopt {

/// A claimed CSPP solution: exactly k vertices, path.front() == s,
/// path.back() == t, no vertex repeated, every hop an edge of `g`, and the
/// claimed weight re-derivable as the sum of the cheapest parallel edge of
/// each hop (the DP always relaxes over the cheapest one).
[[nodiscard]] CheckResult check_cspp_path(const CsppGraph& g, std::size_t s, std::size_t t,
                                          std::size_t k, const CsppResult& result,
                                          std::string_view where = "cspp");

/// A claimed selection over the complete interval DAG of an n-element
/// list: exactly k strictly increasing positions whose edges are the
/// monotone intervals (i, j), i < j — equivalently, kept.front() == 0,
/// kept.back() == n-1, strictly increasing interior.
[[nodiscard]] CheckResult check_interval_selection(std::size_t n, std::size_t k,
                                                   std::span<const std::size_t> kept,
                                                   std::string_view where = "selection");

}  // namespace fpopt
