#include "check/check.h"

#include <cstdlib>
#include <iostream>
#include <iterator>
#include <sstream>
#include <utility>

namespace fpopt {

void CheckResult::add(std::string rule, std::string where, std::string message) {
  violations_.push_back({std::move(rule), std::move(where), std::move(message)});
}

void CheckResult::merge(CheckResult other) {
  violations_.insert(violations_.end(),
                     std::make_move_iterator(other.violations_.begin()),
                     std::make_move_iterator(other.violations_.end()));
}

bool CheckResult::room_for_more() {
  if (violations_.size() < kMaxViolationsPerCheck) return true;
  if (!truncated_) {
    truncated_ = true;
    add("check/truncated", "-",
        "more violations follow; report truncated at " +
            std::to_string(kMaxViolationsPerCheck));
  }
  return false;
}

std::string CheckResult::report() const {
  std::ostringstream out;
  for (const Violation& v : violations_) {
    out << v.rule << " @ " << v.where << ": " << v.message << '\n';
  }
  return out.str();
}

void enforce(const CheckResult& result, const char* context) {
  if (result.ok()) return;
  std::cerr << "fpopt invariant violation (" << context << "), " << result.size()
            << " violation(s):\n"
            << result.report();
  std::abort();
}

}  // namespace fpopt
