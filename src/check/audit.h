// End-to-end invariant audit of one optimizer run.
//
// audit_optimize() restructures and optimizes a floorplan exactly like
// optimize_floorplan(), then turns every checker in src/check/ loose on the
// artifacts: the binary tree shape, every node's implementation store and
// provenance, the root list and its claimed best area, fresh selection
// certificates on the largest lists, and traced placements for a sample of
// root implementations. This is the engine behind the fpopt_audit tool and
// the audit tests; unlike the FPOPT_VALIDATE hooks (which abort at the
// first broken invariant) it collects everything into one report.
#pragma once

#include <cstddef>

#include "cache/memo_cache.h"
#include "check/check.h"
#include "floorplan/tree.h"
#include "optimize/optimizer.h"

namespace fpopt {

struct AuditOptions {
  OptimizerOptions optimizer;
  /// How many root implementations get traced to a placement and checked
  /// (evenly spread over the root list; 0 disables placement checks).
  std::size_t max_traced_placements = 16;
  /// How many of the largest R-lists / L-lists get a fresh selection run
  /// whose certificate is then re-derived (0 disables).
  std::size_t certificate_samples = 4;
};

struct AuditReport {
  CheckResult checks;
  /// The run hit the simulated memory budget; artifacts are absent and no
  /// structural checks ran. Not a violation — it is a legal outcome.
  bool out_of_memory = false;
  Area best_area = 0;
  std::size_t root_impls = 0;
  std::size_t nodes_checked = 0;
  std::size_t placements_checked = 0;
  std::size_t certificates_checked = 0;
  OptimizerStats stats;

  [[nodiscard]] bool ok() const { return checks.ok(); }
};

[[nodiscard]] AuditReport audit_optimize(const FloorplanTree& tree,
                                         const AuditOptions& opts = {});

struct IncrementalAuditReport {
  CheckResult checks;
  /// The scratch run hit the simulated memory budget. The incremental
  /// runs must reach the same verdict (checked), but no artifact bytes
  /// exist to compare.
  bool out_of_memory = false;
  MemoCacheStats cold_stats;  ///< first incremental run (every node misses)
  MemoCacheStats warm_stats;  ///< second incremental run (every node should hit)

  [[nodiscard]] bool ok() const { return checks.ok(); }
};

/// Independent proof of the incremental engine's contract on one
/// floorplan: run the optimizer from scratch, then twice in incremental
/// mode against one fresh memo cache (a cold run that populates it and a
/// warm run served from it), and require the canonical artifact dumps —
/// every node list with provenance, stats including peak_live, the traced
/// min-area placement, or the out-of-memory verdict — to be byte-equal
/// across all three. The warm run must also actually hit the cache on
/// every internal node, so a silently cold cache cannot pass.
[[nodiscard]] IncrementalAuditReport audit_incremental(const FloorplanTree& tree,
                                                       const AuditOptions& opts = {});

}  // namespace fpopt
