#include "check/check_shapes.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace fpopt {
namespace {

std::string rect_str(const RectImpl& r) {
  return "(" + std::to_string(r.w) + " x " + std::to_string(r.h) + ")";
}

std::string l_str(const LImpl& l) {
  return "L(w1=" + std::to_string(l.w1) + ",w2=" + std::to_string(l.w2) +
         ",h1=" + std::to_string(l.h1) + ",h2=" + std::to_string(l.h2) + ")";
}

std::string at(std::string_view where, std::size_t i) {
  return std::string(where) + "[" + std::to_string(i) + "]";
}

}  // namespace

CheckResult check_r_list(std::span<const RectImpl> impls, std::string_view where) {
  CheckResult res;
  for (std::size_t i = 0; i < impls.size() && res.room_for_more(); ++i) {
    if (!impls[i].valid()) {
      res.add("r-list/invalid-shape", at(where, i),
              rect_str(impls[i]) + " has a non-positive edge");
      continue;
    }
    if (i == 0) continue;
    const RectImpl& prev = impls[i - 1];
    const RectImpl& cur = impls[i];
    if (prev.w <= cur.w) {
      res.add("r-list/width-order", at(where, i),
              "w must strictly decrease (Def. 4): " + rect_str(prev) + " then " + rect_str(cur));
    }
    if (prev.h >= cur.h) {
      res.add("r-list/height-order", at(where, i),
              "h must strictly increase (Def. 5): " + rect_str(prev) + " then " + rect_str(cur));
    }
  }
  return res;
}

CheckResult check_r_list(const RList& list, std::string_view where) {
  return check_r_list(list.impls(), where);
}

CheckResult check_l_list(std::span<const LImpl> chain, std::string_view where) {
  CheckResult res;
  for (std::size_t i = 0; i < chain.size() && res.room_for_more(); ++i) {
    const LImpl& cur = chain[i];
    if (!cur.valid()) {
      res.add("l-list/invalid-shape", at(where, i),
              l_str(cur) + " violates w1 >= w2 > 0 or h1 >= h2 > 0");
      continue;
    }
    if (i == 0) continue;
    const LImpl& prev = chain[i - 1];
    if (prev.w2 != cur.w2) {
      res.add("l-list/w2-constant", at(where, i),
              "top-edge width must be constant in a chain (Def. 3): w2 " +
                  std::to_string(prev.w2) + " then " + std::to_string(cur.w2));
    }
    if (prev.w1 <= cur.w1) {
      res.add("l-list/w1-order", at(where, i),
              "w1 must strictly decrease: " + l_str(prev) + " then " + l_str(cur));
    }
    if (prev.h1 > cur.h1 || prev.h2 > cur.h2) {
      res.add("l-list/height-order", at(where, i),
              "(h1, h2) must be componentwise non-decreasing: " + l_str(prev) + " then " +
                  l_str(cur));
    }
  }
  return res;
}

CheckResult check_l_list(const LList& chain, std::string_view where) {
  std::vector<LImpl> shapes;
  shapes.reserve(chain.size());
  for (const LEntry& e : chain) shapes.push_back(e.shape);
  return check_l_list(std::span<const LImpl>(shapes), where);
}

namespace {

/// Flattened view of one set entry for the cross-chain sweep.
struct FlatEntry {
  LImpl shape;
  std::size_t chain;
  std::size_t pos;
};

/// Cross-chain irreducibility of one w2 group: sweep in (w1 asc, h1 asc,
/// h2 asc) order keeping the 2-D staircase h1 -> min h2 of everything seen
/// so far; an entry whose (h1, h2) lies on or above the staircase is
/// dominated by (or duplicates) an earlier one, which Definition 1 forbids
/// for a non-redundant store.
void check_w2_group(std::span<const FlatEntry> group, std::string_view where,
                    CheckResult& res) {
  std::vector<const FlatEntry*> order;
  order.reserve(group.size());
  for (const FlatEntry& e : group) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const FlatEntry* a, const FlatEntry* b) {
    if (a->shape.w1 != b->shape.w1) return a->shape.w1 < b->shape.w1;
    if (a->shape.h1 != b->shape.h1) return a->shape.h1 < b->shape.h1;
    return a->shape.h2 < b->shape.h2;
  });

  std::map<Dim, Dim> frontier;  // h1 -> smallest h2 among entries with h1' <= h1
  for (const FlatEntry* e : order) {
    const auto it = frontier.upper_bound(e->shape.h1);
    if (it != frontier.begin() && std::prev(it)->second <= e->shape.h2) {
      if (!res.room_for_more()) return;
      res.add("l-set/cross-redundant",
              std::string(where) + " chain " + std::to_string(e->chain) + "[" +
                  std::to_string(e->pos) + "]",
              l_str(e->shape) + " is dominated by or duplicates another entry of its w2 group");
      continue;  // keep the frontier minimal: do not insert redundant entries
    }
    const auto [pos, inserted] = frontier.insert_or_assign(e->shape.h1, e->shape.h2);
    (void)inserted;
    for (auto nxt = std::next(pos); nxt != frontier.end() && nxt->second >= pos->second;) {
      nxt = frontier.erase(nxt);
    }
  }
}

}  // namespace

CheckResult check_l_list_set(const LListSet& set, bool cross_list, std::string_view where) {
  CheckResult res;
  const std::span<const LList> lists = set.lists();

  std::size_t total = 0;
  for (std::size_t c = 0; c < lists.size(); ++c) {
    if (lists[c].empty()) {
      res.add("l-set/empty-chain", std::string(where) + " chain " + std::to_string(c),
              "sets must not store empty chains");
      continue;
    }
    total += lists[c].size();
    res.merge(check_l_list(lists[c], std::string(where) + " chain " + std::to_string(c)));
  }
  if (total != set.total_size()) {
    res.add("l-set/size-accounting", std::string(where),
            "total_size() reports " + std::to_string(set.total_size()) + " but chains hold " +
                std::to_string(total));
  }
  if (!cross_list || !res.ok()) return res;

  // Group the whole store by w2 and sweep each group.
  std::vector<FlatEntry> flat;
  flat.reserve(total);
  for (std::size_t c = 0; c < lists.size(); ++c) {
    for (std::size_t i = 0; i < lists[c].size(); ++i) {
      flat.push_back({lists[c][i].shape, c, i});
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const FlatEntry& a, const FlatEntry& b) { return a.shape.w2 < b.shape.w2; });
  for (std::size_t lo = 0; lo < flat.size();) {
    std::size_t hi = lo + 1;
    while (hi < flat.size() && flat[hi].shape.w2 == flat[lo].shape.w2) ++hi;
    check_w2_group(std::span<const FlatEntry>(flat).subspan(lo, hi - lo), where, res);
    lo = hi;
  }
  return res;
}

}  // namespace fpopt
