// Invariant-audit subsystem: machine-checkable statements of the structural
// invariants the paper's correctness argument rests on.
//
// Every validator in src/check re-derives its invariant from the geometric
// or graph-theoretic *definition* (Definitions 1, 3-5, Lemmas 1-3, Eq. (2)
// and (3)) rather than calling the production code it audits, so a bug in a
// kernel and its checker would have to coincide to slip through. Validators
// return a CheckResult instead of asserting, which lets the fpopt_audit
// tool and the tests report every violation of a broken structure at once;
// the FPOPT_VALIDATE build mode turns the same validators into hard
// post-conditions on the optimizer's hot paths via enforce().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fpopt {

/// One broken invariant, localized and explained.
struct Violation {
  std::string rule;     ///< stable identifier, e.g. "r-list/width-order"
  std::string where;    ///< locus, e.g. "T' node 7 (SliceV)[3]"
  std::string message;  ///< what the definition requires vs what was found

  friend bool operator==(const Violation&, const Violation&) = default;
};

/// Checkers stop adding detail past this many violations per call and
/// append a single truncation marker instead, so a corrupted 100k-entry
/// list cannot flood a report.
inline constexpr std::size_t kMaxViolationsPerCheck = 32;

class CheckResult {
 public:
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] std::size_t size() const { return violations_.size(); }
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }

  void add(std::string rule, std::string where, std::string message);
  void merge(CheckResult other);

  /// True while the caller may keep adding detail (see
  /// kMaxViolationsPerCheck); adds the truncation marker on the first call
  /// that crosses the cap.
  [[nodiscard]] bool room_for_more();

  /// One line per violation: "rule @ where: message".
  [[nodiscard]] std::string report() const;

 private:
  std::vector<Violation> violations_;
  bool truncated_ = false;
};

/// FPOPT_VALIDATE backstop: print the report to stderr and abort when the
/// result carries violations. Deliberately not assert()-based so optimized
/// validate builds still die loudly.
void enforce(const CheckResult& result, const char* context);

}  // namespace fpopt
