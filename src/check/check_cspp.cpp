#include "check/check_cspp.h"

#include <cmath>
#include <string>
#include <vector>

namespace fpopt {

CheckResult check_cspp_path(const CsppGraph& g, std::size_t s, std::size_t t, std::size_t k,
                            const CsppResult& result, std::string_view where) {
  CheckResult res;
  const std::vector<std::size_t>& path = result.path;
  if (path.size() != k) {
    res.add("cspp/cardinality", std::string(where),
            "path visits " + std::to_string(path.size()) + " vertices, constraint is exactly " +
                std::to_string(k));
    return res;
  }
  if (path.empty()) return res;
  if (path.front() != s) {
    res.add("cspp/source", std::string(where),
            "path starts at v" + std::to_string(path.front()) + ", want v" + std::to_string(s));
  }
  if (path.back() != t) {
    res.add("cspp/target", std::string(where),
            "path ends at v" + std::to_string(path.back()) + ", want v" + std::to_string(t));
  }

  std::vector<bool> seen(g.vertex_count(), false);
  Weight rederived = 0;
  bool edges_ok = true;
  for (std::size_t i = 0; i < path.size() && res.room_for_more(); ++i) {
    const std::size_t v = path[i];
    if (v >= g.vertex_count()) {
      res.add("cspp/vertex-range", std::string(where) + "[" + std::to_string(i) + "]",
              "vertex v" + std::to_string(v) + " out of range");
      edges_ok = false;
      continue;
    }
    if (seen[v]) {
      res.add("cspp/repeated-vertex", std::string(where) + "[" + std::to_string(i) + "]",
              "vertex v" + std::to_string(v) + " visited twice");
    }
    seen[v] = true;
    if (i == 0) continue;

    // The DP relaxes over incoming edges and always picks the cheapest
    // parallel edge, so the path weight is the sum of per-hop minima.
    const std::size_t from = path[i - 1];
    Weight best = kInfiniteWeight;
    for (const CsppGraph::InEdge& e : g.in_edges(v)) {
      if (e.from == from) best = std::min(best, e.weight);
    }
    if (best == kInfiniteWeight) {
      res.add("cspp/missing-edge", std::string(where) + "[" + std::to_string(i) + "]",
              "no edge v" + std::to_string(from) + " -> v" + std::to_string(v));
      edges_ok = false;
      continue;
    }
    rederived += best;
  }

  if (edges_ok) {
    const Weight tol = 1e-9 * std::max<Weight>(1.0, std::fabs(rederived));
    if (std::fabs(rederived - result.weight) > tol) {
      res.add("cspp/weight", std::string(where),
              "claimed weight " + std::to_string(result.weight) +
                  " does not match the per-hop re-derivation " + std::to_string(rederived));
    }
  }
  return res;
}

CheckResult check_interval_selection(std::size_t n, std::size_t k,
                                     std::span<const std::size_t> kept,
                                     std::string_view where) {
  CheckResult res;
  if (n == 0) {
    if (!kept.empty()) {
      res.add("selection/empty", std::string(where), "selection from an empty list");
    }
    return res;
  }
  if (kept.size() != k) {
    res.add("selection/cardinality", std::string(where),
            "kept " + std::to_string(kept.size()) + " positions, constraint is exactly " +
                std::to_string(k));
  }
  if (kept.empty()) return res;
  if (kept.front() != 0) {
    res.add("selection/first-endpoint", std::string(where),
            "position 0 (the widest implementation) must be kept; first kept is " +
                std::to_string(kept.front()));
  }
  if (kept.back() != n - 1) {
    res.add("selection/last-endpoint", std::string(where),
            "position " + std::to_string(n - 1) +
                " (the tallest implementation) must be kept; last kept is " +
                std::to_string(kept.back()));
  }
  for (std::size_t i = 0; i < kept.size() && res.room_for_more(); ++i) {
    if (kept[i] >= n) {
      res.add("selection/range", std::string(where) + "[" + std::to_string(i) + "]",
              "position " + std::to_string(kept[i]) + " out of range (n = " +
                  std::to_string(n) + ")");
    }
    if (i > 0 && kept[i - 1] >= kept[i]) {
      res.add("selection/monotone", std::string(where) + "[" + std::to_string(i) + "]",
              "interval-DAG edges go strictly forward: " + std::to_string(kept[i - 1]) +
                  " then " + std::to_string(kept[i]));
    }
  }
  return res;
}

}  // namespace fpopt
