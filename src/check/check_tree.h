// Validator for the restructured binary tree T' (Section 3, Figure 3).
//
// Re-derives, node by node, the structural contract restructure() promises:
// preorder ids, binary shape (internal nodes have both children), cut-type
// consistency (each op's child block kinds match its geometry: L-consuming
// ops take an L left child, everything else rectangles; right children are
// always rectangular), a rectangular root, and leaves referencing every
// module of the library exactly once.
#pragma once

#include <string_view>

#include "check/check.h"
#include "floorplan/restructure.h"
#include "floorplan/tree.h"

namespace fpopt {

[[nodiscard]] CheckResult check_tree(const BinaryTree& btree, const FloorplanTree& tree,
                                     std::string_view where = "T'");

}  // namespace fpopt
