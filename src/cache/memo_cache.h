// Content-addressed memo cache for per-node optimization results.
//
// An entry stores one T' node's complete NodeResult (R-list / irreducible
// L-set with provenance) together with the node's *memory and stats
// profile* — the net stored delta it leaves behind, its intra-node peaks,
// and its additive stats counters. Serving a hit therefore replaces the
// combine/selection kernels with a copy, while the engine replays the
// recorded profile through the serial-postorder budget model, so an
// incremental run reports byte-identical stats (including peak_live) and
// makes the identical out-of-memory decision a scratch run would
// (docs/ALGORITHMS.md §8).
//
// Eviction is LRU under a byte budget. Epochs support speculative
// workloads (the annealing loop): insertions made between begin_epoch()
// and rollback_epoch() are removed again, so a rejected move leaves the
// cache exactly as the accepted trajectory built it; commit_epoch() keeps
// them. Evictions are permanent either way — losing an entry can only
// cause a recompute, never a wrong result.
//
// The cache is deliberately NOT thread-safe: the engines probe it in a
// serial pre-pass before fanning work out and publish new entries in a
// serial post-pass (in postorder, so the cache's content and LRU order
// are identical for every thread count). Concurrent requests share work
// through SharedMemoCache + per-request CacheSession (shared_cache.h),
// which speak the same CacheView interface the engines consume.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/cache_key.h"
#include "optimize/node_result.h"  // FPOPT-LINT-OK(layering): entries store the engine's NodeResult vocabulary type; header-only coupling, no engine code called
#include "optimize/stats.h"  // FPOPT-LINT-OK(layering): profile records replay OptimizerStats counters; header-only coupling, no engine code called

namespace fpopt {

class CacheView;  // below

/// One node's recorded evaluation profile: everything the serial-replay
/// budget model needs to account for the node without re-running it.
struct NodeProfileRecord {
  OptimizerStats counters;         ///< this node's additive counters only
  std::size_t net_stored = 0;      ///< stored delta the node leaves behind
  std::size_t peak_stored = 0;     ///< intra-node peak, relative to entry
  std::size_t peak_transient = 0;  ///< intra-node transient peak
  std::size_t peak_total = 0;      ///< intra-node stored+transient peak
  std::size_t subtree_net = 0;     ///< net_stored summed over the subtree
};

struct MemoCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;          ///< entries dropped by the byte budget
  std::size_t rollback_discards = 0;  ///< entries removed by rollback_epoch
  std::size_t peak_bytes = 0;         ///< largest footprint ever held

  [[nodiscard]] std::size_t probes() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return probes() == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes());
  }
};

/// One cached node: the key, the complete NodeResult, and the recorded
/// memory/stats profile the serial-replay budget model consumes.
struct CacheEntry {
  CacheKey key;
  NodeResult result;
  NodeProfileRecord profile;
  std::size_t bytes = 0;
};

/// The engine-facing cache interface. The engines' serve/publish passes
/// only ever probe and insert, so any store that can answer those two —
/// the run-local MemoCache, or a per-request CacheSession over the
/// daemon's shared cross-request cache (shared_cache.h) — plugs into
/// OptimizerOptions::cache unchanged.
class CacheView {
 public:
  virtual ~CacheView() = default;

  /// Look up a key. The returned pointer stays valid until the next
  /// insert / rollback / clear on this view.
  [[nodiscard]] virtual const CacheEntry* find(const CacheKey& key) = 0;

  /// Insert (or overwrite) an entry.
  virtual void insert(const CacheKey& key, NodeResult result,
                      const NodeProfileRecord& profile) = 0;

  /// Probe/insert counters of this view (a session reports its own
  /// request-local traffic, not the shared store's lifetime totals).
  [[nodiscard]] virtual const MemoCacheStats& stats() const = 0;
};

class MemoCache : public CacheView {
 public:
  using Entry = CacheEntry;

  static constexpr std::size_t kDefaultByteBudget = 256u << 20;  // 256 MiB

  /// byte_budget == 0 means unlimited.
  explicit MemoCache(std::size_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget) {}

  /// Look up a key; a hit moves the entry to the front of the LRU order.
  /// The pointer stays valid until the next insert / rollback / clear.
  [[nodiscard]] const Entry* find(const CacheKey& key) override;

  /// Look up a key without touching stats or the LRU order (a pure read,
  /// usable under a shared lock). The pointer stays valid until the next
  /// insert / rollback / clear.
  [[nodiscard]] const Entry* peek(const CacheKey& key) const;

  /// Insert (or overwrite) an entry, then evict least-recently-used
  /// entries until the byte budget holds again (the fresh entry itself is
  /// never evicted by its own insertion).
  void insert(const CacheKey& key, NodeResult result,
              const NodeProfileRecord& profile) override;

  /// Fold a committed session's probe traffic into this store's stats
  /// (sessions probe via peek, which deliberately counts nothing).
  void note_probes(std::size_t hits, std::size_t misses) {
    stats_.hits += hits;
    stats_.misses += misses;
  }

  /// Epochs (no nesting): insertions after begin_epoch() are provisional
  /// until commit_epoch() keeps them or rollback_epoch() removes them.
  void begin_epoch();
  void commit_epoch();
  void rollback_epoch();
  [[nodiscard]] bool in_epoch() const { return epoch_open_; }

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }
  [[nodiscard]] const MemoCacheStats& stats() const override { return stats_; }
  void reset_stats() { stats_ = {}; }
  void clear();

 private:
  using LruList = std::list<Entry>;

  void erase(LruList::iterator it);
  void evict_to_budget(LruList::iterator keep);

  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  LruList lru_;  ///< front = most recently used
  /// Key -> LRU position. Audited for iteration-order leaks (rule
  /// unordered-iter): only find/emplace/erase/clear — never iterated.
  /// Eviction and publish order walk lru_, whose order is a pure
  /// function of the (deterministic, serial) probe/insert sequence.
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> map_;
  std::vector<CacheKey> epoch_inserts_;
  bool epoch_open_ = false;
  MemoCacheStats stats_;
};

/// Approximate heap footprint of one entry (used for the byte budget).
[[nodiscard]] std::size_t approx_entry_bytes(const NodeResult& result);

}  // namespace fpopt
