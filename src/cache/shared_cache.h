// Cross-request sharing of the content-addressed memo cache.
//
// SharedMemoCache wraps one MemoCache behind a mutex so many concurrent
// requests (the fpoptd daemon's) can reuse each other's committed subtree
// results. Requests never touch the shared store directly: each one runs
// against its own CacheSession, which extends the run-local epoch idea
// (memo_cache.h begin/commit/rollback) to per-request isolation:
//
//  * find() serves the session's own provisional inserts first, then
//    falls back to a locked peek of the shared store. Peeks copy the
//    entry into session-owned storage (the engine's pointer contract
//    survives concurrent mutation of the store) and deliberately touch
//    neither the shared stats nor the LRU order — shared state never
//    observes a request until that request commits.
//  * insert() is provisional: the entry lands in the session overlay,
//    invisible to every other session.
//  * commit() publishes the overlay into the shared store atomically, in
//    the session's insertion order (so the store's content and eviction
//    sequence are a pure function of the commit order), and folds the
//    session's probe counters into the shared stats.
//  * rollback() discards the overlay; the shared store's stats and bytes
//    stay exactly as the committed trajectories built them.
//
// Determinism: the optimizer's incremental contract makes every run's
// artifacts byte-identical whether a probe hits or misses, so arbitrary
// request interleavings — and therefore arbitrary shared-cache content —
// can never change a response. The shared cache only changes how much
// work a response costs.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/memo_cache.h"

namespace fpopt {

/// The process-wide store. Thread-safe; all access goes through
/// CacheSession except the read-only stats/size accessors.
class SharedMemoCache {
 public:
  /// byte_budget == 0 means unlimited.
  explicit SharedMemoCache(std::size_t byte_budget = MemoCache::kDefaultByteBudget)
      : base_(byte_budget) {}
  SharedMemoCache(const SharedMemoCache&) = delete;
  SharedMemoCache& operator=(const SharedMemoCache&) = delete;

  /// Copy the committed entry for `key` into `out`. Returns false on
  /// miss. Mutates nothing — not the stats, not the LRU order.
  [[nodiscard]] bool lookup(const CacheKey& key, CacheEntry& out) const;

  /// Atomically publish one session: its provisional entries in insertion
  /// order (each evicting under the byte budget exactly as a serial
  /// insert would) and its probe traffic.
  void commit(std::vector<CacheEntry>&& inserts, std::size_t hits, std::size_t misses);

  [[nodiscard]] MemoCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t byte_budget() const;

 private:
  mutable std::mutex mu_;
  MemoCache base_;
};

/// One request's isolated view of a SharedMemoCache. Not thread-safe
/// itself (each request's engine probes from its coordinating thread,
/// exactly like a run-local MemoCache); many sessions may run against the
/// same shared store concurrently. A session that is destroyed without
/// commit() rolls back implicitly.
class CacheSession final : public CacheView {
 public:
  explicit CacheSession(SharedMemoCache& shared) : shared_(&shared) {}

  /// Own provisional inserts and earlier fetches first, then a copying
  /// peek of the shared store. Hits/misses count into the session stats
  /// only until commit().
  [[nodiscard]] const CacheEntry* find(const CacheKey& key) override;

  /// Provisional insert into the session overlay.
  void insert(const CacheKey& key, NodeResult result,
              const NodeProfileRecord& profile) override;

  /// Request-local traffic: what this session's run probed and inserted.
  [[nodiscard]] const MemoCacheStats& stats() const override { return stats_; }

  /// Publish the overlay + probe counters to the shared store. The
  /// session is spent afterwards (find/insert must not be called again).
  void commit();

  /// Discard the overlay; the shared store is untouched.
  void rollback();

  [[nodiscard]] bool open() const { return open_; }

 private:
  struct Slot {
    CacheEntry* entry = nullptr;
    bool provisional = false;  ///< overlay insert (vs a fetched shared copy)
  };

  SharedMemoCache* shared_;
  /// Stable storage for everything find() ever returned: fetched copies
  /// of shared entries and provisional inserts alike (std::list so
  /// pointers survive growth).
  std::list<CacheEntry> entries_;
  /// Key -> slot. Audited for iteration-order leaks (rule
  /// unordered-iter): only find/emplace/clear — commit order comes from
  /// insert_order_, a plain vector.
  std::unordered_map<CacheKey, Slot, CacheKeyHash> index_;
  std::vector<CacheKey> insert_order_;  ///< provisional keys, oldest first
  MemoCacheStats stats_;
  bool open_ = true;
};

}  // namespace fpopt
