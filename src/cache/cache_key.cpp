#include "cache/cache_key.h"

#include <bit>
#include <cassert>

namespace fpopt {
namespace {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Two quasi-independent 64-bit mixing lanes; order-sensitive absorption.
class Hasher {
 public:
  explicit Hasher(std::uint64_t tag)
      : a_(splitmix64(tag ^ 0x243F6A8885A308D3ULL)),
        b_(splitmix64(tag ^ 0x13198A2E03707344ULL)) {}

  void absorb(std::uint64_t v) {
    a_ = splitmix64(a_ ^ v);
    b_ = splitmix64(b_ + v * 0xA24BAED4963EE407ULL + 0x632BE59BD9B4E019ULL);
  }

  void absorb(const CacheKey& k) {
    absorb(k.hi);
    absorb(k.lo);
  }

  [[nodiscard]] CacheKey finish() const {
    return {splitmix64(a_ ^ (b_ >> 1)), splitmix64(b_ + (a_ << 1))};
  }

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

// Domain-separation tags (arbitrary odd constants).
constexpr std::uint64_t kConfigTag = 0xC0F1C0F1C0F1C0F1ULL;
constexpr std::uint64_t kLeafTag = 0x1EAF1EAF1EAF1EAFULL;
constexpr std::uint64_t kInternalTag = 0x0DDC0DDC0DDC0DDCULL;

[[nodiscard]] CacheKey module_content_key(const Module& module, const CacheKey& cfg) {
  Hasher h(kLeafTag);
  h.absorb(cfg);
  h.absorb(module.impls.size());
  for (const RectImpl& r : module.impls) {
    h.absorb(static_cast<std::uint64_t>(r.w));
    h.absorb(static_cast<std::uint64_t>(r.h));
  }
  return h.finish();
}

void derive(const BinaryNode& node, const std::vector<CacheKey>& leaf_keys,
            const CacheKey& cfg, std::vector<CacheKey>& out) {
  if (node.is_leaf()) {
    out[node.id] = leaf_keys[node.module_id];
    return;
  }
  derive(*node.left, leaf_keys, cfg, out);
  derive(*node.right, leaf_keys, cfg, out);
  Hasher h(kInternalTag);
  h.absorb(cfg);
  h.absorb(static_cast<std::uint64_t>(node.op));
  h.absorb(out[node.left->id]);
  h.absorb(out[node.right->id]);
  out[node.id] = h.finish();
}

}  // namespace

CacheKey config_fingerprint(const OptimizerOptions& opts) {
  const SelectionConfig& sel = opts.selection;
  Hasher h(kConfigTag);
  h.absorb(sel.k1);
  h.absorb(sel.k2);
  h.absorb(std::bit_cast<std::uint64_t>(sel.theta));
  h.absorb(sel.heuristic_cap);
  h.absorb(static_cast<std::uint64_t>(sel.metric));
  h.absorb(static_cast<std::uint64_t>(sel.dp));
  h.absorb(static_cast<std::uint64_t>(opts.l_pruning));
  return h.finish();
}

std::vector<CacheKey> derive_node_keys(const BinaryTree& btree, const FloorplanTree& tree,
                                       const OptimizerOptions& opts) {
  assert(btree.root != nullptr);
  const CacheKey cfg = config_fingerprint(opts);
  // Hash each module's implementation list once (leaves may repeat content).
  std::vector<CacheKey> leaf_keys;
  leaf_keys.reserve(tree.module_count());
  for (const Module& m : tree.modules()) leaf_keys.push_back(module_content_key(m, cfg));

  std::vector<CacheKey> keys(btree.node_count);
  derive(*btree.root, leaf_keys, cfg, keys);
  return keys;
}

}  // namespace fpopt
