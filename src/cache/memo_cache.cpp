#include "cache/memo_cache.h"

#include <algorithm>
#include <cassert>

namespace fpopt {

std::size_t approx_entry_bytes(const NodeResult& result) {
  std::size_t b = sizeof(MemoCache::Entry);
  b += result.rlist.size() * sizeof(RectImpl);
  b += result.rprov.size() * sizeof(Prov);
  for (const LList& list : result.lset.lists()) {
    b += sizeof(LList) + list.size() * sizeof(LEntry);
  }
  b += result.lprov.size() * sizeof(Prov);
  return b;
}

const MemoCache::Entry* MemoCache::find(const CacheKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  return &*it->second;
}

const MemoCache::Entry* MemoCache::peek(const CacheKey& key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &*it->second;
}

void MemoCache::insert(const CacheKey& key, NodeResult result,
                       const NodeProfileRecord& profile) {
  if (const auto it = map_.find(key); it != map_.end()) erase(it->second);
  const std::size_t entry_bytes = approx_entry_bytes(result);
  lru_.push_front(Entry{key, std::move(result), profile, entry_bytes});
  map_.emplace(key, lru_.begin());
  bytes_ += entry_bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_);
  ++stats_.insertions;
  if (epoch_open_) epoch_inserts_.push_back(key);
  evict_to_budget(lru_.begin());
}

void MemoCache::begin_epoch() {
  assert(!epoch_open_ && "MemoCache epochs do not nest");
  epoch_open_ = true;
  epoch_inserts_.clear();
}

void MemoCache::commit_epoch() {
  assert(epoch_open_);
  epoch_open_ = false;
  epoch_inserts_.clear();
}

void MemoCache::rollback_epoch() {
  assert(epoch_open_);
  epoch_open_ = false;
  for (const CacheKey& key : epoch_inserts_) {
    const auto it = map_.find(key);
    if (it == map_.end()) continue;  // already evicted by the byte budget
    erase(it->second);
    ++stats_.rollback_discards;
  }
  epoch_inserts_.clear();
}

void MemoCache::clear() {
  lru_.clear();
  map_.clear();
  epoch_inserts_.clear();
  epoch_open_ = false;
  bytes_ = 0;
}

void MemoCache::erase(LruList::iterator it) {
  bytes_ -= it->bytes;
  map_.erase(it->key);
  lru_.erase(it);
}

void MemoCache::evict_to_budget(LruList::iterator keep) {
  if (byte_budget_ == 0) return;
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const auto victim = std::prev(lru_.end());
    if (victim == keep) break;  // never evict the entry just inserted
    erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace fpopt
