// Content-addressed cache keys for per-node optimization results.
//
// A T' node's NodeResult is a pure function of (a) the shapes of the
// modules under its subtree, (b) the subtree's structure — which combine
// ops in which order — and (c) the selection/pruning knobs of the run.
// The key is a 128-bit structural hash over exactly those inputs,
// computed bottom up: a leaf hashes its module's implementation list (by
// *content*, so identically-shaped modules share cache entries), an
// internal node hashes (op tag, left key, right key), and the knob
// fingerprint is folded into every node. Everything the result does NOT
// depend on — the memory budget, thread count, wheel chirality (shape
// curves are mirror-invariant), module names/ids — is deliberately left
// out, so runs that differ only in those still share entries.
//
// 128 bits makes an accidental collision astronomically unlikely
// (~2^-64 birthday odds at a billion distinct subtrees); the
// audit_incremental checker (check/audit.h) independently proves that
// served artifacts byte-equal scratch recomputes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "optimize/optimizer.h"  // FPOPT-LINT-OK(layering): key derivation fingerprints OptimizerOptions; cache stays link-level below optimize (see cache/CMakeLists.txt)

namespace fpopt {

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ULL));
  }
};

/// Fingerprint of every OptimizerOptions knob that can change a
/// NodeResult: the selection config (k1, k2, theta, S, metric, DP choice)
/// and the L pruning mode. impl_budget and threads are excluded — they
/// never change a completed node's bytes.
[[nodiscard]] CacheKey config_fingerprint(const OptimizerOptions& opts);

/// Per-node subtree keys for the whole T', indexed by BinaryNode::id.
/// Leaf keys hash module implementation content; internal keys hash
/// (op, left key, right key). O(total module implementations + nodes).
[[nodiscard]] std::vector<CacheKey> derive_node_keys(const BinaryTree& btree,
                                                     const FloorplanTree& tree,
                                                     const OptimizerOptions& opts);

}  // namespace fpopt
