#include "cache/shared_cache.h"

#include <cassert>
#include <utility>

namespace fpopt {

bool SharedMemoCache::lookup(const CacheKey& key, CacheEntry& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const CacheEntry* entry = base_.peek(key);
  if (entry == nullptr) return false;
  out = *entry;
  return true;
}

void SharedMemoCache::commit(std::vector<CacheEntry>&& inserts, std::size_t hits,
                             std::size_t misses) {
  const std::lock_guard<std::mutex> lock(mu_);
  base_.note_probes(hits, misses);
  for (CacheEntry& e : inserts) {
    base_.insert(e.key, std::move(e.result), e.profile);
  }
}

MemoCacheStats SharedMemoCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return base_.stats();
}

std::size_t SharedMemoCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return base_.size();
}

std::size_t SharedMemoCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return base_.bytes();
}

std::size_t SharedMemoCache::byte_budget() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return base_.byte_budget();
}

const CacheEntry* CacheSession::find(const CacheKey& key) {
  assert(open_ && "CacheSession was already committed / rolled back");
  if (const auto it = index_.find(key); it != index_.end()) {
    ++stats_.hits;
    return it->second.entry;
  }
  CacheEntry copy;
  if (!shared_->lookup(key, copy)) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.push_back(std::move(copy));
  CacheEntry* stored = &entries_.back();
  index_.emplace(key, Slot{stored, false});
  return stored;
}

void CacheSession::insert(const CacheKey& key, NodeResult result,
                          const NodeProfileRecord& profile) {
  assert(open_ && "CacheSession was already committed / rolled back");
  const std::size_t entry_bytes = approx_entry_bytes(result);
  ++stats_.insertions;
  if (const auto it = index_.find(key); it != index_.end()) {
    // Overwrite in place; the slot becomes provisional if it was a
    // fetched copy (the session recomputed the node, so its version wins
    // at commit time).
    CacheEntry& e = *it->second.entry;
    e.result = std::move(result);
    e.profile = profile;
    e.bytes = entry_bytes;
    if (!it->second.provisional) {
      it->second.provisional = true;
      insert_order_.push_back(key);
    }
    return;
  }
  entries_.push_back(CacheEntry{key, std::move(result), profile, entry_bytes});
  index_.emplace(key, Slot{&entries_.back(), true});
  insert_order_.push_back(key);
}

void CacheSession::commit() {
  assert(open_ && "CacheSession commit/rollback is one-shot");
  open_ = false;
  std::vector<CacheEntry> inserts;
  inserts.reserve(insert_order_.size());
  for (const CacheKey& key : insert_order_) {
    const auto it = index_.find(key);
    assert(it != index_.end() && it->second.provisional);
    inserts.push_back(std::move(*it->second.entry));
  }
  shared_->commit(std::move(inserts), stats_.hits, stats_.misses);
  entries_.clear();
  index_.clear();
  insert_order_.clear();
}

void CacheSession::rollback() {
  assert(open_ && "CacheSession commit/rollback is one-shot");
  open_ = false;
  entries_.clear();
  index_.clear();
  insert_order_.clear();
}

}  // namespace fpopt
