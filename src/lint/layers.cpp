#include "lint/layers.h"

#include <algorithm>
#include <sstream>

namespace fpopt::lint {

bool LayerManifest::allows(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  const auto it = deps.find(from);
  if (it == deps.end()) return false;
  return std::find(it->second.begin(), it->second.end(), to) != it->second.end();
}

namespace {

/// Depth-first cycle search over the declared dependency edges; fills
/// `chain` with the cycle (first element repeated at the end) when found.
bool find_cycle(const LayerManifest& m, const std::string& node,
                std::map<std::string, int>& state, std::vector<std::string>& chain) {
  state[node] = 1;  // on the current path
  chain.push_back(node);
  const auto it = m.deps.find(node);
  if (it != m.deps.end()) {
    for (const std::string& dep : it->second) {
      const int dep_state = state.count(dep) != 0 ? state[dep] : 0;
      if (dep_state == 1) {
        chain.push_back(dep);
        return true;
      }
      if (dep_state == 0 && find_cycle(m, dep, state, chain)) return true;
    }
  }
  chain.pop_back();
  state[node] = 2;  // fully explored
  return false;
}

}  // namespace

LayerManifestResult parse_layer_manifest(const std::string& text) {
  LayerManifestResult result;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string head;
    if (!(fields >> head)) continue;  // blank / comment-only line
    if (head.back() != ':') {
      result.errors.push_back("line " + std::to_string(line_no) +
                              ": expected \"layer:\" at start, got \"" + head + "\"");
      continue;
    }
    head.pop_back();
    if (head.empty()) {
      result.errors.push_back("line " + std::to_string(line_no) + ": empty layer name");
      continue;
    }
    if (result.manifest.has_layer(head)) {
      result.errors.push_back("line " + std::to_string(line_no) + ": layer \"" + head +
                              "\" declared twice");
      continue;
    }
    std::vector<std::string>& deps = result.manifest.deps[head];
    std::string dep;
    while (fields >> dep) {
      if (dep == head) {
        result.errors.push_back("line " + std::to_string(line_no) + ": layer \"" + head +
                                "\" lists itself (self-dependency is implicit)");
        continue;
      }
      deps.push_back(dep);
    }
  }

  for (const auto& [layer, deps] : result.manifest.deps) {
    for (const std::string& dep : deps) {
      if (!result.manifest.has_layer(dep)) {
        result.errors.push_back("layer \"" + layer + "\" depends on undeclared layer \"" +
                                dep + "\"");
      }
    }
  }
  if (!result.errors.empty()) return result;

  std::map<std::string, int> state;
  for (const auto& [layer, deps] : result.manifest.deps) {
    std::vector<std::string> chain;
    if ((state.count(layer) == 0 || state[layer] == 0) &&
        find_cycle(result.manifest, layer, state, chain)) {
      std::string msg = "dependency cycle: ";
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (i > 0) msg += " -> ";
        msg += chain[i];
      }
      result.errors.push_back(std::move(msg));
      break;
    }
  }
  return result;
}

}  // namespace fpopt::lint
