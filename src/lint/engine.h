// fpopt_lint rule engine (docs/LINT.md): determinism- and layering-aware
// static analysis over the repo's own sources.
//
// Rule catalogue — each targets an invariant the test suites can only
// check after the fact, turning it into a rule that fails the build the
// moment the pattern is written:
//
//   unordered-iter (R1)  iteration over std::unordered_{map,set,multimap,
//                        multiset}: order is implementation-defined, so a
//                        loop that feeds output artifacts, trace
//                        identities, or cache publish order silently
//                        breaks bit-identical reproduction.
//   wall-clock     (R2)  wall-clock / randomness primitives outside
//                        src/telemetry/ (std::rand, srand, random_device,
//                        mt19937, *_clock, time(), gettimeofday): results
//                        must derive only from inputs and seeded PCG.
//   atomic-order   (R3)  every atomic load/store/RMW must name its
//                        std::memory_order explicitly, and every
//                        non-seq_cst order must carry a nearby
//                        justification comment.
//   raw-telemetry  (R4)  telemetry must route through the no-op-capable
//                        headers: no raw FPOPT_TELEMETRY #if/#ifdef and no
//                        TraceSpan/trace_instant/PhaseProfile use without
//                        including the corresponding telemetry header.
//   layering       (R5)  quoted includes across src/<dir>/ boundaries
//                        must follow the allowed DAG in .fpopt-layers.
//   bad-suppression      a suppression annotation with an unknown rule
//                        id or an empty reason.
//
// Findings are suppressible per line via the annotation syntax described
// in source.h and docs/LINT.md; `bad-suppression` itself is not
// suppressible.
#pragma once

#include <string>
#include <vector>

#include "lint/layers.h"
#include "lint/source.h"

namespace fpopt::lint {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  int col = 0;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The full catalogue, in stable order (drives --list-rules and the SARIF
/// tool.driver.rules array).
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();
[[nodiscard]] bool known_rule(const std::string& id);

struct LintOptions {
  /// Layer manifest for R5; null skips the layering rule entirely.
  const LayerManifest* manifest = nullptr;
};

/// Run every rule over the file set. The set is analyzed as a whole:
/// unordered-container declarations and telemetry includes propagate
/// through quoted includes resolved *within the set*, so a member
/// declared in a header is recognized in the .cpp that includes it.
/// Findings come back sorted by (file, line, col, rule) and already
/// filtered through the files' suppression annotations.
[[nodiscard]] std::vector<Finding> run_lint(const std::vector<SourceFile>& files,
                                            const LintOptions& options);

}  // namespace fpopt::lint
