#include "lint/source.h"

#include <algorithm>

namespace fpopt::lint {
namespace {

constexpr const char kMarker[] = "FPOPT-LINT-OK";

std::string trim(std::string s) {
  const auto ws = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
  while (!s.empty() && ws(s.back())) s.pop_back();
  // Strip a block comment's trailing "*/" so the reason text stays clean
  // whether the annotation uses // or /* */.
  if (s.size() >= 2 && s[s.size() - 2] == '*' && s.back() == '/') s.resize(s.size() - 2);
  while (!s.empty() && ws(s.back())) s.pop_back();
  std::size_t b = 0;
  while (b < s.size() && ws(s[b])) ++b;
  return s.substr(b);
}

/// Parse every annotation of the form MARKER(rule): reason in one
/// comment token (the marker itself is kMarker above; spelling it out
/// here would read as an annotation).
void parse_annotations(const Token& comment, bool line_has_code,
                       std::vector<Suppression>& out) {
  std::size_t pos = 0;
  while ((pos = comment.text.find(kMarker, pos)) != std::string::npos) {
    std::size_t cur = pos + sizeof(kMarker) - 1;
    pos = cur;
    Suppression s;
    s.comment_line = comment.line;
    s.target_line = line_has_code ? comment.line : comment.line + 1;
    if (cur >= comment.text.size() || comment.text[cur] != '(') {
      continue;  // prose mention of the marker, not an annotation
    }
    const std::size_t close = comment.text.find(')', cur);
    if (close == std::string::npos) {
      out.push_back(std::move(s));
      continue;
    }
    s.rule = trim(comment.text.substr(cur + 1, close - cur - 1));
    cur = close + 1;
    if (cur < comment.text.size() && comment.text[cur] == ':') {
      // Reason runs to the end of the comment (or the next annotation).
      std::size_t end = comment.text.find(kMarker, cur);
      if (end == std::string::npos) end = comment.text.size();
      s.reason = trim(comment.text.substr(cur + 1, end - cur - 1));
    }
    out.push_back(std::move(s));
  }
}

}  // namespace

std::string SourceFile::layer() const {
  if (path.rfind("src/", 0) != 0) return {};
  const std::size_t begin = 4;
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return {};
  return path.substr(begin, slash - begin);
}

bool SourceFile::has_comment_on(int line) const {
  return std::binary_search(comment_lines.begin(), comment_lines.end(), line);
}

bool SourceFile::has_comment_between(int first_line, int last_line) const {
  const auto it = std::lower_bound(comment_lines.begin(), comment_lines.end(), first_line);
  return it != comment_lines.end() && *it <= last_line;
}

SourceFile parse_source(std::string path, std::string text) {
  SourceFile f;
  f.path = std::move(path);
  f.text = std::move(text);
  f.tokens = lex(f.text);

  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (t.kind == TokKind::kDirective) {
      // `#include "x"` / `# include "x"`; angle includes are not layer-checked.
      const std::size_t inc = t.text.find("include");
      if (inc != std::string::npos) {
        const std::size_t open = t.text.find('"', inc);
        if (open != std::string::npos) {
          const std::size_t close = t.text.find('"', open + 1);
          if (close != std::string::npos) {
            f.includes.push_back({t.text.substr(open + 1, close - open - 1), t.line});
          }
        }
      }
      continue;
    }
    if (t.kind == TokKind::kComment && t.text.find(kMarker) != std::string::npos) {
      // Code "on the line" means any non-comment token preceding this one
      // on the same source line.
      bool has_code = false;
      for (std::size_t j = i; j-- > 0;) {
        if (f.tokens[j].line != t.line) break;
        if (f.tokens[j].kind != TokKind::kComment) {
          has_code = true;
          break;
        }
      }
      parse_annotations(t, has_code, f.suppressions);
    }
    if (t.kind == TokKind::kComment) {
      // A block comment can span lines; every spanned line counts for the
      // R3 justification search.
      int line = t.line;
      f.comment_lines.push_back(line);
      for (const char c : t.text) {
        if (c == '\n') f.comment_lines.push_back(++line);
      }
    }
  }
  std::sort(f.comment_lines.begin(), f.comment_lines.end());
  f.comment_lines.erase(std::unique(f.comment_lines.begin(), f.comment_lines.end()),
                        f.comment_lines.end());
  return f;
}

}  // namespace fpopt::lint
