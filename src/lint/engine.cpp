#include "lint/engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fpopt::lint {
namespace {

// ---------------------------------------------------------------------------
// Catalogue

const std::vector<RuleInfo> kRules = {
    {"unordered-iter",
     "iteration over an unordered container: order is implementation-defined and must "
     "not feed artifacts, trace identities, or cache publish order"},
    {"wall-clock",
     "wall-clock or randomness primitive outside src/telemetry/: results must derive "
     "only from inputs and seeded PCG streams"},
    {"atomic-order",
     "atomic operation without an explicit std::memory_order, or a relaxed/acquire/"
     "release order without a nearby justification comment"},
    {"raw-telemetry",
     "telemetry used raw: FPOPT_TELEMETRY preprocessor checks or trace/telemetry "
     "symbols outside the no-op-capable headers"},
    {"layering", "quoted include violates the .fpopt-layers allowed DAG"},
    {"bad-suppression",
     "FPOPT-LINT-OK annotation with an unknown rule id or an empty reason"},
};

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool under(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// ---------------------------------------------------------------------------
// Cross-file context: include resolution and unordered-container symbols.

struct FileContext {
  std::vector<std::size_t> closure;          ///< indices of transitively included files
  std::set<std::string> include_strings;     ///< include texts, transitive
  std::set<std::string> unordered_vars;      ///< visible unordered-typed names
};

struct UnorderedDecls {
  std::set<std::string> vars;
  std::set<std::string> aliases;
};

bool is_unordered_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
         s == "unordered_multiset";
}

/// Collect names declared with an unordered container type in one file.
UnorderedDecls collect_unordered_decls(const SourceFile& f) {
  UnorderedDecls out;
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_unordered_name(toks[i].text)) continue;

    // `using Alias = std::unordered_map<...>;` — walk back over std:: to
    // see whether this spells a type alias.
    std::string alias;
    {
      std::size_t j = i;
      if (j > 0 && is_punct(toks[j - 1], "::")) j -= 1;
      if (j > 0 && is_ident(toks[j - 1], "std")) j -= 1;
      if (j >= 2 && is_punct(toks[j - 1], "=") && toks[j - 2].kind == TokKind::kIdent &&
          j >= 3 && is_ident(toks[j - 3], "using")) {
        alias = toks[j - 2].text;
      }
    }

    // Balance the template argument list.
    std::size_t j = i + 1;
    if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "<")) ++depth;
      if (is_punct(toks[j], ">") && --depth == 0) break;
      if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) break;  // lost; bail out
    }
    if (j >= toks.size() || !is_punct(toks[j], ">")) continue;
    ++j;

    if (!alias.empty()) {
      out.aliases.insert(alias);
      continue;
    }
    while (j < toks.size() &&
           (is_punct(toks[j], "*") || is_punct(toks[j], "&") || is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    if (j + 1 < toks.size() && is_punct(toks[j + 1], "(")) continue;  // function decl
    out.vars.insert(toks[j].text);
  }

  // Second pass: variables declared through one of the aliases.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || out.aliases.count(toks[i].text) == 0) continue;
    std::size_t j = i + 1;
    while (j < toks.size() && (is_punct(toks[j], "*") || is_punct(toks[j], "&"))) ++j;
    if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
        !(j + 1 < toks.size() && is_punct(toks[j + 1], "("))) {
      out.vars.insert(toks[j].text);
    }
  }
  return out;
}

/// Resolve one quoted include to an index in `files`, or npos. Quoted
/// includes are rooted at src/ in this repo, but test/tool fixtures may
/// use paths relative to the including file.
std::size_t resolve_include(const std::map<std::string, std::size_t>& by_path,
                            const std::string& including, const std::string& inc) {
  const std::string dir = dirname_of(including);
  for (const std::string& candidate :
       {dir.empty() ? inc : dir + "/" + inc, "src/" + inc, inc}) {
    const auto it = by_path.find(candidate);
    if (it != by_path.end()) return it->second;
  }
  return static_cast<std::size_t>(-1);
}

std::vector<FileContext> build_contexts(const std::vector<SourceFile>& files) {
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) by_path[files[i].path] = i;

  std::vector<UnorderedDecls> decls(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) decls[i] = collect_unordered_decls(files[i]);

  std::vector<FileContext> contexts(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    // BFS over quoted includes resolved within the analyzed set.
    std::vector<std::size_t> queue{i};
    std::set<std::size_t> seen{i};
    while (!queue.empty()) {
      const std::size_t cur = queue.back();
      queue.pop_back();
      contexts[i].closure.push_back(cur);
      for (const IncludeDirective& inc : files[cur].includes) {
        contexts[i].include_strings.insert(inc.path);
        const std::size_t target = resolve_include(by_path, files[cur].path, inc.path);
        if (target != static_cast<std::size_t>(-1) && seen.insert(target).second) {
          queue.push_back(target);
        }
      }
    }
    for (const std::size_t member : contexts[i].closure) {
      contexts[i].unordered_vars.insert(decls[member].vars.begin(),
                                        decls[member].vars.end());
    }
  }
  return contexts;
}

// ---------------------------------------------------------------------------
// R1: unordered-iter

/// True when the token range [begin, end) reduces to a plain reference to
/// `var` — `var`, `*var`, `this->var`, `obj.var`, chains thereof, with
/// optional outer parentheses. A surrounding call (e.g. `sorted(var)`)
/// counts as an explicit reordering wrapper and does NOT match.
bool range_is_bare_var(const std::vector<Token>& toks, std::size_t begin, std::size_t end,
                       const std::string& var) {
  if (begin >= end) return false;
  if (toks[end - 1].kind != TokKind::kIdent || toks[end - 1].text != var) return false;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    const Token& t = toks[i];
    const bool link = t.kind == TokKind::kIdent || is_punct(t, ".") || is_punct(t, "->") ||
                      is_punct(t, "*") || is_punct(t, "(") || is_punct(t, ")") ||
                      is_punct(t, "::");
    if (!link) return false;
    // An ident directly followed by '(' is a call: the container is
    // wrapped, which is exactly the sanctioned fix.
    if (t.kind == TokKind::kIdent && i + 1 < end && is_punct(toks[i + 1], "(")) return false;
  }
  return true;
}

void rule_unordered_iter(const SourceFile& f, const FileContext& ctx,
                         std::vector<Finding>& out) {
  const std::vector<Token>& toks = f.tokens;
  const std::set<std::string>& vars = ctx.unordered_vars;
  if (vars.empty()) return;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // Range-for: for ( decl : range-expr )
    if (is_ident(toks[i], "for") && is_punct(toks[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")") && --depth == 0) {
          close = j;
          break;
        }
        if (colon == 0 && depth == 1 && is_punct(toks[j], ":")) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (const std::string& var : vars) {
        if (range_is_bare_var(toks, colon + 1, close, var)) {
          out.push_back({"unordered-iter", f.path, toks[close - 1].line, toks[close - 1].col,
                         "range-for over unordered container '" + var +
                             "': iteration order is implementation-defined; sort into a "
                             "vector (or std::map) before this feeds any artifact, trace "
                             "identity, or cache publish order"});
          break;
        }
      }
      continue;
    }
    // Iterator loops: var.begin() / var->cbegin().
    if ((is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) && i + 3 < toks.size() &&
        toks[i].kind == TokKind::kIdent && vars.count(toks[i].text) != 0 &&
        (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin")) &&
        is_punct(toks[i + 3], "(")) {
      out.push_back({"unordered-iter", f.path, toks[i].line, toks[i].col,
                     "iterator walk over unordered container '" + toks[i].text +
                         "': iteration order is implementation-defined; sort into a vector "
                         "(or std::map) before this feeds any artifact, trace identity, or "
                         "cache publish order"});
    }
  }
}

// ---------------------------------------------------------------------------
// R2: wall-clock

void rule_wall_clock(const SourceFile& f, std::vector<Finding>& out) {
  if (!under(f.path, "src/") || under(f.path, "src/telemetry/")) return;
  static const std::set<std::string> kBannedAlways = {
      "rand",       "srand",          "random_device",         "mt19937",
      "mt19937_64", "system_clock",   "high_resolution_clock", "steady_clock",
      "clock_gettime", "gettimeofday",
  };
  static const std::set<std::string> kBannedCalls = {"time", "clock"};
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool always = kBannedAlways.count(toks[i].text) != 0;
    bool call = false;
    if (!always && kBannedCalls.count(toks[i].text) != 0) {
      // Only the free functions: `time(...)`, not `e.time` members.
      const bool called = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
      const bool member =
          i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
      call = called && !member;
    }
    if (!always && !call) continue;
    out.push_back({"wall-clock", f.path, toks[i].line, toks[i].col,
                   "'" + toks[i].text +
                       "' outside src/telemetry/: results must be a pure function of "
                       "inputs and seeded PCG streams; route timing through the "
                       "telemetry layer or annotate why this cannot affect outputs"});
  }
}

// ---------------------------------------------------------------------------
// R3: atomic-order

void rule_atomic_order(const SourceFile& f, std::vector<Finding>& out) {
  static const std::set<std::string> kAtomicOps = {
      "load",      "store",    "exchange",  "fetch_add",             "fetch_sub",
      "fetch_and", "fetch_or", "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
  };
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kAtomicOps.count(toks[i].text) == 0) continue;
    if (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")) continue;
    if (!is_punct(toks[i + 1], "(")) continue;

    // Collect the argument tokens of the call.
    int depth = 0;
    std::size_t end = i + 1;
    bool named_order = false;
    bool relaxed_family = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")") && --depth == 0) {
        end = j;
        break;
      }
      if (toks[j].kind == TokKind::kIdent &&
          toks[j].text.rfind("memory_order", 0) == 0) {
        named_order = true;
        if (toks[j].text != "memory_order" && toks[j].text != "memory_order_seq_cst") {
          relaxed_family = true;
        }
        // `memory_order::relaxed` spelling: peek past the `::`.
        if (toks[j].text == "memory_order" && j + 2 < toks.size() &&
            is_punct(toks[j + 1], "::") && !is_ident(toks[j + 2], "seq_cst")) {
          relaxed_family = true;
        }
      }
    }
    const int op_line = toks[i].line;
    if (!named_order) {
      out.push_back({"atomic-order", f.path, op_line, toks[i].col,
                     "atomic '" + toks[i].text +
                         "' relies on implicit seq_cst: name the std::memory_order "
                         "explicitly so the synchronization contract is visible"});
      continue;
    }
    if (relaxed_family) {
      const int end_line = toks[end].line;
      if (!f.has_comment_between(op_line - 3, end_line)) {
        out.push_back({"atomic-order", f.path, op_line, toks[i].col,
                       "non-seq_cst atomic '" + toks[i].text +
                           "' has no nearby justification: add a comment (within the 3 "
                           "lines above) saying why this ordering is sufficient"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R4: raw-telemetry

void rule_raw_telemetry(const SourceFile& f, const FileContext& ctx,
                        std::vector<Finding>& out) {
  if (under(f.path, "src/telemetry/")) return;
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kDirective && t.text.find("FPOPT_TELEMETRY") != std::string::npos) {
      out.push_back({"raw-telemetry", f.path, t.line, t.col,
                     "raw FPOPT_TELEMETRY preprocessor check: the compile-out contract "
                     "lives in telemetry/telemetry.h (kEnabled / no-op bodies); branch on "
                     "telemetry::kEnabled instead"});
    }
    if (is_ident(t, "FPOPT_TELEMETRY_DISABLED")) {
      out.push_back({"raw-telemetry", f.path, t.line, t.col,
                     "FPOPT_TELEMETRY_DISABLED referenced outside src/telemetry/: only the "
                     "telemetry headers may observe the build switch"});
    }
  }

  static const std::vector<std::pair<const char*, const char*>> kRequiredHeader = {
      {"TraceSpan", "telemetry/trace.h"},
      {"TraceSession", "telemetry/trace.h"},
      {"trace_instant", "telemetry/trace.h"},
      {"trace_thread_name", "telemetry/trace.h"},
      {"PhaseProfile", "telemetry/telemetry.h"},
  };
  std::set<std::string> reported;
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kIdent) continue;
    for (const auto& [symbol, header] : kRequiredHeader) {
      if (t.text != symbol || ctx.include_strings.count(header) != 0) continue;
      if (!reported.insert(symbol).second) continue;
      out.push_back({"raw-telemetry", f.path, t.line, t.col,
                     std::string("'") + symbol + "' used without including \"" + header +
                         "\": telemetry symbols must come from the no-op-capable header, "
                         "never a local declaration"});
    }
  }
}

// ---------------------------------------------------------------------------
// R5: layering

void rule_layering(const SourceFile& f, const LayerManifest& manifest,
                   std::vector<Finding>& out) {
  const std::string layer = f.layer();
  if (layer.empty()) return;
  if (!manifest.has_layer(layer)) {
    out.push_back({"layering", f.path, 1, 1,
                   "src/" + layer + "/ is not declared in .fpopt-layers: add the layer "
                   "and its allowed dependencies to the manifest"});
    return;
  }
  for (const IncludeDirective& inc : f.includes) {
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;
    const std::string target = inc.path.substr(0, slash);
    if (!manifest.has_layer(target)) continue;  // not a src/ layer path
    if (!manifest.allows(layer, target)) {
      out.push_back({"layering", f.path, inc.line, 1,
                     "include \"" + inc.path + "\": layer '" + layer +
                         "' may not depend on '" + target +
                         "' (.fpopt-layers); either the dependency is wrong or the "
                         "manifest needs a deliberate edge"});
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions

void apply_suppressions(const SourceFile& f, std::vector<Finding>& findings,
                        std::vector<Finding>& out) {
  for (Finding& finding : findings) {
    bool suppressed = false;
    for (const Suppression& s : f.suppressions) {
      if (s.target_line == finding.line && s.rule == finding.rule && !s.reason.empty() &&
          known_rule(s.rule)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(finding));
  }
}

void rule_bad_suppression(const SourceFile& f, std::vector<Finding>& out) {
  for (const Suppression& s : f.suppressions) {
    if (s.rule.empty() || !known_rule(s.rule)) {
      out.push_back({"bad-suppression", f.path, s.comment_line, 1,
                     "FPOPT-LINT-OK with " +
                         (s.rule.empty() ? std::string("no rule id")
                                         : "unknown rule id '" + s.rule + "'") +
                         ": use one of the ids from `fpopt_lint --list-rules`"});
    } else if (s.reason.empty()) {
      out.push_back({"bad-suppression", f.path, s.comment_line, 1,
                     "FPOPT-LINT-OK(" + s.rule +
                         ") has no reason: every waiver must say why the rule does not "
                         "apply (\"FPOPT-LINT-OK(" + s.rule + "): <why>\")"});
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() { return kRules; }

bool known_rule(const std::string& id) {
  for (const RuleInfo& rule : kRules) {
    if (id == rule.id) return true;
  }
  return false;
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files,
                              const LintOptions& options) {
  const std::vector<FileContext> contexts = build_contexts(files);
  std::vector<Finding> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const SourceFile& f = files[i];
    std::vector<Finding> local;
    rule_unordered_iter(f, contexts[i], local);
    rule_wall_clock(f, local);
    rule_atomic_order(f, local);
    rule_raw_telemetry(f, contexts[i], local);
    if (options.manifest != nullptr) rule_layering(f, *options.manifest, local);
    apply_suppressions(f, local, out);
    rule_bad_suppression(f, out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace fpopt::lint
