#include "lint/render.h"

#include <iomanip>
#include <sstream>

namespace fpopt::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c)) << std::dec;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

}  // namespace

void render_text(const std::vector<Finding>& findings, std::ostream& out) {
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ":" << f.col << ": error[" << f.rule
        << "]: " << f.message << "\n";
  }
  if (findings.empty()) {
    out << "fpopt_lint: clean\n";
  } else {
    out << "fpopt_lint: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << "\n";
  }
}

void render_json(const std::vector<Finding>& findings, std::ostream& out) {
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"col\": " << f.col << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"message\": \"" << json_escape(f.message)
        << "\"}";
  }
  out << (findings.empty() ? "" : "\n  ") << "]\n}\n";
}

void render_sarif(const std::vector<Finding>& findings, std::ostream& out) {
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"fpopt_lint\",\n"
      << "          \"informationUri\": \"docs/LINT.md\",\n"
      << "          \"rules\": [";
  const std::vector<RuleInfo>& rules = rule_catalogue();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n            {\"id\": \"" << json_escape(rules[i].id)
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(rules[i].summary)
        << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line
        << ", \"startColumn\": " << f.col << "}}}]}";
  }
  out << (findings.empty() ? "" : "\n      ") << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace fpopt::lint
