// The `.fpopt-layers` manifest: the repo's allowed include DAG over the
// directories of src/ (R5, docs/LINT.md).
//
// Format, one layer per line:
//
//   # comment
//   optimize: core cache floorplan shape geometry runtime telemetry
//   geometry:
//
// `name: dep dep ...` declares that files under src/<name>/ may include
// headers from src/<dep>/ (and always from src/<name>/ itself). The
// declared graph must be acyclic and every dependency must itself be a
// declared layer — both are manifest *errors* (exit 2), not findings,
// because a broken manifest can silently allow anything.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fpopt::lint {

struct LayerManifest {
  /// layer -> allowed direct dependencies (self-dependency implicit).
  std::map<std::string, std::vector<std::string>> deps;

  [[nodiscard]] bool has_layer(const std::string& name) const {
    return deps.find(name) != deps.end();
  }
  [[nodiscard]] bool allows(const std::string& from, const std::string& to) const;
};

struct LayerManifestResult {
  LayerManifest manifest;
  std::vector<std::string> errors;  ///< empty iff the manifest is usable
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parse and validate manifest text: syntax, undeclared deps, duplicate
/// layers, and cycles (reported with the offending chain).
[[nodiscard]] LayerManifestResult parse_layer_manifest(const std::string& text);

}  // namespace fpopt::lint
