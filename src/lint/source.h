// Per-file source model for fpopt_lint: tokens plus everything the rule
// visitors need pre-extracted — quoted includes, suppression annotations,
// and the set of lines that carry any comment (R3's justification check).
//
// Suppression syntax (docs/LINT.md):
//
//   code();  // FPOPT-LINT-OK(unordered-iter): counts only, order-free
//
// An annotation on a line with code suppresses findings of `rule-id` on
// that line; an annotation on a line of its own suppresses the next line.
// The reason is mandatory — an empty reason (or an unknown rule id) is
// itself a finding (`bad-suppression`), so every waiver in the tree is
// forced to document itself.
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.h"

namespace fpopt::lint {

struct IncludeDirective {
  std::string path;  ///< the quoted include text, e.g. "cache/cache_key.h"
  int line = 0;
};

struct Suppression {
  std::string rule;
  std::string reason;     ///< text after the ':' (trimmed); may be empty => finding
  int target_line = 0;    ///< line whose findings this suppresses
  int comment_line = 0;   ///< line the annotation itself is on
};

struct SourceFile {
  std::string path;  ///< repo-relative, '/'-separated (e.g. "src/cache/memo_cache.h")
  std::string text;
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;  ///< quoted includes only
  std::vector<Suppression> suppressions;
  std::vector<int> comment_lines;  ///< sorted lines containing any comment text

  /// Directory layer for R5: "cache" for "src/cache/x.h", "" when the
  /// file is not under src/ or sits directly in src/.
  [[nodiscard]] std::string layer() const;

  [[nodiscard]] bool has_comment_on(int line) const;
  [[nodiscard]] bool has_comment_between(int first_line, int last_line) const;
};

/// Build the model: lex, extract includes + suppressions + comment lines.
[[nodiscard]] SourceFile parse_source(std::string path, std::string text);

}  // namespace fpopt::lint
