// Output renderers for fpopt_lint findings: human-readable text, a plain
// JSON findings list, and SARIF 2.1.0 (the format CI code-scanning UIs
// ingest). Dependency-free by design — the emitters build the documents
// by hand, escaping strings per RFC 8259; tests/lint_test.cpp round-trips
// the JSON/SARIF output through the repo's own parser to pin the shape.
#pragma once

#include <ostream>
#include <vector>

#include "lint/engine.h"

namespace fpopt::lint {

/// "file:line:col: error[rule]: message" lines plus a summary line.
void render_text(const std::vector<Finding>& findings, std::ostream& out);

/// {"findings": [{"file", "line", "col", "rule", "message"}, ...]}
void render_json(const std::vector<Finding>& findings, std::ostream& out);

/// Minimal SARIF 2.1.0: one run, tool.driver.rules from the catalogue,
/// one result per finding with a physicalLocation region.
void render_sarif(const std::vector<Finding>& findings, std::ostream& out);

}  // namespace fpopt::lint
