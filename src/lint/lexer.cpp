#include "lint/lexer.h"

#include <cctype>

namespace fpopt::lint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// True when the token stream so far makes the next '#' a directive:
/// only whitespace (and comments) since the last newline.
bool at_line_start(const std::vector<Token>& toks, int line) {
  for (auto it = toks.rbegin(); it != toks.rend(); ++it) {
    if (it->line != line) break;
    if (it->kind != TokKind::kComment) return false;
  }
  return true;
}

}  // namespace

std::vector<Token> lex(const std::string& text) {
  std::vector<Token> out;
  Cursor cur(text);

  auto start_token = [&](TokKind kind) {
    return Token{kind, std::string(), cur.line(), cur.col()};
  };

  while (!cur.done()) {
    const char c = cur.peek();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.take();
      continue;
    }

    // Preprocessor directive: '#' first on its line; fold "\\\n".
    if (c == '#' && at_line_start(out, cur.line())) {
      Token t = start_token(TokKind::kDirective);
      while (!cur.done()) {
        const char d = cur.peek();
        if (d == '\\' && cur.peek(1) == '\n') {
          cur.take();
          cur.take();
          t.text += ' ';
          continue;
        }
        if (d == '\n') break;
        // A // comment terminates the directive's interesting text.
        if (d == '/' && cur.peek(1) == '/') break;
        t.text += cur.take();
      }
      out.push_back(std::move(t));
      continue;
    }

    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      Token t = start_token(TokKind::kComment);
      while (!cur.done() && cur.peek() != '\n') t.text += cur.take();
      out.push_back(std::move(t));
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      Token t = start_token(TokKind::kComment);
      t.text += cur.take();
      t.text += cur.take();
      while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          t.text += cur.take();
          t.text += cur.take();
          break;
        }
        t.text += cur.take();
      }
      out.push_back(std::move(t));
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && cur.peek(1) == '"') {
      Token t = start_token(TokKind::kString);
      t.text += cur.take();  // R
      t.text += cur.take();  // "
      std::string delim;
      while (!cur.done() && cur.peek() != '(') delim += cur.take();
      if (!cur.done()) cur.take();  // (
      t.text += delim + "(";
      const std::string close = ")" + delim + "\"";
      std::string tail;
      while (!cur.done()) {
        tail += cur.take();
        if (tail.size() >= close.size() &&
            tail.compare(tail.size() - close.size(), close.size(), close) == 0) {
          break;
        }
      }
      t.text += tail;
      out.push_back(std::move(t));
      continue;
    }

    // Ordinary string / char literals.
    if (c == '"' || c == '\'') {
      Token t = start_token(TokKind::kString);
      const char quote = cur.take();
      t.text += quote;
      while (!cur.done()) {
        const char d = cur.take();
        t.text += d;
        if (d == '\\' && !cur.done()) {
          t.text += cur.take();
          continue;
        }
        if (d == quote || d == '\n') break;
      }
      out.push_back(std::move(t));
      continue;
    }

    // Identifiers / keywords.
    if (ident_start(c)) {
      Token t = start_token(TokKind::kIdent);
      while (!cur.done() && ident_char(cur.peek())) t.text += cur.take();
      out.push_back(std::move(t));
      continue;
    }

    // Numbers (pp-number, loosely: digits plus idents/dots/exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))) != 0)) {
      Token t = start_token(TokKind::kNumber);
      while (!cur.done()) {
        const char d = cur.peek();
        if (ident_char(d) || d == '.') {
          t.text += cur.take();
          if ((t.text.back() == 'e' || t.text.back() == 'E' || t.text.back() == 'p' ||
               t.text.back() == 'P') &&
              (cur.peek() == '+' || cur.peek() == '-')) {
            t.text += cur.take();
          }
          continue;
        }
        break;
      }
      out.push_back(std::move(t));
      continue;
    }

    // Punctuation. `::` and `->` become single tokens (the rules need
    // them); everything else is one character, so `>>` closes two
    // template levels and `<<` never pairs with a declaration's `<`.
    Token t = start_token(TokKind::kPunct);
    const char first = cur.take();
    t.text += first;
    if ((first == ':' && cur.peek() == ':') || (first == '-' && cur.peek() == '>')) {
      t.text += cur.take();
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace fpopt::lint
