// Lightweight C++ lexer for fpopt_lint (src/lint/).
//
// This is *not* a compiler front end: it tokenizes just enough C++ to
// drive the per-rule visitors in engine.cpp — identifiers, punctuation,
// literals, comments (kept as tokens, because suppression annotations and
// R3 justification comments live in them), and whole preprocessor
// directives (kept as single tokens, with line continuations folded,
// because the include extractor and the R4 raw-#ifdef check match on
// them). Templates, raw strings, and multi-character operators that the
// rules care about (`::`, `->`) are handled; everything else is a
// single-character punctuation token. The design constraint is the same
// as the rest of the tool: dependency-free, deterministic, fast enough to
// lex the whole repo on every CI run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fpopt::lint {

enum class TokKind {
  kIdent,      ///< identifiers and keywords (the rules treat them alike)
  kNumber,     ///< numeric literal (pp-number, loosely)
  kString,     ///< string or character literal, raw strings included
  kPunct,      ///< operator / punctuation; `::` and `->` are single tokens
  kComment,    ///< // or /* */ comment, text includes the delimiters
  kDirective,  ///< whole preprocessor line, continuations folded, '#' included
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
  int col = 0;   ///< 1-based column of the token's first character
};

/// Tokenize a C++ source buffer. Never fails: malformed input (unclosed
/// comment/string) produces a best-effort token that runs to end of file.
[[nodiscard]] std::vector<Token> lex(const std::string& text);

}  // namespace fpopt::lint
