// AVX2 twins of the sweep kernels. This translation unit is the only one
// compiled with -mavx2 (see src/kernel/CMakeLists.txt) and is only built
// when FPOPT_AVX2=ON; callers reach it through the dispatchers in
// sweep.cpp after the cpuid check in kernel.cpp, so no AVX2 instruction
// ever executes on a CPU without the feature.
//
// Bit-identity notes (the proofs behind the sweep.h contract):
//  * int64 lanes use add/cmpgt/blend; 64x64->64 low multiply is emulated
//    from three 32x32->64 partial products (the standard mullo trick) and
//    agrees with scalar multiplication for every operand pair;
//  * argmin kernels keep per-lane first minima with a strict < blend and
//    reduce lanes by (value, index) lexicographic order, reproducing the
//    scalar scan's first-occurrence winner;
//  * the double add in argmin_add is one _mm256_add_pd per element — the
//    same single IEEE addition the scalar loop performs, in no different
//    order, so not even rounding can diverge.
#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "kernel/sweep.h"

namespace fpopt::kernel {
namespace {

inline __m256i load_i64(const Dim* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store_i64(Dim* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// max of signed 64-bit lanes (AVX2 has no native epi64 max).
inline __m256i max_i64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

inline __m256i min_i64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

/// Low 64 bits of a*b per lane: lo(a)lo(b) + ((lo(a)hi(b)+hi(a)lo(b))<<32).
/// Identical to scalar int64 multiplication (both are mod-2^64 products).
inline __m256i mul_i64(__m256i a, __m256i b) {
  const __m256i b_swap = _mm256_shuffle_epi32(b, 0xB1);       // hi<->lo halves
  const __m256i cross = _mm256_mullo_epi32(a, b_swap);        // lo*hi, hi*lo
  const __m256i cross_sum = _mm256_hadd_epi32(cross, _mm256_setzero_si256());
  const __m256i cross_hi = _mm256_shuffle_epi32(cross_sum, 0x73);  // into hi halves
  const __m256i lo_lo = _mm256_mul_epu32(a, b);               // lo*lo, full 64
  return _mm256_add_epi64(lo_lo, cross_hi);
}

/// Exact int64 -> double, full range (cvtepi64_pd needs AVX-512DQ). The
/// value splits into a low-32 part encoded against 2^52 and a signed
/// high-32 part encoded against 2^84 + 2^63; both encodings are exact,
/// their mathematical sum is the original integer, and the one final
/// add_pd performs the only rounding — so every lane equals the scalar
/// static_cast<double> under the default round-to-nearest mode (the mode
/// the whole program runs in; nothing here touches MXCSR).
inline __m256d i64_to_f64(__m256i v) {
  const __m256i magic_lo = _mm256_set1_epi64x(0x4330000000000000);    // 2^52
  const __m256i magic_hi32 = _mm256_set1_epi64x(0x4530000080000000);  // 2^84 + 2^63
  const __m256i magic_all = _mm256_set1_epi64x(0x4530000080100000);   // both + 2^52
  const __m256i v_lo = _mm256_blend_epi32(magic_lo, v, 0b01010101);
  const __m256i v_hi = _mm256_xor_si256(_mm256_srli_epi64(v, 32), magic_hi32);
  const __m256d hi_dbl =
      _mm256_sub_pd(_mm256_castsi256_pd(v_hi), _mm256_castsi256_pd(magic_all));
  return _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo));
}

}  // namespace

RowArgmin argmin_add_avx2(const Weight* a, const Weight* b, std::size_t n) {
  Weight best = kInfiniteWeight;
  std::size_t best_i = 0;
  std::size_t t = 0;
  if (n >= 4) {
    __m256d best_v = _mm256_set1_pd(kInfiniteWeight);
    __m256i best_idx = _mm256_setzero_si256();
    __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i four = _mm256_set1_epi64x(4);
    for (; t + 4 <= n; t += 4) {
      const __m256d cand = _mm256_add_pd(_mm256_loadu_pd(a + t), _mm256_loadu_pd(b + t));
      const __m256d lt = _mm256_cmp_pd(cand, best_v, _CMP_LT_OQ);  // strict: first wins
      best_v = _mm256_blendv_pd(best_v, cand, lt);
      best_idx = _mm256_castpd_si256(
          _mm256_blendv_pd(_mm256_castsi256_pd(best_idx), _mm256_castsi256_pd(idx), lt));
      idx = _mm256_add_epi64(idx, four);
    }
    alignas(32) double lane_v[4];
    alignas(32) std::int64_t lane_i[4];
    _mm256_store_pd(lane_v, best_v);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_i), best_idx);
    for (int lane = 0; lane < 4; ++lane) {
      const auto i = static_cast<std::size_t>(lane_i[lane]);
      // Smallest value, ties to the smallest index: the global first
      // occurrence, because each lane already holds its first minimum.
      if (lane_v[lane] < best || (lane_v[lane] == best && i < best_i)) {
        best = lane_v[lane];
        best_i = i;
      }
    }
  }
  for (; t < n; ++t) {
    // Tail indices exceed every vector index, so a plain strict < (never
    // replacing on equality) preserves the first-occurrence rule.
    const Weight cand = a[t] + b[t];
    if (cand < best) {
      best = cand;
      best_i = t;
    }
  }
  return {best, best_i};
}

void r_error_row_avx2(const Dim* w, const Area* g, std::size_t n, Dim wj, Dim hj, Area gj,
                      Weight* out) {
  const __m256i wj_v = _mm256_set1_epi64x(wj);
  const __m256i hj_v = _mm256_set1_epi64x(hj);
  const __m256i gj_v = _mm256_set1_epi64x(gj);
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    // hj*(w - wj) - (gj - g)  ==  hj*(w - wj) + (g - gj), exactly, in int64.
    const __m256i strip = mul_i64(hj_v, _mm256_sub_epi64(load_i64(w + t), wj_v));
    const __m256i err = _mm256_add_epi64(strip, _mm256_sub_epi64(load_i64(g + t), gj_v));
    _mm256_storeu_pd(out + t, i64_to_f64(err));
  }
  for (; t < n; ++t) {
    out[t] = static_cast<Weight>(hj * (w[t] - wj) - (gj - g[t]));
  }
}

RowArgmin argmin_r_error_row_avx2(const Weight* prev, const Dim* w, const Area* g,
                                  std::size_t n, Dim wj, Dim hj, Area gj) {
  Weight best = kInfiniteWeight;
  std::size_t best_i = 0;
  std::size_t t = 0;
  if (n >= 4) {
    const __m256i wj_v = _mm256_set1_epi64x(wj);
    const __m256i hj_v = _mm256_set1_epi64x(hj);
    const __m256i gj_v = _mm256_set1_epi64x(gj);
    __m256d best_v = _mm256_set1_pd(kInfiniteWeight);
    __m256i best_idx = _mm256_setzero_si256();
    __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i four = _mm256_set1_epi64x(4);
    for (; t + 4 <= n; t += 4) {
      // Same int64 row as r_error_row_avx2, converted and added to prev
      // in-register: one rounding for the convert, one for the add —
      // exactly the scalar loop's operations.
      const __m256i strip = mul_i64(hj_v, _mm256_sub_epi64(load_i64(w + t), wj_v));
      const __m256i err = _mm256_add_epi64(strip, _mm256_sub_epi64(load_i64(g + t), gj_v));
      const __m256d cand = _mm256_add_pd(_mm256_loadu_pd(prev + t), i64_to_f64(err));
      const __m256d lt = _mm256_cmp_pd(cand, best_v, _CMP_LT_OQ);  // strict: first wins
      best_v = _mm256_blendv_pd(best_v, cand, lt);
      best_idx = _mm256_castpd_si256(
          _mm256_blendv_pd(_mm256_castsi256_pd(best_idx), _mm256_castsi256_pd(idx), lt));
      idx = _mm256_add_epi64(idx, four);
    }
    alignas(32) double lane_v[4];
    alignas(32) std::int64_t lane_i[4];
    _mm256_store_pd(lane_v, best_v);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_i), best_idx);
    for (int lane = 0; lane < 4; ++lane) {
      const auto i = static_cast<std::size_t>(lane_i[lane]);
      if (lane_v[lane] < best || (lane_v[lane] == best && i < best_i)) {
        best = lane_v[lane];
        best_i = i;
      }
    }
  }
  for (; t < n; ++t) {
    const Weight cand = prev[t] + static_cast<Weight>(hj * (w[t] - wj) - (gj - g[t]));
    if (cand < best) {
      best = cand;
      best_i = t;
    }
  }
  return {best, best_i};
}

void add_broadcast_avx2(const Dim* in, std::size_t n, Dim c, Dim* out) {
  const __m256i c_v = _mm256_set1_epi64x(c);
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) store_i64(out + t, _mm256_add_epi64(load_i64(in + t), c_v));
  for (; t < n; ++t) out[t] = in[t] + c;
}

void max_broadcast_avx2(const Dim* in, std::size_t n, Dim c, Dim* out) {
  const __m256i c_v = _mm256_set1_epi64x(c);
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) store_i64(out + t, max_i64(load_i64(in + t), c_v));
  for (; t < n; ++t) out[t] = std::max(in[t], c);
}

void max_add_broadcast_avx2(const Dim* a, const Dim* b, std::size_t n, Dim c, Dim* out) {
  const __m256i c_v = _mm256_set1_epi64x(c);
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    store_i64(out + t, max_i64(load_i64(a + t), _mm256_add_epi64(load_i64(b + t), c_v)));
  }
  for (; t < n; ++t) out[t] = std::max(a[t], b[t] + c);
}

void max_rows_avx2(const Dim* a, const Dim* b, std::size_t n, Dim* out) {
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) store_i64(out + t, max_i64(load_i64(a + t), load_i64(b + t)));
  for (; t < n; ++t) out[t] = std::max(a[t], b[t]);
}

std::optional<std::size_t> argmin_area_in_outline_avx2(const Dim* w, const Dim* h,
                                                       std::size_t n, Dim max_w, Dim max_h) {
  std::optional<std::size_t> best;
  Area best_area = 0;
  std::size_t t = 0;
  if (n >= 4) {
    const __m256i max_w_v = _mm256_set1_epi64x(max_w);
    const __m256i max_h_v = _mm256_set1_epi64x(max_h);
    __m256i lane_area = _mm256_setzero_si256();
    __m256i lane_idx = _mm256_setzero_si256();
    __m256i lane_empty = _mm256_set1_epi64x(-1);  // all lanes start empty
    __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i four = _mm256_set1_epi64x(4);
    for (; t + 4 <= n; t += 4) {
      const __m256i w_v = load_i64(w + t);
      const __m256i h_v = load_i64(h + t);
      const __m256i infeasible = _mm256_or_si256(_mm256_cmpgt_epi64(w_v, max_w_v),
                                                 _mm256_cmpgt_epi64(h_v, max_h_v));
      const __m256i area = mul_i64(w_v, h_v);
      // Update on: feasible && (lane empty || area < lane best) — the
      // scalar rule, per index subsequence.
      const __m256i better =
          _mm256_or_si256(lane_empty, _mm256_cmpgt_epi64(lane_area, area));
      const __m256i take = _mm256_andnot_si256(infeasible, better);
      lane_area = _mm256_blendv_epi8(lane_area, area, take);
      lane_idx = _mm256_blendv_epi8(lane_idx, idx, take);
      lane_empty = _mm256_andnot_si256(take, lane_empty);
      idx = _mm256_add_epi64(idx, four);
    }
    alignas(32) std::int64_t areas[4];
    alignas(32) std::int64_t idxs[4];
    alignas(32) std::int64_t empties[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(areas), lane_area);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), lane_idx);
    _mm256_store_si256(reinterpret_cast<__m256i*>(empties), lane_empty);
    for (int lane = 0; lane < 4; ++lane) {
      if (empties[lane] != 0) continue;
      const auto i = static_cast<std::size_t>(idxs[lane]);
      if (!best || areas[lane] < best_area || (areas[lane] == best_area && i < *best)) {
        best = i;
        best_area = areas[lane];
      }
    }
  }
  for (; t < n; ++t) {
    if (w[t] > max_w || h[t] > max_h) continue;
    const Area area = w[t] * h[t];
    if (!best || area < best_area) {
      best = t;
      best_area = area;
    }
  }
  return best;
}

Dim min_max_side_avx2(const Dim* w, const Dim* h, std::size_t n) {
  Dim best = std::numeric_limits<Dim>::max();
  std::size_t t = 0;
  if (n >= 4) {
    __m256i best_v = _mm256_set1_epi64x(best);
    for (; t + 4 <= n; t += 4) {
      best_v = min_i64(best_v, max_i64(load_i64(w + t), load_i64(h + t)));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best_v);
    for (int lane = 0; lane < 4; ++lane) best = std::min(best, lanes[lane]);
  }
  for (; t < n; ++t) best = std::min(best, std::max(w[t], h[t]));
  return best;
}

}  // namespace fpopt::kernel
