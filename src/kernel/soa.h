// Structure-of-arrays views over shape-curve data.
//
// The shape containers (RList, LList) are arrays-of-structs, which is the
// right layout for their incremental build/prune logic but the wrong one
// for row sweeps: a kernel touching only widths strides over heights too.
// These views gather one field per contiguous row into arena scratch so
// the sweep kernels (sweep.h) stream unit-stride memory.
//
// Views borrow arena storage: they are valid only while the ArenaScope
// they were loaded under is alive (arena.h lifetime rules). Loading is a
// single scalar pass; every kernel that reads the row more than once (or
// reads it 4 lanes at a time) amortizes it.
#pragma once

#include <cstddef>
#include <span>

#include "geometry/l_impl.h"
#include "geometry/rect_impl.h"
#include "geometry/types.h"
#include "kernel/arena.h"

namespace fpopt::kernel {

/// One rectangle curve: parallel width/height rows, index-aligned with
/// the source list.
struct RCurveSoA {
  const Dim* w = nullptr;
  const Dim* h = nullptr;
  std::size_t n = 0;
};

/// Gathers `list` into arena rows (valid while `arena`'s current scope is).
[[nodiscard]] inline RCurveSoA load_r_curve(Arena& arena, std::span<const RectImpl> list) {
  Dim* w = arena.alloc_array<Dim>(list.size());
  Dim* h = arena.alloc_array<Dim>(list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    w[i] = list[i].w;
    h[i] = list[i].h;
  }
  return {w, h, list.size()};
}

/// One irreducible L-chain: w2 is constant along a chain (shape/l_list.h
/// invariant), so only the varying fields get rows.
struct LChainSoA {
  const Dim* w1 = nullptr;
  const Dim* h1 = nullptr;
  const Dim* h2 = nullptr;
  std::size_t n = 0;
};

/// Gathers `chain` into arena rows (w2 is the caller's to carry).
[[nodiscard]] inline LChainSoA load_l_chain(Arena& arena, std::span<const LImpl> chain) {
  Dim* w1 = arena.alloc_array<Dim>(chain.size());
  Dim* h1 = arena.alloc_array<Dim>(chain.size());
  Dim* h2 = arena.alloc_array<Dim>(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    w1[i] = chain[i].w1;
    h1[i] = chain[i].h1;
    h2[i] = chain[i].h2;
  }
  return {w1, h1, h2, chain.size()};
}

}  // namespace fpopt::kernel
