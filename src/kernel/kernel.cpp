#include "kernel/kernel.h"

#include <atomic>

namespace fpopt::kernel {
namespace {

/// Process-wide requested mode. Relaxed ordering is sufficient: the mode
/// is configuration, not synchronization — it is set once at startup (or
/// under a test guard) before the work it influences is launched, every
/// load observes a valid enum regardless of ordering, and the dispatched
/// backends are bit-identical anyway, so even a racy transition could not
/// change any result.
std::atomic<KernelMode> g_mode{KernelMode::Auto};

bool detect_avx2() {
#if defined(FPOPT_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

bool avx2_compiled() {
#if defined(FPOPT_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_supported() {
  // cpuid never changes while the process runs; cache the probe.
  static const bool supported = detect_avx2();
  return supported;
}

bool set_kernel_mode(KernelMode mode) {
  if (mode == KernelMode::Avx2 && !avx2_supported()) return false;
  g_mode.store(mode, std::memory_order_relaxed);  // see g_mode comment
  return true;
}

KernelMode kernel_mode() {
  return g_mode.load(std::memory_order_relaxed);  // see g_mode comment
}

KernelBackend kernel_backend() {
  switch (kernel_mode()) {
    case KernelMode::Scalar:
      return KernelBackend::Scalar;
    case KernelMode::Avx2:
      return KernelBackend::Avx2;
    case KernelMode::Auto:
      break;
  }
  return avx2_supported() ? KernelBackend::Avx2 : KernelBackend::Scalar;
}

std::string_view kernel_backend_name() {
  return kernel_backend() == KernelBackend::Avx2 ? "avx2" : "scalar";
}

std::optional<KernelMode> parse_kernel_mode(std::string_view text) {
  if (text == "auto") return KernelMode::Auto;
  if (text == "scalar") return KernelMode::Scalar;
  if (text == "avx2") return KernelMode::Avx2;
  return std::nullopt;
}

}  // namespace fpopt::kernel
