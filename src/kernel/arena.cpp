#include "kernel/arena.h"

#include <algorithm>
#include <cassert>

namespace fpopt::kernel {

Arena::Arena(std::size_t initial_bytes) {
  push_chunk(std::max<std::size_t>(initial_bytes, kAlign));
  active_ = 0;
}

void Arena::push_chunk(std::size_t at_least) {
  const std::size_t prev = chunks_.empty() ? 0 : chunks_.back().size;
  const std::size_t size = std::max(at_least, prev * 2);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size + kAlign);
  c.size = size;
  c.used = 0;
  chunks_.push_back(std::move(c));
}

void* Arena::allocate(std::size_t bytes) {
  // Round every allocation up to the alignment quantum so the next bump
  // stays aligned; the +kAlign slack in push_chunk absorbs the base offset.
  const std::size_t need = (bytes + kAlign - 1) / kAlign * kAlign;
  for (;;) {
    Chunk& c = chunks_[active_];
    void* base = c.data.get();
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    const std::size_t skew = (kAlign - addr % kAlign) % kAlign;
    if (skew + c.used + need <= c.size + kAlign) {
      void* out = c.data.get() + skew + c.used;
      c.used += need;
      return out;
    }
    if (active_ + 1 < chunks_.size() && chunks_[active_ + 1].size >= need) {
      ++active_;
      chunks_[active_].used = 0;
      continue;
    }
    // Drop any retained-but-too-small successors and grow geometrically.
    chunks_.resize(active_ + 1);
    push_chunk(need);
    ++active_;
  }
}

void Arena::rewind(Mark m) {
  assert(m.chunk <= active_ && m.chunk < chunks_.size());
  for (std::size_t i = m.chunk + 1; i <= active_; ++i) chunks_[i].used = 0;
  chunks_[m.chunk].used = m.used;
  active_ = m.chunk;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= active_; ++i) total += chunks_[i].used;
  return total;
}

Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace fpopt::kernel
