// Kernel backend selection: scalar reference vs AVX2 vector paths.
//
// Every vectorized routine in this layer (sweep.h) is pinned bit-identical
// to its scalar twin — "scalar is truth". The backend only decides *how*
// a row is computed, never *what* it computes, so flipping it can never
// change curves, selections, or OOM decisions (the kernel-equivalence
// suite enforces this byte-for-byte over whole optimizer runs).
//
// Resolution order:
//  * compile time: FPOPT_AVX2 (CMake option, default ON) gates whether the
//    AVX2 translation unit is built at all;
//  * run time: the process-wide mode (Auto by default) set via
//    set_kernel_mode / the `--kernel scalar|avx2|auto` CLI flag, clamped
//    by cpuid detection — Auto picks AVX2 exactly when the CPU has it.
#pragma once

#include <optional>
#include <string_view>

namespace fpopt::kernel {

/// Requested backend policy (process-wide).
enum class KernelMode { Auto, Scalar, Avx2 };

/// Concrete backend a dispatching kernel will run.
enum class KernelBackend { Scalar, Avx2 };

/// True when the AVX2 translation unit was compiled in (FPOPT_AVX2=ON).
[[nodiscard]] bool avx2_compiled();

/// True when both the build and the running CPU support AVX2.
[[nodiscard]] bool avx2_supported();

/// Sets the process-wide mode. Returns false (and leaves the mode
/// unchanged) when Avx2 is requested but unavailable on this build/CPU.
bool set_kernel_mode(KernelMode mode);

/// The currently requested mode (Auto until set).
[[nodiscard]] KernelMode kernel_mode();

/// The backend dispatching kernels resolve to right now:
/// Auto -> Avx2 iff avx2_supported(), explicit modes map directly.
[[nodiscard]] KernelBackend kernel_backend();

/// "scalar" or "avx2" — for reports and error messages.
[[nodiscard]] std::string_view kernel_backend_name();

/// Parses "scalar" / "avx2" / "auto"; nullopt on anything else.
[[nodiscard]] std::optional<KernelMode> parse_kernel_mode(std::string_view text);

/// RAII mode override for tests: restores the previous mode on scope exit.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(KernelMode mode) : previous_(kernel_mode()) {
    applied_ = set_kernel_mode(mode);
  }
  ~KernelModeGuard() { set_kernel_mode(previous_); }
  KernelModeGuard(const KernelModeGuard&) = delete;
  KernelModeGuard& operator=(const KernelModeGuard&) = delete;

  /// False when the requested mode was unavailable (mode left unchanged).
  [[nodiscard]] bool applied() const { return applied_; }

 private:
  KernelMode previous_;
  bool applied_ = false;
};

}  // namespace fpopt::kernel
