// Bump arena for kernel scratch rows.
//
// The SoA kernels materialize short-lived rows (widths, heights, weights)
// millions of times per run; heap round-trips for each row dominate the
// kernels themselves. An Arena hands out pointer-bumped, 64-byte-aligned
// storage from geometrically grown chunks, and a scope mark rewinds it in
// O(live chunks) without running destructors.
//
// Lifetime rules (docs/ALGORITHMS.md §11):
//  * only trivially destructible element types — rewinding never destroys;
//  * an allocation is valid until the enclosing ArenaScope unwinds; never
//    store arena pointers in a structure that outlives the scope;
//  * arenas are single-threaded. scratch_arena() is thread-local, so each
//    pool worker bumps its own arena and parallel loops need no locks;
//  * chunks are retained on rewind, so steady-state kernel code performs
//    zero heap allocations.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace fpopt::kernel {

class Arena {
 public:
  /// Alignment of every allocation: one cache line, enough for any vector
  /// extension this layer uses.
  static constexpr std::size_t kAlign = 64;

  explicit Arena(std::size_t initial_bytes = 1u << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewind token: position in the chunk list at mark() time.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const { return {active_, chunks_[active_].used}; }

  /// Releases everything allocated after `m` (storage is retained for
  /// reuse). Marks must unwind in LIFO order — ArenaScope enforces this.
  void rewind(Mark m);

  /// Raw aligned storage; grows the chunk list when the active chunk is
  /// exhausted (amortized O(1), geometric chunk sizes).
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// Typed row of `n` elements, uninitialized.
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is rewound without destructor calls");
    return static_cast<T*>(allocate(n * sizeof(T)));
  }

  /// Bytes currently handed out (diagnostics / tests).
  [[nodiscard]] std::size_t used() const;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void push_chunk(std::size_t at_least);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
};

/// The calling thread's scratch arena (thread-local, lazily constructed).
[[nodiscard]] Arena& scratch_arena();

/// RAII rewind: everything allocated through (or after) the scope dies
/// when it unwinds.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    return arena_.alloc_array<T>(n);
  }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace fpopt::kernel
