#include "kernel/sweep.h"

#include <algorithm>
#include <limits>

#include "kernel/kernel.h"

namespace fpopt::kernel {

// ---------------------------------------------------------------------------
// Scalar reference implementations ("truth"). Every loop is written the way
// the pre-SoA call sites iterated, so the kernels inherit their semantics
// exactly: left-to-right scans, strict-< argmin updates, int64 arithmetic
// with one final conversion where a Weight is produced.
// ---------------------------------------------------------------------------

RowArgmin argmin_add_scalar(const Weight* a, const Weight* b, std::size_t n) {
  Weight best = kInfiniteWeight;
  std::size_t best_i = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const Weight cand = a[t] + b[t];
    if (cand < best) {
      best = cand;
      best_i = t;
    }
  }
  return {best, best_i};
}

void r_error_row_scalar(const Dim* w, const Area* g, std::size_t n, Dim wj, Dim hj, Area gj,
                        Weight* out) {
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = static_cast<Weight>(hj * (w[t] - wj) - (gj - g[t]));
  }
}

RowArgmin argmin_r_error_row_scalar(const Weight* prev, const Dim* w, const Area* g,
                                    std::size_t n, Dim wj, Dim hj, Area gj) {
  Weight best = kInfiniteWeight;
  std::size_t best_i = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const Weight cand = prev[t] + static_cast<Weight>(hj * (w[t] - wj) - (gj - g[t]));
    if (cand < best) {
      best = cand;
      best_i = t;
    }
  }
  return {best, best_i};
}

void add_broadcast_scalar(const Dim* in, std::size_t n, Dim c, Dim* out) {
  for (std::size_t t = 0; t < n; ++t) out[t] = in[t] + c;
}

void max_broadcast_scalar(const Dim* in, std::size_t n, Dim c, Dim* out) {
  for (std::size_t t = 0; t < n; ++t) out[t] = std::max(in[t], c);
}

void max_add_broadcast_scalar(const Dim* a, const Dim* b, std::size_t n, Dim c, Dim* out) {
  for (std::size_t t = 0; t < n; ++t) out[t] = std::max(a[t], b[t] + c);
}

void max_rows_scalar(const Dim* a, const Dim* b, std::size_t n, Dim* out) {
  for (std::size_t t = 0; t < n; ++t) out[t] = std::max(a[t], b[t]);
}

std::optional<std::size_t> argmin_area_in_outline_scalar(const Dim* w, const Dim* h,
                                                         std::size_t n, Dim max_w, Dim max_h) {
  std::optional<std::size_t> best;
  Area best_area = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (w[t] > max_w || h[t] > max_h) continue;
    const Area area = w[t] * h[t];
    if (!best || area < best_area) {
      best = t;
      best_area = area;
    }
  }
  return best;
}

Dim min_max_side_scalar(const Dim* w, const Dim* h, std::size_t n) {
  Dim best = std::numeric_limits<Dim>::max();
  for (std::size_t t = 0; t < n; ++t) best = std::min(best, std::max(w[t], h[t]));
  return best;
}

// ---------------------------------------------------------------------------
// FPOPT_AVX2=OFF: the vector twins still have to link (the differential
// tests call them unconditionally); forward to the truth.
// ---------------------------------------------------------------------------

#if !defined(FPOPT_AVX2)

RowArgmin argmin_add_avx2(const Weight* a, const Weight* b, std::size_t n) {
  return argmin_add_scalar(a, b, n);
}

void r_error_row_avx2(const Dim* w, const Area* g, std::size_t n, Dim wj, Dim hj, Area gj,
                      Weight* out) {
  r_error_row_scalar(w, g, n, wj, hj, gj, out);
}

RowArgmin argmin_r_error_row_avx2(const Weight* prev, const Dim* w, const Area* g,
                                  std::size_t n, Dim wj, Dim hj, Area gj) {
  return argmin_r_error_row_scalar(prev, w, g, n, wj, hj, gj);
}

void add_broadcast_avx2(const Dim* in, std::size_t n, Dim c, Dim* out) {
  add_broadcast_scalar(in, n, c, out);
}

void max_broadcast_avx2(const Dim* in, std::size_t n, Dim c, Dim* out) {
  max_broadcast_scalar(in, n, c, out);
}

void max_add_broadcast_avx2(const Dim* a, const Dim* b, std::size_t n, Dim c, Dim* out) {
  max_add_broadcast_scalar(a, b, n, c, out);
}

void max_rows_avx2(const Dim* a, const Dim* b, std::size_t n, Dim* out) {
  max_rows_scalar(a, b, n, out);
}

std::optional<std::size_t> argmin_area_in_outline_avx2(const Dim* w, const Dim* h,
                                                       std::size_t n, Dim max_w, Dim max_h) {
  return argmin_area_in_outline_scalar(w, h, n, max_w, max_h);
}

Dim min_max_side_avx2(const Dim* w, const Dim* h, std::size_t n) {
  return min_max_side_scalar(w, h, n);
}

#endif  // !defined(FPOPT_AVX2)

// ---------------------------------------------------------------------------
// Dispatchers. The backend read is one relaxed atomic load; the branch is
// trivially predicted because the mode never changes mid-run.
// ---------------------------------------------------------------------------

namespace {
inline bool use_avx2() { return kernel_backend() == KernelBackend::Avx2; }
}  // namespace

RowArgmin argmin_add(const Weight* a, const Weight* b, std::size_t n) {
  return use_avx2() ? argmin_add_avx2(a, b, n) : argmin_add_scalar(a, b, n);
}

void r_error_row(const Dim* w, const Area* g, std::size_t n, Dim wj, Dim hj, Area gj,
                 Weight* out) {
  if (use_avx2()) {
    r_error_row_avx2(w, g, n, wj, hj, gj, out);
  } else {
    r_error_row_scalar(w, g, n, wj, hj, gj, out);
  }
}

RowArgmin argmin_r_error_row(const Weight* prev, const Dim* w, const Area* g, std::size_t n,
                             Dim wj, Dim hj, Area gj) {
  return use_avx2() ? argmin_r_error_row_avx2(prev, w, g, n, wj, hj, gj)
                    : argmin_r_error_row_scalar(prev, w, g, n, wj, hj, gj);
}

void add_broadcast(const Dim* in, std::size_t n, Dim c, Dim* out) {
  if (use_avx2()) {
    add_broadcast_avx2(in, n, c, out);
  } else {
    add_broadcast_scalar(in, n, c, out);
  }
}

void max_broadcast(const Dim* in, std::size_t n, Dim c, Dim* out) {
  if (use_avx2()) {
    max_broadcast_avx2(in, n, c, out);
  } else {
    max_broadcast_scalar(in, n, c, out);
  }
}

void max_add_broadcast(const Dim* a, const Dim* b, std::size_t n, Dim c, Dim* out) {
  if (use_avx2()) {
    max_add_broadcast_avx2(a, b, n, c, out);
  } else {
    max_add_broadcast_scalar(a, b, n, c, out);
  }
}

void max_rows(const Dim* a, const Dim* b, std::size_t n, Dim* out) {
  if (use_avx2()) {
    max_rows_avx2(a, b, n, out);
  } else {
    max_rows_scalar(a, b, n, out);
  }
}

std::optional<std::size_t> argmin_area_in_outline(const Dim* w, const Dim* h, std::size_t n,
                                                  Dim max_w, Dim max_h) {
  return use_avx2() ? argmin_area_in_outline_avx2(w, h, n, max_w, max_h)
                    : argmin_area_in_outline_scalar(w, h, n, max_w, max_h);
}

Dim min_max_side(const Dim* w, const Dim* h, std::size_t n) {
  return use_avx2() ? min_max_side_avx2(w, h, n) : min_max_side_scalar(w, h, n);
}

}  // namespace fpopt::kernel
