// Row-sweep kernels: the hot inner loops of selection and combine,
// expressed over SoA rows with scalar and AVX2 twins.
//
// Contract ("scalar is truth"): for every function `f` here,
// f_avx2(args) returns byte-identical results to f_scalar(args) on every
// input, including empty rows and every tail length mod the vector width.
// The undecorated name dispatches on kernel_backend() (kernel.h). The
// equivalence is not approximate:
//  * the integer kernels are exact by associativity/commutativity of
//    min/max/+ over int64 (lane order cannot matter);
//  * argmin kernels preserve the scalar first-strict-minimum tie-break:
//    each AVX2 lane keeps the first minimum of its index subsequence
//    (strict compare-and-blend), and the cross-lane reduction takes the
//    smallest value, breaking value ties by smallest index — which is
//    exactly the first scan-order occurrence of the global minimum;
//  * the only floating-point op is the double add in argmin_add; it is
//    performed once per element in both paths (no reassociated
//    reductions), so results are bit-identical.
// tests/kernel_equivalence_test.cpp enforces all of this differentially.
//
// When the build has no AVX2 translation unit (FPOPT_AVX2=OFF), the
// *_avx2 symbols still link — they forward to the scalar twins — so the
// differential tests compile everywhere and degrade to scalar-vs-scalar.
#pragma once

#include <cstddef>
#include <optional>

#include "geometry/types.h"

namespace fpopt::kernel {

/// Result of a row argmin: the winning value and its row-relative index.
struct RowArgmin {
  Weight value = kInfiniteWeight;
  std::size_t index = 0;
};

/// First strict minimum of a[t] + b[t] over t in [0, n): the smallest t
/// attaining the minimal sum, exactly as a left-to-right scalar scan with
/// `cand < best` would pick it. n == 0 (or all sums infinite) yields
/// {kInfiniteWeight, 0}. This is the DP relaxation of interval_cspp.h:
/// `a` is the previous layer, `b` the error row.
[[nodiscard]] RowArgmin argmin_add(const Weight* a, const Weight* b, std::size_t n);
[[nodiscard]] RowArgmin argmin_add_scalar(const Weight* a, const Weight* b, std::size_t n);
[[nodiscard]] RowArgmin argmin_add_avx2(const Weight* a, const Weight* b, std::size_t n);

/// R_Selection error row (r_error.h closed form): for t in [0, n)
///   out[t] = Weight( hj * (w[t] - wj) - (gj - g[t]) )
/// where (w, g) are the oracle's width and G-prefix rows starting at the
/// row's first predecessor and (wj, hj, gj) belong to the destination.
/// All arithmetic is int64; the final int64->double conversion is the
/// same rounding in both paths.
void r_error_row(const Dim* w, const Area* g, std::size_t n, Dim wj, Dim hj, Area gj,
                 Weight* out);
void r_error_row_scalar(const Dim* w, const Area* g, std::size_t n, Dim wj, Dim hj, Area gj,
                        Weight* out);
void r_error_row_avx2(const Dim* w, const Area* g, std::size_t n, Dim wj, Dim hj, Area gj,
                      Weight* out);

/// Fused DP relaxation for the R-selection row: the first strict minimum
/// over t in [0, n) of
///   prev[t] + Weight( hj * (w[t] - wj) - (gj - g[t]) )
/// — r_error_row and argmin_add in one pass, no scratch row. Bit-identical
/// to the composition (same int64 arithmetic, same int64->double rounding,
/// same single double add, same strict-< tie-break); infinite prev[t]
/// lanes can never win because inf + finite == inf. n == 0 (or all sums
/// infinite) yields {kInfiniteWeight, 0}.
[[nodiscard]] RowArgmin argmin_r_error_row(const Weight* prev, const Dim* w, const Area* g,
                                           std::size_t n, Dim wj, Dim hj, Area gj);
[[nodiscard]] RowArgmin argmin_r_error_row_scalar(const Weight* prev, const Dim* w,
                                                  const Area* g, std::size_t n, Dim wj, Dim hj,
                                                  Area gj);
[[nodiscard]] RowArgmin argmin_r_error_row_avx2(const Weight* prev, const Dim* w,
                                                const Area* g, std::size_t n, Dim wj, Dim hj,
                                                Area gj);

/// out[t] = in[t] + c                                  (int64, exact)
void add_broadcast(const Dim* in, std::size_t n, Dim c, Dim* out);
void add_broadcast_scalar(const Dim* in, std::size_t n, Dim c, Dim* out);
void add_broadcast_avx2(const Dim* in, std::size_t n, Dim c, Dim* out);

/// out[t] = max(in[t], c)                              (int64, exact)
void max_broadcast(const Dim* in, std::size_t n, Dim c, Dim* out);
void max_broadcast_scalar(const Dim* in, std::size_t n, Dim c, Dim* out);
void max_broadcast_avx2(const Dim* in, std::size_t n, Dim c, Dim* out);

/// out[t] = max(a[t], b[t] + c)                        (int64, exact)
void max_add_broadcast(const Dim* a, const Dim* b, std::size_t n, Dim c, Dim* out);
void max_add_broadcast_scalar(const Dim* a, const Dim* b, std::size_t n, Dim c, Dim* out);
void max_add_broadcast_avx2(const Dim* a, const Dim* b, std::size_t n, Dim c, Dim* out);

/// out[t] = max(a[t], b[t])                            (int64, exact)
void max_rows(const Dim* a, const Dim* b, std::size_t n, Dim* out);
void max_rows_scalar(const Dim* a, const Dim* b, std::size_t n, Dim* out);
void max_rows_avx2(const Dim* a, const Dim* b, std::size_t n, Dim* out);

/// Fixed-outline query (curve_queries.h): smallest index of a minimal-area
/// entry with w[t] <= max_w and h[t] <= max_h; nullopt when none fits.
/// Matches the scalar scan's first-strict-minimum over feasible entries.
[[nodiscard]] std::optional<std::size_t> argmin_area_in_outline(const Dim* w, const Dim* h,
                                                                std::size_t n, Dim max_w,
                                                                Dim max_h);
[[nodiscard]] std::optional<std::size_t> argmin_area_in_outline_scalar(const Dim* w,
                                                                       const Dim* h,
                                                                       std::size_t n, Dim max_w,
                                                                       Dim max_h);
[[nodiscard]] std::optional<std::size_t> argmin_area_in_outline_avx2(const Dim* w, const Dim* h,
                                                                     std::size_t n, Dim max_w,
                                                                     Dim max_h);

/// min over t of max(w[t], h[t]); n must be >= 1. Pure min/max, so lane
/// order is irrelevant and equivalence is exact.
[[nodiscard]] Dim min_max_side(const Dim* w, const Dim* h, std::size_t n);
[[nodiscard]] Dim min_max_side_scalar(const Dim* w, const Dim* h, std::size_t n);
[[nodiscard]] Dim min_max_side_avx2(const Dim* w, const Dim* h, std::size_t n);

}  // namespace fpopt::kernel
