#include "workload/experiment.h"

#include <cmath>
#include <sstream>

namespace fpopt {

CaseResult run_case(const FloorplanTree& tree, const OptimizerOptions& opts) {
  const OptimizeOutcome outcome = optimize_floorplan(tree, opts);
  CaseResult r;
  r.oom = outcome.out_of_memory;
  r.peak_stored = outcome.stats.peak_stored;
  r.seconds = outcome.stats.seconds;
  r.area = outcome.out_of_memory ? 0 : outcome.best_area;
  r.stats = outcome.stats;
  return r;
}

std::string format_quality_pct(Area approx, Area exact) {
  if (approx == 0 || exact == 0) return "-";
  const double pct = 100.0 * (static_cast<double>(approx) - static_cast<double>(exact)) /
                     static_cast<double>(exact);
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << pct << '%';
  return out.str();
}

std::string format_m(const CaseResult& r, std::size_t budget) {
  if (r.oom) return "> " + std::to_string(budget);
  return std::to_string(r.peak_stored);
}

std::string format_cpu(const CaseResult& r) {
  if (r.oom) return "-";
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << r.seconds;
  return out.str();
}

}  // namespace fpopt
