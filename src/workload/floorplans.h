// The paper's test floorplans FP1-FP4 (Section 5, Figure 8) and generic
// topology builders.
//
// The figures themselves are unavailable in the text dump; these builders
// reproduce every property the text states — module counts (25 / 49 / 120
// / 245), the hierarchical composition of FP3/FP4 ("each rectangular block
// B consists of the ... floorplan"), and a rect/L block mix that exercises
// both selection algorithms (see DESIGN.md, substitutions):
//
//   FP1: a pinwheel whose five blocks are pinwheels of 5 modules  (25)
//   FP2: a pinwheel mixing slicing grids and inner pinwheels,
//        9 + 5 + 25 + 5 + 5 (the Figure 8(b) stand-in; a pure grid
//        would keep lists small because slicing merges only grow
//        linearly, which contradicts the paper's FP2 memory rows)  (49)
//   FP3: a pinwheel whose five blocks hold a 24-module mixed
//        floorplan (the Figure 8(c) stand-in: a pinwheel of five
//        slicing stacks of 5,5,5,5,4 modules)                     (120)
//   FP4: a pinwheel whose five blocks hold the 49-module FP2      (245)
//
// Wheels alternate chirality for coverage of the mirrored path.
#pragma once

#include "floorplan/tree.h"
#include "workload/module_gen.h"

namespace fpopt {

struct WorkloadConfig {
  std::size_t impls_per_module = 20;  ///< the paper's N
  std::uint64_t seed = 1;             ///< module-set seed (the paper's "test case #")
  Dim min_dim = 4;
  Dim max_dim = 48;
  Area min_area = 250;
  Area max_area = 1600;

  [[nodiscard]] ModuleGenConfig module_config() const {
    return {impls_per_module, min_dim, max_dim, min_area, max_area};
  }
};

/// The paper runs 4 test cases per floorplan: cases 1-2 with N = 20
/// implementations per module, cases 3-4 with N = 40. The seeds below are
/// the calibrated module sets used by the table benches (see
/// EXPERIMENTS.md): with the simulated memory budget of
/// `kPaperMemoryBudget` implementations they reproduce the paper's
/// feasible/out-of-memory pattern for the exact optimizer [9].
inline constexpr std::size_t kPaperMemoryBudget = 395'000;

struct PaperCase {
  std::size_t n;        ///< implementations per module
  std::uint64_t seed;   ///< module-set seed
};

/// fp in 1..4, case_number in 1..4.
[[nodiscard]] PaperCase paper_case(int fp, int case_number);

/// The floorplan for one paper test case, modules included.
[[nodiscard]] FloorplanTree make_paper_floorplan(int fp, int case_number);

[[nodiscard]] FloorplanTree make_fp1(const WorkloadConfig& cfg);
[[nodiscard]] FloorplanTree make_fp2(const WorkloadConfig& cfg);
[[nodiscard]] FloorplanTree make_fp3(const WorkloadConfig& cfg);
[[nodiscard]] FloorplanTree make_fp4(const WorkloadConfig& cfg);

/// rows x cols slicing grid (vertical slice of horizontal stacks).
[[nodiscard]] FloorplanTree make_grid(std::size_t rows, std::size_t cols,
                                      const WorkloadConfig& cfg);

/// A single pinwheel of five modules.
[[nodiscard]] FloorplanTree make_single_pinwheel(const WorkloadConfig& cfg,
                                                 WheelChirality chirality =
                                                     WheelChirality::Clockwise);

/// A slicing chain of n modules (left-deep, alternating V/H when
/// `alternate`, otherwise all in `dir`).
[[nodiscard]] FloorplanTree make_slicing_chain(std::size_t n, SliceDir dir, bool alternate,
                                               const WorkloadConfig& cfg);

}  // namespace fpopt
