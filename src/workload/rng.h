// Deterministic random numbers for workload generation (PCG32).
//
// Self-contained so that module sets are bit-identical across platforms
// and standard library versions; experiment tables cite seeds.
#pragma once

#include <cstdint>

#include "geometry/types.h"

namespace fpopt {

class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t seq = 0xda3e39cb94b95bdbULL) {
    inc_ = (seq << 1u) | 1u;
    state_ = 0;
    next();
    state_ += seed;
    next();
  }

  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound).
  std::uint32_t below(std::uint32_t bound) { return bound == 0 ? 0 : next() % bound; }

  /// Uniform Dim in [lo, hi] inclusive.
  Dim dim_between(Dim lo, Dim hi) {
    return lo + static_cast<Dim>(below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next()) * 0x1p-32; }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace fpopt
