#include "workload/floorplans.h"

#include <cassert>

namespace fpopt {
namespace {

using NodePtr = std::unique_ptr<FloorplanNode>;

NodePtr next_leaf(std::size_t& next_module) { return FloorplanNode::leaf(next_module++); }

/// k modules stacked in one slice.
NodePtr stack_of(std::size_t k, SliceDir dir, std::size_t& next_module) {
  assert(k >= 2);
  std::vector<NodePtr> children;
  children.reserve(k);
  for (std::size_t i = 0; i < k; ++i) children.push_back(next_leaf(next_module));
  return FloorplanNode::slice(dir, std::move(children));
}

NodePtr grid_of(std::size_t rows, std::size_t cols, std::size_t& next_module) {
  std::vector<NodePtr> columns;
  columns.reserve(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    columns.push_back(rows >= 2 ? stack_of(rows, SliceDir::Horizontal, next_module)
                                : next_leaf(next_module));
  }
  if (cols == 1) return std::move(columns.front());
  return FloorplanNode::slice(SliceDir::Vertical, std::move(columns));
}

NodePtr pinwheel(WheelChirality chir, std::array<NodePtr, kWheelArity> children) {
  return FloorplanNode::wheel(chir, std::move(children));
}

NodePtr pinwheel_of_leaves(WheelChirality chir, std::size_t& next_module) {
  return pinwheel(chir, {next_leaf(next_module), next_leaf(next_module),
                         next_leaf(next_module), next_leaf(next_module),
                         next_leaf(next_module)});
}

/// Figure 8(c) stand-in: 24 modules as a slicing-dominated block — a 4x5
/// grid beside a 4-module stack. FP3 then stresses exactly one wheel
/// level (the Figure 8(d) template), which keeps its exact-mode peak
/// between FP2's and FP4's as in the paper's Tables 2-4.
NodePtr fig8c_block(WheelChirality chir, std::size_t& next_module) {
  (void)chir;
  std::vector<NodePtr> parts;
  parts.push_back(stack_of(12, SliceDir::Horizontal, next_module));
  parts.push_back(stack_of(12, SliceDir::Horizontal, next_module));
  return FloorplanNode::slice(SliceDir::Vertical, std::move(parts));
}

WheelChirality alt(std::size_t i) {
  return i % 2 == 0 ? WheelChirality::Clockwise : WheelChirality::CounterClockwise;
}

FloorplanTree finish(NodePtr root, std::size_t module_count, const WorkloadConfig& cfg) {
  FloorplanTree tree(generate_modules(module_count, cfg.module_config(), cfg.seed),
                     std::move(root));
  assert(tree.validate().empty());
  return tree;
}

/// Top-level pinwheel whose five blocks are produced by `make_block`.
template <typename BlockFn>
FloorplanTree wheel_of_blocks(BlockFn&& make_block, const WorkloadConfig& cfg) {
  std::size_t next_module = 0;
  std::array<NodePtr, kWheelArity> blocks;
  for (std::size_t i = 0; i < kWheelArity; ++i) blocks[i] = make_block(i, next_module);
  NodePtr root = pinwheel(WheelChirality::Clockwise, std::move(blocks));
  return finish(std::move(root), next_module, cfg);
}

}  // namespace

FloorplanTree make_fp1(const WorkloadConfig& cfg) {
  return wheel_of_blocks(
      [](std::size_t i, std::size_t& next) { return pinwheel_of_leaves(alt(i), next); }, cfg);
}

namespace {

/// Figure 8(b) stand-in: 49 modules as a wheel-rich hierarchy — a pinwheel
/// whose five blocks are four slice-pairs of pinwheels (10 modules each)
/// and one pinwheel-plus-grid block (9 modules). A pure slicing grid would
/// keep lists small (slicing merges grow linearly); the paper's FP2 memory
/// numbers require wheel blocks at several levels.
NodePtr fig8b_block(std::size_t& next_module) {
  const auto pw_pair = [&next_module](SliceDir dir, WheelChirality first) {
    std::vector<NodePtr> pair;
    pair.push_back(pinwheel_of_leaves(first, next_module));
    pair.push_back(pinwheel_of_leaves(first == WheelChirality::Clockwise
                                          ? WheelChirality::CounterClockwise
                                          : WheelChirality::Clockwise,
                                      next_module));
    return FloorplanNode::slice(dir, std::move(pair));
  };
  std::vector<NodePtr> last;
  last.push_back(pinwheel_of_leaves(WheelChirality::Clockwise, next_module));
  last.push_back(grid_of(2, 2, next_module));
  return pinwheel(WheelChirality::Clockwise,
                  {pw_pair(SliceDir::Vertical, WheelChirality::Clockwise),
                   pw_pair(SliceDir::Horizontal, WheelChirality::CounterClockwise),
                   pw_pair(SliceDir::Vertical, WheelChirality::CounterClockwise),
                   pw_pair(SliceDir::Horizontal, WheelChirality::Clockwise),
                   FloorplanNode::slice(SliceDir::Vertical, std::move(last))});
}

}  // namespace

FloorplanTree make_fp2(const WorkloadConfig& cfg) {
  std::size_t next_module = 0;
  NodePtr root = fig8b_block(next_module);
  return finish(std::move(root), next_module, cfg);
}

FloorplanTree make_fp3(const WorkloadConfig& cfg) {
  return wheel_of_blocks(
      [](std::size_t i, std::size_t& next) { return fig8c_block(alt(i), next); }, cfg);
}

FloorplanTree make_fp4(const WorkloadConfig& cfg) {
  return wheel_of_blocks(
      [](std::size_t i, std::size_t& next) {
        (void)i;
        return fig8b_block(next);
      },
      cfg);
}

FloorplanTree make_grid(std::size_t rows, std::size_t cols, const WorkloadConfig& cfg) {
  assert(rows * cols >= 1);
  std::size_t next_module = 0;
  NodePtr root = grid_of(rows, cols, next_module);
  return finish(std::move(root), next_module, cfg);
}

FloorplanTree make_single_pinwheel(const WorkloadConfig& cfg, WheelChirality chirality) {
  std::size_t next_module = 0;
  NodePtr root = pinwheel_of_leaves(chirality, next_module);
  return finish(std::move(root), next_module, cfg);
}

PaperCase paper_case(int fp, int case_number) {
  assert(fp >= 1 && fp <= 4 && case_number >= 1 && case_number <= 4);
  const std::size_t n = case_number <= 2 ? 20 : 40;
  // Seeds calibrated so the exact optimizer's feasibility under the
  // kPaperMemoryBudget matches the paper's tables (see EXPERIMENTS.md).
  static constexpr std::uint64_t kSeeds[4][4] = {
      {1, 2, 3, 6},  // FP1: all cases feasible for [9]
      {1, 2, 4, 5},  // FP2: all cases feasible for [9]
      {6, 8, 3, 4},  // FP3: N=20 cases feasible, N=40 cases out of memory
      {1, 2, 3, 4},  // FP4: [9] always out of memory
  };
  return {n, kSeeds[fp - 1][case_number - 1]};
}

FloorplanTree make_paper_floorplan(int fp, int case_number) {
  const PaperCase pc = paper_case(fp, case_number);
  WorkloadConfig cfg;
  cfg.impls_per_module = pc.n;
  cfg.seed = pc.seed;
  switch (fp) {
    case 1:
      return make_fp1(cfg);
    case 2:
      return make_fp2(cfg);
    case 3:
      return make_fp3(cfg);
    default:
      return make_fp4(cfg);
  }
}

FloorplanTree make_slicing_chain(std::size_t n, SliceDir dir, bool alternate,
                                 const WorkloadConfig& cfg) {
  assert(n >= 1);
  std::size_t next_module = 0;
  NodePtr acc = next_leaf(next_module);
  SliceDir d = dir;
  for (std::size_t i = 1; i < n; ++i) {
    std::vector<NodePtr> pair;
    pair.push_back(std::move(acc));
    pair.push_back(next_leaf(next_module));
    acc = FloorplanNode::slice(d, std::move(pair));
    if (alternate) {
      d = d == SliceDir::Vertical ? SliceDir::Horizontal : SliceDir::Vertical;
    }
  }
  return finish(std::move(acc), next_module, cfg);
}

}  // namespace fpopt
