// Shared experiment driver for the paper-table benches.
#pragma once

#include <string>

#include "floorplan/tree.h"
#include "optimize/optimizer.h"

namespace fpopt {

struct CaseResult {
  bool oom = false;            ///< aborted by the simulated memory budget
  std::size_t peak_stored = 0; ///< the paper's M
  double seconds = 0;          ///< the paper's CPU column (wall clock here)
  Area area = 0;               ///< floorplan area found (0 on OOM)
  OptimizerStats stats;
};

/// Run the optimizer on `tree`, collect the paper's reporting columns.
[[nodiscard]] CaseResult run_case(const FloorplanTree& tree, const OptimizerOptions& opts);

/// "(approx - exact)/exact" as the paper prints it ("0.23%"), or "-" when
/// either run failed (area 0).
[[nodiscard]] std::string format_quality_pct(Area approx, Area exact);

/// "M" column: the count, or "> budget" when the run aborted.
[[nodiscard]] std::string format_m(const CaseResult& r, std::size_t budget);

/// Seconds with one decimal, or "-" on OOM.
[[nodiscard]] std::string format_cpu(const CaseResult& r);

}  // namespace fpopt
