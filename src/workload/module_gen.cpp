#include "workload/module_gen.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "geometry/staircase.h"

namespace fpopt {

Module generate_module(std::string name, const ModuleGenConfig& cfg, Pcg32& rng) {
  assert(cfg.impl_count >= 1);
  assert(cfg.max_dim - cfg.min_dim + 1 >= static_cast<Dim>(cfg.impl_count) &&
         "width range too narrow for the requested implementation count");

  // N distinct widths.
  std::set<Dim> widths;
  while (widths.size() < cfg.impl_count) {
    widths.insert(rng.dim_between(cfg.min_dim, cfg.max_dim));
  }

  const Area target =
      cfg.min_area + static_cast<Area>(rng.unit() * static_cast<double>(cfg.max_area -
                                                                        cfg.min_area));

  // Width-descending order; heights approximately target/width, forced
  // strictly increasing so the list is exactly an N-corner staircase.
  std::vector<RectImpl> impls;
  impls.reserve(cfg.impl_count);
  Dim prev_h = 0;
  for (auto it = widths.rbegin(); it != widths.rend(); ++it) {
    Dim h = std::max<Dim>(1, (target + *it / 2) / *it);
    h = std::max(h, prev_h + 1);
    impls.push_back({*it, h});
    prev_h = h;
  }
  assert(is_irreducible_r_list(impls));
  return Module{std::move(name), RList::from_sorted_unchecked(std::move(impls))};
}

std::vector<Module> generate_modules(std::size_t count, const ModuleGenConfig& cfg,
                                     std::uint64_t seed, std::string_view prefix) {
  Pcg32 rng(seed);
  std::vector<Module> modules;
  modules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    modules.push_back(generate_module(std::string(prefix) + std::to_string(i), cfg, rng));
  }
  return modules;
}

}  // namespace fpopt
