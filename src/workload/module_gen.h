// Random module libraries with a prescribed number of non-redundant
// implementations (the paper's N column).
//
// The paper's module sets are not published; what drives the experiments
// is only that every module contributes exactly N staircase corners. Each
// generated module approximates a soft module of roughly constant area:
// N distinct widths, heights near area/width, pushed apart where needed so
// the list is strictly a staircase (hence exactly N non-redundant
// implementations).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "floorplan/module.h"
#include "workload/rng.h"

namespace fpopt {

struct ModuleGenConfig {
  std::size_t impl_count = 20;  ///< N: non-redundant implementations per module
  Dim min_dim = 4;              ///< smallest width sampled
  Dim max_dim = 60;             ///< largest width sampled
  Area min_area = 400;          ///< softest target module area
  Area max_area = 2500;         ///< largest target module area
};

/// One module with exactly `cfg.impl_count` non-redundant implementations.
[[nodiscard]] Module generate_module(std::string name, const ModuleGenConfig& cfg, Pcg32& rng);

/// `count` modules named <prefix>0, <prefix>1, ...
[[nodiscard]] std::vector<Module> generate_modules(std::size_t count, const ModuleGenConfig& cfg,
                                                   std::uint64_t seed,
                                                   std::string_view prefix = "m");

}  // namespace fpopt
