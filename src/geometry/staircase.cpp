#include "geometry/staircase.h"

#include <algorithm>
#include <cassert>

namespace fpopt {

bool is_irreducible_r_list(std::span<const RectImpl> pts) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!pts[i].valid()) return false;
    if (i > 0 && !(pts[i - 1].w > pts[i].w && pts[i - 1].h < pts[i].h)) return false;
  }
  return true;
}

std::optional<Dim> staircase_min_height(std::span<const RectImpl> pts, Dim w) {
  // pts is sorted by w strictly decreasing; find the first corner that fits.
  const auto it = std::lower_bound(pts.begin(), pts.end(), w,
                                   [](const RectImpl& r, Dim width) { return r.w > width; });
  if (it == pts.end()) return std::nullopt;  // narrower than every corner: infeasible
  return it->h;
}

Area staircase_error_geometric(std::span<const RectImpl> pts, std::size_t i, std::size_t j) {
  assert(i < j && j < pts.size());
  // Vertical-strip decomposition of the region between the original
  // subcurve P_{ri,rj} and the single reduced step Q_{ri,rj} at height h_j:
  // on [w_{q+1}, w_q) the original curve sits at h_{q+1}.
  Area total = 0;
  for (std::size_t q = i; q + 1 < j; ++q) {
    total += (pts[q].w - pts[q + 1].w) * (pts[j].h - pts[q + 1].h);
  }
  return total;
}

Area staircase_subset_error(std::span<const RectImpl> full, std::span<const std::size_t> kept) {
  assert(kept.size() >= 2);
  assert(kept.front() == 0 && kept.back() == full.size() - 1);
  Area total = 0;
  for (std::size_t q = 0; q + 1 < kept.size(); ++q) {
    assert(kept[q] < kept[q + 1]);
    total += staircase_error_geometric(full, kept[q], kept[q + 1]);
  }
  return total;
}

Area staircase_subset_error_by_columns(std::span<const RectImpl> full,
                                       std::span<const std::size_t> kept) {
  assert(kept.size() >= 2);
  std::vector<RectImpl> sub;
  sub.reserve(kept.size());
  for (std::size_t idx : kept) sub.push_back(full[idx]);

  Area total = 0;
  for (Dim x = full.back().w; x < full.front().w; ++x) {
    const std::optional<Dim> h_full = staircase_min_height(full, x);
    const std::optional<Dim> h_sub = staircase_min_height(sub, x);
    assert(h_full && h_sub && *h_sub >= *h_full);
    total += *h_sub - *h_full;
  }
  return total;
}

}  // namespace fpopt
