// Rectangular block implementations (Section 2 of the paper).
#pragma once

#include <compare>
#include <ostream>

#include "geometry/types.h"

namespace fpopt {

/// One realization of a rectangular block: `w` x `h` grid units.
///
/// Definition 1 (rectangular case): `a` dominates `b` iff a.w >= b.w and
/// a.h >= b.h; the *dominating* implementation is the redundant one (it is
/// at least as large in both dimensions, so it can never beat `b`).
struct RectImpl {
  Dim w = 0;
  Dim h = 0;

  [[nodiscard]] constexpr Area area() const { return w * h; }

  /// True iff *this dominates `other` (Definition 1). Note a shape
  /// dominates itself; callers that prune keep one copy of duplicates.
  [[nodiscard]] constexpr bool dominates(const RectImpl& other) const {
    return w >= other.w && h >= other.h;
  }

  /// True for a geometrically meaningful shape.
  [[nodiscard]] constexpr bool valid() const { return w > 0 && h > 0; }

  friend constexpr auto operator<=>(const RectImpl&, const RectImpl&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const RectImpl& r) {
  return os << '(' << r.w << " x " << r.h << ')';
}

}  // namespace fpopt
