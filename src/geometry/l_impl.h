// L-shaped block implementations (Section 2, Figure 2 of the paper).
#pragma once

#include <compare>
#include <ostream>

#include "geometry/rect_impl.h"
#include "geometry/types.h"

namespace fpopt {

/// One realization of an L-shaped block, canonical orientation: the notch
/// is at the top-right. The region is
///
///     [0,w1] x [0,h2]   (bottom strip, full width)
///   U [0,w2] x [0,h1]   (left column, full height)
///
/// with w1 >= w2 >= 1 and h1 >= h2 >= 1 (paper's 4-tuple (w1,w2,h1,h2):
/// w1/w2 the bottom/top edge widths, h1/h2 the left/right edge heights).
///
/// Degenerate cases (w1 == w2 or h1 == h2) are plain rectangles; the
/// optimizer keeps them in L form while a wheel is being assembled and
/// promotes them with `bounding_rect()` when the wheel closes.
struct LImpl {
  Dim w1 = 0;  ///< bottom edge width (>= w2)
  Dim w2 = 0;  ///< top edge width
  Dim h1 = 0;  ///< left edge height (>= h2)
  Dim h2 = 0;  ///< right edge height

  /// Area of the L region itself (not of its bounding box).
  [[nodiscard]] constexpr Area area() const { return w1 * h2 + w2 * (h1 - h2); }

  /// Smallest rectangle containing the L.
  [[nodiscard]] constexpr RectImpl bounding_rect() const { return {w1, h1}; }

  /// True iff the shape is actually a rectangle (empty notch).
  [[nodiscard]] constexpr bool is_degenerate() const { return w1 == w2 || h1 == h2; }

  /// Definition 1 (L case): componentwise >= in all four coordinates.
  [[nodiscard]] constexpr bool dominates(const LImpl& other) const {
    return w1 >= other.w1 && w2 >= other.w2 && h1 >= other.h1 && h2 >= other.h2;
  }

  /// Canonical-form check: positive edges, w1 >= w2, h1 >= h2.
  [[nodiscard]] constexpr bool valid() const {
    return w2 > 0 && h2 > 0 && w1 >= w2 && h1 >= h2;
  }

  friend constexpr auto operator<=>(const LImpl&, const LImpl&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const LImpl& l) {
  return os << "L(w1=" << l.w1 << ",w2=" << l.w2 << ",h1=" << l.h1 << ",h2=" << l.h2 << ')';
}

}  // namespace fpopt
