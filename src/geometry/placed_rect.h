// Axis-aligned placed rectangles, used by the traceback/placement layer.
#pragma once

#include <algorithm>
#include <compare>
#include <ostream>

#include "geometry/types.h"

namespace fpopt {

/// A rectangle positioned in chip coordinates (origin at bottom-left).
struct PlacedRect {
  Dim x = 0;
  Dim y = 0;
  Dim w = 0;
  Dim h = 0;

  [[nodiscard]] constexpr Dim x2() const { return x + w; }
  [[nodiscard]] constexpr Dim y2() const { return y + h; }
  [[nodiscard]] constexpr Area area() const { return w * h; }
  [[nodiscard]] constexpr bool valid() const { return w > 0 && h > 0; }

  /// True iff the interiors of the two rectangles intersect.
  [[nodiscard]] constexpr bool overlaps(const PlacedRect& o) const {
    return x < o.x2() && o.x < x2() && y < o.y2() && o.y < y2();
  }

  /// True iff `o` lies entirely inside *this (boundaries may touch).
  [[nodiscard]] constexpr bool contains(const PlacedRect& o) const {
    return o.x >= x && o.y >= y && o.x2() <= x2() && o.y2() <= y2();
  }

  /// Mirror across the vertical axis of `frame` (used for counter-clockwise
  /// wheels, which are evaluated in clockwise canonical form and reflected
  /// back at placement time).
  [[nodiscard]] constexpr PlacedRect mirrored_x(const PlacedRect& frame) const {
    return {frame.x + (frame.x2() - x2()), y, w, h};
  }

  friend constexpr auto operator<=>(const PlacedRect&, const PlacedRect&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const PlacedRect& r) {
  return os << '[' << r.x << ',' << r.y << ' ' << r.w << 'x' << r.h << ']';
}

}  // namespace fpopt
