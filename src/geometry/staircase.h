// Staircase-curve utilities for irreducible R-lists (Section 4.2, Fig. 5-6).
//
// An irreducible R-list {r_1..r_n} (w strictly decreasing, h strictly
// increasing) is the corner set of a staircase curve C_R; every point on or
// above C_R is a feasible implementation of the block. These helpers give
// the *geometric* definitions used to validate the paper's O(n^2) error
// recurrence (Compute_R_Error) and the area-between-curves cost.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geometry/rect_impl.h"
#include "geometry/types.h"

namespace fpopt {

/// True iff `pts` satisfies Definition 4 + Definition 5: w strictly
/// decreasing, h strictly increasing, all shapes valid (an irreducible
/// R-list; strictness is what "no redundant implementation" means here).
[[nodiscard]] bool is_irreducible_r_list(std::span<const RectImpl> pts);

/// Smallest feasible height at width `w` according to staircase `pts`
/// (the curve value), or std::nullopt when `w` is narrower than the
/// narrowest corner (no feasible implementation fits).
[[nodiscard]] std::optional<Dim> staircase_min_height(std::span<const RectImpl> pts, Dim w);

/// Area of the region under-approximation lost when the corners strictly
/// between `pts[i]` and `pts[j]` are discarded: the bounded area between
/// the original subcurve P_{ri,rj} and the single step Q_{ri,rj}
/// (paper's error(r_i, r_j)). Computed geometrically, O(j - i); used as the
/// independent oracle for Compute_R_Error.
[[nodiscard]] Area staircase_error_geometric(std::span<const RectImpl> pts,
                                             std::size_t i, std::size_t j);

/// Total bounded area between the staircase of `full` and the staircase of
/// the subset selected by `kept` (indices into `full`, strictly increasing,
/// first == 0 and last == full.size()-1). This is ERROR(R, R') of Eq. (2),
/// computed geometrically.
[[nodiscard]] Area staircase_subset_error(std::span<const RectImpl> full,
                                          std::span<const std::size_t> kept);

/// Area between the two staircases, evaluated by integrating the height
/// difference over every unit-width column of the interval
/// [w_n, w_1]. Brutally slow (O(width * corners)) but an independent,
/// definition-level oracle for the tests.
[[nodiscard]] Area staircase_subset_error_by_columns(std::span<const RectImpl> full,
                                                     std::span<const std::size_t> kept);

}  // namespace fpopt
