// Basic scalar types shared by every fpopt module.
//
// All floorplan dimensions are exact 64-bit integers: module libraries in
// this domain are given in integral layout-grid units, and exactness lets
// the selection algorithms (whose edge weights are areas and Manhattan
// distances of dimensions) be verified bit-for-bit against brute force.
#pragma once

#include <cstdint>
#include <limits>

namespace fpopt {

/// Length of an edge, in layout grid units. Always > 0 for a real shape.
using Dim = std::int64_t;

/// Product of two Dims. 2^63 grid-units^2 is far beyond any workload here.
using Area = std::int64_t;

/// Weight type used by the constrained-shortest-path layer. All integer
/// areas/distances below 2^53 are represented exactly.
using Weight = double;

inline constexpr Weight kInfiniteWeight = std::numeric_limits<Weight>::infinity();

}  // namespace fpopt
