// The per-node artifact of an optimizer run: one T' node's implementation
// store with provenance. Split out of optimizer.h so the memo cache
// (src/cache) can hold NodeResults without pulling in the whole engine —
// the cache library touches this type only through its value semantics,
// mirroring how src/check stays a leaf library.
#pragma once

#include <cstdint>
#include <vector>

#include "floorplan/restructure.h"
#include "optimize/combine.h"
#include "shape/l_list_set.h"
#include "shape/r_list.h"

namespace fpopt {

/// Computed implementation list of one T' node, with provenance.
struct NodeResult {
  bool is_l = false;
  // Rectangular blocks:
  RList rlist;
  std::vector<Prov> rprov;  ///< parallel to rlist
  // L-shaped blocks:
  LListSet lset;
  std::vector<Prov> lprov;  ///< indexed by LEntry::id

  /// Locate an L entry by id (nullptr if it was pruned/selected away).
  [[nodiscard]] const LImpl* find_l(std::uint32_t id) const;
};

/// Everything needed to trace an optimal implementation back to rooms.
struct OptimizeArtifacts {
  BinaryTree btree;
  std::vector<NodeResult> nodes;  ///< by BinaryNode::id
};

}  // namespace fpopt
