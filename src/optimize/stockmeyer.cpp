#include "optimize/stockmeyer.h"

namespace fpopt {
namespace {

std::optional<RList> curve_of(const FloorplanNode& node, const FloorplanTree& tree) {
  switch (node.kind) {
    case NodeKind::Leaf:
      return tree.module(node.module_id).impls;
    case NodeKind::Wheel:
      return std::nullopt;
    case NodeKind::Slice:
      break;
  }

  std::optional<RList> acc;
  for (const auto& child : node.children) {
    std::optional<RList> c = curve_of(*child, tree);
    if (!c) return std::nullopt;
    if (!acc) {
      acc = std::move(c);
      continue;
    }
    std::vector<RectImpl> cands;
    cands.reserve(acc->size() * c->size());
    for (const RectImpl& a : *acc) {
      for (const RectImpl& b : *c) {
        cands.push_back(node.dir == SliceDir::Vertical
                            ? RectImpl{a.w + b.w, std::max(a.h, b.h)}
                            : RectImpl{std::max(a.w, b.w), a.h + b.h});
      }
    }
    acc = RList::from_candidates(std::move(cands));
  }
  return acc;
}

}  // namespace

std::optional<RList> stockmeyer_shape_curve(const FloorplanTree& tree) {
  return curve_of(tree.root(), tree);
}

std::optional<Area> stockmeyer_best_area(const FloorplanTree& tree) {
  const std::optional<RList> curve = stockmeyer_shape_curve(tree);
  if (!curve || curve->empty()) return std::nullopt;
  return (*curve)[curve->min_area_index()].area();
}

}  // namespace fpopt
