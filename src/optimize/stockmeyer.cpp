#include "optimize/stockmeyer.h"

#include "kernel/arena.h"
#include "kernel/soa.h"
#include "kernel/sweep.h"

namespace fpopt {
namespace {

/// One Stockmeyer merge step, batched: the right-hand curve is gathered
/// into SoA rows once, then each a_i produces its whole candidate row
/// with two broadcast kernels (w/h roles swap with the slice direction).
/// Candidates appear in the same (i, j) order as the scalar double loop,
/// and RList::from_candidates prunes order-insensitively on top.
RList merge_curves(const RList& a_curve, const RList& b_curve, bool vertical) {
  std::vector<RectImpl> cands;
  cands.reserve(a_curve.size() * b_curve.size());
  kernel::Arena& arena = kernel::scratch_arena();
  kernel::ArenaScope scope(arena);
  const kernel::RCurveSoA bs = kernel::load_r_curve(arena, b_curve.impls());
  Dim* ow = scope.alloc_array<Dim>(bs.n);
  Dim* oh = scope.alloc_array<Dim>(bs.n);
  for (const RectImpl& a : a_curve) {
    if (vertical) {
      kernel::add_broadcast(bs.w, bs.n, a.w, ow);  // a.w + b.w
      kernel::max_broadcast(bs.h, bs.n, a.h, oh);  // max(a.h, b.h)
    } else {
      kernel::max_broadcast(bs.w, bs.n, a.w, ow);  // max(a.w, b.w)
      kernel::add_broadcast(bs.h, bs.n, a.h, oh);  // a.h + b.h
    }
    for (std::size_t i = 0; i < bs.n; ++i) cands.push_back({ow[i], oh[i]});
  }
  return RList::from_candidates(std::move(cands));
}

std::optional<RList> curve_of(const FloorplanNode& node, const FloorplanTree& tree) {
  switch (node.kind) {
    case NodeKind::Leaf:
      return tree.module(node.module_id).impls;
    case NodeKind::Wheel:
      return std::nullopt;
    case NodeKind::Slice:
      break;
  }

  std::optional<RList> acc;
  for (const auto& child : node.children) {
    std::optional<RList> c = curve_of(*child, tree);
    if (!c) return std::nullopt;
    if (!acc) {
      acc = std::move(c);
      continue;
    }
    acc = merge_curves(*acc, *c, node.dir == SliceDir::Vertical);
  }
  return acc;
}

}  // namespace

std::optional<RList> stockmeyer_shape_curve(const FloorplanTree& tree) {
  return curve_of(tree.root(), tree);
}

std::optional<Area> stockmeyer_best_area(const FloorplanTree& tree) {
  const std::optional<RList> curve = stockmeyer_shape_curve(tree);
  if (!curve || curve->empty()) return std::nullopt;
  return (*curve)[curve->min_area_index()].area();
}

}  // namespace fpopt
