// Traceback from an optimal root implementation to a concrete placement:
// a room (basic rectangle) for every module, tiling the chip exactly.
//
// The recursion inverts the combine kernels (see combine.h): each op knows
// which child implementations produced an implementation (provenance) and
// how the parent region splits into the two child regions, with slack
// assigned deterministically (the invariants are spelled out next to each
// case in placement.cpp). Counter-clockwise wheels are evaluated in
// clockwise canonical form and mirrored here.
#pragma once

#include <string>
#include <vector>

#include "geometry/placed_rect.h"
#include "geometry/rect_impl.h"
#include "optimize/optimizer.h"

namespace fpopt {

struct ModulePlacement {
  std::size_t module_id = 0;
  PlacedRect room;   ///< the basic rectangle assigned to the module
  RectImpl impl;     ///< the module implementation chosen inside it
};

struct Placement {
  Dim width = 0;
  Dim height = 0;
  std::vector<ModulePlacement> rooms;

  [[nodiscard]] Area chip_area() const { return width * height; }
  [[nodiscard]] Area total_module_area() const;
};

/// Materialize the placement realizing outcome.root[root_impl_index].
/// Requires a successful outcome (artifacts present).
[[nodiscard]] Placement trace_placement(const FloorplanTree& tree, const OptimizeOutcome& outcome,
                                        std::size_t root_impl_index);

/// Structural checks: one room per module, rooms tile the chip exactly
/// (total area matches, no interior overlaps, all inside the chip), every
/// chosen implementation fits its room and belongs to its module's list.
/// Returns human-readable problems; empty means valid.
[[nodiscard]] std::vector<std::string> validate_placement(const Placement& placement,
                                                          const FloorplanTree& tree);

/// Small ASCII rendering of a placement for the examples.
[[nodiscard]] std::string render_ascii(const Placement& placement, const FloorplanTree& tree,
                                       std::size_t max_cols = 96);

}  // namespace fpopt
