#include "optimize/placement.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace fpopt {

Area Placement::total_module_area() const {
  Area total = 0;
  for (const ModulePlacement& m : rooms) total += m.impl.area();
  return total;
}

namespace {

/// An L-shaped target region at an absolute position: bottom strip
/// [x, x+w1] x [y, y+h2] plus left column [x, x+w2] x [y, y+h1].
struct LTarget {
  Dim x, y, w1, w2, h1, h2;
};

class Tracer {
 public:
  Tracer(const FloorplanTree& tree, const OptimizeArtifacts& art) : tree_(tree), art_(art) {}

  std::vector<ModulePlacement> take_rooms() && { return std::move(rooms_); }

  /// Place a rectangular block's implementation `impl_idx` into `room`
  /// (room is always at least as large as the implementation; the
  /// recursion decides which child room absorbs the slack).
  void assign_rect(const BinaryNode& node, std::size_t impl_idx, PlacedRect room) {
    const NodeResult& res = art_.nodes[node.id];
    assert(!res.is_l);
    const RectImpl impl = res.rlist[impl_idx];
    assert(room.w >= impl.w && room.h >= impl.h);
    const Prov prov = res.rprov[impl_idx];

    switch (node.op) {
      case BinaryOp::LeafModule:
        rooms_.push_back({node.module_id, room, tree_.module(node.module_id).impls[prov.left]});
        return;
      case BinaryOp::SliceV: {
        // Left child keeps its exact width; the right child absorbs the
        // horizontal slack; both stretch to the full room height.
        const RectImpl left = art_.nodes[node.left->id].rlist[prov.left];
        assign_rect(*node.left, prov.left, {room.x, room.y, left.w, room.h});
        assign_rect(*node.right, prov.right,
                    {room.x + left.w, room.y, room.w - left.w, room.h});
        return;
      }
      case BinaryOp::SliceH: {
        const RectImpl left = art_.nodes[node.left->id].rlist[prov.left];
        assign_rect(*node.left, prov.left, {room.x, room.y, room.w, left.h});
        assign_rect(*node.right, prov.right,
                    {room.x, room.y + left.h, room.w, room.h - left.h});
        return;
      }
      case BinaryOp::WheelClose: {
        // Child L keeps its exact (w2, h2); the Top module's room is the
        // remaining notch [w2, W] x [h2, H] and absorbs both slacks.
        const LImpl* l = art_.nodes[node.left->id].find_l(prov.left);
        assert(l != nullptr);
        const std::size_t first_room = rooms_.size();
        assign_l(*node.left, prov.left, {room.x, room.y, room.w, l->w2, room.h, l->h2});
        assign_rect(*node.right, prov.right,
                    {room.x + l->w2, room.y + l->h2, room.w - l->w2, room.h - l->h2});
        if (node.chirality == WheelChirality::CounterClockwise) {
          // The wheel was evaluated in clockwise canonical form; reflect
          // every room the subtree produced across the frame's vertical axis.
          for (std::size_t r = first_room; r < rooms_.size(); ++r) {
            rooms_[r].room = rooms_[r].room.mirrored_x(room);
          }
        }
        return;
      }
      default:
        assert(false && "assign_rect called on an L-block node");
    }
  }

  /// Place an L block's entry `entry_id` into target `t`. Invariants
  /// guaranteed by the callers (see combine.h's lazy-stretch formulas):
  /// t.w2 == impl.w2 always; t.h2 == impl.h2 except at WheelFillNotch,
  /// whose Center room absorbs the difference; t.w1 >= impl.w1,
  /// t.h1 >= impl.h1, and t.h1 - t.h2 >= impl.h1 - impl.h2.
  void assign_l(const BinaryNode& node, std::uint32_t entry_id, LTarget t) {
    const NodeResult& res = art_.nodes[node.id];
    assert(res.is_l);
    const LImpl* me = res.find_l(entry_id);
    assert(me != nullptr);
    assert(t.w2 == me->w2 && t.w1 >= me->w1 && t.h1 >= me->h1 && t.h2 >= me->h2);
    const Prov prov = res.lprov[entry_id];

    switch (node.op) {
      case BinaryOp::WheelStack: {
        // Bottom strip (full width) is the Bottom child's room; the left
        // column above it is the Left child's room.
        assert(t.h2 == me->h2);
        assign_rect(*node.left, prov.left, {t.x, t.y, t.w1, t.h2});
        assign_rect(*node.right, prov.right, {t.x, t.y + t.h2, t.w2, t.h1 - t.h2});
        return;
      }
      case BinaryOp::WheelFillNotch: {
        // Center room sits on the child's bottom strip, right of the
        // column, and absorbs all slack of the notch region.
        const LImpl* child = art_.nodes[node.left->id].find_l(prov.left);
        assert(child != nullptr);
        assign_l(*node.left, prov.left, {t.x, t.y, t.w1, t.w2, t.h1, child->h2});
        assign_rect(*node.right, prov.right,
                    {t.x + t.w2, t.y + child->h2, t.w1 - t.w2, t.h2 - child->h2});
        return;
      }
      case BinaryOp::WheelExtend: {
        // Right column keeps its exact width, pinned to the right edge,
        // spanning the full bottom-strip height.
        assert(t.h2 == me->h2);
        const RectImpl c = art_.nodes[node.right->id].rlist[prov.right];
        assign_l(*node.left, prov.left, {t.x, t.y, t.w1 - c.w, t.w2, t.h1, t.h2});
        assign_rect(*node.right, prov.right, {t.x + t.w1 - c.w, t.y, c.w, t.h2});
        return;
      }
      default:
        assert(false && "assign_l called on a rect-block node");
    }
  }

 private:
  const FloorplanTree& tree_;
  const OptimizeArtifacts& art_;
  std::vector<ModulePlacement> rooms_;
};

}  // namespace

Placement trace_placement(const FloorplanTree& tree, const OptimizeOutcome& outcome,
                          std::size_t root_impl_index) {
  assert(outcome.artifacts != nullptr && "traceback needs a successful run");
  const OptimizeArtifacts& art = *outcome.artifacts;
  const RectImpl chip = outcome.root[root_impl_index];

  Placement placement;
  placement.width = chip.w;
  placement.height = chip.h;
  Tracer tracer(tree, art);
  tracer.assign_rect(*art.btree.root, root_impl_index, {0, 0, chip.w, chip.h});
  placement.rooms = std::move(tracer).take_rooms();
  return placement;
}

std::vector<std::string> validate_placement(const Placement& placement,
                                            const FloorplanTree& tree) {
  std::vector<std::string> errors;
  const PlacedRect chip{0, 0, placement.width, placement.height};
  std::vector<std::size_t> seen(tree.module_count(), 0);
  Area room_area = 0;

  for (const ModulePlacement& m : placement.rooms) {
    const std::string name =
        m.module_id < tree.module_count() ? tree.module(m.module_id).name : "<bad id>";
    if (m.module_id >= tree.module_count()) {
      errors.push_back("room references invalid module id");
      continue;
    }
    ++seen[m.module_id];
    if (!m.room.valid()) errors.push_back("module '" + name + "' has a degenerate room");
    if (!chip.contains(m.room)) errors.push_back("module '" + name + "' room leaves the chip");
    if (m.room.w < m.impl.w || m.room.h < m.impl.h) {
      errors.push_back("module '" + name + "' implementation does not fit its room");
    }
    const auto& impls = tree.module(m.module_id).impls;
    if (std::find(impls.begin(), impls.end(), m.impl) == impls.end()) {
      errors.push_back("module '" + name + "' uses an implementation outside its list");
    }
    room_area += m.room.area();
  }

  for (std::size_t id = 0; id < seen.size(); ++id) {
    if (seen[id] != 1) {
      errors.push_back("module '" + tree.module(id).name + "' placed " +
                       std::to_string(seen[id]) + " times");
    }
  }

  for (std::size_t i = 0; i < placement.rooms.size(); ++i) {
    for (std::size_t j = i + 1; j < placement.rooms.size(); ++j) {
      if (placement.rooms[i].room.overlaps(placement.rooms[j].room)) {
        errors.push_back("rooms of '" + tree.module(placement.rooms[i].module_id).name +
                         "' and '" + tree.module(placement.rooms[j].module_id).name +
                         "' overlap");
      }
    }
  }

  if (room_area != placement.chip_area()) {
    errors.push_back("rooms cover " + std::to_string(room_area) + " of " +
                     std::to_string(placement.chip_area()) + " chip area (not a tiling)");
  }
  return errors;
}

std::string render_ascii(const Placement& placement, const FloorplanTree& tree,
                         std::size_t max_cols) {
  if (placement.width <= 0 || placement.height <= 0) return "<empty placement>\n";
  const std::size_t cols = std::min<std::size_t>(max_cols, 96);
  const std::size_t rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(cols) *
                                  static_cast<double>(placement.height) /
                                  (2.0 * static_cast<double>(placement.width))));
  std::vector<std::string> grid(rows, std::string(cols, '.'));

  for (std::size_t idx = 0; idx < placement.rooms.size(); ++idx) {
    const ModulePlacement& m = placement.rooms[idx];
    const char tag = tree.module(m.module_id).name.empty()
                         ? '?'
                         : tree.module(m.module_id).name.back();
    const auto to_col = [&](Dim x) {
      return static_cast<std::size_t>(static_cast<double>(x) * static_cast<double>(cols) /
                                      static_cast<double>(placement.width));
    };
    const auto to_row = [&](Dim y) {
      return static_cast<std::size_t>(static_cast<double>(y) * static_cast<double>(rows) /
                                      static_cast<double>(placement.height));
    };
    const std::size_t c0 = to_col(m.room.x);
    const std::size_t c1 = std::max(c0 + 1, to_col(m.room.x2()));
    const std::size_t r0 = to_row(m.room.y);
    const std::size_t r1 = std::max(r0 + 1, to_row(m.room.y2()));
    for (std::size_t r = r0; r < std::min(r1, rows); ++r) {
      for (std::size_t c = c0; c < std::min(c1, cols); ++c) grid[r][c] = tag;
    }
  }

  std::ostringstream out;
  for (auto it = grid.rbegin(); it != grid.rend(); ++it) out << *it << '\n';
  return out.str();
}

}  // namespace fpopt
