// The floorplan area optimizer: Wang & Wong's DAC'90 exact algorithm [9]
// plus this paper's selection hooks (Section 3).
//
// The engine restructures the floorplan tree into the binary tree T',
// computes every internal node's non-redundant implementation list bottom
// up with the kernels in combine.h, and — when selection limits are set —
// reduces any list that exceeds them with R_Selection / L_Selection right
// after it is generated. Limits of 0 reproduce the exact algorithm [9].
//
// All node lists stay live until the end of the run (they are needed for
// traceback, exactly as in [9]); a configurable implementation budget
// simulates the paper's memory exhaustion and aborts the run when the
// total live implementation count exceeds it.
//
// With OptimizerOptions::threads > 0 the engine evaluates T' on a
// work-stealing thread pool: every internal node becomes a task that
// fires once both children's NodeResults are ready, and the selection /
// error-table kernels inside a node additionally split their DP layers
// across the same workers. The parallel mode is *deterministic* — node
// lists, provenance, selection certificates, stats counters and the
// memory-budget abort decision are bit-identical to the serial engine
// for every thread count (see docs/ALGORITHMS.md §7 for the scheduling
// and budget-accounting model).
//
// With OptimizerOptions::incremental and a MemoCache, the engine serves
// every T' node whose content-addressed subtree key is already cached —
// after a topology move only the dirty root-path is recomputed — while
// served nodes replay their recorded memory/stats profiles, preserving
// the same bit-identical contract (docs/ALGORITHMS.md §8).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/l_error.h"
#include "core/r_selection.h"
#include "floorplan/restructure.h"
#include "floorplan/tree.h"
#include "optimize/combine.h"
#include "optimize/node_result.h"
#include "optimize/stats.h"
#include "shape/l_list_set.h"
#include "shape/r_list.h"
#include "telemetry/telemetry.h"

namespace fpopt {

class CacheView;   // src/cache/memo_cache.h
class ThreadPool;  // src/runtime/thread_pool.h

/// The paper's knobs (Sections 3 and 5).
struct SelectionConfig {
  std::size_t k1 = 0;  ///< max implementations per rectangular block (0 = exact, no limit)
  std::size_t k2 = 0;  ///< max implementations per L-shaped block (0 = no limit)
  /// Section 5 trigger: run L_Selection only when K2/X < theta (X the
  /// block's current count). 1.0 = reduce whenever the limit is exceeded.
  double theta = 1.0;
  /// Section 5's S: per-list heuristic pre-reduction cap for L_Selection
  /// (0 = always run the optimal selector directly).
  std::size_t heuristic_cap = 1024;
  LpMetric metric = LpMetric::L1;
  SelectionDp dp = SelectionDp::Auto;
};

struct OptimizerOptions {
  SelectionConfig selection;
  /// Simulated memory capacity in implementations (live stored +
  /// transient); 0 = unlimited. Exceeding it aborts the run the way [9]
  /// aborted on the SPARC (the "-" rows of Tables 3 and 4).
  std::size_t impl_budget = 800'000;
  /// GlobalAtNode reproduces [9]: every internal node ends up storing
  /// exactly its non-redundant implementations, pruned once generation
  /// for the node finishes. See LPruning for the two other modes.
  LPruning l_pruning = LPruning::GlobalAtNode;
  RestructureOptions restructure;
  /// Worker threads for the parallel engine. 0 = the serial engine
  /// (unchanged code path); N >= 1 = dependency-counting bottom-up
  /// schedule over T' on an N-worker work-stealing pool, with the hot
  /// selection kernels parallelized inside each node. Results are
  /// bit-identical for every value.
  std::size_t threads = 0;
  /// Incremental mode: serve every T' node whose content-addressed
  /// subtree key is present in `cache` from the cache (only the dirty
  /// root-path of a move is recomputed) and publish the recomputed nodes
  /// back after a successful run. Served nodes replay their recorded
  /// memory/stats profiles through the serial-postorder budget model, so
  /// artifacts, stats (including peak_live) and the out-of-memory
  /// decision are byte-identical to a scratch run at any thread count.
  /// No effect unless `cache` is also set.
  bool incremental = false;
  /// The memo cache for incremental mode. Not owned. The engine touches
  /// it only from the coordinating thread, in a serial pre-pass (probe)
  /// and a serial post-pass (publish), so the view itself need not be
  /// thread-safe — but one view must not be shared by concurrent
  /// optimize_floorplan calls. Concurrent callers each bring their own
  /// view: a run-local MemoCache, or a per-request CacheSession over the
  /// daemon's SharedMemoCache (cache/shared_cache.h).
  CacheView* cache = nullptr;
  /// Optional externally owned pool for the parallel engine (threads >
  /// 0). When null the engine spins up its own `threads`-worker pool for
  /// the run — the standalone behavior. A long-running process (fpoptd)
  /// passes one process-wide pool instead so concurrent runs share the
  /// workers; results stay bit-identical either way (the schedule is
  /// deterministic for every worker count). Shared-pool runs leave
  /// OptimizeOutcome::pool_stats empty: a shared pool's counters span
  /// many runs and belong to the process, not to any one outcome.
  ThreadPool* pool = nullptr;
};

// NodeResult and OptimizeArtifacts live in optimize/node_result.h (the
// memo cache stores NodeResults and must not depend on the engine).

struct OptimizeOutcome {
  /// True when the simulated memory budget was exceeded — the run aborted
  /// the way [9] did on the SPARC; root/best_area are then meaningless.
  bool out_of_memory = false;
  RList root;          ///< non-redundant implementations of the whole floorplan
  Area best_area = 0;  ///< min w*h over root (0 when out_of_memory)
  OptimizerStats stats;
  /// Wall-clock per phase ("restructure", "evaluate"); timing only, never
  /// part of any determinism comparison. Empty under FPOPT_TELEMETRY=OFF.
  std::vector<telemetry::PhaseSample> phases;
  /// Scheduling counters of the run's thread pool (captured even when the
  /// run aborted). Empty for serial runs and under FPOPT_TELEMETRY=OFF.
  telemetry::PoolStats pool_stats;
  std::shared_ptr<const OptimizeArtifacts> artifacts;  ///< null when out_of_memory
};

/// Run the optimizer. `tree` must be well-formed (validate() empty).
[[nodiscard]] OptimizeOutcome optimize_floorplan(const FloorplanTree& tree,
                                                 const OptimizerOptions& opts = {});

}  // namespace fpopt
