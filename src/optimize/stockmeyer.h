// Stockmeyer's optimal algorithm for slicing floorplans (reference [8]):
// bottom-up shape-curve combination over a slicing tree.
//
// This is an *independent* implementation (naive cross-product generation
// plus dominance pruning, no shared kernels) kept as (a) the classical
// baseline the paper's lineage builds on and (b) an oracle the tests use
// to cross-check the main engine on slicing-only inputs.
#pragma once

#include <optional>

#include "floorplan/tree.h"
#include "shape/r_list.h"

namespace fpopt {

/// Root shape curve of a slicing floorplan; nullopt if the tree contains a
/// wheel (Stockmeyer handles slicing structures only).
[[nodiscard]] std::optional<RList> stockmeyer_shape_curve(const FloorplanTree& tree);

/// Minimum chip area of a slicing floorplan, or nullopt for wheels.
[[nodiscard]] std::optional<Area> stockmeyer_best_area(const FloorplanTree& tree);

}  // namespace fpopt
