// Memory instrumentation for the optimizer (the paper's M column).
//
// The paper measures M = the maximum number of implementations ever stored
// in memory during the computation, and notes that M drops when selection
// eliminates implementations. We track two quantities:
//  * stored: implementations retained in node lists (children stay live
//    until the end for traceback, exactly as in [9]); the peak of this is
//    the paper's M.
//  * transient: candidate buffers alive inside a combine step.
// A configurable budget on stored + transient simulates the SPARC's
// memory exhaustion: exceeding it aborts the run the way [9] aborted,
// which is how the "-" rows of Tables 3 and 4 are reproduced.
#pragma once

#include <algorithm>
#include <cstddef>

#include "geometry/types.h"

namespace fpopt {

/// Thrown (internally) when the simulated memory budget is exceeded; the
/// optimizer converts it into OptimizeOutcome::out_of_memory.
struct MemoryLimitExceeded {
  std::size_t stored;
  std::size_t transient;
};

struct OptimizerStats {
  std::size_t peak_stored = 0;      ///< the paper's M
  std::size_t final_stored = 0;     ///< retained at the end of the run
  std::size_t peak_transient = 0;   ///< largest candidate buffer
  /// Peak of stored + transient — the quantity the impl_budget check is
  /// applied to. In parallel mode this is the *serial schedule's* peak,
  /// reconstructed from per-node profiles (see optimizer.cpp), so it is
  /// identical for every thread count.
  std::size_t peak_live = 0;
  std::size_t total_generated = 0;  ///< candidates ever emitted
  std::size_t nodes_evaluated = 0;  ///< tree nodes combined this run
  std::size_t r_selection_calls = 0;
  std::size_t l_selection_calls = 0;
  std::size_t r_selected_away = 0;  ///< implementations removed by R_Selection
  std::size_t l_selected_away = 0;  ///< implementations removed by L_Selection
  /// Interval-CSPP invocations across R- and L-selection, and how many of
  /// them ran through the Monge divide-and-conquer evaluator.
  std::size_t cspp_calls = 0;
  std::size_t cspp_monge_calls = 0;
  /// Section-5 heuristic pre-reductions applied ahead of L_Selection.
  std::size_t l_heuristic_prereductions = 0;
  /// Longest R-list / L-list-set seen entering a selection step (max-folded
  /// across nodes, identical for every thread count).
  std::size_t max_rlist_len = 0;
  std::size_t max_llist_len = 0;
  Weight r_selection_error = 0;     ///< total staircase area discarded
  Weight l_selection_error = 0;     ///< total Lp cost discarded
  double seconds = 0;               ///< wall-clock of the run
};

class BudgetTracker {
 public:
  /// budget == 0 means unlimited.
  explicit BudgetTracker(std::size_t budget) : budget_(budget) {}

  /// Both adders are exception-safe: a rejected add leaves the tracker
  /// unchanged (the optimizer aborts on the exception regardless, but
  /// callers that probe the budget can continue cleanly).
  void add_stored(std::size_t n) {
    check(n);
    stored_ += n;
    peak_stored_ = std::max(peak_stored_, stored_);
    peak_total_ = std::max(peak_total_, stored_ + transient_);
  }
  void sub_stored(std::size_t n) { stored_ -= n; }

  void add_transient(std::size_t n) {
    check(n);
    transient_ += n;
    peak_transient_ = std::max(peak_transient_, transient_);
    peak_total_ = std::max(peak_total_, stored_ + transient_);
  }
  void sub_transient(std::size_t n) { transient_ -= n; }

  [[nodiscard]] std::size_t stored() const { return stored_; }
  [[nodiscard]] std::size_t peak_stored() const { return peak_stored_; }
  [[nodiscard]] std::size_t peak_transient() const { return peak_transient_; }
  /// Peak of stored + transient (what check() compares to the budget).
  [[nodiscard]] std::size_t peak_total() const { return peak_total_; }

 private:
  void check(std::size_t incoming) const {
    if (budget_ != 0 && stored_ + transient_ + incoming > budget_) {
      throw MemoryLimitExceeded{stored_, transient_};
    }
  }

  std::size_t budget_;
  std::size_t stored_ = 0;
  std::size_t peak_stored_ = 0;
  std::size_t transient_ = 0;
  std::size_t peak_transient_ = 0;
  std::size_t peak_total_ = 0;
};

/// RAII guard for a candidate buffer's contribution to the budget.
class TransientScope {
 public:
  TransientScope(BudgetTracker& tracker) : tracker_(tracker) {}
  TransientScope(const TransientScope&) = delete;
  TransientScope& operator=(const TransientScope&) = delete;
  ~TransientScope() { tracker_.sub_transient(count_); }

  void add(std::size_t n) {
    count_ += n;
    tracker_.add_transient(n);
  }

  /// A compaction shrank the buffer to `n` elements.
  void reset_to(std::size_t n) {
    if (n < count_) {
      tracker_.sub_transient(count_ - n);
      count_ = n;
    }
  }

 private:
  BudgetTracker& tracker_;
  std::size_t count_ = 0;
};

}  // namespace fpopt
