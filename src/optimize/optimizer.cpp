#include "optimize/optimizer.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <limits>
#include <optional>

#include "cache/cache_key.h"
#include "cache/memo_cache.h"
#include "core/l_selection.h"
#include "runtime/thread_pool.h"
#include "telemetry/trace.h"

#if defined(FPOPT_VALIDATE)
#include <string>

#include "check/check_shapes.h"  // FPOPT-LINT-OK(layering): FPOPT_VALIDATE post-condition hook; compiled to no-ops by default
#endif

namespace fpopt {

const LImpl* NodeResult::find_l(std::uint32_t id) const {
  for (const LList& list : lset.lists()) {
    for (const LEntry& e : list) {
      if (e.id == id) return &e.shape;
    }
  }
  return nullptr;
}

namespace {

/// Evaluates one T' node from its children's (already computed)
/// NodeResults. Shared between the serial engine and every parallel task:
/// the two engines differ only in scheduling and in which BudgetTracker
/// they hand in (the serial engine threads one global tracker through the
/// whole run; the profiled engines give every node its own).
class NodeEvaluator {
 public:
  NodeEvaluator(const FloorplanTree& tree, const OptimizerOptions& opts, OptimizeArtifacts& art,
                BudgetTracker& budget, OptimizerStats& stats, ThreadPool* pool)
      : tree_(tree), opts_(opts), art_(art), budget_(budget), stats_(stats), pool_(pool) {}

  /// Both children of `node` (if any) must already have their NodeResult.
  void eval_node(const BinaryNode& node) {
    // Trace identity is the node id; the child links let fpopt_trace
    // rebuild the T' dependency DAG for critical-path extraction. The
    // arg (result list size) is deterministic — bit-identical results at
    // every thread count — so it participates in trace diffs.
    telemetry::TraceSpan span(telemetry::TraceCat::kNode, "eval_node", node.id);
    span.set_children(node.left ? static_cast<std::int64_t>(node.left->id) : -1,
                      node.right ? static_cast<std::int64_t>(node.right->id) : -1);
    ++stats_.nodes_evaluated;
    NodeResult& res = art_.nodes[node.id];
    switch (node.op) {
      case BinaryOp::LeafModule: {
        const RList& impls = tree_.module(node.module_id).impls;
        res.rlist = impls;
        res.rprov.resize(impls.size());
        for (std::size_t i = 0; i < impls.size(); ++i) {
          res.rprov[i] = {static_cast<std::uint32_t>(i), 0};
        }
        budget_.add_stored(impls.size());
        break;
      }
      case BinaryOp::SliceH:
      case BinaryOp::SliceV:
        store_rect(res, combine_slice(rect_of(*node.left), rect_of(*node.right),
                                      node.op == BinaryOp::SliceH, budget_, stats_));
        break;
      case BinaryOp::WheelStack:
        store_l(res, combine_wheel_stack(rect_of(*node.left), rect_of(*node.right),
                                         opts_.l_pruning, budget_, stats_));
        break;
      case BinaryOp::WheelFillNotch:
        store_l(res, combine_wheel_fill_notch(lset_of(*node.left), rect_of(*node.right),
                                              opts_.l_pruning, budget_, stats_));
        break;
      case BinaryOp::WheelExtend:
        store_l(res, combine_wheel_extend(lset_of(*node.left), rect_of(*node.right),
                                          opts_.l_pruning, budget_, stats_));
        break;
      case BinaryOp::WheelClose:
        store_rect(res, combine_wheel_close(lset_of(*node.left), rect_of(*node.right), budget_,
                                            stats_));
        break;
    }
    span.set_arg(res.is_l ? res.lset.total_size() : res.rlist.size());
  }

 private:
  [[nodiscard]] const RList& rect_of(const BinaryNode& child) const {
    const NodeResult& res = art_.nodes[child.id];
    assert(!res.is_l);
    return res.rlist;
  }

  [[nodiscard]] const LListSet& lset_of(const BinaryNode& child) const {
    const NodeResult& res = art_.nodes[child.id];
    assert(res.is_l);
    return res.lset;
  }

  /// Store a rectangular block's list; apply R_Selection when it exceeds K1.
  void store_rect(NodeResult& res, RCombineResult&& combined) {
    budget_.add_stored(combined.list.size());  // the full non-redundant list is stored first
    stats_.max_rlist_len = std::max(stats_.max_rlist_len, combined.list.size());
    const SelectionConfig& sel = opts_.selection;
    if (sel.k1 != 0 && combined.list.size() > sel.k1) {
      const SelectionResult picked = r_selection(combined.list, sel.k1, sel.dp, pool_);
      ++stats_.cspp_calls;
      if (sel.dp != SelectionDp::Generic) ++stats_.cspp_monge_calls;
      const std::size_t removed = combined.list.size() - picked.kept.size();
      std::vector<Prov> prov;
      prov.reserve(picked.kept.size());
      for (std::size_t idx : picked.kept) prov.push_back(combined.prov[idx]);
      combined.list = combined.list.subset(picked.kept);
      combined.prov = std::move(prov);
      budget_.sub_stored(removed);
      ++stats_.r_selection_calls;
      stats_.r_selected_away += removed;
      stats_.r_selection_error += picked.error;
    }
    res.is_l = false;
    res.rlist = std::move(combined.list);
    res.rprov = std::move(combined.prov);
#if defined(FPOPT_VALIDATE)
    CheckResult post = check_r_list(res.rlist, "stored node list");
    if (res.rprov.size() != res.rlist.size()) {
      post.add("optimizer/provenance", "stored node list",
               "provenance size does not match the implementation list");
    }
    enforce(post, "NodeEvaluator::store_rect");
#endif
  }

  /// Store an L block's set: remove cross-chain redundancy (that is what
  /// [9] keeps: only non-redundant implementations), then apply the
  /// Section 5 L_Selection policy when the set exceeds K2.
  void store_l(NodeResult& res, LCombineResult&& combined) {
    if (opts_.l_pruning != LPruning::PerChain) {
      budget_.sub_stored(combined.set.canonicalize());
    }
    stats_.max_llist_len = std::max(stats_.max_llist_len, combined.set.total_size());
    const SelectionConfig& sel = opts_.selection;
    if (sel.k2 != 0) {
      const LSelectionOptions lopts{sel.metric, sel.dp, sel.heuristic_cap,
                                    LHeuristic::UniformSubsample};
      const LReductionReport report =
          reduce_l_set(combined.set, sel.k2, sel.theta, lopts, pool_);
      if (report.triggered) {
        budget_.sub_stored(report.before - report.after);
        ++stats_.l_selection_calls;
        stats_.l_selected_away += report.before - report.after;
        stats_.l_selection_error += report.total_error;
        stats_.cspp_calls += report.cspp_calls;
        stats_.cspp_monge_calls += report.cspp_monge_calls;
        stats_.l_heuristic_prereductions += report.heuristic_prereductions;
      }
    }
    res.is_l = true;
    res.lset = std::move(combined.set);
    res.lprov = std::move(combined.prov);
#if defined(FPOPT_VALIDATE)
    // Cross-chain redundancy is legitimate under PerChain pruning.
    CheckResult post =
        check_l_list_set(res.lset, opts_.l_pruning != LPruning::PerChain, "stored node set");
    for (const LList& list : res.lset.lists()) {
      for (const LEntry& e : list) {
        if (e.id >= res.lprov.size() && post.room_for_more()) {
          post.add("optimizer/provenance", "stored node set",
                   "L entry id " + std::to_string(e.id) + " has no provenance record");
        }
      }
    }
    enforce(post, "NodeEvaluator::store_l");
#endif
  }

  const FloorplanTree& tree_;
  const OptimizerOptions& opts_;
  OptimizeArtifacts& art_;
  BudgetTracker& budget_;
  OptimizerStats& stats_;
  ThreadPool* pool_;
};

/// Fold `from`'s additive counters (and the order-independent max-folds)
/// into `into`. The peak fields are *not* additive and are handled by the
/// schedule-profile reconstruction.
void accumulate_counters(OptimizerStats& into, const OptimizerStats& from) {
  into.total_generated += from.total_generated;
  into.nodes_evaluated += from.nodes_evaluated;
  into.r_selection_calls += from.r_selection_calls;
  into.l_selection_calls += from.l_selection_calls;
  into.r_selected_away += from.r_selected_away;
  into.l_selected_away += from.l_selected_away;
  into.cspp_calls += from.cspp_calls;
  into.cspp_monge_calls += from.cspp_monge_calls;
  into.l_heuristic_prereductions += from.l_heuristic_prereductions;
  into.max_rlist_len = std::max(into.max_rlist_len, from.max_rlist_len);
  into.max_llist_len = std::max(into.max_llist_len, from.max_llist_len);
  into.r_selection_error += from.r_selection_error;
  into.l_selection_error += from.l_selection_error;
}

/// The serial engine: plain postorder recursion with one global tracker,
/// byte-for-byte the behaviour this project has always had.
class Engine {
 public:
  Engine(const FloorplanTree& tree, const OptimizerOptions& opts, OptimizeArtifacts& art,
         OptimizerStats& stats)
      : art_(art),
        stats_(stats),
        budget_(opts.impl_budget),
        evaluator_(tree, opts, art, budget_, stats, nullptr) {}

  void run() {
    eval(*art_.btree.root);
    snapshot_peaks();
  }

  /// Copies the tracker peaks out even when the run aborted mid-way.
  void snapshot_peaks() {
    stats_.final_stored = budget_.stored();
    stats_.peak_stored = budget_.peak_stored();
    stats_.peak_transient = budget_.peak_transient();
    stats_.peak_live = budget_.peak_total();
  }

 private:
  void eval(const BinaryNode& node) {
    if (node.left) eval(*node.left);
    if (node.right) eval(*node.right);
    evaluator_.eval_node(node);
  }

  OptimizeArtifacts& art_;
  OptimizerStats& stats_;
  BudgetTracker budget_;
  NodeEvaluator evaluator_;
};

constexpr std::size_t kNoParent = std::numeric_limits<std::size_t>::max();

// ---- shared plumbing of the profiled engines ---------------------------
//
// Both the parallel engine and the incremental engines evaluate each node
// against a task-local BudgetTracker and record the node's memory profile
// (net stored delta, intra-node peaks) plus its additive stats counters.
// Because a node's combine/selection work is a pure function of its
// children, those profiles are schedule-independent, and after all nodes
// are accounted for the engine replays the *serial* postorder memory
// profile from them. The budget-abort decision and the reported peaks
// come from that replay, so they are identical to the serial scratch
// engine's — whether a node's profile was recorded fresh or served from
// the memo cache (a cached subtree is structurally identical to the one
// that produced the record, so its profile is identical too).

struct NodeProfile {
  OptimizerStats stats;            ///< this node's counters only
  std::size_t net_stored = 0;      ///< stored delta the node leaves behind
  std::size_t peak_stored = 0;     ///< intra-node peak, relative to entry
  std::size_t peak_transient = 0;  ///< intra-node transient peak
  std::size_t peak_total = 0;      ///< intra-node stored+transient peak
  std::size_t subtree_net = 0;     ///< net_stored summed over the subtree
  bool done = false;
};

/// Flattened view of T': node pointers, parents and the serial
/// (postorder) evaluation order, all indexed by BinaryNode::id.
struct FlatTree {
  std::vector<const BinaryNode*> nodes;
  std::vector<std::size_t> parent;
  std::vector<std::size_t> postorder;

  explicit FlatTree(const BinaryTree& btree) {
    nodes.resize(btree.node_count, nullptr);
    parent.resize(btree.node_count, kNoParent);
    postorder.reserve(btree.node_count);
    flatten(*btree.root, kNoParent);
  }

 private:
  void flatten(const BinaryNode& node, std::size_t par) {
    nodes[node.id] = &node;
    parent[node.id] = par;
    if (node.left) flatten(*node.left, node.id);
    if (node.right) flatten(*node.right, node.id);
    postorder.push_back(node.id);  // children pushed above => postorder
  }
};

[[nodiscard]] std::size_t children_subtree_net(const BinaryNode& node,
                                               const std::vector<NodeProfile>& profiles) {
  std::size_t net = 0;
  if (node.left) net += profiles[node.left->id].subtree_net;
  if (node.right) net += profiles[node.right->id].subtree_net;
  return net;
}

/// Replay the serial postorder schedule's memory profile from the
/// per-node records: stored at node entry is the prefix sum of earlier
/// nets, transient is zero between nodes (TransientScope is node-local).
/// Throws when the serial schedule would have exceeded the budget.
void replay_serial_profile(const FlatTree& flat, const std::vector<NodeProfile>& profiles,
                           OptimizerStats& stats, std::size_t impl_budget) {
  std::size_t prefix = 0;
  std::size_t peak_stored = 0, peak_transient = 0, peak_total = 0;
  for (const std::size_t id : flat.postorder) {
    const NodeProfile& prof = profiles[id];
    assert(prof.done);
    peak_stored = std::max(peak_stored, prefix + prof.peak_stored);
    peak_transient = std::max(peak_transient, prof.peak_transient);
    peak_total = std::max(peak_total, prefix + prof.peak_total);
    prefix += prof.net_stored;
    accumulate_counters(stats, prof.stats);
  }
  stats.peak_stored = peak_stored;
  stats.peak_transient = peak_transient;
  stats.peak_live = peak_total;
  stats.final_stored = prefix;
  if (impl_budget != 0 && peak_total > impl_budget) {
    // The serial schedule would have thrown mid-run (a transient spike
    // no early check can see); report the same outcome.
    throw MemoryLimitExceeded{prefix, 0};
  }
}

/// Best-effort stats for an aborted run: counters and peaks over the
/// nodes that did complete, merged in postorder. (The serial engine's
/// abort-time snapshot is schedule-position-dependent in the same way.)
void snapshot_partial(const FlatTree& flat, const std::vector<NodeProfile>& profiles,
                      OptimizerStats& stats) {
  std::size_t prefix = 0;
  for (const std::size_t id : flat.postorder) {
    const NodeProfile& prof = profiles[id];
    if (!prof.done) continue;
    stats.peak_stored = std::max(stats.peak_stored, prefix + prof.peak_stored);
    stats.peak_transient = std::max(stats.peak_transient, prof.peak_transient);
    stats.peak_live = std::max(stats.peak_live, prefix + prof.peak_total);
    prefix += prof.net_stored;
    accumulate_counters(stats, prof.stats);
  }
  stats.final_stored = prefix;
}

/// The memo-cache pre- and post-pass shared by the incremental engines.
/// Both passes run on the coordinating thread only, in postorder, so LRU
/// touches, insertions and evictions are identical for every thread count.
class CacheBinding {
 public:
  CacheBinding(CacheView& cache, const FloorplanTree& tree, const OptimizerOptions& opts,
               const OptimizeArtifacts& art)
      : cache_(cache),
        keys_(derive_node_keys(art.btree, tree, opts)),
        served_(art.btree.node_count, 0) {}

  /// Probe every internal node; copy hits into the artifacts and load
  /// their recorded profiles (leaves are always evaluated — they are a
  /// plain copy of the module library anyway).
  void serve(const FlatTree& flat, OptimizeArtifacts& art, std::vector<NodeProfile>& profiles) {
    telemetry::TraceSpan span(telemetry::TraceCat::kCache, "serve_pass");
    std::uint64_t hits = 0;
    for (const std::size_t id : flat.postorder) {
      if (flat.nodes[id]->is_leaf()) continue;
      const CacheEntry* entry = cache_.find(keys_[id]);
      if (entry == nullptr) continue;
      telemetry::trace_instant(telemetry::TraceCat::kCache, "memo_serve", id,
                               entry->profile.net_stored);
      ++hits;
      art.nodes[id] = entry->result;
      NodeProfile& prof = profiles[id];
      prof.stats = entry->profile.counters;
      prof.net_stored = entry->profile.net_stored;
      prof.peak_stored = entry->profile.peak_stored;
      prof.peak_transient = entry->profile.peak_transient;
      prof.peak_total = entry->profile.peak_total;
      prof.subtree_net = entry->profile.subtree_net;
      prof.done = true;
      served_[id] = 1;
    }
    span.set_arg(hits);
  }

  [[nodiscard]] bool served(std::size_t id) const { return served_[id] != 0; }

  /// Publish the freshly computed nodes of a successful run.
  void publish(const FlatTree& flat, const OptimizeArtifacts& art,
               const std::vector<NodeProfile>& profiles) {
    telemetry::TraceSpan span(telemetry::TraceCat::kCache, "publish_pass");
    std::uint64_t published = 0;
    for (const std::size_t id : flat.postorder) {
      if (flat.nodes[id]->is_leaf() || served_[id] != 0) continue;
      telemetry::trace_instant(telemetry::TraceCat::kCache, "memo_publish", id);
      ++published;
      const NodeProfile& prof = profiles[id];
      cache_.insert(keys_[id], art.nodes[id],
                    NodeProfileRecord{prof.stats, prof.net_stored, prof.peak_stored,
                                      prof.peak_transient, prof.peak_total,
                                      prof.subtree_net});
    }
    span.set_arg(published);
  }

 private:
  CacheView& cache_;
  std::vector<CacheKey> keys_;
  std::vector<char> served_;
};

/// The serial incremental engine: one postorder sweep with per-node
/// profiles, cache hits served up front, and the same sound early-abort
/// checks + serial replay the parallel engine uses (the equivalence
/// argument on ParallelEngine applies verbatim with "task" read as
/// "postorder step"):
///  * committed counter: net stored deltas are non-negative, so as soon
///    as the accounted nodes' nets alone exceed the budget, the scratch
///    run's final stored count exceeds it too — abort.
///  * per-node local cap: when node v runs, the scratch schedule would
///    hold at least the net stored of v's children's subtrees.
class IncrementalSerialEngine {
 public:
  IncrementalSerialEngine(const FloorplanTree& tree, const OptimizerOptions& opts,
                          OptimizeArtifacts& art, OptimizerStats& stats, CacheBinding& binding)
      : tree_(tree),
        opts_(opts),
        art_(art),
        stats_(stats),
        binding_(binding),
        flat_(art.btree),
        profiles_(art.btree.node_count) {}

  void run() {
    binding_.serve(flat_, art_, profiles_);
    std::size_t committed = 0;
    for (const std::size_t id : flat_.postorder) {
      NodeProfile& prof = profiles_[id];
      if (!prof.done) {
        const BinaryNode& node = *flat_.nodes[id];
        const std::size_t desc_net = children_subtree_net(node, profiles_);
        std::size_t local_budget = 0;  // 0 = unlimited
        if (opts_.impl_budget != 0) {
          local_budget = opts_.impl_budget > desc_net ? opts_.impl_budget - desc_net : 1;
        }
        BudgetTracker local(local_budget);
        NodeEvaluator evaluator(tree_, opts_, art_, local, prof.stats, nullptr);
        try {
          evaluator.eval_node(node);
        } catch (const MemoryLimitExceeded&) {
          snapshot_partial(flat_, profiles_, stats_);
          throw;
        }
        prof.net_stored = local.stored();
        prof.peak_stored = local.peak_stored();
        prof.peak_transient = local.peak_transient();
        prof.peak_total = local.peak_total();
        prof.subtree_net = prof.net_stored + desc_net;
        prof.done = true;
      }
      committed += prof.net_stored;
      if (opts_.impl_budget != 0 && committed > opts_.impl_budget) {
        snapshot_partial(flat_, profiles_, stats_);
        throw MemoryLimitExceeded{committed, 0};
      }
    }
    replay_serial_profile(flat_, profiles_, stats_, opts_.impl_budget);
    binding_.publish(flat_, art_, profiles_);
  }

 private:
  const FloorplanTree& tree_;
  const OptimizerOptions& opts_;
  OptimizeArtifacts& art_;
  OptimizerStats& stats_;
  CacheBinding& binding_;
  FlatTree flat_;
  std::vector<NodeProfile> profiles_;
};

/// The parallel engine: a dependency-counting bottom-up schedule over T'.
/// Every node is a task that fires when both children are done; each task
/// evaluates its node with a task-local BudgetTracker and records the
/// node's memory profile. After the DAG drains the engine replays the
/// *serial* postorder memory profile (see the shared-plumbing comment
/// above), so the budget-abort decision and the reported peaks are
/// identical to the serial engine's for every thread count.
///
/// Two sound early-abort checks avoid computing doomed runs to the end:
///  * committed counter: net stored deltas are non-negative, so as soon as
///    the completed nodes' nets alone exceed the budget, the serial run's
///    final stored count exceeds it too — abort.
///  * per-task local cap: when node v runs, the serial schedule would hold
///    at least the net stored of v's whole subtree; a task-local budget of
///    (budget - subtree nets of children) therefore only trips when the
///    serial run would trip at or before the same point in v.
/// Neither check can fire on a run the serial engine completes, and any
/// abort the checks miss is caught by the exact replay, so the outcome is
/// deterministic either way.
///
/// In incremental mode the cache pre-pass serves clean subtrees before
/// the fan-out: served nodes are born `done`, never become tasks, and do
/// not appear in any dependency count — only the dirty nodes hit the
/// pool. Publishing back to the cache happens serially after the drain.
class ParallelEngine {
 public:
  ParallelEngine(const FloorplanTree& tree, const OptimizerOptions& opts,
                 OptimizeArtifacts& art, OptimizerStats& stats, ThreadPool& pool,
                 CacheBinding* binding)
      : tree_(tree),
        opts_(opts),
        art_(art),
        stats_(stats),
        pool_(pool),
        binding_(binding),
        flat_(art.btree) {
    const std::size_t n = art_.btree.node_count;
    pending_ = std::vector<std::atomic<int>>(n);
    profiles_ = std::vector<NodeProfile>(n);
    if (binding_ != nullptr) binding_->serve(flat_, art_, profiles_);
    std::size_t served_net = 0;
    for (std::size_t id = 0; id < n; ++id) {
      if (profiles_[id].done) {
        served_net += profiles_[id].net_stored;
        // relaxed: single-threaded constructor; the pool starts later.
        pending_[id].store(0, std::memory_order_relaxed);
        continue;
      }
      const BinaryNode& node = *flat_.nodes[id];
      int waits = 0;
      if (node.left && !profiles_[node.left->id].done) ++waits;
      if (node.right && !profiles_[node.right->id].done) ++waits;
      // relaxed (all three): single-threaded constructor; TaskGroup's
      // submission edges publish this state before any worker reads it.
      pending_[id].store(waits, std::memory_order_relaxed);
    }
    committed_.store(served_net, std::memory_order_relaxed);
    if (opts_.impl_budget != 0 && served_net > opts_.impl_budget) {
      aborted_.store(true, std::memory_order_relaxed);  // relaxed: still single-threaded
    }
  }

  /// Throws MemoryLimitExceeded when the (deterministic) budget decision
  /// is "abort"; fills stats_ otherwise.
  void run() {
    TaskGroup group(&pool_);
    group_ = &group;
    for (std::size_t id = 0; id < flat_.nodes.size(); ++id) {
      // relaxed: reading our own constructor's writes on this thread.
      if (!profiles_[id].done && pending_[id].load(std::memory_order_relaxed) == 0) {
        group.run([this, id] { exec(id); });
      }
    }
    group.wait();  // rethrows unexpected task exceptions
    group_ = nullptr;

    // acquire (both): group.wait() already synchronized, but the pairing
    // with exec()'s release stores keeps this read self-documenting.
    if (aborted_.load(std::memory_order_acquire)) {
      snapshot_partial(flat_, profiles_, stats_);
      throw MemoryLimitExceeded{committed_.load(std::memory_order_acquire), 0};
    }
    replay_serial_profile(flat_, profiles_, stats_, opts_.impl_budget);
    if (binding_ != nullptr) binding_->publish(flat_, art_, profiles_);
  }

 private:
  void exec(std::size_t id) {
    const BinaryNode& node = *flat_.nodes[id];
    // acquire: pairs with the release stores below so a task that skips
    // work also observes the state the aborting task published.
    if (!aborted_.load(std::memory_order_acquire)) {
      const std::size_t desc_net = children_subtree_net(node, profiles_);
      std::size_t local_budget = 0;  // 0 = unlimited
      if (opts_.impl_budget != 0) {
        // Sound early cap (see class comment); when the children already
        // fill the budget, any add of >= 1 implementation must abort.
        local_budget = opts_.impl_budget > desc_net ? opts_.impl_budget - desc_net : 1;
      }
      BudgetTracker local(local_budget);
      NodeProfile& prof = profiles_[id];
      NodeEvaluator evaluator(tree_, opts_, art_, local, prof.stats, &pool_);
      try {
        evaluator.eval_node(node);
        prof.net_stored = local.stored();
        prof.peak_stored = local.peak_stored();
        prof.peak_transient = local.peak_transient();
        prof.peak_total = local.peak_total();
        prof.subtree_net = prof.net_stored + desc_net;
        prof.done = true;
        // acq_rel: the running total must observe every earlier add and
        // publish this node's profile writes with its contribution.
        const std::size_t committed =
            committed_.fetch_add(prof.net_stored, std::memory_order_acq_rel) +
            prof.net_stored;
        if (opts_.impl_budget != 0 && committed > opts_.impl_budget) {
          // release: publishes the profile state that justified aborting.
          aborted_.store(true, std::memory_order_release);
        }
      } catch (const MemoryLimitExceeded&) {
        // release: publishes the partial profile of the aborting node.
        aborted_.store(true, std::memory_order_release);
      }
    }
    // Cascade even when aborted so every queued dependency drains and
    // TaskGroup::wait returns promptly.
    const std::size_t parent = flat_.parent[id];
    if (parent != kNoParent &&
        pending_[parent].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      group_->run([this, parent] { exec(parent); });
    }
  }

  const FloorplanTree& tree_;
  const OptimizerOptions& opts_;
  OptimizeArtifacts& art_;
  OptimizerStats& stats_;
  ThreadPool& pool_;
  CacheBinding* binding_;
  TaskGroup* group_ = nullptr;

  FlatTree flat_;
  std::vector<std::atomic<int>> pending_;  ///< unserved children left, by node id
  std::vector<NodeProfile> profiles_;      ///< by node id

  std::atomic<std::size_t> committed_{0};  ///< nets of completed nodes
  std::atomic<bool> aborted_{false};
};

}  // namespace

OptimizeOutcome optimize_floorplan(const FloorplanTree& tree, const OptimizerOptions& opts) {
  assert(tree.validate().empty() && "optimize_floorplan requires a well-formed tree");
  const auto start = std::chrono::steady_clock::now();  // FPOPT-LINT-OK(wall-clock): stats.seconds is reported wall time, excluded from determinism comparisons
  telemetry::PhaseProfile phases;

  auto artifacts = std::make_shared<OptimizeArtifacts>();
  {
    const auto scope = phases.scope("restructure");
    const telemetry::TraceSpan span(telemetry::TraceCat::kPhase, "restructure");
    artifacts->btree = restructure(tree, opts.restructure);
    artifacts->nodes.resize(artifacts->btree.node_count);
  }
  assert(!artifacts->btree.root->is_l_block() && "T' roots are rectangular blocks");

  const bool incremental = opts.incremental && opts.cache != nullptr;
  OptimizeOutcome outcome;
  try {
    const auto scope = phases.scope("evaluate");
    const telemetry::TraceSpan span(telemetry::TraceCat::kPhase, "evaluate");
    std::optional<CacheBinding> binding;
    if (incremental) binding.emplace(*opts.cache, tree, opts, *artifacts);
    if (opts.threads == 0) {
      if (incremental) {
        IncrementalSerialEngine engine(tree, opts, *artifacts, outcome.stats, *binding);
        engine.run();
      } else {
        Engine engine(tree, opts, *artifacts, outcome.stats);
        try {
          engine.run();
        } catch (const MemoryLimitExceeded&) {
          engine.snapshot_peaks();
          throw;
        }
      }
    } else {
      // A run-owned pool dies with this scope (its counters are kept for
      // the report); an externally shared pool (opts.pool, the daemon's)
      // outlives the run and keeps its own process-lifetime counters.
      std::optional<ThreadPool> owned;
      ThreadPool* pool = opts.pool;
      if (pool == nullptr) {
        owned.emplace(static_cast<unsigned>(opts.threads));
        pool = &*owned;
      }
      ParallelEngine engine(tree, opts, *artifacts, outcome.stats, *pool,
                            binding ? &*binding : nullptr);
      try {
        engine.run();
      } catch (const MemoryLimitExceeded&) {
        if (owned) outcome.pool_stats = owned->stats();
        throw;
      }
      if (owned) outcome.pool_stats = owned->stats();
    }
    const NodeResult& root = artifacts->nodes[artifacts->btree.root->id];
    outcome.root = root.rlist;
    outcome.best_area = root.rlist[root.rlist.min_area_index()].area();
    outcome.artifacts = std::move(artifacts);
  } catch (const MemoryLimitExceeded&) {
    outcome.out_of_memory = true;
  }

  outcome.phases = phases.samples();
  outcome.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();  // FPOPT-LINT-OK(wall-clock): reported wall time, excluded from determinism comparisons
  return outcome;
}

}  // namespace fpopt
