#include "optimize/optimizer.h"

#include <cassert>
#include <chrono>

#include "core/l_selection.h"

#if defined(FPOPT_VALIDATE)
#include <string>

#include "check/check_shapes.h"
#endif

namespace fpopt {

const LImpl* NodeResult::find_l(std::uint32_t id) const {
  for (const LList& list : lset.lists()) {
    for (const LEntry& e : list) {
      if (e.id == id) return &e.shape;
    }
  }
  return nullptr;
}

namespace {

class Engine {
 public:
  Engine(const FloorplanTree& tree, const OptimizerOptions& opts, OptimizeArtifacts& art,
         OptimizerStats& stats)
      : tree_(tree), opts_(opts), art_(art), stats_(stats), budget_(opts.impl_budget) {}

  void run() {
    eval(*art_.btree.root);
    stats_.final_stored = budget_.stored();
    stats_.peak_stored = budget_.peak_stored();
    stats_.peak_transient = budget_.peak_transient();
  }

  /// Copies the tracker peaks out even when the run aborted mid-way.
  void snapshot_peaks() {
    stats_.final_stored = budget_.stored();
    stats_.peak_stored = budget_.peak_stored();
    stats_.peak_transient = budget_.peak_transient();
  }

 private:
  void eval(const BinaryNode& node) {
    if (node.left) eval(*node.left);
    if (node.right) eval(*node.right);

    NodeResult& res = art_.nodes[node.id];
    switch (node.op) {
      case BinaryOp::LeafModule: {
        const RList& impls = tree_.module(node.module_id).impls;
        res.rlist = impls;
        res.rprov.resize(impls.size());
        for (std::size_t i = 0; i < impls.size(); ++i) {
          res.rprov[i] = {static_cast<std::uint32_t>(i), 0};
        }
        budget_.add_stored(impls.size());
        return;
      }
      case BinaryOp::SliceH:
      case BinaryOp::SliceV:
        store_rect(res, combine_slice(rect_of(*node.left), rect_of(*node.right),
                                      node.op == BinaryOp::SliceH, budget_, stats_));
        return;
      case BinaryOp::WheelStack:
        store_l(res, combine_wheel_stack(rect_of(*node.left), rect_of(*node.right),
                                         opts_.l_pruning, budget_, stats_));
        return;
      case BinaryOp::WheelFillNotch:
        store_l(res, combine_wheel_fill_notch(lset_of(*node.left), rect_of(*node.right),
                                              opts_.l_pruning, budget_, stats_));
        return;
      case BinaryOp::WheelExtend:
        store_l(res, combine_wheel_extend(lset_of(*node.left), rect_of(*node.right),
                                          opts_.l_pruning, budget_, stats_));
        return;
      case BinaryOp::WheelClose:
        store_rect(res, combine_wheel_close(lset_of(*node.left), rect_of(*node.right), budget_,
                                            stats_));
        return;
    }
  }

  [[nodiscard]] const RList& rect_of(const BinaryNode& child) const {
    const NodeResult& res = art_.nodes[child.id];
    assert(!res.is_l);
    return res.rlist;
  }

  [[nodiscard]] const LListSet& lset_of(const BinaryNode& child) const {
    const NodeResult& res = art_.nodes[child.id];
    assert(res.is_l);
    return res.lset;
  }

  /// Store a rectangular block's list; apply R_Selection when it exceeds K1.
  void store_rect(NodeResult& res, RCombineResult&& combined) {
    budget_.add_stored(combined.list.size());  // the full non-redundant list is stored first
    const SelectionConfig& sel = opts_.selection;
    if (sel.k1 != 0 && combined.list.size() > sel.k1) {
      const SelectionResult picked = r_selection(combined.list, sel.k1, sel.dp);
      const std::size_t removed = combined.list.size() - picked.kept.size();
      std::vector<Prov> prov;
      prov.reserve(picked.kept.size());
      for (std::size_t idx : picked.kept) prov.push_back(combined.prov[idx]);
      combined.list = combined.list.subset(picked.kept);
      combined.prov = std::move(prov);
      budget_.sub_stored(removed);
      ++stats_.r_selection_calls;
      stats_.r_selected_away += removed;
      stats_.r_selection_error += picked.error;
    }
    res.is_l = false;
    res.rlist = std::move(combined.list);
    res.rprov = std::move(combined.prov);
#if defined(FPOPT_VALIDATE)
    CheckResult post = check_r_list(res.rlist, "stored node list");
    if (res.rprov.size() != res.rlist.size()) {
      post.add("optimizer/provenance", "stored node list",
               "provenance size does not match the implementation list");
    }
    enforce(post, "Engine::store_rect");
#endif
  }

  /// Store an L block's set: remove cross-chain redundancy (that is what
  /// [9] keeps: only non-redundant implementations), then apply the
  /// Section 5 L_Selection policy when the set exceeds K2.
  void store_l(NodeResult& res, LCombineResult&& combined) {
    if (opts_.l_pruning != LPruning::PerChain) {
      budget_.sub_stored(combined.set.canonicalize());
    }
    const SelectionConfig& sel = opts_.selection;
    if (sel.k2 != 0) {
      const LSelectionOptions lopts{sel.metric, sel.dp, sel.heuristic_cap};
      const LReductionReport report =
          reduce_l_set(combined.set, sel.k2, sel.theta, lopts);
      if (report.triggered) {
        budget_.sub_stored(report.before - report.after);
        ++stats_.l_selection_calls;
        stats_.l_selected_away += report.before - report.after;
        stats_.l_selection_error += report.total_error;
      }
    }
    res.is_l = true;
    res.lset = std::move(combined.set);
    res.lprov = std::move(combined.prov);
#if defined(FPOPT_VALIDATE)
    // Cross-chain redundancy is legitimate under PerChain pruning.
    CheckResult post =
        check_l_list_set(res.lset, opts_.l_pruning != LPruning::PerChain, "stored node set");
    for (const LList& list : res.lset.lists()) {
      for (const LEntry& e : list) {
        if (e.id >= res.lprov.size() && post.room_for_more()) {
          post.add("optimizer/provenance", "stored node set",
                   "L entry id " + std::to_string(e.id) + " has no provenance record");
        }
      }
    }
    enforce(post, "Engine::store_l");
#endif
  }

  const FloorplanTree& tree_;
  const OptimizerOptions& opts_;
  OptimizeArtifacts& art_;
  OptimizerStats& stats_;
  BudgetTracker budget_;
};

}  // namespace

OptimizeOutcome optimize_floorplan(const FloorplanTree& tree, const OptimizerOptions& opts) {
  assert(tree.validate().empty() && "optimize_floorplan requires a well-formed tree");
  const auto start = std::chrono::steady_clock::now();

  auto artifacts = std::make_shared<OptimizeArtifacts>();
  artifacts->btree = restructure(tree, opts.restructure);
  artifacts->nodes.resize(artifacts->btree.node_count);
  assert(!artifacts->btree.root->is_l_block() && "T' roots are rectangular blocks");

  OptimizeOutcome outcome;
  Engine engine(tree, opts, *artifacts, outcome.stats);
  try {
    engine.run();
    const NodeResult& root = artifacts->nodes[artifacts->btree.root->id];
    outcome.root = root.rlist;
    outcome.best_area = root.rlist[root.rlist.min_area_index()].area();
    outcome.artifacts = std::move(artifacts);
  } catch (const MemoryLimitExceeded&) {
    engine.snapshot_peaks();
    outcome.out_of_memory = true;
  }

  outcome.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return outcome;
}

}  // namespace fpopt
