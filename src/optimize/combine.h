// Combine kernels of the DAC'90 optimizer: how the implementation lists of
// two child blocks merge into the parent block's list.
//
// Every kernel enumerates, for each pair of child implementations, the
// *minimal* parent shape that can host both children, with rooms allowed
// to stretch. Stretching is folded into max() terms applied lazily at the
// step that needs the room ("lazy stretching"):
//
//  slice (V):   (wa + wb, max(ha, hb))                     rect x rect -> rect
//  slice (H):   (max(wa, wb), ha + hb)
//  stack:       Bottom d=(wd,hd) with Left a=(wa,ha) on the left part of
//               its top edge:
//               L(w1 = max(wd, wa), w2 = wa, h1 = hd + ha, h2 = hd)
//  fill notch:  center e=(we,he) drops into the notch of l:
//               L(max(w1, w2 + we), w2, max(h1, h2 + he), h2 + he)
//  extend:      right column c=(wc,hc) glues to the right edge:
//               L(w1 + wc, w2, max(h1, y2'), y2'),  y2' = max(h2, hc)
//  close:       top strip b=(wb,hb) fills the remaining notch:
//               (max(w1, w2 + wb), max(h1, h2 + hb))        L x rect -> rect
//
// Every formula is monotone non-decreasing in each child coordinate, so
// dominance pruning of the children never loses an optimal parent, and for
// the pinwheel the composition of the four wheel ops reproduces exactly
// the minimal enveloping rectangle
//    W = max(x2 + wc, wa + wb),  x2 = max(wd, wa + we)
//    H = max(y2 + hb, hd + ha),  y2 = max(hc, hd + he)
// for each 5-tuple of child implementations (the tests check this against
// brute force).
//
// Provenance: each emitted implementation records which child
// implementations produced it (rect children by list index, L children by
// entry id), so an optimal solution can be traced back to a placement.
#pragma once

#include <cstdint>
#include <vector>

#include "optimize/stats.h"
#include "shape/l_list_set.h"
#include "shape/r_list.h"

namespace fpopt {

/// Which child implementations produced an implementation.
struct Prov {
  std::uint32_t left = 0;   ///< rect child: list index; L child: entry id
  std::uint32_t right = 0;  ///< right (always rect) child: list index

  friend bool operator==(const Prov&, const Prov&) = default;
};

struct RCombineResult {
  RList list;
  std::vector<Prov> prov;  ///< parallel to list
};

struct LCombineResult {
  LListSet set;
  std::vector<Prov> prov;  ///< indexed by LEntry::id
};

/// rect (+) rect slice merge, O(na + nb) candidate generation (the classic
/// Stockmeyer merge) followed by dominance pruning.
[[nodiscard]] RCombineResult combine_slice(const RList& a, const RList& b, bool horizontal,
                                           BudgetTracker& budget, OptimizerStats& stats);

/// Reference implementation of combine_slice via the full cross product;
/// used by property tests only.
[[nodiscard]] RCombineResult combine_slice_naive(const RList& a, const RList& b, bool horizontal,
                                                 BudgetTracker& budget, OptimizerStats& stats);

/// How aggressively L sets are kept non-redundant.
///  * PerChain: dominated implementations are eliminated within each
///    irreducible L-list only; cross-chain redundancy survives.
///  * GlobalAtNode: additionally, a full 3-D Pareto sweep per w2 group
///    runs once an internal node's generation completes — this is [9]:
///    the node ends up storing exactly its non-redundant implementations,
///    but the redundant candidates live in memory *during* generation,
///    which is what makes the paper's M numbers large.
///  * GlobalEager: the sweep also runs periodically while the set grows
///    (a modern improvement ablated in bench/ablation_l_pruning — it
///    pushes the memory wall out considerably).
enum class LPruning { PerChain, GlobalAtNode, GlobalEager };

/// op1 (WheelStack): Bottom x Left -> L set (one chain per Left impl).
[[nodiscard]] LCombineResult combine_wheel_stack(const RList& d, const RList& a,
                                                 LPruning pruning, BudgetTracker& budget,
                                                 OptimizerStats& stats);

/// op2 (WheelFillNotch): L set x Center -> L set.
[[nodiscard]] LCombineResult combine_wheel_fill_notch(const LListSet& l, const RList& e,
                                                      LPruning pruning, BudgetTracker& budget,
                                                      OptimizerStats& stats);

/// op3 (WheelExtend): L set x Right -> L set.
[[nodiscard]] LCombineResult combine_wheel_extend(const LListSet& l, const RList& c,
                                                  LPruning pruning, BudgetTracker& budget,
                                                  OptimizerStats& stats);

/// op4 (WheelClose): L set x Top -> rect list (the completed wheel).
[[nodiscard]] RCombineResult combine_wheel_close(const LListSet& l, const RList& b,
                                                 BudgetTracker& budget, OptimizerStats& stats);

}  // namespace fpopt
