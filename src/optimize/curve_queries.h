// Queries over a block's shape curve (an irreducible R-list) that
// downstream flows ask after optimization: fixed-outline feasibility and
// aspect-ratio-constrained area minimization. The root curve produced by
// the optimizer holds every non-redundant implementation of the whole
// floorplan, so these are exact answers, not heuristics.
#pragma once

#include <optional>

#include "shape/r_list.h"

namespace fpopt {

/// Index of the minimum-area implementation that fits in `max_w` x
/// `max_h`, or nullopt if none does (fixed-outline floorplanning query).
[[nodiscard]] std::optional<std::size_t> best_in_outline(const RList& curve, Dim max_w,
                                                         Dim max_h);

/// Index of the minimum-area implementation whose aspect ratio h/w lies in
/// [min_ratio, max_ratio], or nullopt if none qualifies.
[[nodiscard]] std::optional<std::size_t> best_with_aspect(const RList& curve, double min_ratio,
                                                          double max_ratio);

/// Smallest enveloping square's side such that some implementation fits a
/// square outline of that side; the curve must be non-empty.
[[nodiscard]] Dim smallest_square_side(const RList& curve);

}  // namespace fpopt
