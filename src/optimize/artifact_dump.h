// Canonical text serialization of optimizer outputs, for byte-equality
// comparison and golden regression files.
//
// The dump covers everything the engine equivalence contracts promise to
// be bit-identical across serial / parallel / incremental runs: every T'
// node's implementation store with provenance, the stats counters
// (doubles rendered in hexfloat so equality means bit equality;
// wall-clock seconds excluded), and the min-area traced placement. The
// format is stable line-oriented text so golden diffs stay readable.
#pragma once

#include <string>

#include "floorplan/tree.h"
#include "optimize/optimizer.h"

namespace fpopt {

/// Root curve + every node's lists and provenance. Requires artifacts.
[[nodiscard]] std::string dump_artifacts(const OptimizeOutcome& outcome);

/// All counters and peaks; `seconds` is deliberately excluded.
[[nodiscard]] std::string dump_stats(const OptimizerStats& stats);

/// The placement traced from the min-area root implementation.
[[nodiscard]] std::string dump_placement(const FloorplanTree& tree,
                                         const OptimizeOutcome& outcome);

/// Full canonical dump: artifacts + stats + placement, or the single line
/// "out_of_memory" for an aborted run (abort-time partial stats are
/// schedule-position-dependent and are not part of the contract).
[[nodiscard]] std::string dump_outcome(const FloorplanTree& tree,
                                       const OptimizeOutcome& outcome);

}  // namespace fpopt
