#include "optimize/artifact_dump.h"

#include <ios>
#include <sstream>

#include "optimize/placement.h"

namespace fpopt {

std::string dump_artifacts(const OptimizeOutcome& outcome) {
  std::ostringstream s;
  s << std::hexfloat;
  s << "best_area=" << outcome.best_area << "\nroot:";
  for (const RectImpl& r : outcome.root) s << ' ' << r.w << 'x' << r.h;
  s << '\n';
  const OptimizeArtifacts& art = *outcome.artifacts;
  for (std::size_t id = 0; id < art.nodes.size(); ++id) {
    const NodeResult& res = art.nodes[id];
    s << "node " << id << (res.is_l ? " L\n" : " R\n");
    if (!res.is_l) {
      for (std::size_t i = 0; i < res.rlist.size(); ++i) {
        s << "  " << res.rlist[i].w << 'x' << res.rlist[i].h << " prov "
          << res.rprov[i].left << ',' << res.rprov[i].right << '\n';
      }
    } else {
      for (const LList& list : res.lset.lists()) {
        s << "  chain:";
        for (const LEntry& e : list) {
          s << " [" << e.shape.w1 << ',' << e.shape.w2 << ',' << e.shape.h1 << ','
            << e.shape.h2 << "#" << e.id << " prov " << res.lprov[e.id].left << ','
            << res.lprov[e.id].right << ']';
        }
        s << '\n';
      }
    }
  }
  return s.str();
}

std::string dump_stats(const OptimizerStats& st) {
  std::ostringstream s;
  s << std::hexfloat;
  s << "peak_stored=" << st.peak_stored << " final_stored=" << st.final_stored
    << " peak_transient=" << st.peak_transient << " peak_live=" << st.peak_live
    << " generated=" << st.total_generated << " rsel=" << st.r_selection_calls << '/'
    << st.r_selected_away << '/' << st.r_selection_error << " lsel=" << st.l_selection_calls
    << '/' << st.l_selected_away << '/' << st.l_selection_error << '\n';
  return s.str();
}

std::string dump_placement(const FloorplanTree& tree, const OptimizeOutcome& outcome) {
  const Placement p = trace_placement(tree, outcome, outcome.root.min_area_index());
  std::ostringstream s;
  s << "chip " << p.width << 'x' << p.height << '\n';
  for (const ModulePlacement& m : p.rooms) {
    s << m.module_id << ": room " << m.room.x << ',' << m.room.y << ',' << m.room.w << ','
      << m.room.h << " impl " << m.impl.w << 'x' << m.impl.h << '\n';
  }
  return s.str();
}

std::string dump_outcome(const FloorplanTree& tree, const OptimizeOutcome& outcome) {
  if (outcome.out_of_memory) return "out_of_memory\n";
  return dump_artifacts(outcome) + dump_stats(outcome.stats) + dump_placement(tree, outcome);
}

}  // namespace fpopt
