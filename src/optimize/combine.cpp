#include "optimize/combine.h"

#include <cassert>

#include "kernel/arena.h"
#include "kernel/soa.h"
#include "kernel/sweep.h"

#if defined(FPOPT_VALIDATE)
#include "check/check_shapes.h"  // FPOPT-LINT-OK(layering): FPOPT_VALIDATE post-condition hook; compiled to no-ops by default
#endif

// Float-accumulation audit (docs/ALGORITHMS.md §11): every combine kernel
// below is pure int64 arithmetic — min/max/+ over Dim — with no
// floating-point accumulation anywhere, so handing rows to the SIMD
// kernels cannot reassociate anything observable. The budget decisions
// are count-based (TransientScope::add per candidate, in generation
// order), which the SoA rewrite preserves element for element.

namespace fpopt {
namespace {

/// Finalize one generation context: prune the pre-chain, convert surviving
/// temp ids (left-child references) into provenance records, assign global
/// entry ids, and append the chain to the result. Counts the chain as
/// stored right away — partially built L sets are real memory and must be
/// able to trip the budget mid-combine, exactly like [9] running out of
/// memory halfway through a node.
void emit_chain(std::vector<LEntry>& pre_chain, std::uint32_t right_idx, LCombineResult& out,
                BudgetTracker& budget, OptimizerStats& stats) {
  stats.total_generated += pre_chain.size();
  if (pre_chain.empty()) return;
  const LList pruned = LList::from_prechain(pre_chain);
#if defined(FPOPT_VALIDATE)
  // Catch from_prechain bugs right where the chain is born, before the
  // temp ids are rewritten into provenance records.
  enforce(check_l_list(pruned, "emit_chain"), "combine emit_chain");
#endif
  std::vector<LEntry> entries(pruned.begin(), pruned.end());
  for (LEntry& e : entries) {
    out.prov.push_back({e.id, right_idx});
    e.id = static_cast<std::uint32_t>(out.prov.size() - 1);
  }
  budget.add_stored(entries.size());
  out.set.add(LList::from_chain_unchecked(std::move(entries)));
  pre_chain.clear();
}

/// Finalize one rect generation context: stack-prune the monotone
/// candidate run (w non-increasing, h non-decreasing) and append survivors
/// to the global candidate buffer.
void emit_rect_run(const std::vector<RectImpl>& run, const std::vector<Prov>& run_prov,
                   std::vector<RectImpl>& cands, std::vector<Prov>& prov,
                   TransientScope& transient, OptimizerStats& stats) {
  stats.total_generated += run.size();
  const std::size_t first_kept = cands.size();
  for (std::size_t i = 0; i < run.size(); ++i) {
    const RectImpl c = run[i];
    assert(i == 0 || (run[i - 1].w >= c.w && run[i - 1].h <= c.h));
    while (cands.size() > first_kept && cands.back().dominates(c)) {
      cands.pop_back();
      prov.pop_back();
    }
    if (cands.size() > first_kept && c.dominates(cands.back())) continue;
    cands.push_back(c);
    prov.push_back(run_prov[i]);
    transient.add(1);
  }
}

/// Eager in-place dominance pruning of a candidate buffer. [9] keeps its
/// working sets non-redundant as it goes; doing the same bounds the
/// transient memory of a combine step by the frontier size instead of the
/// cross-product size.
void compact_rect(std::vector<RectImpl>& cands, std::vector<Prov>& prov,
                  TransientScope& transient) {
  const std::vector<std::size_t> kept = prune_rect_candidates(cands);
  std::vector<RectImpl> new_cands;
  std::vector<Prov> new_prov;
  new_cands.reserve(kept.size());
  new_prov.reserve(kept.size());
  for (std::size_t idx : kept) {
    new_cands.push_back(cands[idx]);
    new_prov.push_back(prov[idx]);
  }
  cands = std::move(new_cands);
  prov = std::move(new_prov);
  transient.reset_to(cands.size());
}

/// Same idea for a growing L set: drop cross-chain redundancy eagerly.
void maybe_compact_l(LCombineResult& out, LPruning pruning, std::size_t& compact_at,
                     BudgetTracker& budget) {
  if (pruning != LPruning::GlobalEager || out.set.total_size() <= compact_at) return;
  budget.sub_stored(out.set.canonicalize());
  compact_at = std::max<std::size_t>(4096, out.set.total_size() * 2);
}

RCombineResult finalize_rect(std::vector<RectImpl>& cands, std::vector<Prov>& prov) {
  const std::vector<std::size_t> kept = prune_rect_candidates(cands);
  RCombineResult out;
  std::vector<RectImpl> impls;
  impls.reserve(kept.size());
  out.prov.reserve(kept.size());
  for (std::size_t idx : kept) {
    impls.push_back(cands[idx]);
    out.prov.push_back(prov[idx]);
  }
  out.list = RList::from_sorted_unchecked(std::move(impls));
#if defined(FPOPT_VALIDATE)
  CheckResult post;
  if (out.prov.size() != out.list.size()) {
    post.add("combine/provenance", "finalize_rect",
             "provenance array no longer parallel to the pruned list");
  }
  enforce(post, "combine finalize_rect");
#endif
  return out;
}

RectImpl slice_shape(const RectImpl& a, const RectImpl& b, bool horizontal) {
  return horizontal ? RectImpl{std::max(a.w, b.w), a.h + b.h}
                    : RectImpl{a.w + b.w, std::max(a.h, b.h)};
}

/// One irreducible L-chain gathered into arena rows, plus the entry ids
/// (needed to rebuild provenance) and the chain-constant w2.
struct LChainRows {
  kernel::LChainSoA soa;
  const std::uint32_t* id = nullptr;
  Dim w2 = 0;
};

LChainRows load_chain_rows(kernel::Arena& arena, const LList& chain) {
  const std::size_t n = chain.size();
  Dim* w1 = arena.alloc_array<Dim>(n);
  Dim* h1 = arena.alloc_array<Dim>(n);
  Dim* h2 = arena.alloc_array<Dim>(n);
  std::uint32_t* id = arena.alloc_array<std::uint32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const LEntry& e = chain[i];
    w1[i] = e.shape.w1;
    h1[i] = e.shape.h1;
    h2[i] = e.shape.h2;
    id[i] = e.id;
  }
  return {{w1, h1, h2, n}, id, chain.w2()};
}

}  // namespace

RCombineResult combine_slice(const RList& a, const RList& b, bool horizontal,
                             BudgetTracker& budget, OptimizerStats& stats) {
  assert(!a.empty() && !b.empty());
  TransientScope transient(budget);
  std::vector<RectImpl> cands;
  std::vector<Prov> prov;
  cands.reserve(a.size() + b.size());
  prov.reserve(a.size() + b.size());

  const auto emit = [&](std::size_t i, std::size_t j) {
    cands.push_back(slice_shape(a[i], b[j], horizontal));
    prov.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    transient.add(1);
  };

  if (!horizontal) {
    // Vertical slice: h = max(ha, hb). For each a[i], the best partner is
    // the largest j with b[j].h <= a[i].h (minimal width not exceeding the
    // height cap); symmetric for b[j]. Both sweeps are linear merges.
    for (std::size_t i = 0, j = 0; i < a.size(); ++i) {
      while (j + 1 < b.size() && b[j + 1].h <= a[i].h) ++j;
      if (b[j].h <= a[i].h) emit(i, j);
    }
    for (std::size_t j = 0, i = 0; j < b.size(); ++j) {
      while (i + 1 < a.size() && a[i + 1].h <= b[j].h) ++i;
      if (a[i].h <= b[j].h) emit(i, j);
    }
  } else {
    // Horizontal slice: w = max(wa, wb). For each a[i], the best partner
    // is the first j with b[j].w <= a[i].w (minimal height within the
    // width cap); symmetric for b[j]. Lists are width-descending.
    for (std::size_t i = 0, j = 0; i < a.size(); ++i) {
      while (j < b.size() && b[j].w > a[i].w) ++j;
      if (j < b.size()) emit(i, j);
    }
    for (std::size_t j = 0, i = 0; j < b.size(); ++j) {
      while (i < a.size() && a[i].w > b[j].w) ++i;
      if (i < a.size()) emit(i, j);
    }
  }

  stats.total_generated += cands.size();
  return finalize_rect(cands, prov);
}

RCombineResult combine_slice_naive(const RList& a, const RList& b, bool horizontal,
                                   BudgetTracker& budget, OptimizerStats& stats) {
  assert(!a.empty() && !b.empty());
  TransientScope transient(budget);
  std::vector<RectImpl> cands;
  std::vector<Prov> prov;
  cands.reserve(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      cands.push_back(slice_shape(a[i], b[j], horizontal));
      prov.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
      transient.add(1);
    }
  }
  stats.total_generated += cands.size();
  return finalize_rect(cands, prov);
}

LCombineResult combine_wheel_stack(const RList& d, const RList& a, LPruning pruning,
                                   BudgetTracker& budget, OptimizerStats& stats) {
  assert(!d.empty() && !a.empty());
  LCombineResult out;
  std::vector<LEntry> pre_chain;
  pre_chain.reserve(d.size());
  std::size_t compact_at = 4096;

  // SoA pass: D's curve is gathered once, and per a[j] the whole w1/h1
  // column pair is produced by two row kernels (w2 == a[j].w and h2 == d_i.h
  // need no work). The chain is then assembled in the original (j, i)
  // order with the original per-candidate budget charge, so candidate
  // streams and OOM decisions are unchanged.
  kernel::Arena& arena = kernel::scratch_arena();
  kernel::ArenaScope scope(arena);
  const kernel::RCurveSoA ds = kernel::load_r_curve(arena, d.impls());
  Dim* w1 = scope.alloc_array<Dim>(ds.n);
  Dim* h1 = scope.alloc_array<Dim>(ds.n);

  for (std::size_t j = 0; j < a.size(); ++j) {
    TransientScope transient(budget);
    kernel::max_broadcast(ds.w, ds.n, a[j].w, w1);  // max(d_i.w, a_j.w)
    kernel::add_broadcast(ds.h, ds.n, a[j].h, h1);  // d_i.h + a_j.h
    for (std::size_t i = 0; i < ds.n; ++i) {
      pre_chain.push_back({{w1[i], a[j].w, h1[i], ds.h[i]}, static_cast<std::uint32_t>(i)});
      transient.add(1);
    }
    emit_chain(pre_chain, static_cast<std::uint32_t>(j), out, budget, stats);
    maybe_compact_l(out, pruning, compact_at, budget);
  }
  return out;
}

namespace {

/// Shared driver for op2/op3: apply a row transform to every
/// (chain element, rect impl) pair, one context per (chain, rect impl).
/// `row_op(rows, rect, ow1, oh1, oh2)` fills the transformed w1/h1/h2
/// columns for one rect via the sweep kernels; the driver assembles them
/// into pre-chains in the original (chain, j, i) order with the original
/// per-candidate budget charge.
template <typename RowOpFn>
LCombineResult combine_l_with_rect(const LListSet& l, const RList& r, RowOpFn&& row_op,
                                   LPruning pruning, BudgetTracker& budget,
                                   OptimizerStats& stats) {
  assert(!r.empty());
  LCombineResult out;
  std::vector<LEntry> pre_chain;
  std::size_t compact_at = 4096;
  kernel::Arena& arena = kernel::scratch_arena();
  for (const LList& chain : l.lists()) {
    pre_chain.reserve(chain.size());
    kernel::ArenaScope scope(arena);
    const LChainRows rows = load_chain_rows(arena, chain);
    const std::size_t n = rows.soa.n;
    Dim* ow1 = scope.alloc_array<Dim>(n);
    Dim* oh1 = scope.alloc_array<Dim>(n);
    Dim* oh2 = scope.alloc_array<Dim>(n);
    for (std::size_t j = 0; j < r.size(); ++j) {
      TransientScope transient(budget);
      row_op(rows, r[j], ow1, oh1, oh2);
      for (std::size_t i = 0; i < n; ++i) {
        pre_chain.push_back({{ow1[i], rows.w2, oh1[i], oh2[i]}, rows.id[i]});
        transient.add(1);
      }
      emit_chain(pre_chain, static_cast<std::uint32_t>(j), out, budget, stats);
      maybe_compact_l(out, pruning, compact_at, budget);
    }
  }
  return out;
}

}  // namespace

LCombineResult combine_wheel_fill_notch(const LListSet& l, const RList& e, LPruning pruning,
                                        BudgetTracker& budget, OptimizerStats& stats) {
  // Per element: { max(w1, w2 + r.w), w2, max(h1, h2 + r.h), h2 + r.h }.
  return combine_l_with_rect(
      l, e,
      [](const LChainRows& rows, const RectImpl& r, Dim* ow1, Dim* oh1, Dim* oh2) {
        const std::size_t n = rows.soa.n;
        kernel::add_broadcast(rows.soa.h2, n, r.h, oh2);
        kernel::max_broadcast(rows.soa.w1, n, rows.w2 + r.w, ow1);
        kernel::max_rows(rows.soa.h1, oh2, n, oh1);
      },
      pruning, budget, stats);
}

LCombineResult combine_wheel_extend(const LListSet& l, const RList& c, LPruning pruning,
                                    BudgetTracker& budget, OptimizerStats& stats) {
  // Per element: { w1 + r.w, w2, max(h1, max(h2, r.h)), max(h2, r.h) }.
  return combine_l_with_rect(
      l, c,
      [](const LChainRows& rows, const RectImpl& r, Dim* ow1, Dim* oh1, Dim* oh2) {
        const std::size_t n = rows.soa.n;
        kernel::max_broadcast(rows.soa.h2, n, r.h, oh2);
        kernel::add_broadcast(rows.soa.w1, n, r.w, ow1);
        kernel::max_rows(rows.soa.h1, oh2, n, oh1);
      },
      pruning, budget, stats);
}

RCombineResult combine_wheel_close(const LListSet& l, const RList& b, BudgetTracker& budget,
                                   OptimizerStats& stats) {
  assert(!b.empty());
  TransientScope transient(budget);
  std::vector<RectImpl> cands;
  std::vector<Prov> prov;
  std::vector<RectImpl> run;
  std::vector<Prov> run_prov;
  std::size_t compact_at = 4096;
  kernel::Arena& arena = kernel::scratch_arena();
  for (const LList& chain : l.lists()) {
    kernel::ArenaScope scope(arena);
    const LChainRows rows = load_chain_rows(arena, chain);
    const std::size_t n = rows.soa.n;
    Dim* ow = scope.alloc_array<Dim>(n);
    Dim* oh = scope.alloc_array<Dim>(n);
    for (std::size_t j = 0; j < b.size(); ++j) {
      run.clear();
      run_prov.clear();
      // Per element: { max(w1, w2 + b_j.w), max(h1, h2 + b_j.h) }.
      kernel::max_broadcast(rows.soa.w1, n, rows.w2 + b[j].w, ow);
      kernel::max_add_broadcast(rows.soa.h1, rows.soa.h2, n, b[j].h, oh);
      for (std::size_t i = 0; i < n; ++i) {
        run.push_back({ow[i], oh[i]});
        run_prov.push_back({rows.id[i], static_cast<std::uint32_t>(j)});
      }
      emit_rect_run(run, run_prov, cands, prov, transient, stats);
      if (cands.size() > compact_at) {
        compact_rect(cands, prov, transient);
        compact_at = std::max<std::size_t>(4096, cands.size() * 2);
      }
    }
  }
  return finalize_rect(cands, prov);
}

}  // namespace fpopt
