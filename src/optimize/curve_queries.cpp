#include "optimize/curve_queries.h"

#include <algorithm>
#include <cassert>

namespace fpopt {

std::optional<std::size_t> best_in_outline(const RList& curve, Dim max_w, Dim max_h) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].w > max_w || curve[i].h > max_h) continue;
    if (!best || curve[i].area() < curve[*best].area()) best = i;
  }
  return best;
}

std::optional<std::size_t> best_with_aspect(const RList& curve, double min_ratio,
                                            double max_ratio) {
  assert(min_ratio > 0 && min_ratio <= max_ratio);
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double ratio = static_cast<double>(curve[i].h) / static_cast<double>(curve[i].w);
    if (ratio < min_ratio || ratio > max_ratio) continue;
    if (!best || curve[i].area() < curve[*best].area()) best = i;
  }
  return best;
}

Dim smallest_square_side(const RList& curve) {
  assert(!curve.empty());
  Dim best = std::numeric_limits<Dim>::max();
  for (const RectImpl& r : curve) best = std::min(best, std::max(r.w, r.h));
  return best;
}

}  // namespace fpopt
