#include "optimize/curve_queries.h"

#include <algorithm>
#include <cassert>

#include "kernel/arena.h"
#include "kernel/soa.h"
#include "kernel/sweep.h"

// Float-accumulation audit (docs/ALGORITHMS.md §11): the outline and
// square queries are pure int64 comparisons/products and are served by
// the SoA sweep kernels. best_with_aspect is the one float consumer here
// — a per-element h/w division used only as a filter, never accumulated —
// so it stays scalar on purpose: vectorizing a division filter buys
// nothing and the scalar loop is self-evidently order-stable.

namespace fpopt {

std::optional<std::size_t> best_in_outline(const RList& curve, Dim max_w, Dim max_h) {
  kernel::Arena& arena = kernel::scratch_arena();
  kernel::ArenaScope scope(arena);
  const kernel::RCurveSoA s = kernel::load_r_curve(arena, curve.impls());
  return kernel::argmin_area_in_outline(s.w, s.h, s.n, max_w, max_h);
}

std::optional<std::size_t> best_with_aspect(const RList& curve, double min_ratio,
                                            double max_ratio) {
  assert(min_ratio > 0 && min_ratio <= max_ratio);
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double ratio = static_cast<double>(curve[i].h) / static_cast<double>(curve[i].w);
    if (ratio < min_ratio || ratio > max_ratio) continue;
    if (!best || curve[i].area() < curve[*best].area()) best = i;
  }
  return best;
}

Dim smallest_square_side(const RList& curve) {
  assert(!curve.empty());
  kernel::Arena& arena = kernel::scratch_arena();
  kernel::ArenaScope scope(arena);
  const kernel::RCurveSoA s = kernel::load_r_curve(arena, curve.impls());
  return kernel::min_max_side(s.w, s.h, s.n);
}

}  // namespace fpopt
