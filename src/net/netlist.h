// Netlists and wirelength estimation.
//
// The paper's introduction: topology is determined "primarily using the
// interconnection information among the modules" [1,2,4,7]. This module
// supplies that substrate: hyperedges over modules, half-perimeter
// wirelength (HPWL) of a placement, and generators/parsers, so the
// topology annealer can optimize the classic Wong-Liu cost A + lambda*W.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "floorplan/module.h"
#include "geometry/types.h"
#include "optimize/placement.h"
#include "workload/rng.h"

namespace fpopt {

/// One net: a named hyperedge over >= 2 distinct modules.
struct Net {
  std::string name;
  std::vector<std::size_t> pins;  ///< module ids

  friend bool operator==(const Net&, const Net&) = default;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::size_t module_count) : module_count_(module_count) {}

  void add_net(Net net) { nets_.push_back(std::move(net)); }

  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] std::size_t net_count() const { return nets_.size(); }
  [[nodiscard]] std::size_t module_count() const { return module_count_; }

  /// Problems, empty when well-formed: every net has >= 2 distinct
  /// in-range pins.
  [[nodiscard]] std::vector<std::string> validate() const;

  friend bool operator==(const Netlist&, const Netlist&) = default;

 private:
  std::size_t module_count_ = 0;
  std::vector<Net> nets_;
};

/// Total half-perimeter wirelength of `placement`, doubled so room-center
/// coordinates stay integral: for each net, the half perimeter of the
/// bounding box of its pins' room centers, times two.
[[nodiscard]] Area hpwl2(const Netlist& netlist, const Placement& placement);

/// Text format: one net per line, "netname module module ...";
/// '#' comments. Module names resolve against `modules`.
[[nodiscard]] Netlist parse_netlist(std::string_view text, const std::vector<Module>& modules);
[[nodiscard]] std::string to_netlist_string(const Netlist& netlist,
                                            const std::vector<Module>& modules);

/// Random netlist: `net_count` nets of arity 2..max_arity over distinct
/// random modules. Deterministic per seed.
[[nodiscard]] Netlist random_netlist(std::size_t module_count, std::size_t net_count,
                                     std::size_t max_arity, std::uint64_t seed);

}  // namespace fpopt
