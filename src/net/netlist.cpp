#include "net/netlist.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

namespace fpopt {

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> errors;
  for (const Net& net : nets_) {
    if (net.pins.size() < 2) {
      errors.push_back("net '" + net.name + "' has fewer than 2 pins");
    }
    std::set<std::size_t> seen;
    for (const std::size_t pin : net.pins) {
      if (pin >= module_count_) {
        errors.push_back("net '" + net.name + "' pin out of range");
      } else if (!seen.insert(pin).second) {
        errors.push_back("net '" + net.name + "' repeats a module");
      }
    }
  }
  return errors;
}

Area hpwl2(const Netlist& netlist, const Placement& placement) {
  // Room center, doubled: (2x + w, 2y + h).
  std::vector<Dim> cx(netlist.module_count(), -1), cy(netlist.module_count(), -1);
  for (const ModulePlacement& m : placement.rooms) {
    assert(m.module_id < netlist.module_count());
    cx[m.module_id] = 2 * m.room.x + m.room.w;
    cy[m.module_id] = 2 * m.room.y + m.room.h;
  }

  Area total = 0;
  for (const Net& net : netlist.nets()) {
    Dim min_x = std::numeric_limits<Dim>::max(), max_x = std::numeric_limits<Dim>::min();
    Dim min_y = min_x, max_y = max_x;
    for (const std::size_t pin : net.pins) {
      assert(cx[pin] >= 0 && "every pinned module must be placed");
      min_x = std::min(min_x, cx[pin]);
      max_x = std::max(max_x, cx[pin]);
      min_y = std::min(min_y, cy[pin]);
      max_y = std::max(max_y, cy[pin]);
    }
    total += (max_x - min_x) + (max_y - min_y);
  }
  return total;
}

Netlist parse_netlist(std::string_view text, const std::vector<Module>& modules) {
  std::map<std::string, std::size_t, std::less<>> name_to_id;
  for (std::size_t i = 0; i < modules.size(); ++i) name_to_id.emplace(modules[i].name, i);

  Netlist netlist(modules.size());
  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream in{std::string(line)};
    Net net;
    if (!(in >> net.name)) continue;
    std::string pin;
    while (in >> pin) {
      const auto it = name_to_id.find(pin);
      if (it == name_to_id.end()) {
        throw std::runtime_error("netlist references unknown module '" + pin + '\'');
      }
      net.pins.push_back(it->second);
    }
    netlist.add_net(std::move(net));
  }
  return netlist;
}

std::string to_netlist_string(const Netlist& netlist, const std::vector<Module>& modules) {
  std::ostringstream out;
  for (const Net& net : netlist.nets()) {
    out << net.name;
    for (const std::size_t pin : net.pins) out << ' ' << modules[pin].name;
    out << '\n';
  }
  return out.str();
}

Netlist random_netlist(std::size_t module_count, std::size_t net_count, std::size_t max_arity,
                       std::uint64_t seed) {
  assert(module_count >= 2 && max_arity >= 2);
  Pcg32 rng(seed);
  Netlist netlist(module_count);
  for (std::size_t n = 0; n < net_count; ++n) {
    const std::size_t arity = std::min(
        module_count, 2 + static_cast<std::size_t>(rng.below(
                              static_cast<std::uint32_t>(max_arity - 1))));
    std::set<std::size_t> pins;
    while (pins.size() < arity) {
      pins.insert(rng.below(static_cast<std::uint32_t>(module_count)));
    }
    Net net;
    net.name = "n" + std::to_string(n);
    net.pins.assign(pins.begin(), pins.end());
    netlist.add_net(std::move(net));
  }
  return netlist;
}

}  // namespace fpopt
