#include "runtime/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>

#include "telemetry/trace.h"

namespace fpopt {

namespace {

/// Which pool (and which worker slot) the current thread belongs to.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_identity;

}  // namespace

ThreadPool::ThreadPool(unsigned workers)
    : queues_(workers == 0 ? 1 : workers), counters_(queues_.size() + 1) {
  const std::size_t n = queues_.size();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain-on-shutdown: workers only exit once every queue is empty, so
  // tasks submitted before destruction all run. Help from this thread too
  // in case the pool is saturated.
  while (run_one()) {
  }
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool* ThreadPool::current() { return tls_identity.pool; }

void ThreadPool::submit(std::function<void()> fn) {
  // relaxed: debug-only sanity probe, no ordering needed for an assert.
  assert(!stop_.load(std::memory_order_relaxed) && "submit after shutdown started");
  if (tls_identity.pool == this) {
    WorkerQueue& q = queues_[tls_identity.index];
    std::lock_guard<std::mutex> lk(q.mu);
    q.deque.push_back(std::move(fn));
  } else {
    std::lock_guard<std::mutex> lk(inject_mu_);
    inject_.push_back(std::move(fn));
  }
  // release: the task was pushed under the queue mutex above; a worker
  // that acquires pending_ > 0 must also see the queued task.
  pending_.fetch_add(1, std::memory_order_release);
  notify_one_sleeper();
}

void ThreadPool::notify_one_sleeper() {
  // Empty critical section: a sleeper is either past its predicate check
  // (and will see pending_ > 0) or fully inside wait() by the time we
  // notify, so the wakeup cannot be lost.
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_acquire(std::size_t home, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  // 1. Own deque, back (LIFO).
  if (home < n) {
    WorkerQueue& q = queues_[home];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.deque.empty()) {
      out = std::move(q.deque.back());
      q.deque.pop_back();
      return true;
    }
  }
  // 2. Shared injection queue, front.
  {
    std::lock_guard<std::mutex> lk(inject_mu_);
    if (!inject_.empty()) {
      out = std::move(inject_.front());
      inject_.pop_front();
      counters_[std::min(home, n)].shared_pops.inc();
      // Pool events are scheduling, not structure: fpopt_trace reports
      // them as aggregates and never includes them in determinism diffs.
      telemetry::trace_instant(telemetry::TraceCat::kPool, "shared_pop", home);
      return true;
    }
  }
  // 3. Steal from the other workers, front (FIFO).
  for (std::size_t step = 1; step <= n; ++step) {
    const std::size_t victim = (home + step) % n;
    if (victim == home) continue;
    WorkerQueue& q = queues_[victim];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.deque.empty()) {
      out = std::move(q.deque.front());
      q.deque.pop_front();
      counters_[std::min(home, n)].steals.inc();
      telemetry::trace_instant(telemetry::TraceCat::kPool, "steal", home, victim);
      return true;
    }
  }
  return false;
}

bool ThreadPool::run_one() {
  const std::size_t home =
      tls_identity.pool == this ? tls_identity.index : queues_.size();
  std::function<void()> task;
  if (!try_acquire(home, task)) return false;
  // acq_rel: pairs with submit()'s release so the drain check in the
  // destructor observes a consistent queue/counter pair.
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  counters_[std::min(home, queues_.size())].tasks_run.inc();
  task();
  return true;
}

void ThreadPool::worker_main(std::size_t index) {
  tls_identity = {this, index};
  telemetry::trace_thread_name("worker " + std::to_string(index));
  for (;;) {
    if (run_one()) continue;
    std::chrono::steady_clock::time_point idle_start{};  // FPOPT-LINT-OK(wall-clock): idle-time measurement, telemetry-gated, never feeds results
    if constexpr (telemetry::kEnabled) idle_start = std::chrono::steady_clock::now();  // FPOPT-LINT-OK(wall-clock): idle-time measurement behind telemetry::kEnabled
    {
      std::unique_lock<std::mutex> lk(sleep_mu_);
      // acquire on both: seeing stop/pending set must also make the
      // shutdown state resp. the queued task visible to this worker.
      sleep_cv_.wait(lk, [this] {
        return stop_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) > 0;
      });
    }
    if constexpr (telemetry::kEnabled) {
      counters_[index].idle_ns.add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - idle_start)  // FPOPT-LINT-OK(wall-clock): idle-time measurement behind telemetry::kEnabled
              .count()));
    }
    // acquire on both: exit only after observing the release-store of
    // stop_ and a drained pending_ count (no task left behind).
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  tls_identity = {};
}

telemetry::PoolStats ThreadPool::stats() const {
  telemetry::PoolStats out;
  out.workers.reserve(counters_.size());
  for (const SlotCounters& c : counters_) {
    telemetry::WorkerStats w;
    w.tasks_run = c.tasks_run.get();
    w.steals = c.steals.get();
    w.shared_pops = c.shared_pops.get();
    w.idle_seconds = static_cast<double>(c.idle_ns.get()) * 1e-9;
    out.workers.push_back(w);
  }
  return out;
}

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();  // serial degradation: inline, exceptions propagate directly
    return;
  }
  // acq_rel: the increment must be visible before the task can run and
  // decrement (a 0->1->0 blip would wake wait() early).
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->submit([this, fn = std::move(fn)] {
    // acquire: pairs with the release store below, so a task skipped
    // after a failure also sees the recorded exception state.
    if (!failed_.load(std::memory_order_acquire)) {
      try {
        fn();
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
        // release: publishes error_ (written under mu_ above) to the
        // acquire load at the top of each task.
        failed_.store(true, std::memory_order_release);
      }
    }
    finish_one();
  });
}

void TaskGroup::finish_one() {
  // The decrement to zero happens *while holding* mu_: a waiter that
  // observes outstanding_ == 0 through the unlocked fast path must then
  // acquire mu_ (wait() always does before returning), which blocks until
  // we released — i.e. until after notify_all. The TaskGroup can therefore
  // never be destroyed while this thread still touches the condvar.
  std::lock_guard<std::mutex> lk(mu_);
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_cv_.notify_all();
  }
}

void TaskGroup::wait() {
  if (pool_ != nullptr) {
    // acquire: returning from wait() must make every task's writes
    // visible to the caller (pairs with finish_one's acq_rel decrement).
    while (outstanding_.load(std::memory_order_acquire) > 0) {
      if (pool_->run_one()) continue;
      // Nothing runnable anywhere: group tasks are in flight on other
      // threads. Sleep until the count drains; tasks they spawn go through
      // submit() (which wakes pool workers) and finish_one() wakes us. The
      // last finish_one() passes through mu_ before notifying, so the
      // wakeup cannot slip between our predicate check and the wait.
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      });
    }
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(mu_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void TaskGroup::wait_no_throw() noexcept {
  try {
    wait();
  } catch (...) {
    // Destructor path: the error was already observed or is intentionally
    // dropped; tasks have all finished, which is what matters here.
  }
}

}  // namespace fpopt
