// A small work-stealing thread pool for the parallel optimizer.
//
// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
// cache-friendly for the divide-and-conquer kernels) while thieves steal
// from the front (FIFO, grabs the oldest — typically biggest — task).
// Tasks submitted from outside the pool land in a shared injection queue
// that workers fall back to when their own deque and stealing both come
// up empty.
//
// Synchronization is deliberately boring: one small mutex per deque plus
// a sleep mutex/condvar for idle workers. The pool is a scheduling layer,
// not a hot loop — the optimizer keeps task granularity coarse enough
// (one T' node, one DP layer chunk) that queue traffic never dominates.
//
// Guarantees:
//  * Nested submission: a task may submit more tasks and wait on them
//    (TaskGroup::wait helps execute pending work, so waiting inside a
//    worker never deadlocks the pool).
//  * Drain-on-shutdown: the destructor runs every task already submitted
//    before joining the workers; nothing is silently dropped.
//  * Exception propagation: TaskGroup captures the first exception thrown
//    by any of its tasks and rethrows it from wait().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace fpopt {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task. From a worker thread the task goes to that worker's
  /// own deque; from outside it goes to the shared injection queue. Must
  /// not be called after the destructor has started.
  void submit(std::function<void()> fn);

  /// Execute one pending task on the calling thread if any is available
  /// anywhere (own deque, stealing, injection queue). Returns false when
  /// every queue was empty — tasks may still be running on other workers.
  bool run_one();

  /// The pool the calling thread is a worker of, or nullptr.
  [[nodiscard]] static ThreadPool* current();

  /// Lifetime scheduling counters: one slot per worker plus a final
  /// synthetic slot for external threads that execute tasks through
  /// run_one (TaskGroup::wait helping from the coordinator). The values
  /// are scheduling-dependent by nature — report them, never compare
  /// them. All-zero when built with FPOPT_TELEMETRY=OFF.
  [[nodiscard]] telemetry::PoolStats stats() const;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
  };

  struct SlotCounters {
    telemetry::Counter tasks_run;
    telemetry::Counter steals;
    telemetry::Counter shared_pops;
    telemetry::Counter idle_ns;
  };

  void worker_main(std::size_t index);
  bool try_acquire(std::size_t home, std::function<void()>& out);
  void notify_one_sleeper();

  std::vector<WorkerQueue> queues_;  ///< one per worker
  std::vector<SlotCounters> counters_;  ///< queues_.size() + 1 (external slot last)
  std::mutex inject_mu_;
  std::deque<std::function<void()>> inject_;  ///< external submissions

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};  ///< queued, not yet started
  std::atomic<bool> stop_{false};

  std::vector<std::thread> workers_;
};

/// A join scope over a set of tasks. Not reusable across waits from
/// multiple threads at once; the usual pattern is create, run() N tasks
/// (tasks may themselves run() more into the same group), wait(), destroy.
class TaskGroup {
 public:
  /// A null pool degrades gracefully: run() executes the task inline on
  /// the calling thread, which keeps serial code paths byte-identical.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { wait_no_throw(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit `fn` into the group. If a previous task of this group already
  /// threw, `fn` is skipped (it still counts as finished) — sibling work
  /// is pointless once the group is poisoned.
  void run(std::function<void()> fn);

  /// Block until every task of the group has finished, executing pending
  /// pool tasks on this thread while waiting. Rethrows the first captured
  /// exception.
  void wait();

  /// True once any task of the group has thrown.
  [[nodiscard]] bool poisoned() const { return failed_.load(std::memory_order_acquire); }

 private:
  void finish_one();
  void wait_no_throw() noexcept;

  ThreadPool* pool_;
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<bool> failed_{false};
  std::mutex mu_;  ///< guards error_, pairs with done_cv_
  std::condition_variable done_cv_;
  std::exception_ptr error_;
};

}  // namespace fpopt
