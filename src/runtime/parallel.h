// Deterministic data-parallel helpers on top of ThreadPool.
//
// Everything here is shape-deterministic: a range is split into the same
// chunks regardless of worker count, every chunk writes only its own
// output slots, and any cross-chunk reduction is performed by the caller
// in fixed (index) order. That is what lets the parallel optimizer promise
// bit-identical results for every thread count, including 0 (serial).
#pragma once

#include <cstddef>
#include <utility>

#include "runtime/thread_pool.h"

namespace fpopt {

/// Default smallest amount of per-chunk work worth a task submission.
inline constexpr std::size_t kDefaultGrain = 256;

/// Invoke body(chunk_begin, chunk_end) over [begin, end) split into chunks
/// of about `grain` elements. With a null pool (or a range at most one
/// grain long) the body runs inline as a single chunk — the serial path.
/// Chunk boundaries depend only on (begin, end, grain), never on the pool,
/// so per-chunk rounding artifacts cannot vary with the worker count.
template <typename Body>
void parallel_for_chunks(ThreadPool* pool, std::size_t begin, std::size_t end,
                         std::size_t grain, Body&& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || end - begin <= grain) {
    body(begin, end);
    return;
  }
  TaskGroup group(pool);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    group.run([&body, lo, hi] { body(lo, hi); });
  }
  group.wait();
}

/// Convenience element-wise form: body(i) for i in [begin, end).
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  parallel_for_chunks(pool, begin, end, grain, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace fpopt
