// Tests for the independent Stockmeyer slicing baseline.
#include <gtest/gtest.h>

#include "floorplan/serialize.h"
#include "optimize/stockmeyer.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

TEST(StockmeyerTest, TwoModuleHandExample) {
  FloorplanTree tree = parse_floorplan("(H a b)", parse_module_library("a 2x3 3x2\nb 1x4 4x1\n"));
  // Stacked: (2,3)+(1,4)->2x7=14; (2,3)+(4,1)->4x4=16; (3,2)+(1,4)->3x6=18;
  // (3,2)+(4,1)->4x3=12.
  EXPECT_EQ(stockmeyer_best_area(tree).value(), 12);
}

TEST(StockmeyerTest, RefusesWheels) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 3;
  const FloorplanTree wheel = make_single_pinwheel(cfg);
  EXPECT_FALSE(stockmeyer_shape_curve(wheel).has_value());
  EXPECT_FALSE(stockmeyer_best_area(wheel).has_value());
}

TEST(StockmeyerTest, CurveIsIrreducibleAndModuleRotationHelps) {
  FloorplanTree tree = parse_floorplan(
      "(V a b)", parse_module_library("a 2x8 8x2\nb 8x2 2x8\n"));
  const auto curve = stockmeyer_shape_curve(tree);
  ASSERT_TRUE(curve.has_value());
  EXPECT_TRUE(is_irreducible_r_list(curve->impls()));
  // Matching orientations side by side: (2+2)x8 = 32 or (8+8)x2 = 32;
  // mismatched would give 10x8 = 80.
  EXPECT_EQ(stockmeyer_best_area(tree).value(), 32);
}

TEST(StockmeyerTest, HandlesWideFanoutSlices) {
  FloorplanTree tree = parse_floorplan(
      "(V a b c d)", parse_module_library("a 1x2 2x1\nb 1x2 2x1\nc 1x2 2x1\nd 1x2 2x1\n"));
  // Four 1x2 modules side by side: 4x2 = 8 is optimal.
  EXPECT_EQ(stockmeyer_best_area(tree).value(), 8);
}

TEST(StockmeyerTest, DeepChainsStayConsistent) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 3;
  for (const std::uint64_t seed : {1u, 2u}) {
    cfg.seed = seed;
    const FloorplanTree tree = make_slicing_chain(12, SliceDir::Horizontal, true, cfg);
    const auto area = stockmeyer_best_area(tree);
    ASSERT_TRUE(area.has_value());
    EXPECT_GT(*area, 0);
  }
}

}  // namespace
}  // namespace fpopt
