// Tests for the fpopt command-line tool (driven through run_cli).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/cli.h"
#include "telemetry/json.h"
#include "telemetry/report_schema.h"

namespace fpopt {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_path_ = unique_path("cli_test.topo");
    lib_path_ = unique_path("cli_test.lib");
    write(topo_path_, "(W a b c d (V e f))");
    write(lib_path_,
          "a 5x3 4x4 3x6\nb 4x5 3x7\nc 2x2 3x1\nd 4x4 5x3\ne 3x3\nf 3x4 4x3\n");
  }

  /// Per-test file name: ctest runs the discovered tests as concurrent
  /// processes, so shared fixture files would race.
  static std::string unique_path(const std::string& name) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return testing::TempDir() + info->name() + "_" + name;
  }

  static void write(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  int run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return run_cli(args, out_, err_);
  }

  std::string topo_path_;
  std::string lib_path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, StatsReportsStructure) {
  ASSERT_EQ(run({"stats", topo_path_, lib_path_}), 0) << err_.str();
  const std::string s = out_.str();
  EXPECT_NE(s.find("modules:      6"), std::string::npos) << s;
  EXPECT_NE(s.find("wheel nodes:  1"), std::string::npos);
  EXPECT_NE(s.find("slice nodes:  1"), std::string::npos);
}

TEST_F(CliTest, OptimizeExactPrintsCurveAndStats) {
  ASSERT_EQ(run({"optimize", topo_path_, lib_path_}), 0) << err_.str();
  const std::string s = out_.str();
  EXPECT_NE(s.find("best area:"), std::string::npos);
  EXPECT_NE(s.find("shape curve:"), std::string::npos);
  EXPECT_NE(s.find("R_Selection:  0 calls"), std::string::npos) << "exact by default";
}

TEST_F(CliTest, SelectionFlagsAreApplied) {
  ASSERT_EQ(run({"optimize", topo_path_, lib_path_, "--k1", "2", "--k2", "4", "--theta",
                 "0.9", "--scap", "128", "--metric", "linf"}),
            0)
      << err_.str();
  // With K1 = 2 some rect node must have been reduced.
  EXPECT_EQ(out_.str().find("R_Selection:  0 calls"), std::string::npos) << out_.str();
}

TEST_F(CliTest, PlaceEmitsOneRoomPerModule) {
  ASSERT_EQ(run({"place", topo_path_, lib_path_}), 0) << err_.str();
  const std::string s = out_.str();
  std::size_t rooms = 0;
  for (std::size_t pos = 0; (pos = s.find(" room x=", pos)) != std::string::npos; ++pos) {
    ++rooms;
  }
  EXPECT_EQ(rooms, 6u) << s;
}

TEST_F(CliTest, PlaceWithExplicitImplementationIndex) {
  ASSERT_EQ(run({"place", topo_path_, lib_path_, "--impl", "0"}), 0) << err_.str();
  EXPECT_NE(run({"place", topo_path_, lib_path_, "--impl", "9999"}), 0);
  EXPECT_NE(err_.str().find("out of range"), std::string::npos);
}

// Regression: --impl used to signal "unset" with the all-ones sentinel
// static_cast<size_t>(-1), so a user-passed maximal index silently meant
// "pick the min-area implementation" instead of failing. It now must be
// rejected (huge values at parse, in-range-of-type values as out of range).
TEST_F(CliTest, ImplIndexMaxValueIsNotASentinel) {
  // The maximal size_t is an ordinary (out-of-range) index, not a parse
  // failure and never a silent fall-back to the min-area implementation.
  EXPECT_NE(run({"place", topo_path_, lib_path_, "--impl", "18446744073709551615"}), 0);
  EXPECT_NE(err_.str().find("out of range"), std::string::npos) << err_.str();
  EXPECT_EQ(out_.str().find("chip "), std::string::npos)
      << "a maximal --impl must never place anything: " << out_.str();
  EXPECT_NE(run({"place", topo_path_, lib_path_, "--impl", "2147483647"}), 0);
  EXPECT_NE(err_.str().find("out of range"), std::string::npos) << err_.str();
  EXPECT_NE(run({"place", topo_path_, lib_path_, "--impl", "-1"}), 0);
  EXPECT_NE(err_.str().find("bad value"), std::string::npos) << err_.str();
}

// Regression: --theta was parsed with std::stod without an end-position
// check, so trailing garbage ("0.5xyz") was silently accepted.
TEST_F(CliTest, ThetaRejectsTrailingGarbage) {
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--theta", "0.5xyz"}), 0);
  EXPECT_NE(err_.str().find("bad value '0.5xyz'"), std::string::npos) << err_.str();
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--lambda", "1.0q"}), 0);
  EXPECT_EQ(run({"optimize", topo_path_, lib_path_, "--theta", "0.5"}), 0) << err_.str();
}

// Regression: the --cache-mb MB-to-bytes shift had no overflow guard and
// accepted 0 (a budget that evicts everything immediately).
TEST_F(CliTest, CacheMbRejectsZeroAndOverflow) {
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--incremental", "--cache-mb", "0"}), 0);
  EXPECT_NE(err_.str().find("--cache-mb must be at least 1"), std::string::npos)
      << err_.str();
  // (size_t max >> 20) + 1 MiB overflows the byte budget on 64-bit.
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--incremental", "--cache-mb",
                 "17592186044416"}),
            0);
  EXPECT_NE(err_.str().find("overflows the byte budget"), std::string::npos) << err_.str();
  EXPECT_EQ(run({"optimize", topo_path_, lib_path_, "--incremental", "--cache-mb", "4"}), 0)
      << err_.str();
}

TEST_F(CliTest, SvgWritesAFile) {
  const std::string svg_path = unique_path("cli_test.svg");
  std::remove(svg_path.c_str());
  ASSERT_EQ(run({"svg", topo_path_, lib_path_, svg_path}), 0) << err_.str();
  std::ifstream in(svg_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("<svg"), std::string::npos);
}

TEST_F(CliTest, BudgetAbortIsReported) {
  const int rc = run({"optimize", topo_path_, lib_path_, "--budget", "5"});
  EXPECT_NE(rc, 0);
  EXPECT_NE(err_.str().find("out of memory"), std::string::npos);
}

TEST_F(CliTest, StatsJsonIsSchemaValidAndRepeatRunsAreByteIdentical) {
  const std::string json_path = unique_path("cli_report.json");
  ASSERT_EQ(run({"optimize", topo_path_, lib_path_, "--k1", "2", "--k2", "4", "--stats-json",
                 json_path}),
            0)
      << err_.str();
  const std::string first = slurp(json_path);
  const telemetry::JsonParseResult parsed = telemetry::parse_json(first);
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const std::vector<std::string> errors = telemetry::validate_run_report(*parsed.value);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  // Counters and config are deterministic and seconds/phases measure a
  // serial run of the same work — but wall-clock digits differ between
  // runs, so byte-compare everything up to the timing sections only.
  ASSERT_EQ(run({"optimize", topo_path_, lib_path_, "--k1", "2", "--k2", "4", "--stats-json",
                 json_path}),
            0)
      << err_.str();
  const std::string second = slurp(json_path);
  const auto timing_free = [](const std::string& doc) {
    return doc.substr(0, doc.find("\"phases\""));
  };
  ASSERT_NE(timing_free(first).size(), 0u);
  EXPECT_EQ(timing_free(first), timing_free(second))
      << "serial counters must be byte-identical across repeat runs";
}

TEST_F(CliTest, StatsTablePrintsCounters) {
  ASSERT_EQ(run({"optimize", topo_path_, lib_path_, "--stats"}), 0) << err_.str();
  const std::string s = out_.str();
  EXPECT_NE(s.find("run report (fpopt optimize)"), std::string::npos) << s;
  EXPECT_NE(s.find("optimizer.nodes_evaluated"), std::string::npos) << s;
}

TEST_F(CliTest, AbortedRunStillEmitsAReportFlaggedAborted) {
  const std::string json_path = unique_path("cli_aborted.json");
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--budget", "5", "--stats-json",
                 json_path}),
            0);
  const telemetry::JsonParseResult parsed = telemetry::parse_json(slurp(json_path));
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  EXPECT_TRUE(telemetry::validate_run_report(*parsed.value).empty());
  const telemetry::JsonValue* aborted =
      parsed.value->find("fpopt_run_report")->find("aborted");
  ASSERT_NE(aborted, nullptr);
  EXPECT_TRUE(aborted->boolean);
}

TEST_F(CliTest, AnnealEmitsItsOwnReport) {
  const std::string json_path = unique_path("cli_anneal.json");
  ASSERT_EQ(run({"anneal", lib_path_, "--moves", "200", "--seed", "2", "--incremental",
                 "--stats-json", json_path}),
            0)
      << err_.str();
  const telemetry::JsonParseResult parsed = telemetry::parse_json(slurp(json_path));
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  EXPECT_TRUE(telemetry::validate_run_report(*parsed.value).empty());
  const std::string doc = slurp(json_path);
  EXPECT_NE(doc.find("\"anneal.moves\""), std::string::npos);
  EXPECT_NE(doc.find("\"cache.hits\""), std::string::npos) << "--incremental adds cache stats";
}

TEST_F(CliTest, ErrorHandling) {
  EXPECT_NE(run({}), 0);
  EXPECT_NE(run({"frobnicate", topo_path_, lib_path_}), 0);
  EXPECT_NE(run({"stats", topo_path_}), 0);
  EXPECT_NE(run({"stats", "/nonexistent/file", lib_path_}), 0);
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--k1"}), 0);
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--k1", "abc"}), 0);
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--theta", "2.0"}), 0);
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--metric", "l7"}), 0);
  EXPECT_NE(run({"optimize", topo_path_, lib_path_, "--bogus", "1"}), 0);
  EXPECT_EQ(run({"help"}), 0);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, AnnealProducesAUsableTopology) {
  const std::string out_path = unique_path("cli_annealed.topo");
  ASSERT_EQ(run({"anneal", lib_path_, "--moves", "800", "--seed", "3", "--out", out_path}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("topology:"), std::string::npos);
  // The emitted topology must optimize cleanly.
  ASSERT_EQ(run({"optimize", out_path, lib_path_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("best area:"), std::string::npos);
}

TEST_F(CliTest, AnnealWithNetlistReportsWirelength) {
  const std::string net_path = unique_path("cli_test.net");
  write(net_path, "n0 a b\nn1 c d e\nn2 a f\n");
  ASSERT_EQ(run({"anneal", lib_path_, "--moves", "500", "--netlist", net_path, "--lambda",
                 "1.5"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("HPWL2:"), std::string::npos);
  EXPECT_NE(out_.str().find("lambda 1.5"), std::string::npos);
  // Broken netlist fails cleanly.
  write(net_path, "n0 a nosuch\n");
  EXPECT_NE(run({"anneal", lib_path_, "--netlist", net_path}), 0);
}

TEST_F(CliTest, MalformedInputsFailCleanly) {
  const std::string bad_topo = unique_path("cli_bad.topo");
  write(bad_topo, "(V a");
  EXPECT_NE(run({"stats", bad_topo, lib_path_}), 0);
  EXPECT_NE(err_.str().find("parse error"), std::string::npos);

  const std::string bad_lib = unique_path("cli_bad.lib");
  write(bad_lib, "a 0x3\n");
  EXPECT_NE(run({"stats", topo_path_, bad_lib}), 0);
}

}  // namespace
}  // namespace fpopt
