// End-to-end tests of audit_optimize: clean runs over the workload
// floorplans must produce zero violations in every configuration, and the
// out-of-memory path must be reported as a legal outcome.
#include <gtest/gtest.h>

#include "check/audit.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

WorkloadConfig small_config(std::size_t impls = 5) {
  WorkloadConfig cfg;
  cfg.impls_per_module = impls;
  cfg.seed = 7;
  return cfg;
}

TEST(AuditTest, ExactFp1RunsClean) {
  const FloorplanTree tree = make_fp1(small_config());
  const AuditReport rep = audit_optimize(tree);
  EXPECT_TRUE(rep.ok()) << rep.checks.report();
  EXPECT_FALSE(rep.out_of_memory);
  EXPECT_GT(rep.best_area, 0);
  EXPECT_GT(rep.root_impls, 0u);
  EXPECT_GT(rep.nodes_checked, 0u);
  EXPECT_GT(rep.placements_checked, 0u);
  EXPECT_GT(rep.certificates_checked, 0u);
  EXPECT_GT(rep.stats.peak_stored, 0u);
}

TEST(AuditTest, ReducedRunsCleanUnderEveryPruningMode) {
  const FloorplanTree tree = make_fp1(small_config(6));
  for (const LPruning pruning :
       {LPruning::PerChain, LPruning::GlobalAtNode, LPruning::GlobalEager}) {
    AuditOptions opts;
    opts.optimizer.l_pruning = pruning;
    opts.optimizer.selection.k1 = 8;
    opts.optimizer.selection.k2 = 8;
    const AuditReport rep = audit_optimize(tree, opts);
    EXPECT_TRUE(rep.ok()) << "pruning mode " << static_cast<int>(pruning) << "\n"
                          << rep.checks.report();
    EXPECT_FALSE(rep.out_of_memory);
  }
}

TEST(AuditTest, EveryMetricCertifiesClean) {
  const FloorplanTree tree = make_single_pinwheel(small_config(8));
  for (const LpMetric metric : {LpMetric::L1, LpMetric::L2, LpMetric::LInf}) {
    AuditOptions opts;
    opts.optimizer.selection.metric = metric;
    opts.optimizer.selection.k1 = 6;
    opts.optimizer.selection.k2 = 6;
    const AuditReport rep = audit_optimize(tree, opts);
    EXPECT_TRUE(rep.ok()) << "metric " << static_cast<int>(metric) << "\n"
                          << rep.checks.report();
  }
}

TEST(AuditTest, SlicingGridRunsClean) {
  const FloorplanTree tree = make_grid(3, 3, small_config(6));
  const AuditReport rep = audit_optimize(tree);
  EXPECT_TRUE(rep.ok()) << rep.checks.report();
  EXPECT_GT(rep.placements_checked, 0u);
}

TEST(AuditTest, OutOfMemoryIsALegalOutcome) {
  AuditOptions opts;
  opts.optimizer.impl_budget = 10;  // nothing real fits in 10 implementations
  const FloorplanTree tree = make_single_pinwheel(small_config(6));
  const AuditReport rep = audit_optimize(tree, opts);
  EXPECT_TRUE(rep.out_of_memory);
  EXPECT_TRUE(rep.ok()) << rep.checks.report();
  EXPECT_EQ(rep.checks.size(), 0u);
  EXPECT_EQ(rep.nodes_checked, 0u);
  EXPECT_EQ(rep.placements_checked, 0u);
}

TEST(AuditTest, SamplingKnobsBoundTheWork) {
  AuditOptions opts;
  opts.max_traced_placements = 3;
  opts.certificate_samples = 1;
  const FloorplanTree tree = make_single_pinwheel(small_config(8));
  const AuditReport rep = audit_optimize(tree, opts);
  EXPECT_TRUE(rep.ok()) << rep.checks.report();
  EXPECT_LE(rep.placements_checked, 3u);
  // One R sample + one L sample at most.
  EXPECT_LE(rep.certificates_checked, 2u);

  opts.max_traced_placements = 0;
  opts.certificate_samples = 0;
  const AuditReport quiet = audit_optimize(tree, opts);
  EXPECT_TRUE(quiet.ok()) << quiet.checks.report();
  EXPECT_EQ(quiet.placements_checked, 0u);
  EXPECT_EQ(quiet.certificates_checked, 0u);
}

}  // namespace
}  // namespace fpopt
