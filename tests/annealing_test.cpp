// Tests for the Wong-Liu style topology annealer.
#include <gtest/gtest.h>

#include <cmath>

#include "optimize/optimizer.h"
#include "optimize/placement.h"
#include "topology/annealing.h"
#include "workload/module_gen.h"

namespace fpopt {
namespace {

std::vector<Module> some_modules(std::size_t n, std::uint64_t seed) {
  ModuleGenConfig cfg;
  cfg.impl_count = 5;
  cfg.min_dim = 4;
  cfg.max_dim = 30;
  cfg.min_area = 100;
  cfg.max_area = 500;
  return generate_modules(n, cfg, seed);
}

AnnealingOptions quick(std::uint64_t seed) {
  AnnealingOptions o;
  o.seed = seed;
  o.max_total_moves = 4'000;
  o.cooling = 0.85;
  return o;
}

TEST(AnnealingTest, NeverWorseThanTheInitialTopology) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto modules = some_modules(10, seed);
    const AnnealingResult r = anneal_slicing_topology(modules, quick(seed));
    EXPECT_LE(r.best_area, r.initial_area);
    EXPECT_TRUE(r.best.valid());
    EXPECT_EQ(r.best.min_area(modules), r.best_area);
    EXPECT_GT(r.moves, 0u);
    EXPECT_GT(r.accepted, 0u);
  }
}

TEST(AnnealingTest, DeterministicForAFixedSeed) {
  const auto modules = some_modules(8, 9);
  const AnnealingResult a = anneal_slicing_topology(modules, quick(42));
  const AnnealingResult b = anneal_slicing_topology(modules, quick(42));
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_area, b.best_area);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(AnnealingTest, FindsTheObviousPairingOnFourStripModules) {
  // Four 10x1 strips: best slicing floorplan stacks them into 10x4 = 40.
  std::vector<Module> modules;
  for (int i = 0; i < 4; ++i) {
    modules.emplace_back("s" + std::to_string(i), RList::from_candidates({{10, 1}, {1, 10}}));
  }
  AnnealingOptions o = quick(7);
  o.max_total_moves = 2'000;
  const AnnealingResult r = anneal_slicing_topology(modules, o);
  EXPECT_EQ(r.best_area, 40);
}

TEST(AnnealingTest, ResultFeedsTheDownstreamOptimizer) {
  const auto modules = some_modules(9, 21);
  const AnnealingResult r = anneal_slicing_topology(modules, quick(21));
  FloorplanTree tree = r.best.to_tree(modules);
  ASSERT_TRUE(tree.validate().empty());

  // Exact downstream optimization agrees with the annealer's own cost.
  OptimizerOptions opts;
  const OptimizeOutcome out = optimize_floorplan(tree, opts);
  ASSERT_FALSE(out.out_of_memory);
  EXPECT_EQ(out.best_area, r.best_area);

  // And the whole flow ends in a valid tiling.
  const Placement p = trace_placement(tree, out, out.root.min_area_index());
  EXPECT_TRUE(validate_placement(p, tree).empty());
}

// ---- per-move RNG streams ----------------------------------------------

// Every move attempt draws from Pcg32(seed, move-stream-base + attempt),
// so a trajectory can be replayed attempt by attempt with nothing but the
// seed: this replica re-runs the whole annealing loop by hand through
// annealing_move_rng() and must land on the identical result. It pins
// both the acceptance rule and the stream derivation — under a single
// shared RNG (the old scheme), the draws of attempt i would shift with
// the accept/reject history before it and this replay would diverge
// within a few moves.
TEST(AnnealingTest, TrajectoryReplaysAttemptByAttemptFromTheSeed) {
  const auto modules = some_modules(9, 55);
  AnnealingOptions o = quick(77);
  o.initial_temperature = 50.0;  // explicit: the replica skips calibration
  o.max_total_moves = 600;

  const AnnealingResult r = anneal_slicing_topology(modules, o);

  PolishExpr current = PolishExpr::initial(modules.size());
  double current_cost = static_cast<double>(current.min_area(modules));
  PolishExpr best = current;
  double best_cost = current_cost;
  std::size_t moves = 0;
  std::size_t accepted = 0;
  std::uint64_t attempt = 0;
  const std::size_t moves_per_temp = 10 * modules.size();
  double temperature = o.initial_temperature;
  while (temperature > o.freeze_ratio * o.initial_temperature && moves < o.max_total_moves) {
    for (std::size_t m = 0; m < moves_per_temp && moves < o.max_total_moves; ++m) {
      Pcg32 rng = annealing_move_rng(o.seed, attempt++);
      PolishExpr candidate = current;
      if (!candidate.random_move(rng)) continue;
      ++moves;
      const double cost = static_cast<double>(candidate.min_area(modules));
      const double delta = cost - current_cost;
      if (delta <= 0 || rng.unit() < std::exp(-delta / temperature)) {
        current = std::move(candidate);
        current_cost = cost;
        ++accepted;
        if (cost < best_cost) {
          best = current;
          best_cost = cost;
        }
      }
    }
    temperature *= o.cooling;
  }

  EXPECT_EQ(r.best, best);
  EXPECT_EQ(r.best_cost, best_cost);
  EXPECT_EQ(r.moves, moves);
  EXPECT_EQ(r.accepted, accepted);
}

TEST(AnnealingTest, MoveStreamsAreDistinctAcrossAttempts) {
  // Adjacent attempts must not replay each other's randomness.
  Pcg32 a = annealing_move_rng(1, 0);
  Pcg32 b = annealing_move_rng(1, 1);
  Pcg32 c = annealing_move_rng(2, 0);
  const std::uint32_t a0 = a.next();
  EXPECT_NE(a0, b.next());
  EXPECT_NE(a0, c.next());
}

// ---- incremental (memo-cached) cost evaluation ---------------------------

TEST(AnnealingTest, IncrementalCostingKeepsTheExactTrajectory) {
  // The engine with no selection limits computes the same exact min area
  // as the Stockmeyer cost, so switching on incremental mode must change
  // nothing about the search — same moves, same accepts, same best — while
  // the memo cache absorbs most of the per-move work.
  const auto modules = some_modules(10, 63);
  AnnealingOptions plain = quick(63);
  plain.max_total_moves = 800;
  AnnealingOptions inc = plain;
  inc.incremental = true;

  const AnnealingResult a = anneal_slicing_topology(modules, plain);
  const AnnealingResult b = anneal_slicing_topology(modules, inc);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_area, b.best_area);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);

  EXPECT_EQ(a.cache_stats.probes(), 0u) << "plain runs must not touch a cache";
  EXPECT_GT(b.cache_stats.hits, 0u);
  EXPECT_GT(b.cache_stats.rollback_discards, 0u) << "schedule this long must reject moves";
}

TEST(AnnealingTest, IncrementalSurvivesATinyCache) {
  // Constant evictions may cost recomputes but never change the search.
  const auto modules = some_modules(8, 29);
  AnnealingOptions plain = quick(29);
  plain.max_total_moves = 300;
  AnnealingOptions inc = plain;
  inc.incremental = true;
  inc.cache_bytes = 8u << 10;  // 8 KiB

  const AnnealingResult a = anneal_slicing_topology(modules, plain);
  const AnnealingResult b = anneal_slicing_topology(modules, inc);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_GT(b.cache_stats.evictions, 0u) << "cache_bytes too large to exercise evictions";
}

TEST(AnnealingTest, MoreMovesNeverHurtTheSeededSearch) {
  const auto modules = some_modules(12, 33);
  AnnealingOptions small = quick(33);
  small.max_total_moves = 500;
  AnnealingOptions large = quick(33);
  large.max_total_moves = 8'000;
  large.freeze_ratio = 1e-6;
  const Area a_small = anneal_slicing_topology(modules, small).best_area;
  const Area a_large = anneal_slicing_topology(modules, large).best_area;
  EXPECT_LE(a_large, a_small) << "longer schedules keep the best-so-far";
}

}  // namespace
}  // namespace fpopt
