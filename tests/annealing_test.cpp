// Tests for the Wong-Liu style topology annealer.
#include <gtest/gtest.h>

#include "optimize/optimizer.h"
#include "optimize/placement.h"
#include "topology/annealing.h"
#include "workload/module_gen.h"

namespace fpopt {
namespace {

std::vector<Module> some_modules(std::size_t n, std::uint64_t seed) {
  ModuleGenConfig cfg;
  cfg.impl_count = 5;
  cfg.min_dim = 4;
  cfg.max_dim = 30;
  cfg.min_area = 100;
  cfg.max_area = 500;
  return generate_modules(n, cfg, seed);
}

AnnealingOptions quick(std::uint64_t seed) {
  AnnealingOptions o;
  o.seed = seed;
  o.max_total_moves = 4'000;
  o.cooling = 0.85;
  return o;
}

TEST(AnnealingTest, NeverWorseThanTheInitialTopology) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto modules = some_modules(10, seed);
    const AnnealingResult r = anneal_slicing_topology(modules, quick(seed));
    EXPECT_LE(r.best_area, r.initial_area);
    EXPECT_TRUE(r.best.valid());
    EXPECT_EQ(r.best.min_area(modules), r.best_area);
    EXPECT_GT(r.moves, 0u);
    EXPECT_GT(r.accepted, 0u);
  }
}

TEST(AnnealingTest, DeterministicForAFixedSeed) {
  const auto modules = some_modules(8, 9);
  const AnnealingResult a = anneal_slicing_topology(modules, quick(42));
  const AnnealingResult b = anneal_slicing_topology(modules, quick(42));
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_area, b.best_area);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(AnnealingTest, FindsTheObviousPairingOnFourStripModules) {
  // Four 10x1 strips: best slicing floorplan stacks them into 10x4 = 40.
  std::vector<Module> modules;
  for (int i = 0; i < 4; ++i) {
    modules.emplace_back("s" + std::to_string(i), RList::from_candidates({{10, 1}, {1, 10}}));
  }
  AnnealingOptions o = quick(7);
  o.max_total_moves = 2'000;
  const AnnealingResult r = anneal_slicing_topology(modules, o);
  EXPECT_EQ(r.best_area, 40);
}

TEST(AnnealingTest, ResultFeedsTheDownstreamOptimizer) {
  const auto modules = some_modules(9, 21);
  const AnnealingResult r = anneal_slicing_topology(modules, quick(21));
  FloorplanTree tree = r.best.to_tree(modules);
  ASSERT_TRUE(tree.validate().empty());

  // Exact downstream optimization agrees with the annealer's own cost.
  OptimizerOptions opts;
  const OptimizeOutcome out = optimize_floorplan(tree, opts);
  ASSERT_FALSE(out.out_of_memory);
  EXPECT_EQ(out.best_area, r.best_area);

  // And the whole flow ends in a valid tiling.
  const Placement p = trace_placement(tree, out, out.root.min_area_index());
  EXPECT_TRUE(validate_placement(p, tree).empty());
}

TEST(AnnealingTest, MoreMovesNeverHurtTheSeededSearch) {
  const auto modules = some_modules(12, 33);
  AnnealingOptions small = quick(33);
  small.max_total_moves = 500;
  AnnealingOptions large = quick(33);
  large.max_total_moves = 8'000;
  large.freeze_ratio = 1e-6;
  const Area a_small = anneal_slicing_topology(modules, small).best_area;
  const Area a_large = anneal_slicing_topology(modules, large).best_area;
  EXPECT_LE(a_large, a_small) << "longer schedules keep the best-so-far";
}

}  // namespace
}  // namespace fpopt
