// Tests for the work-stealing thread pool and TaskGroup join scope
// (src/runtime/thread_pool.h): dependency-ordered task graphs, exception
// propagation, nested submission, shutdown with queued tasks, and a
// stress run with thousands of tiny tasks.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.h"

namespace fpopt {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, NullPoolRunsInline) {
  // TaskGroup(nullptr) is the serial fallback: run() executes immediately
  // on the calling thread, in submission order.
  std::vector<int> order;
  TaskGroup group(nullptr);
  for (int i = 0; i < 5; ++i) {
    group.run([&order, i] { order.push_back(i); });
  }
  group.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 50; ++i) {
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, DependencyCountingOrdersTasks) {
  // A reduction tree like the optimizer's T' schedule: node i of a layer
  // fires only after both inputs from the layer below completed. The
  // atomic pending counters are exactly the scheme ParallelEngine uses.
  ThreadPool pool(4);
  constexpr std::size_t kLeaves = 64;
  // values[layer][i]; each internal node sums its two children.
  std::vector<std::vector<std::atomic<long>>> values;
  std::vector<std::vector<std::atomic<int>>> pending;
  for (std::size_t n = kLeaves; n >= 1; n /= 2) {
    values.emplace_back(n);
    pending.emplace_back(n);
    for (std::size_t i = 0; i < n; ++i) {
      values.back()[i].store(0);
      pending.back()[i].store(n == kLeaves ? 0 : 2);
    }
    if (n == 1) break;
  }
  TaskGroup group(&pool);
  // exec(layer, i): compute the node, then cascade to the parent.
  std::function<void(std::size_t, std::size_t)> exec = [&](std::size_t layer, std::size_t i) {
    if (layer == 0) {
      values[0][i].store(static_cast<long>(i) + 1);
    } else {
      // Children must be done: pending hit zero before this task ran.
      const long sum = values[layer - 1][2 * i].load(std::memory_order_acquire) +
                       values[layer - 1][2 * i + 1].load(std::memory_order_acquire);
      ASSERT_GT(sum, 0);  // both children wrote a positive value
      values[layer][i].store(sum);
    }
    if (layer + 1 < values.size() &&
        pending[layer + 1][i / 2].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      group.run([&exec, layer, i] { exec(layer + 1, i / 2); });
    }
  };
  for (std::size_t i = 0; i < kLeaves; ++i) {
    group.run([&exec, i] { exec(0, i); });
  }
  group.wait();
  // Root = 1 + 2 + ... + kLeaves.
  EXPECT_EQ(values.back()[0].load(), static_cast<long>(kLeaves * (kLeaves + 1) / 2));
}

TEST(ThreadPool, ExceptionPropagatesToWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    group.run([&ran, i] {
      if (i == 7) throw std::runtime_error("task failed");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_TRUE(group.poisoned());
}

TEST(ThreadPool, PoisonedGroupSkipsLaterTasks) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.run([] { throw std::runtime_error("poison"); });
  try {
    group.wait();
    FAIL() << "expected the poison exception";
  } catch (const std::runtime_error&) {
  }
  // After the failure, newly submitted tasks are skipped (never run); the
  // exception was consumed by the first wait() and is reported only once.
  EXPECT_TRUE(group.poisoned());
  std::atomic<int> ran{0};
  group.run([&ran] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // Tasks that submit subtasks into their own group and tasks whose
  // wait() runs on a worker thread (help-while-wait) must both complete.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&pool, &ran] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) {
        inner.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.wait();  // runs on a worker; must help instead of blocking
    });
  }
  outer.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Submitting fire-and-forget work and destroying the pool must run (not
  // drop) everything: TaskGroup increments land before wait, and the
  // destructor drains the queues before joining the workers.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    TaskGroup group(&pool);
    for (int i = 0; i < 200; ++i) {
      group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
  }  // pool destroyed here
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, StressManyTinyTasks) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 20'000;
  std::vector<std::atomic<int>> hit(kTasks);
  for (auto& h : hit) h.store(0);
  TaskGroup group(&pool);
  for (std::size_t i = 0; i < kTasks; ++i) {
    group.run([&hit, i] { hit[i].fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hit[i].load(), 1) << "task " << i << " ran " << hit[i].load() << " times";
  }
}

TEST(ParallelFor, CoversRangeExactlyOnceSerialAndPooled) {
  constexpr std::size_t kN = 10'000;
  for (const unsigned workers : {0u, 1u, 4u}) {
    std::unique_ptr<ThreadPool> pool;
    if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
    std::vector<std::atomic<int>> hit(kN);
    for (auto& h : hit) h.store(0);
    parallel_for(pool.get(), std::size_t{0}, kN, std::size_t{64},
                 [&hit](std::size_t i) { hit[i].fetch_add(1, std::memory_order_relaxed); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hit[i].load(), 1) << "workers=" << workers << " index " << i;
    }
  }
}

TEST(ThreadPool, IdleTimeIsMonotonicAcrossSnapshots) {
  // stats() snapshots lifetime counters; idle_seconds must never move
  // backwards between snapshots, and grows while workers sleep.
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.run([] {});
  }
  group.wait();
  const telemetry::PoolStats before = pool.stats();
  for (const telemetry::WorkerStats& w : before.workers) {
    EXPECT_GE(w.idle_seconds, 0.0);
  }
  // Let the workers sleep, then poke them so the sleep gets accounted
  // (idle time is added on wake). The coordinator may drain a wake batch
  // itself (TaskGroup::wait helps), so retry until a worker's wake lands.
  telemetry::PoolStats after = pool.stats();
  for (int tries = 0; tries < 200; ++tries) {
    if constexpr (telemetry::kEnabled) {
      if (after.total_idle_seconds() > before.total_idle_seconds()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    TaskGroup wake(&pool);
    for (int i = 0; i < 8; ++i) {
      wake.run([] {});
    }
    wake.wait();
    after = pool.stats();
  }
  ASSERT_EQ(after.workers.size(), before.workers.size());
  for (std::size_t i = 0; i < after.workers.size(); ++i) {
    EXPECT_GE(after.workers[i].idle_seconds, before.workers[i].idle_seconds)
        << "worker " << i << " idle time went backwards";
  }
  if constexpr (telemetry::kEnabled) {
    EXPECT_GT(after.total_idle_seconds(), before.total_idle_seconds());
  } else {
    EXPECT_EQ(after.total_idle_seconds(), 0.0);
  }
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for_chunks(&pool, std::size_t{5}, std::size_t{5}, std::size_t{16},
                      [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // empty range: body never invoked
  std::atomic<int> sum{0};
  parallel_for(&pool, std::size_t{0}, std::size_t{3}, std::size_t{64},
               [&sum](std::size_t i) { sum.fetch_add(static_cast<int>(i) + 1); });
  EXPECT_EQ(sum.load(), 6);  // below one grain: runs inline
}

}  // namespace
}  // namespace fpopt
