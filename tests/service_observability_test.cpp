// Service-level observability (ISSUE: observability): the metrics
// registry must reconcile *exactly* with the Service's own stats after
// a shuffled mixed-priority workload, the `metrics`/`trace` admin verbs
// must answer validating documents, structured request logs must carry
// the server-assigned request id, and `fpopt client` must map server
// error envelopes to distinct exit codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/protocol.h"
#include "service/service.h"
#include "telemetry/json.h"
#include "telemetry/log.h"
#include "telemetry/metrics_schema.h"
#include "telemetry/telemetry.h"

namespace fpopt {
namespace {

constexpr const char* kTopology = "(V (H m0 m1) m2)";
constexpr const char* kLibrary = "m0 38x11 26x16\nm1 41x26 40x27\nm2 46x7 37x8\n";

std::string run_frame(const std::string& command, int priority,
                      const std::string& extra = "") {
  return "{\"fpopt_request\":{\"schema_version\":1,\"command\":" +
         telemetry::json_quote(command) +
         ",\"topology\":" + telemetry::json_quote(kTopology) +
         ",\"library\":" + telemetry::json_quote(kLibrary) +
         ",\"priority\":" + std::to_string(priority) + extra + "}}";
}

/// Parse + schema-validate one response line; returns the inner object.
telemetry::JsonValue checked_response(const std::string& line) {
  const telemetry::JsonParseResult doc = telemetry::parse_json(line);
  EXPECT_TRUE(doc.value.has_value()) << "unparseable response: " << line;
  if (!doc.value.has_value()) return {};
  const std::vector<std::string> violations = validate_service_response(*doc.value);
  EXPECT_TRUE(violations.empty()) << violations.front() << "\nline: " << line;
  return *doc.value->find("fpopt_response");
}

/// "ok" for a success response, the E_* code otherwise.
std::string outcome_of(const std::string& line) {
  const telemetry::JsonValue r = checked_response(line);
  const telemetry::JsonValue* status = r.find("status");
  if (status == nullptr) return "?";
  if (status->string == "ok") return "ok";
  return r.find("error")->find("code")->string;
}

/// The parsed "fpopt_metrics" block of the `metrics` verb's response.
telemetry::JsonValue metrics_snapshot(Service& service) {
  const telemetry::JsonValue r = checked_response(
      service.handle_frame("{\"fpopt_request\":{\"schema_version\":1,\"command\":\"metrics\"}}"));
  EXPECT_EQ(r.find("status")->string, "ok");
  const telemetry::JsonParseResult doc = telemetry::parse_json(r.find("output")->string);
  EXPECT_TRUE(doc.value.has_value()) << doc.error;
  EXPECT_EQ(telemetry::validate_embedded_metrics(*doc.value), std::vector<std::string>{});
  return *doc.value->find("fpopt_metrics");
}

/// Value of one counter series (label_value "" = the unlabeled series).
std::uint64_t counter_value(const telemetry::JsonValue& snapshot, const std::string& family,
                            const std::string& label_value = "") {
  for (const telemetry::JsonValue& fam : snapshot.find("counters")->array) {
    if (fam.find("name")->string != family) continue;
    for (const telemetry::JsonValue& series : fam.find("series")->array) {
      const telemetry::JsonValue* labels = series.find("labels");
      const bool unlabeled = labels->object.empty();
      if (label_value.empty() ? unlabeled
                              : (!unlabeled && labels->object[0].second.string == label_value)) {
        return static_cast<std::uint64_t>(series.find("value")->integer);
      }
    }
  }
  ADD_FAILURE() << "no counter series " << family << "{" << label_value << "}";
  return 0;
}

/// Total observation count of one histogram series.
std::uint64_t histogram_count(const telemetry::JsonValue& snapshot, const std::string& family,
                              const std::string& label_value = "") {
  for (const telemetry::JsonValue& fam : snapshot.find("histograms")->array) {
    if (fam.find("name")->string != family) continue;
    for (const telemetry::JsonValue& series : fam.find("series")->array) {
      const telemetry::JsonValue* labels = series.find("labels");
      const bool unlabeled = labels->object.empty();
      if (label_value.empty() ? unlabeled
                              : (!unlabeled && labels->object[0].second.string == label_value)) {
        return static_cast<std::uint64_t>(series.find("count")->integer);
      }
    }
  }
  ADD_FAILURE() << "no histogram series " << family << "{" << label_value << "}";
  return 0;
}

std::uint64_t when_on(std::uint64_t value) { return telemetry::kEnabled ? value : 0; }

TEST(ServiceMetrics, ReconcilesExactlyWithServiceStatsAfterMixedWorkload) {
  ServiceConfig config;
  config.max_frame_bytes = 4096;
  Service service(config);

  // One instance of every failure class plus ok runs, at mixed
  // priorities. E_DEADLINE is timing-dependent (deadline_ms 0 usually
  // expires on entry but may dispatch); reconciliation therefore counts
  // *observed* outcomes and demands the registry agree exactly.
  std::vector<std::string> frames;
  for (int p = 0; p < 3; ++p) {
    frames.push_back(run_frame("stats", p));
    frames.push_back(run_frame("optimize", p, ",\"options\":{\"k1\":4,\"k2\":4}"));
    frames.push_back(run_frame("optimize", p, ",\"options\":{\"budget\":1}"));  // E_BUDGET
    frames.push_back(run_frame("stats", p, ",\"deadline_ms\":0"));  // E_DEADLINE (usually)
  }
  frames.emplace_back("this is not json");                                      // E_PARSE
  frames.emplace_back("{\"fpopt_request\":{\"command\":\"stats\"}}");           // E_SCHEMA
  frames.emplace_back(
      "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"explode\"}}");    // E_COMMAND
  frames.push_back(run_frame("stats", 0, ",\"options\":{\"warp\":1}"));         // E_OPTION
  frames.emplace_back(
      "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
      "\"topology\":\"((((\",\"library\":\"\"}}");                              // E_INPUT
  frames.push_back(std::string(5000, 'x'));                                     // E_OVERSIZED

  constexpr int kThreads = 4;
  std::vector<std::map<std::string, std::uint64_t>> observed(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &observed, &frames, t] {
      std::vector<std::string> shuffled = frames;
      std::mt19937 rng(static_cast<unsigned>(1234 + t));
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      for (const std::string& frame : shuffled) {
        ++observed[static_cast<std::size_t>(t)][outcome_of(service.handle_frame(frame))];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  std::map<std::string, std::uint64_t> totals;
  for (const auto& per_thread : observed) {
    for (const auto& [code, n] : per_thread) totals[code] += n;
  }

  const ServiceStats stats = service.stats();
  const telemetry::JsonValue snapshot = metrics_snapshot(service);

  // Every outcome series equals its observed count — including the ones
  // this workload never produced (exact zero).
  std::uint64_t error_sum = 0;
  for (const char* code : {"ok", "E_PARSE", "E_SCHEMA", "E_COMMAND", "E_OPTION", "E_INPUT",
                           "E_BUDGET", "E_OVERSIZED", "E_OVERLOADED", "E_DEADLINE",
                           "E_INTERNAL"}) {
    EXPECT_EQ(counter_value(snapshot, "fpoptd_requests_total", code), when_on(totals[code]))
        << "outcome " << code;
    if (std::string(code) != "ok") error_sum += totals[code];
  }
  EXPECT_EQ(totals["ok"], stats.requests_ok);
  EXPECT_EQ(error_sum, stats.requests_error);
  EXPECT_EQ(totals["E_DEADLINE"], stats.requests_shed);
  EXPECT_EQ(counter_value(snapshot, "fpoptd_requests_shed_total"),
            when_on(stats.requests_shed));

  // Latency accounting: the end-to-end histogram saw every workload
  // frame (the metrics verb publishes its own sample only after it
  // rendered this snapshot, so it is excluded from both sides);
  // execute/queue-wait histograms saw exactly the dispatched requests.
  EXPECT_EQ(histogram_count(snapshot, "fpoptd_request_seconds"), when_on(stats.frames));
  const std::uint64_t dispatched = totals["ok"] + totals["E_INPUT"] + totals["E_BUDGET"];
  EXPECT_EQ(histogram_count(snapshot, "fpoptd_execute_seconds"), when_on(dispatched));
  std::uint64_t queue_wait_total = 0;
  for (const char* p : {"0", "1", "2"}) {
    queue_wait_total += histogram_count(snapshot, "fpoptd_queue_wait_seconds", p);
  }
  EXPECT_EQ(queue_wait_total, when_on(dispatched));
}

TEST(ServiceMetrics, VerbAnswersBothFormatsAndValidates) {
  Service service(ServiceConfig{});
  // JSON (the default format).
  const telemetry::JsonValue snapshot = metrics_snapshot(service);
  EXPECT_EQ(snapshot.find("schema_version")->integer, 1);
  EXPECT_EQ(snapshot.find("telemetry")->boolean, telemetry::kEnabled);

  // Prometheus text exposition.
  const telemetry::JsonValue r = checked_response(service.handle_frame(
      "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"metrics\","
      "\"format\":\"prometheus\"}}"));
  EXPECT_EQ(r.find("status")->string, "ok");
  const std::string& text = r.find("output")->string;
  EXPECT_EQ(telemetry::validate_prometheus_text(text), std::vector<std::string>{});
  EXPECT_NE(text.find("# TYPE fpoptd_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("fpoptd_request_seconds_bucket"), std::string::npos);
}

TEST(ServiceMetrics, VerbFailsCleanlyWhenMetricsAreDisabled) {
  ServiceConfig config;
  config.metrics = false;
  Service service(config);
  EXPECT_EQ(outcome_of(service.handle_frame(
                "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"metrics\"}}")),
            "E_OPTION");
}

TEST(ServiceMetrics, ControlVerbMemberValidation) {
  Service service(ServiceConfig{});
  const struct {
    const char* frame;
    const char* code;
  } kCases[] = {
      // `format` belongs to the metrics verb only, with a closed vocabulary.
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"metrics\","
       "\"format\":\"xml\"}}",
       "E_SCHEMA"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"ping\","
       "\"format\":\"json\"}}",
       "E_SCHEMA"},
      // `pick` belongs to the trace verb only.
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"metrics\","
       "\"pick\":\"recent\"}}",
       "E_SCHEMA"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"trace\","
       "\"pick\":\"worst\"}}",
       "E_SCHEMA"},
      // `trace` is a run-command flag, never valid on control verbs.
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"ping\",\"trace\":true}}",
       "E_SCHEMA"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"stats\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"trace\":1}}",
       "E_SCHEMA"},  // wrong type
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(outcome_of(service.handle_frame(c.frame)), c.code) << c.frame;
  }
}

TEST(ServiceTraceVerb, RequiresTracingToBeConfigured) {
  Service service(ServiceConfig{});  // trace_requests = 0
  EXPECT_EQ(outcome_of(service.handle_frame(
                "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"trace\"}}")),
            "E_OPTION");
}

TEST(ServiceTraceVerb, ReturnsTheRetainedTraceForATracedRequest) {
  ServiceConfig config;
  config.trace_requests = 2;
  Service service(config);

  // Nothing retained yet: a clean E_OPTION, not an empty document.
  EXPECT_EQ(outcome_of(service.handle_frame(
                "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"trace\"}}")),
            "E_OPTION");

  EXPECT_EQ(outcome_of(service.handle_frame(
                run_frame("optimize", 1, ",\"options\":{\"k1\":4,\"k2\":4},\"trace\":true"))),
            "ok");

  // `recent` (the default pick) returns the Chrome trace document.
  const telemetry::JsonValue r = checked_response(service.handle_frame(
      "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"trace\",\"pick\":\"recent\"}}"));
  ASSERT_EQ(r.find("status")->string, "ok");
  const telemetry::JsonParseResult trace_doc = telemetry::parse_json(r.find("output")->string);
  ASSERT_TRUE(trace_doc.value.has_value()) << trace_doc.error;
  ASSERT_NE(trace_doc.value->find("traceEvents"), nullptr);
  const telemetry::JsonValue* other = trace_doc.value->find("otherData");
  ASSERT_NE(other, nullptr);
  if (telemetry::kEnabled) {
    // request_id correlation: the session meta carries the server-assigned
    // id, and the request span's identity is that id.
    ASSERT_NE(other->find("request_id"), nullptr);
    EXPECT_FALSE(trace_doc.value->find("traceEvents")->array.empty());
  }

  // `list` indexes the retained ring.
  const telemetry::JsonValue list = checked_response(service.handle_frame(
      "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"trace\",\"pick\":\"list\"}}"));
  ASSERT_EQ(list.find("status")->string, "ok");
  const telemetry::JsonParseResult list_doc = telemetry::parse_json(list.find("output")->string);
  ASSERT_TRUE(list_doc.value.has_value()) << list_doc.error;
  const telemetry::JsonValue* index = list_doc.value->find("fpopt_request_traces");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->find("recent")->array.size(), 1u);
  ASSERT_NE(index->find("slowest"), nullptr);
  EXPECT_EQ(index->find("slowest")->find("command")->string, "optimize");

  // `slowest` returns a full document too.
  EXPECT_EQ(outcome_of(service.handle_frame(
                "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"trace\","
                "\"pick\":\"slowest\"}}")),
            "ok");
}

TEST(ServiceTraceVerb, RetainedRingIsBoundedAndSamplingTraces) {
  ServiceConfig config;
  config.trace_requests = 2;
  config.trace_sample = 1;  // trace every run request
  Service service(config);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(outcome_of(service.handle_frame(run_frame("stats", 0))), "ok");
  }
  const telemetry::JsonValue list = checked_response(service.handle_frame(
      "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"trace\",\"pick\":\"list\"}}"));
  ASSERT_EQ(list.find("status")->string, "ok");
  const telemetry::JsonParseResult doc = telemetry::parse_json(list.find("output")->string);
  ASSERT_TRUE(doc.value.has_value());
  EXPECT_EQ(doc.value->find("fpopt_request_traces")->find("recent")->array.size(), 2u);
}

TEST(ServiceTraceVerb, TracingNeverChangesResponseBytes) {
  // The byte-equivalence contract extends to traced requests: the same
  // run with and without capture answers identical bytes.
  ServiceConfig plain_config;
  Service plain(plain_config);
  ServiceConfig traced_config;
  traced_config.trace_requests = 4;
  Service traced(traced_config);
  const std::string frame =
      run_frame("optimize", 1, ",\"options\":{\"k1\":4,\"k2\":4},\"trace\":true");
  const std::string untraced_frame = run_frame("optimize", 1, ",\"options\":{\"k1\":4,\"k2\":4}");
  EXPECT_EQ(plain.handle_frame(untraced_frame), traced.handle_frame(frame));
}

TEST(StructuredRequestLog, CarriesServerAssignedRequestIds) {
  std::ostringstream out;
  telemetry::LogSink sink(out, telemetry::LogLevel::kInfo, /*stamp_time=*/false);
  ServiceConfig config;
  config.log = &sink;
  Service service(config);
  EXPECT_EQ(outcome_of(service.handle_frame(
                "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"ping\"}}")),
            "ok");
  EXPECT_EQ(outcome_of(service.handle_frame(run_frame("stats", 2))), "ok");
  if (!telemetry::kEnabled) {
    EXPECT_EQ(out.str(), "");
    return;
  }
  std::istringstream lines(out.str());
  std::string line;
  std::vector<telemetry::JsonValue> events;
  while (std::getline(lines, line)) {
    const telemetry::JsonParseResult doc = telemetry::parse_json(line);
    ASSERT_TRUE(doc.value.has_value()) << line;
    if (doc.value->find("event")->string == "request") events.push_back(*doc.value);
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].find("request_id")->integer, 1);
  EXPECT_EQ(events[0].find("command")->string, "ping");
  EXPECT_EQ(events[0].find("outcome")->string, "ok");
  EXPECT_EQ(events[1].find("request_id")->integer, 2);
  EXPECT_EQ(events[1].find("command")->string, "stats");
  EXPECT_EQ(events[1].find("priority")->integer, 2);
  ASSERT_NE(events[1].find("latency_ms"), nullptr);
  ASSERT_NE(events[1].find("execute_ms"), nullptr);
}

TEST(ClientExitCodes, DistinctPerErrorClass) {
  // The documented table (service/client.h): scripts branch on these.
  const struct {
    const char* code;
    int exit_code;
  } kTable[] = {
      {"E_INPUT", 3},      {"E_OPTION", 4},   {"E_BUDGET", 5},  {"E_DEADLINE", 6},
      {"E_OVERLOADED", 7}, {"E_OVERSIZED", 8}, {"E_SCHEMA", 9}, {"E_COMMAND", 10},
      {"E_PARSE", 11},     {"E_INTERNAL", 12},
  };
  std::vector<int> seen;
  for (const auto& row : kTable) {
    EXPECT_EQ(client_exit_code(row.code), row.exit_code) << row.code;
    seen.push_back(row.exit_code);
  }
  // All distinct, and disjoint from 0 (success) / 2 (usage/transport).
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 0), 0);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 2), 0);
  // Future error codes from a newer daemon degrade to E_INTERNAL's code.
  EXPECT_EQ(client_exit_code("E_SOMETHING_NEW"), 12);
}

}  // namespace
}  // namespace fpopt
