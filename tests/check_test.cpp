// Tests for the invariant-audit subsystem: every checker must accept the
// structures the production code builds and reject doctored ones.
#include <gtest/gtest.h>

#include <vector>

#include "check/check_certificate.h"
#include "check/check_cspp.h"
#include "check/check_placement.h"
#include "check/check_shapes.h"
#include "check/check_tree.h"
#include "core/cspp.h"
#include "core/l_selection.h"
#include "core/r_selection.h"
#include "floorplan/serialize.h"
#include "optimize/optimizer.h"
#include "optimize/placement.h"
#include "test_util.h"

namespace fpopt {
namespace {

bool has_rule(const CheckResult& res, const std::string& rule) {
  for (const Violation& v : res.violations()) {
    if (v.rule == rule) return true;
  }
  return false;
}

TEST(CheckResultTest, AccumulatesAndTruncates) {
  CheckResult res;
  EXPECT_TRUE(res.ok());
  for (std::size_t i = 0; i < 3 * kMaxViolationsPerCheck; ++i) {
    if (!res.room_for_more()) break;
    res.add("test/rule", "here", "broken");
  }
  EXPECT_FALSE(res.ok());
  EXPECT_LE(res.size(), kMaxViolationsPerCheck + 1);  // cap + truncation marker
  EXPECT_TRUE(has_rule(res, "check/truncated"));
  EXPECT_NE(res.report().find("test/rule"), std::string::npos);

  CheckResult other;
  other.add("other/rule", "there", "also broken");
  res.merge(std::move(other));
  EXPECT_TRUE(has_rule(res, "other/rule"));
}

TEST(CheckRListTest, AcceptsIrreducibleList) {
  Pcg32 rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const RList list = test::random_r_list(1 + rng.below(30), rng);
    EXPECT_TRUE(check_r_list(list).ok());
  }
  EXPECT_TRUE(check_r_list(std::span<const RectImpl>{}).ok());
}

TEST(CheckRListTest, RejectsBrokenOrderings) {
  const std::vector<RectImpl> width_tie{{9, 2}, {9, 4}};
  EXPECT_TRUE(has_rule(check_r_list(width_tie), "r-list/width-order"));

  const std::vector<RectImpl> height_drop{{9, 4}, {6, 2}};
  EXPECT_TRUE(has_rule(check_r_list(height_drop), "r-list/height-order"));

  const std::vector<RectImpl> degenerate{{0, 3}};
  EXPECT_TRUE(has_rule(check_r_list(degenerate), "r-list/invalid-shape"));
}

TEST(CheckLListTest, AcceptsIrreducibleChains) {
  Pcg32 rng(13);
  for (int iter = 0; iter < 20; ++iter) {
    const LList chain = test::random_l_chain(1 + rng.below(30), rng);
    EXPECT_TRUE(check_l_list(chain).ok());
  }
}

TEST(CheckLListTest, RejectsBrokenChains) {
  // Doctored chains bypass LList's constructors (which would refuse them)
  // via the span overload.
  const std::vector<LImpl> good{{10, 5, 6, 3}, {9, 5, 7, 4}};
  EXPECT_TRUE(check_l_list(good).ok());

  const std::vector<LImpl> w2_jump{{10, 5, 6, 3}, {9, 4, 7, 4}};
  EXPECT_TRUE(has_rule(check_l_list(w2_jump), "l-list/w2-constant"));

  const std::vector<LImpl> w1_tie{{10, 5, 6, 3}, {10, 5, 7, 4}};
  EXPECT_TRUE(has_rule(check_l_list(w1_tie), "l-list/w1-order"));

  const std::vector<LImpl> h_drop{{10, 5, 6, 3}, {9, 5, 5, 3}};
  EXPECT_TRUE(has_rule(check_l_list(h_drop), "l-list/height-order"));

  const std::vector<LImpl> invalid{{4, 5, 6, 3}};  // w1 < w2
  EXPECT_TRUE(has_rule(check_l_list(invalid), "l-list/invalid-shape"));
}

TEST(CheckLSetTest, FlagsCrossChainRedundancyOnlyWhenAsked) {
  // Chain 2's entry is dominated by chain 1's first entry (same w2,
  // smaller-or-equal everywhere), but each chain alone is irreducible.
  LListSet set;
  set.add(LList::from_chain_unchecked({{{10, 5, 6, 3}, 0}, {{8, 5, 7, 4}, 1}}));
  set.add(LList::from_chain_unchecked({{{11, 5, 7, 3}, 2}}));
  const CheckResult strict = check_l_list_set(set, /*cross_list=*/true);
  EXPECT_TRUE(has_rule(strict, "l-set/cross-redundant"));
  EXPECT_TRUE(check_l_list_set(set, /*cross_list=*/false).ok());
}

TEST(CheckLSetTest, AcceptsCanonicalizedSets) {
  LListSet set;
  set.add(LList::from_chain_unchecked({{{10, 5, 6, 3}, 0}, {{8, 5, 7, 4}, 1}}));
  set.add(LList::from_chain_unchecked({{{12, 7, 5, 2}, 2}}));  // different w2 group
  EXPECT_TRUE(check_l_list_set(set, true).ok());
}

TEST(CheckTreeTest, AcceptsRestructuredTrees) {
  const FloorplanTree tree = parse_floorplan(
      "(W a b c d (V e f))",
      parse_module_library("a 5x3 4x4\nb 4x5\nc 2x2\nd 4x4\ne 3x3\nf 3x4\n"));
  const BinaryTree btree = restructure(tree);
  EXPECT_TRUE(check_tree(btree, tree).ok()) << check_tree(btree, tree).report();
}

TEST(CheckTreeTest, RejectsDoctoredTrees) {
  const FloorplanTree tree = parse_floorplan(
      "(V a b c)", parse_module_library("a 5x3\nb 4x5\nc 2x2\n"));
  BinaryTree btree = restructure(tree);

  // Break the preorder ids.
  std::swap(btree.root->id, btree.root->left->id);
  CheckResult res = check_tree(btree, tree);
  EXPECT_TRUE(has_rule(res, "tree/preorder-id"));
  std::swap(btree.root->id, btree.root->left->id);

  // Point two leaves at the same module: usage counts break.
  BinaryNode* leaf = btree.root->right.get();
  ASSERT_TRUE(leaf->is_leaf());
  const std::size_t saved = leaf->module_id;
  leaf->module_id = 0;
  res = check_tree(btree, tree);
  EXPECT_TRUE(has_rule(res, "tree/module-usage"));
  leaf->module_id = saved;

  // Claim an L-producing op whose left child is rectangular.
  btree.root->op = BinaryOp::WheelFillNotch;
  res = check_tree(btree, tree);
  EXPECT_TRUE(has_rule(res, "tree/cut-type"));
  EXPECT_TRUE(has_rule(res, "tree/l-root"));
}

TEST(CheckCsppTest, AcceptsSolverOutput) {
  CsppGraph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 4, 1.0);
  g.add_edge(0, 3, 0.5);
  g.add_edge(3, 4, 0.5);
  const auto result = constrained_shortest_path(g, 0, 4, 4);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(check_cspp_path(g, 0, 4, 4, *result).ok());
}

TEST(CheckCsppTest, RejectsDoctoredPaths) {
  CsppGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);

  const CsppResult wrong_count{{0, 1, 3}, 4.0};
  EXPECT_TRUE(has_rule(check_cspp_path(g, 0, 3, 4, wrong_count), "cspp/cardinality"));

  const CsppResult missing_edge{{0, 2, 1, 3}, 6.0};
  EXPECT_TRUE(has_rule(check_cspp_path(g, 0, 3, 4, missing_edge), "cspp/missing-edge"));

  const CsppResult bad_weight{{0, 1, 2, 3}, 5.0};
  EXPECT_TRUE(has_rule(check_cspp_path(g, 0, 3, 4, bad_weight), "cspp/weight"));

  const CsppResult wrong_ends{{1, 2, 3, 0}, 6.0};
  const CheckResult res = check_cspp_path(g, 0, 3, 4, wrong_ends);
  EXPECT_TRUE(has_rule(res, "cspp/source"));
  EXPECT_TRUE(has_rule(res, "cspp/target"));
}

TEST(CheckIntervalSelectionTest, ShapeRules) {
  const std::vector<std::size_t> good{0, 3, 9};
  EXPECT_TRUE(check_interval_selection(10, 3, good).ok());

  const std::vector<std::size_t> no_first{1, 3, 9};
  EXPECT_TRUE(has_rule(check_interval_selection(10, 3, no_first), "selection/first-endpoint"));

  const std::vector<std::size_t> no_last{0, 3, 8};
  EXPECT_TRUE(has_rule(check_interval_selection(10, 3, no_last), "selection/last-endpoint"));

  const std::vector<std::size_t> not_monotone{0, 5, 3, 9};
  EXPECT_TRUE(has_rule(check_interval_selection(10, 4, not_monotone), "selection/monotone"));

  const std::vector<std::size_t> wrong_k{0, 9};
  EXPECT_TRUE(has_rule(check_interval_selection(10, 3, wrong_k), "selection/cardinality"));
}

TEST(CheckCertificateTest, AcceptsRealSelections) {
  Pcg32 rng(21);
  for (int iter = 0; iter < 10; ++iter) {
    const RList list = test::random_r_list(6 + rng.below(20), rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(list.size() - 2));
    const SelectionResult sel = r_selection(list, k);
    EXPECT_TRUE(check_selection_certificate(list, sel, k).ok());
    // Keep-everything contract.
    const SelectionResult all = r_selection(list, 0);
    EXPECT_TRUE(check_selection_certificate(list, all, 0).ok());
  }
}

TEST(CheckCertificateTest, RejectsWrongErrorOrShape) {
  Pcg32 rng(22);
  const RList list = test::random_r_list(12, rng);
  SelectionResult sel = r_selection(list, 4);

  SelectionResult lying = sel;
  lying.error += 1;
  EXPECT_TRUE(has_rule(check_selection_certificate(list, lying, 4), "certificate/error"));

  SelectionResult truncated = sel;
  truncated.kept.pop_back();
  EXPECT_FALSE(check_selection_certificate(list, truncated, 4).ok());

  SelectionResult not_identity = sel;
  EXPECT_TRUE(
      has_rule(check_selection_certificate(list, not_identity, 0), "certificate/keep-all"));
}

TEST(CheckCertificateTest, LSelectionCertificates) {
  Pcg32 rng(23);
  for (const LpMetric metric : {LpMetric::L1, LpMetric::L2, LpMetric::LInf}) {
    const LList chain = test::random_l_chain(14, rng);
    LSelectionOptions opts;
    opts.metric = metric;
    const SelectionResult sel = l_selection(chain, 5, opts);
    EXPECT_TRUE(check_l_selection_certificate(chain, sel, 5, metric).ok());

    SelectionResult lying = sel;
    lying.error += 10;
    EXPECT_TRUE(
        has_rule(check_l_selection_certificate(chain, lying, 5, metric), "certificate/error"));
  }
}

class CheckPlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = parse_floorplan("(W a b c d (V e f))",
                            parse_module_library(
                                "a 5x3 4x4 3x6\nb 4x5 3x7\nc 2x2 3x1\nd 4x4 5x3\ne 3x3\nf 3x4\n"));
    outcome_ = optimize_floorplan(tree_);
    ASSERT_FALSE(outcome_.out_of_memory);
    placement_ = trace_placement(tree_, outcome_, outcome_.root.min_area_index());
  }

  FloorplanTree tree_;
  OptimizeOutcome outcome_;
  Placement placement_;
};

TEST_F(CheckPlacementTest, AcceptsTracedPlacements) {
  EXPECT_TRUE(check_placement(placement_, tree_).ok())
      << check_placement(placement_, tree_).report();
}

TEST_F(CheckPlacementTest, RejectsDoctoredPlacements) {
  Placement shifted = placement_;
  shifted.rooms[0].room.x += 1;  // now overlaps a neighbor or exits the chip
  EXPECT_FALSE(check_placement(shifted, tree_).ok());

  Placement wrong_impl = placement_;
  wrong_impl.rooms[0].impl = {9999, 9999};
  const CheckResult res = check_placement(wrong_impl, tree_);
  EXPECT_TRUE(has_rule(res, "placement/impl-membership"));
  EXPECT_TRUE(has_rule(res, "placement/impl-fit"));

  Placement duplicated = placement_;
  duplicated.rooms[1].module_id = duplicated.rooms[0].module_id;
  EXPECT_TRUE(has_rule(check_placement(duplicated, tree_), "placement/module-usage"));

  Placement stretched = placement_;
  stretched.width += 2;  // bounding box and area accounting both break
  const CheckResult res2 = check_placement(stretched, tree_);
  EXPECT_TRUE(has_rule(res2, "placement/area-accounting"));
  EXPECT_TRUE(has_rule(res2, "placement/bbox"));
}

TEST(EnforceTest, AbortsOnViolations) {
  CheckResult bad;
  bad.add("test/rule", "here", "broken");
  EXPECT_DEATH(enforce(bad, "EnforceTest"), "test/rule");

  const CheckResult good;
  enforce(good, "EnforceTest");  // must be a no-op
}

}  // namespace
}  // namespace fpopt
