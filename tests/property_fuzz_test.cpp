// Randomized property tests (satellite of the invariant-audit PR): fuzz the
// pruning, combine and selection kernels with Pcg32-generated inputs and
// assert that (a) every produced artifact passes the src/check/ validators
// and (b) selection errors match the independent geometric oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check_certificate.h"
#include "check/check_shapes.h"
#include "core/l_selection.h"
#include "core/r_selection.h"
#include "geometry/staircase.h"
#include "optimize/combine.h"
#include "shape/r_list.h"
#include "test_util.h"
#include "workload/rng.h"

namespace fpopt {
namespace {

using test::random_l_chain;
using test::random_r_list;

Dim random_dim(Pcg32& rng, std::uint32_t lo, std::uint32_t hi) {
  return static_cast<Dim>(lo + rng.below(hi - lo + 1));
}

TEST(PruneFuzzTest, FromCandidatesIsIrreducibleAndCoversEveryCandidate) {
  Pcg32 rng(101);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(40);
    std::vector<RectImpl> cands(n);
    for (RectImpl& c : cands) c = {random_dim(rng, 1, 60), random_dim(rng, 1, 60)};
    // Sprinkle in exact duplicates.
    for (std::size_t i = 0; i + 1 < n && rng.below(4) == 0; i += 2) cands[i + 1] = cands[i];

    const RList list = RList::from_candidates(cands);
    const CheckResult res = check_r_list(list);
    ASSERT_TRUE(res.ok()) << res.report();

    // Dominance pruning must not lose coverage: every candidate is on or
    // above the staircase of the pruned list.
    for (const RectImpl& c : cands) {
      const std::optional<Dim> h = list.min_height_at(c.w);
      ASSERT_TRUE(h.has_value());
      EXPECT_LE(*h, c.h);
    }

    // And the kept subset really came from the candidate set.
    const std::vector<std::size_t> kept = prune_rect_candidates(cands);
    ASSERT_EQ(kept.size(), list.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      EXPECT_EQ(cands[kept[i]], list[i]);
    }
  }
}

TEST(CombineFuzzTest, SliceMatchesNaiveAndChecksClean) {
  Pcg32 rng(202);
  BudgetTracker budget(0);
  for (int iter = 0; iter < 40; ++iter) {
    const RList a = random_r_list(1 + rng.below(12), rng);
    const RList b = random_r_list(1 + rng.below(12), rng);
    for (const bool horizontal : {false, true}) {
      OptimizerStats stats;
      const RCombineResult fast = combine_slice(a, b, horizontal, budget, stats);
      const RCombineResult naive = combine_slice_naive(a, b, horizontal, budget, stats);
      EXPECT_EQ(fast.list, naive.list);
      EXPECT_EQ(fast.prov.size(), fast.list.size());
      const CheckResult res = check_r_list(fast.list, "combine_slice");
      EXPECT_TRUE(res.ok()) << res.report();
    }
  }
}

TEST(CombineFuzzTest, WheelPipelineChecksCleanUnderEveryPruningMode) {
  Pcg32 rng(303);
  BudgetTracker budget(0);
  for (int iter = 0; iter < 12; ++iter) {
    const RList d = random_r_list(2 + rng.below(5), rng);
    const RList a = random_r_list(2 + rng.below(5), rng);
    const RList e = random_r_list(2 + rng.below(5), rng);
    const RList c = random_r_list(2 + rng.below(5), rng);
    const RList b = random_r_list(2 + rng.below(5), rng);
    for (const LPruning pruning :
         {LPruning::PerChain, LPruning::GlobalAtNode, LPruning::GlobalEager}) {
      OptimizerStats stats;
      const bool cross = pruning != LPruning::PerChain;
      // Raw combine output is only per-chain irreducible; the optimizer
      // removes cross-chain redundancy at store time via canonicalize().
      // Mirror that contract here.
      const auto settle = [&](LCombineResult&& out, const char* where) {
        if (cross) out.set.canonicalize();
        const CheckResult res = check_l_list_set(out.set, cross, where);
        EXPECT_TRUE(res.ok()) << res.report();
        return std::move(out);
      };

      const LCombineResult stacked =
          settle(combine_wheel_stack(d, a, pruning, budget, stats), "wheel-stack");
      const LCombineResult notched =
          settle(combine_wheel_fill_notch(stacked.set, e, pruning, budget, stats),
                 "wheel-fill-notch");
      const LCombineResult extended =
          settle(combine_wheel_extend(notched.set, c, pruning, budget, stats),
                 "wheel-extend");

      const RCombineResult closed = combine_wheel_close(extended.set, b, budget, stats);
      const CheckResult res = check_r_list(closed.list, "wheel-close");
      ASSERT_TRUE(res.ok()) << res.report();
      EXPECT_EQ(closed.prov.size(), closed.list.size());
      EXPECT_FALSE(closed.list.empty());
    }
  }
}

TEST(SelectionFuzzTest, RSelectionErrorMatchesGeometricOracle) {
  Pcg32 rng(404);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 4 + rng.below(20);
    const RList list = random_r_list(n, rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(n - 1));
    for (const SelectionDp dp : {SelectionDp::Generic, SelectionDp::Monge}) {
      const SelectionResult sel = r_selection(list, k, dp);
      ASSERT_EQ(sel.kept.size(), std::min(k, n));
      EXPECT_EQ(sel.error,
                static_cast<Weight>(staircase_subset_error(list.impls(), sel.kept)));
      const CheckResult res = check_selection_certificate(list, sel, k);
      EXPECT_TRUE(res.ok()) << res.report();
    }
  }
}

TEST(SelectionFuzzTest, RSelectionIsOptimalOnSmallLists) {
  Pcg32 rng(505);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 5 + rng.below(5);  // 5..9
    const RList list = random_r_list(n, rng);
    const std::size_t k = 3 + rng.below(2);  // 3..4
    const SelectionResult sel = r_selection(list, k);
    Weight best = kInfiniteWeight;
    test::for_each_endpoint_subset(n, k, [&](const std::vector<std::size_t>& kept) {
      best = std::min(best, static_cast<Weight>(staircase_subset_error(list.impls(), kept)));
    });
    EXPECT_EQ(sel.error, best);
  }
}

TEST(SelectionFuzzTest, LSelectionCertifiesAndIsOptimalOnSmallChains) {
  Pcg32 rng(606);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 5 + rng.below(5);  // 5..9
    const LList chain = random_l_chain(n, rng);
    std::vector<LImpl> shapes;
    for (const LEntry& entry : chain) shapes.push_back(entry.shape);
    const std::size_t k = 3 + rng.below(2);  // 3..4
    for (const LpMetric metric : {LpMetric::L1, LpMetric::L2, LpMetric::LInf}) {
      LSelectionOptions opts;
      opts.metric = metric;
      const SelectionResult sel = l_selection(chain, k, opts);
      ASSERT_EQ(sel.kept.size(), k);
      const CheckResult res = check_l_selection_certificate(chain, sel, k, metric);
      EXPECT_TRUE(res.ok()) << res.report();

      // Optimality against the definition-level brute force (which uses
      // the whole kept set, not the Lemma-3 neighbor shortcut).
      Weight best = kInfiniteWeight;
      test::for_each_endpoint_subset(n, k, [&](const std::vector<std::size_t>& kept) {
        best = std::min(best, test::brute_force_l_error(shapes, kept, metric));
      });
      EXPECT_NEAR(sel.error, best, 1e-6 * std::max<Weight>(1.0, best));
    }
  }
}

TEST(SelectionFuzzTest, LSelectionAutoAgreesWithGenericOnL1) {
  Pcg32 rng(707);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t n = 4 + rng.below(20);
    const LList chain = random_l_chain(n, rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(n - 1));
    LSelectionOptions generic;
    generic.dp = SelectionDp::Generic;
    LSelectionOptions fast;
    fast.dp = SelectionDp::Auto;
    const SelectionResult g = l_selection(chain, k, generic);
    const SelectionResult f = l_selection(chain, k, fast);
    EXPECT_EQ(f.error, g.error);
    const CheckResult res = check_l_selection_certificate(chain, f, k, LpMetric::L1);
    EXPECT_TRUE(res.ok()) << res.report();
  }
}

TEST(SelectionFuzzTest, KeepEverythingContract) {
  Pcg32 rng(808);
  const RList list = random_r_list(6, rng);
  for (const std::size_t k : {std::size_t{0}, std::size_t{6}, std::size_t{99}}) {
    const SelectionResult sel = r_selection(list, k);
    EXPECT_EQ(sel.kept.size(), list.size());
    EXPECT_EQ(sel.error, 0);
    EXPECT_TRUE(check_selection_certificate(list, sel, k).ok());
  }
  const LList chain = random_l_chain(6, rng);
  const SelectionResult sel = l_selection(chain, 0);
  EXPECT_EQ(sel.kept.size(), chain.size());
  EXPECT_EQ(sel.error, 0);
  EXPECT_TRUE(check_l_selection_certificate(chain, sel, 0, LpMetric::L1).ok());
}

}  // namespace
}  // namespace fpopt
