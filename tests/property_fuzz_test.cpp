// Randomized property tests (satellite of the invariant-audit PR): fuzz the
// pruning, combine and selection kernels with Pcg32-generated inputs and
// assert that (a) every produced artifact passes the src/check/ validators
// and (b) selection errors match the independent geometric oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check_certificate.h"
#include "check/check_shapes.h"
#include "core/l_selection.h"
#include "core/r_selection.h"
#include "geometry/staircase.h"
#include "kernel/kernel.h"
#include "optimize/combine.h"
#include "optimize/curve_queries.h"
#include "optimize/optimizer.h"
#include "runtime/thread_pool.h"
#include "shape/r_list.h"
#include "test_util.h"
#include "workload/floorplans.h"
#include "workload/rng.h"

namespace fpopt {
namespace {

using test::random_l_chain;
using test::random_r_list;

Dim random_dim(Pcg32& rng, std::uint32_t lo, std::uint32_t hi) {
  return static_cast<Dim>(lo + rng.below(hi - lo + 1));
}

TEST(PruneFuzzTest, FromCandidatesIsIrreducibleAndCoversEveryCandidate) {
  Pcg32 rng(101);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(40);
    std::vector<RectImpl> cands(n);
    for (RectImpl& c : cands) c = {random_dim(rng, 1, 60), random_dim(rng, 1, 60)};
    // Sprinkle in exact duplicates.
    for (std::size_t i = 0; i + 1 < n && rng.below(4) == 0; i += 2) cands[i + 1] = cands[i];

    const RList list = RList::from_candidates(cands);
    const CheckResult res = check_r_list(list);
    ASSERT_TRUE(res.ok()) << res.report();

    // Dominance pruning must not lose coverage: every candidate is on or
    // above the staircase of the pruned list.
    for (const RectImpl& c : cands) {
      const std::optional<Dim> h = list.min_height_at(c.w);
      ASSERT_TRUE(h.has_value());
      EXPECT_LE(*h, c.h);
    }

    // And the kept subset really came from the candidate set.
    const std::vector<std::size_t> kept = prune_rect_candidates(cands);
    ASSERT_EQ(kept.size(), list.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      EXPECT_EQ(cands[kept[i]], list[i]);
    }
  }
}

TEST(CombineFuzzTest, SliceMatchesNaiveAndChecksClean) {
  Pcg32 rng(202);
  BudgetTracker budget(0);
  for (int iter = 0; iter < 40; ++iter) {
    const RList a = random_r_list(1 + rng.below(12), rng);
    const RList b = random_r_list(1 + rng.below(12), rng);
    for (const bool horizontal : {false, true}) {
      OptimizerStats stats;
      const RCombineResult fast = combine_slice(a, b, horizontal, budget, stats);
      const RCombineResult naive = combine_slice_naive(a, b, horizontal, budget, stats);
      EXPECT_EQ(fast.list, naive.list);
      EXPECT_EQ(fast.prov.size(), fast.list.size());
      const CheckResult res = check_r_list(fast.list, "combine_slice");
      EXPECT_TRUE(res.ok()) << res.report();
    }
  }
}

TEST(CombineFuzzTest, WheelPipelineChecksCleanUnderEveryPruningMode) {
  Pcg32 rng(303);
  BudgetTracker budget(0);
  for (int iter = 0; iter < 12; ++iter) {
    const RList d = random_r_list(2 + rng.below(5), rng);
    const RList a = random_r_list(2 + rng.below(5), rng);
    const RList e = random_r_list(2 + rng.below(5), rng);
    const RList c = random_r_list(2 + rng.below(5), rng);
    const RList b = random_r_list(2 + rng.below(5), rng);
    for (const LPruning pruning :
         {LPruning::PerChain, LPruning::GlobalAtNode, LPruning::GlobalEager}) {
      OptimizerStats stats;
      const bool cross = pruning != LPruning::PerChain;
      // Raw combine output is only per-chain irreducible; the optimizer
      // removes cross-chain redundancy at store time via canonicalize().
      // Mirror that contract here.
      const auto settle = [&](LCombineResult&& out, const char* where) {
        if (cross) out.set.canonicalize();
        const CheckResult res = check_l_list_set(out.set, cross, where);
        EXPECT_TRUE(res.ok()) << res.report();
        return std::move(out);
      };

      const LCombineResult stacked =
          settle(combine_wheel_stack(d, a, pruning, budget, stats), "wheel-stack");
      const LCombineResult notched =
          settle(combine_wheel_fill_notch(stacked.set, e, pruning, budget, stats),
                 "wheel-fill-notch");
      const LCombineResult extended =
          settle(combine_wheel_extend(notched.set, c, pruning, budget, stats),
                 "wheel-extend");

      const RCombineResult closed = combine_wheel_close(extended.set, b, budget, stats);
      const CheckResult res = check_r_list(closed.list, "wheel-close");
      ASSERT_TRUE(res.ok()) << res.report();
      EXPECT_EQ(closed.prov.size(), closed.list.size());
      EXPECT_FALSE(closed.list.empty());
    }
  }
}

TEST(SelectionFuzzTest, RSelectionErrorMatchesGeometricOracle) {
  Pcg32 rng(404);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 4 + rng.below(20);
    const RList list = random_r_list(n, rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(n - 1));
    for (const SelectionDp dp : {SelectionDp::Generic, SelectionDp::Monge}) {
      const SelectionResult sel = r_selection(list, k, dp);
      ASSERT_EQ(sel.kept.size(), std::min(k, n));
      EXPECT_EQ(sel.error,
                static_cast<Weight>(staircase_subset_error(list.impls(), sel.kept)));
      const CheckResult res = check_selection_certificate(list, sel, k);
      EXPECT_TRUE(res.ok()) << res.report();
    }
  }
}

TEST(SelectionFuzzTest, RSelectionIsOptimalOnSmallLists) {
  Pcg32 rng(505);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 5 + rng.below(5);  // 5..9
    const RList list = random_r_list(n, rng);
    const std::size_t k = 3 + rng.below(2);  // 3..4
    const SelectionResult sel = r_selection(list, k);
    Weight best = kInfiniteWeight;
    test::for_each_endpoint_subset(n, k, [&](const std::vector<std::size_t>& kept) {
      best = std::min(best, static_cast<Weight>(staircase_subset_error(list.impls(), kept)));
    });
    EXPECT_EQ(sel.error, best);
  }
}

TEST(SelectionFuzzTest, LSelectionCertifiesAndIsOptimalOnSmallChains) {
  Pcg32 rng(606);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 5 + rng.below(5);  // 5..9
    const LList chain = random_l_chain(n, rng);
    std::vector<LImpl> shapes;
    for (const LEntry& entry : chain) shapes.push_back(entry.shape);
    const std::size_t k = 3 + rng.below(2);  // 3..4
    for (const LpMetric metric : {LpMetric::L1, LpMetric::L2, LpMetric::LInf}) {
      LSelectionOptions opts;
      opts.metric = metric;
      const SelectionResult sel = l_selection(chain, k, opts);
      ASSERT_EQ(sel.kept.size(), k);
      const CheckResult res = check_l_selection_certificate(chain, sel, k, metric);
      EXPECT_TRUE(res.ok()) << res.report();

      // Optimality against the definition-level brute force (which uses
      // the whole kept set, not the Lemma-3 neighbor shortcut).
      Weight best = kInfiniteWeight;
      test::for_each_endpoint_subset(n, k, [&](const std::vector<std::size_t>& kept) {
        best = std::min(best, test::brute_force_l_error(shapes, kept, metric));
      });
      EXPECT_NEAR(sel.error, best, 1e-6 * std::max<Weight>(1.0, best));
    }
  }
}

TEST(SelectionFuzzTest, LSelectionAutoAgreesWithGenericOnL1) {
  Pcg32 rng(707);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t n = 4 + rng.below(20);
    const LList chain = random_l_chain(n, rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(n - 1));
    LSelectionOptions generic;
    generic.dp = SelectionDp::Generic;
    LSelectionOptions fast;
    fast.dp = SelectionDp::Auto;
    const SelectionResult g = l_selection(chain, k, generic);
    const SelectionResult f = l_selection(chain, k, fast);
    EXPECT_EQ(f.error, g.error);
    const CheckResult res = check_l_selection_certificate(chain, f, k, LpMetric::L1);
    EXPECT_TRUE(res.ok()) << res.report();
  }
}

TEST(SelectionFuzzTest, KeepEverythingContract) {
  Pcg32 rng(808);
  const RList list = random_r_list(6, rng);
  for (const std::size_t k : {std::size_t{0}, std::size_t{6}, std::size_t{99}}) {
    const SelectionResult sel = r_selection(list, k);
    EXPECT_EQ(sel.kept.size(), list.size());
    EXPECT_EQ(sel.error, 0);
    EXPECT_TRUE(check_selection_certificate(list, sel, k).ok());
  }
  const LList chain = random_l_chain(6, rng);
  const SelectionResult sel = l_selection(chain, 0);
  EXPECT_EQ(sel.kept.size(), chain.size());
  EXPECT_EQ(sel.error, 0);
  EXPECT_TRUE(check_l_selection_certificate(chain, sel, 0, LpMetric::L1).ok());
}

// ---- parallel combine / selection fuzz ---------------------------------
//
// The pooled kernels promise results identical to the serial ones (same
// kept indices, same error doubles, same reduced chains). Fuzz them with
// a live pool; under FPOPT_VALIDATE the store-side validators run too.

TEST(ParallelFuzzTest, PooledRSelectionMatchesSerial) {
  Pcg32 rng(909);
  ThreadPool pool(4);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = 4 + rng.below(40);
    const RList list = random_r_list(n, rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(n - 1));
    for (const SelectionDp dp : {SelectionDp::Generic, SelectionDp::Monge}) {
      const SelectionResult serial = r_selection(list, k, dp, nullptr);
      const SelectionResult pooled = r_selection(list, k, dp, &pool);
      EXPECT_EQ(pooled.kept, serial.kept);
      EXPECT_EQ(pooled.error, serial.error);
      const CheckResult res = check_selection_certificate(list, pooled, k);
      EXPECT_TRUE(res.ok()) << res.report();
    }
  }
}

TEST(ParallelFuzzTest, PooledLSelectionMatchesSerial) {
  Pcg32 rng(1010);
  ThreadPool pool(4);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 4 + rng.below(24);
    const LList chain = random_l_chain(n, rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(n - 1));
    for (const LpMetric metric : {LpMetric::L1, LpMetric::L2, LpMetric::LInf}) {
      LSelectionOptions opts;
      opts.metric = metric;
      const SelectionResult serial = l_selection(chain, k, opts, nullptr);
      const SelectionResult pooled = l_selection(chain, k, opts, &pool);
      EXPECT_EQ(pooled.kept, serial.kept);
      EXPECT_EQ(pooled.error, serial.error);
      const CheckResult res = check_l_selection_certificate(chain, pooled, k, metric);
      EXPECT_TRUE(res.ok()) << res.report();
    }
  }
}

TEST(ParallelFuzzTest, PooledReduceLSetMatchesSerial) {
  Pcg32 rng(1111);
  ThreadPool pool(4);
  for (int iter = 0; iter < 15; ++iter) {
    LListSet a;
    const std::size_t chains = 2 + rng.below(4);
    for (std::size_t c = 0; c < chains; ++c) a.add(random_l_chain(3 + rng.below(10), rng));
    LListSet b = a;
    const std::size_t k2 = 4 + rng.below(8);
    const LSelectionOptions opts;
    const LReductionReport rs = reduce_l_set(a, k2, 1.0, opts, nullptr);
    const LReductionReport rp = reduce_l_set(b, k2, 1.0, opts, &pool);
    EXPECT_EQ(rp.triggered, rs.triggered);
    EXPECT_EQ(rp.before, rs.before);
    EXPECT_EQ(rp.after, rs.after);
    EXPECT_EQ(rp.total_error, rs.total_error);
    EXPECT_EQ(a, b);  // identical reduced chains, byte for byte
  }
}

TEST(ParallelFuzzTest, ParallelOptimizeArtifactsValidate) {
  // End-to-end fuzz of the parallel combine/selection store paths: random
  // small workloads through the full parallel engine. Under FPOPT_VALIDATE
  // every stored node list is checked inside the optimizer itself; here we
  // additionally require serial/parallel artifact equality.
  Pcg32 rng(1212);
  for (int iter = 0; iter < 6; ++iter) {
    WorkloadConfig cfg;
    cfg.seed = 3000 + static_cast<std::uint64_t>(iter);
    cfg.impls_per_module = 3 + rng.below(4);
    const FloorplanTree tree = iter % 2 == 0
                                   ? make_single_pinwheel(cfg)
                                   : make_grid(2, 2 + static_cast<std::size_t>(iter) % 3, cfg);
    OptimizerOptions opts;
    opts.selection.k1 = 4 + rng.below(6);
    opts.selection.k2 = 6 + rng.below(8);
    const OptimizeOutcome serial = optimize_floorplan(tree, opts);
    opts.threads = 2 + rng.below(3);
    const OptimizeOutcome parallel = optimize_floorplan(tree, opts);
    ASSERT_FALSE(serial.out_of_memory);
    ASSERT_FALSE(parallel.out_of_memory);
    EXPECT_EQ(parallel.best_area, serial.best_area);
    ASSERT_EQ(parallel.artifacts->nodes.size(), serial.artifacts->nodes.size());
    for (std::size_t id = 0; id < serial.artifacts->nodes.size(); ++id) {
      const NodeResult& s = serial.artifacts->nodes[id];
      const NodeResult& p = parallel.artifacts->nodes[id];
      EXPECT_EQ(p.is_l, s.is_l) << "node " << id;
      EXPECT_EQ(p.rlist, s.rlist) << "node " << id;
      EXPECT_EQ(p.rprov, s.rprov) << "node " << id;
      EXPECT_EQ(p.lset, s.lset) << "node " << id;
      EXPECT_EQ(p.lprov, s.lprov) << "node " << id;
    }
  }
}

// ---- kernel-backend fuzz ------------------------------------------------
//
// Satellite of the SIMD kernel pass: replay the combine/selection surfaces
// under both kernel backends and require byte-identical results, leaning
// on the shapes the row kernels care about — one-module lists (rows of
// length 1, pure tail), equal-area ties (the argmin tie-break), and long
// lists whose rows span many full vector blocks plus every tail. When the
// build or CPU lacks AVX2 the Avx2 guard does not apply and the replay
// degrades to scalar-vs-scalar.

template <typename Fn>
auto replay_under(kernel::KernelMode mode, Fn&& fn) {
  kernel::KernelModeGuard guard(mode);
  return fn();
}

TEST(KernelFuzzTest, DegenerateOneModuleListsMatchAcrossBackends) {
  Pcg32 rng(1313);
  BudgetTracker budget(0);
  for (int iter = 0; iter < 10; ++iter) {
    const RList d = random_r_list(1, rng);
    const RList a = random_r_list(1, rng);
    const RList e = random_r_list(1, rng);
    const RList c = random_r_list(1, rng);
    const RList b = random_r_list(1, rng);
    const auto run = [&] {
      OptimizerStats stats;
      const LCombineResult stacked =
          combine_wheel_stack(d, a, LPruning::PerChain, budget, stats);
      const LCombineResult notched =
          combine_wheel_fill_notch(stacked.set, e, LPruning::PerChain, budget, stats);
      const LCombineResult extended =
          combine_wheel_extend(notched.set, c, LPruning::PerChain, budget, stats);
      RCombineResult closed = combine_wheel_close(extended.set, b, budget, stats);
      const RCombineResult sliced = combine_slice(a, b, iter % 2 == 0, budget, stats);
      closed.list = RList::from_candidates([&] {
        std::vector<RectImpl> all(closed.list.begin(), closed.list.end());
        all.insert(all.end(), sliced.list.begin(), sliced.list.end());
        return all;
      }());
      return closed.list;
    };
    const RList scalar = replay_under(kernel::KernelMode::Scalar, run);
    const RList avx2 = replay_under(kernel::KernelMode::Avx2, run);
    EXPECT_EQ(scalar, avx2);
    EXPECT_TRUE(check_r_list(scalar, "kernel-fuzz-degenerate").ok());
  }
}

TEST(KernelFuzzTest, EqualAreaTiesMatchAcrossBackends) {
  // Staircase whose corners share areas pairwise (24 = 12x2 = 8x3 = 6x4 =
  // 4x6 = 3x8 = 2x12): every argmin in selection and the curve queries
  // runs into value ties and must break them by first index identically.
  const RList list = RList::from_sorted_unchecked(
      std::vector<RectImpl>{{12, 2}, {8, 3}, {6, 4}, {4, 6}, {3, 8}, {2, 12}});
  for (const std::size_t k : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    for (const SelectionDp dp : {SelectionDp::Generic, SelectionDp::Monge}) {
      const SelectionResult scalar = replay_under(kernel::KernelMode::Scalar,
                                                  [&] { return r_selection(list, k, dp); });
      const SelectionResult avx2 = replay_under(kernel::KernelMode::Avx2,
                                                [&] { return r_selection(list, k, dp); });
      EXPECT_EQ(scalar.kept, avx2.kept) << "k=" << k;
      EXPECT_EQ(scalar.error, avx2.error) << "k=" << k;
    }
  }
  for (const Dim box : {Dim{3}, Dim{6}, Dim{12}, Dim{24}}) {
    const auto query = [&] { return best_in_outline(list, box, box); };
    EXPECT_EQ(replay_under(kernel::KernelMode::Scalar, query),
              replay_under(kernel::KernelMode::Avx2, query))
        << "box=" << box;
  }
  const auto square = [&] { return smallest_square_side(list); };
  EXPECT_EQ(replay_under(kernel::KernelMode::Scalar, square),
            replay_under(kernel::KernelMode::Avx2, square));
}

TEST(KernelFuzzTest, LongListsMatchAcrossBackends) {
  Pcg32 rng(1414);
  BudgetTracker budget(0);
  // Rows far past one vector block: 512-corner staircases and 300-element
  // chains hit 128 full 4-lane blocks plus assorted tails as the DP layer
  // bounds shift.
  const RList list = random_r_list(512, rng, 3);
  const LList chain = random_l_chain(300, rng, 3);
  for (const SelectionDp dp : {SelectionDp::Generic, SelectionDp::Monge}) {
    const auto run_r = [&] { return r_selection(list, 16, dp); };
    const SelectionResult rs = replay_under(kernel::KernelMode::Scalar, run_r);
    const SelectionResult rv = replay_under(kernel::KernelMode::Avx2, run_r);
    EXPECT_EQ(rs.kept, rv.kept);
    EXPECT_EQ(rs.error, rv.error);

    LSelectionOptions lopts;
    lopts.dp = dp;
    const auto run_l = [&] { return l_selection(chain, 11, lopts); };
    const SelectionResult ls = replay_under(kernel::KernelMode::Scalar, run_l);
    const SelectionResult lv = replay_under(kernel::KernelMode::Avx2, run_l);
    EXPECT_EQ(ls.kept, lv.kept);
    EXPECT_EQ(ls.error, lv.error);
  }
  const RList a = random_r_list(200, rng, 3);
  const RList b = random_r_list(200, rng, 3);
  const auto run_slice = [&] {
    OptimizerStats stats;
    return combine_slice(a, b, false, budget, stats).list;
  };
  EXPECT_EQ(replay_under(kernel::KernelMode::Scalar, run_slice),
            replay_under(kernel::KernelMode::Avx2, run_slice));
}

}  // namespace
}  // namespace fpopt
