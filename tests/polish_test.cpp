// Tests for normalized Polish expressions: validity invariants, the three
// moves, tree conversion, and Stockmeyer evaluation.
#include <gtest/gtest.h>

#include "floorplan/serialize.h"
#include "optimize/stockmeyer.h"
#include "topology/polish.h"
#include "workload/module_gen.h"

namespace fpopt {
namespace {

std::vector<Module> some_modules(std::size_t n, std::uint64_t seed = 5) {
  ModuleGenConfig cfg;
  cfg.impl_count = 4;
  return generate_modules(n, cfg, seed);
}

TEST(PolishExprTest, InitialExpressionIsValid) {
  for (const std::size_t n : {1u, 2u, 3u, 7u, 20u}) {
    const PolishExpr e = PolishExpr::initial(n);
    EXPECT_TRUE(e.valid()) << "n=" << n;
    EXPECT_EQ(e.operand_count(), n);
    EXPECT_EQ(e.tokens().size(), 2 * n - 1);
  }
  EXPECT_EQ(PolishExpr::initial(3).to_string(), "m0 m1 V m2 H");
  EXPECT_EQ(PolishExpr::initial(3, /*alternate=*/false).to_string(), "m0 m1 V m2 V");
}

TEST(PolishExprTest, ValidityRejectsBrokenSequences) {
  using T = PolishToken;
  EXPECT_TRUE(PolishExpr::from_tokens_unchecked({{0}}).valid()) << "single operand";
  EXPECT_FALSE(PolishExpr::from_tokens_unchecked({}).valid()) << "empty";
  EXPECT_FALSE(PolishExpr::from_tokens_unchecked({{0}, {1}, {T::kV}, {T::kV}}).valid())
      << "too many operators";
  EXPECT_FALSE(PolishExpr::from_tokens_unchecked({{0}, {T::kV}, {1}}).valid())
      << "balloting violated";
  EXPECT_FALSE(
      PolishExpr::from_tokens_unchecked({{0}, {1}, {T::kV}, {2}, {3}, {T::kV}, {T::kV}})
          .valid())
      << "adjacent identical operators (not normalized)";
  EXPECT_TRUE(
      PolishExpr::from_tokens_unchecked({{0}, {1}, {T::kV}, {2}, {3}, {T::kV}, {T::kH}})
          .valid());
  EXPECT_FALSE(PolishExpr::from_tokens_unchecked({{0}, {0}, {T::kV}}).valid())
      << "module id repeated";
  EXPECT_FALSE(PolishExpr::from_tokens_unchecked({{0}, {5}, {T::kV}}).valid())
      << "module id out of range";
}

TEST(PolishExprTest, MovesPreserveAllInvariants) {
  Pcg32 rng(7);
  for (const std::size_t n : {2u, 5u, 12u, 30u}) {
    PolishExpr e = PolishExpr::initial(n);
    for (int step = 0; step < 400; ++step) {
      e.random_move(rng);
      ASSERT_TRUE(e.valid()) << "n=" << n << " step=" << step << " expr=" << e.to_string();
    }
  }
}

TEST(PolishExprTest, MovesActuallyChangeTheExpression) {
  Pcg32 rng(9);
  PolishExpr e = PolishExpr::initial(8);
  const PolishExpr original = e;
  int changed = 0;
  for (int step = 0; step < 50; ++step) {
    PolishExpr before = e;
    if (e.random_move(rng) && !(e == before)) ++changed;
  }
  EXPECT_GT(changed, 25);
  EXPECT_FALSE(e == original);
}

TEST(PolishExprTest, TreeConversionUsesEveryModuleOnce) {
  Pcg32 rng(11);
  PolishExpr e = PolishExpr::initial(9);
  for (int i = 0; i < 100; ++i) e.random_move(rng);
  FloorplanTree tree = e.to_tree(some_modules(9));
  EXPECT_TRUE(tree.validate().empty());
  EXPECT_EQ(tree.stats().leaf_count, 9u);
  EXPECT_EQ(tree.stats().wheel_count, 0u);
}

TEST(PolishExprTest, EvaluationMatchesStockmeyerOnTheConvertedTree) {
  Pcg32 rng(13);
  const auto modules = some_modules(7);
  PolishExpr e = PolishExpr::initial(7);
  for (int iter = 0; iter < 25; ++iter) {
    for (int i = 0; i < 20; ++i) e.random_move(rng);
    const FloorplanTree tree = e.to_tree(modules);
    EXPECT_EQ(e.min_area(modules), stockmeyer_best_area(tree).value());
    EXPECT_EQ(e.shape_curve(modules), stockmeyer_shape_curve(tree).value());
  }
}

TEST(PolishExprTest, HandExampleEvaluation) {
  // m0 m1 H: stacked. Modules: 3x2|2x3 and 2x2.
  auto modules = parse_module_library("a 3x2 2x3\nb 2x2\n");
  const PolishExpr e = PolishExpr::from_tokens_unchecked({{0}, {1}, {PolishToken::kH}});
  // Stack: (3, 2+2)=12 or (2+... (2x3)+(2x2) -> (2? max(2,2)=2 x 5)=10.
  EXPECT_EQ(e.min_area(modules), 10);
}

}  // namespace
}  // namespace fpopt
