// Unit and property tests for irreducible L-lists, chain pruning, and
// L-list sets (global pruning + chain partition).
#include <gtest/gtest.h>

#include <set>

#include "shape/l_list.h"
#include "shape/l_list_set.h"
#include "test_util.h"

namespace fpopt {
namespace {

TEST(LChainTest, IrreducibleDetection) {
  const std::vector<LImpl> good{{12, 5, 6, 3}, {10, 5, 7, 4}, {8, 5, 9, 4}};
  EXPECT_TRUE(is_irreducible_l_chain(good));
  const std::vector<LImpl> wrong_w2{{12, 5, 6, 3}, {10, 6, 7, 4}};
  EXPECT_FALSE(is_irreducible_l_chain(wrong_w2));
  const std::vector<LImpl> equal_w1{{12, 5, 6, 3}, {12, 5, 7, 4}};
  EXPECT_FALSE(is_irreducible_l_chain(equal_w1));
  const std::vector<LImpl> decreasing_h{{12, 5, 6, 3}, {10, 5, 5, 3}};
  EXPECT_FALSE(is_irreducible_l_chain(decreasing_h));
  EXPECT_TRUE(is_irreducible_l_chain(std::vector<LImpl>{}));
}

TEST(LListTest, FromPrechainPrunesDominatedEntries) {
  // Ties in w1: the earlier (taller) entry is redundant; ties in heights:
  // the wider entry is redundant.
  const std::vector<LEntry> pre{
      {{12, 5, 6, 3}, 0}, {{12, 5, 6, 3}, 1},  // duplicate
      {{10, 5, 6, 3}, 2},                      // same heights, narrower: makes id1 redundant
      {{8, 5, 9, 4}, 3},
  };
  const LList pruned = LList::from_prechain(pre);
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned[0].id, 2u);
  EXPECT_EQ(pruned[1].id, 3u);
}

TEST(LListTest, FromPrechainKeepsStrictChains) {
  Pcg32 rng(5);
  for (int iter = 0; iter < 30; ++iter) {
    const LList chain = test::random_l_chain(10, rng);
    const std::vector<LEntry> pre(chain.begin(), chain.end());
    EXPECT_EQ(LList::from_prechain(pre), chain) << "already-irreducible chains are unchanged";
  }
}

TEST(LListTest, SubsetKeepsIdsAndInvariant) {
  Pcg32 rng(6);
  const LList chain = test::random_l_chain(9, rng);
  const std::vector<std::size_t> kept{0, 2, 5, 8};
  const LList sub = chain.subset(kept);
  ASSERT_EQ(sub.size(), 4u);
  for (std::size_t i = 0; i < kept.size(); ++i) EXPECT_EQ(sub[i], chain[kept[i]]);
}

TEST(LListSetTest, AddIgnoresEmptyAndCountsTotals) {
  LListSet set;
  set.add(LList{});
  EXPECT_TRUE(set.empty());
  Pcg32 rng(7);
  set.add(test::random_l_chain(4, rng));
  set.add(test::random_l_chain(6, rng));
  EXPECT_EQ(set.list_count(), 2u);
  EXPECT_EQ(set.total_size(), 10u);
  EXPECT_EQ(set.all_entries().size(), 10u);
}

TEST(ParetoMinTest, DropsCrossChainDominatedEntries) {
  // Same w2 group; the second entry is dominated by the first.
  std::vector<LEntry> entries{
      {{10, 5, 6, 3}, 0},
      {{11, 5, 7, 3}, 1},  // dominates nothing, dominated by... it dominates entry 0? No:
                           // (11,5,7,3) >= (10,5,6,3) componentwise -> redundant.
      {{9, 5, 8, 2}, 2},   // incomparable with entry 0
  };
  const auto kept = pareto_min_l_entries(entries);
  std::set<std::uint32_t> ids;
  for (const LEntry& e : kept) ids.insert(e.id);
  EXPECT_EQ(ids, (std::set<std::uint32_t>{0, 2}));
}

TEST(ParetoMinTest, KeepsOneCopyOfDuplicates) {
  std::vector<LEntry> entries{{{10, 5, 6, 3}, 0}, {{10, 5, 6, 3}, 1}, {{10, 5, 6, 3}, 2}};
  EXPECT_EQ(pareto_min_l_entries(entries).size(), 1u);
}

TEST(ParetoMinTest, AgreesWithQuadraticOracleOnRandomGroups) {
  Pcg32 rng(23);
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<LEntry> entries;
    const std::size_t n = 1 + rng.below(60);
    for (std::size_t i = 0; i < n; ++i) {
      const Dim h2 = 1 + static_cast<Dim>(rng.below(12));
      const Dim h1 = h2 + static_cast<Dim>(rng.below(12));
      entries.push_back(
          {{7 + static_cast<Dim>(rng.below(12)), 7, h1, h2}, static_cast<std::uint32_t>(i)});
    }
    const auto kept = pareto_min_l_entries(entries);
    // Oracle on unique shapes.
    std::vector<LImpl> uniq;
    for (const LEntry& e : entries) uniq.push_back(e.shape);
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    std::size_t expected = 0;
    for (const LImpl& c : uniq) {
      bool redundant = false;
      for (const LImpl& other : uniq) {
        if (other != c && c.dominates(other)) redundant = true;
      }
      if (!redundant) ++expected;
    }
    ASSERT_EQ(kept.size(), expected);
    // No kept entry dominates another.
    for (const LEntry& a : kept) {
      for (const LEntry& b : kept) {
        if (a.id != b.id) {
          EXPECT_FALSE(a.shape.dominates(b.shape));
        }
      }
    }
  }
}

TEST(ChainPartitionTest, ProducesValidChainsCoveringAllEntries) {
  Pcg32 rng(31);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<LEntry> entries;
    const std::size_t n = 1 + rng.below(50);
    for (std::size_t i = 0; i < n; ++i) {
      const Dim h2 = 1 + static_cast<Dim>(rng.below(15));
      const Dim h1 = h2 + static_cast<Dim>(rng.below(15));
      entries.push_back(
          {{9 + static_cast<Dim>(rng.below(15)), 9, h1, h2}, static_cast<std::uint32_t>(i)});
    }
    const auto minimal = pareto_min_l_entries(entries);
    const auto chains = partition_into_chains(minimal);
    std::size_t covered = 0;
    std::set<std::uint32_t> seen;
    for (const LList& c : chains) {
      EXPECT_TRUE(is_irreducible_l_chain(c.shapes()));
      covered += c.size();
      for (const LEntry& e : c) seen.insert(e.id);
    }
    EXPECT_EQ(covered, minimal.size());
    EXPECT_EQ(seen.size(), minimal.size()) << "every entry lands in exactly one chain";
  }
}

TEST(LListSetCanonicalizeTest, RemovesCrossChainRedundancyAndPreservesIds) {
  LListSet set;
  set.add(LList::from_chain_unchecked({{{12, 5, 6, 3}, 0}, {{10, 5, 7, 4}, 1}}));
  set.add(LList::from_chain_unchecked({{{12, 5, 6, 4}, 2}}));  // dominates nothing... it
  // dominates entry 0? (12,5,6,4) >= (12,5,6,3): yes -> id 2 is redundant.
  set.add(LList::from_chain_unchecked({{{20, 9, 4, 2}, 3}}));  // different w2 group
  const std::size_t removed = set.canonicalize();
  EXPECT_EQ(removed, 1u);
  std::set<std::uint32_t> ids;
  for (const LEntry& e : set.all_entries()) ids.insert(e.id);
  EXPECT_EQ(ids, (std::set<std::uint32_t>{0, 1, 3}));
}

TEST(LListSetCanonicalizeTest, IdempotentOnRandomSets) {
  Pcg32 rng(41);
  for (int iter = 0; iter < 20; ++iter) {
    LListSet set;
    for (int c = 0; c < 4; ++c) set.add(test::random_l_chain(6, rng));
    set.canonicalize();
    const std::size_t after_first = set.total_size();
    EXPECT_EQ(set.canonicalize(), 0u);
    EXPECT_EQ(set.total_size(), after_first);
  }
}

}  // namespace
}  // namespace fpopt
