// Daemon-vs-standalone equivalence (ISSUE: fpoptd batching service).
//
// The service promises that a daemon response's `output` field is
// byte-identical to standalone `fpopt` stdout for the same inputs —
// regardless of thread count, shared-cache state (cold or warm, on or
// off), request interleaving, or concurrency — and that over-budget
// aborts make the same decision with the same message on both sides.
// These tests drive the real Service::handle_frame (the exact code both
// transports call) against run_cli over the golden workload corpus
// fp1..fp4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "floorplan/serialize.h"
#include "io/cli.h"
#include "optimize/optimizer.h"
#include "service/protocol.h"
#include "service/service.h"
#include "telemetry/json.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

WorkloadConfig golden_config() {
  WorkloadConfig cfg;
  cfg.seed = 1;
  cfg.impls_per_module = 5;
  return cfg;
}

FloorplanTree corpus_tree(int fp) {
  switch (fp) {
    case 1:
      return make_fp1(golden_config());
    case 2:
      return make_fp2(golden_config());
    case 3:
      return make_fp3(golden_config());
    default:
      return make_fp4(golden_config());
  }
}

struct Workload {
  std::string topology;
  std::string library;
};

Workload corpus_text(int fp) {
  const FloorplanTree tree = corpus_tree(fp);
  return {to_topology_string(tree), to_module_library_string(tree.modules())};
}

/// Temp-file pair for the standalone CLI (which reads from disk).
struct CliFiles {
  std::string topo_path;
  std::string lib_path;

  CliFiles(const std::string& tag, const Workload& w) {
    const std::string base = testing::TempDir() +
                             testing::UnitTest::GetInstance()->current_test_info()->name() +
                             "_" + tag;
    topo_path = base + ".topo";
    lib_path = base + ".lib";
    std::ofstream(topo_path, std::ios::binary) << w.topology;
    std::ofstream(lib_path, std::ios::binary) << w.library;
  }
};

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_standalone(const Workload& w, const std::string& tag,
                      const std::vector<std::string>& flags) {
  CliFiles files(tag, w);
  std::vector<std::string> args = {flags.empty() ? "optimize" : flags[0], files.topo_path,
                                   files.lib_path};
  for (std::size_t i = 1; i < flags.size(); ++i) args.push_back(flags[i]);
  CliRun r;
  std::ostringstream out;
  std::ostringstream err;
  r.code = run_cli(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

/// Build one request frame. `options_json` is the raw members of the
/// options object ("" = none), e.g. "\"k1\":8,\"threads\":2".
std::string request_frame(const std::string& id, const std::string& command,
                          const Workload& w, const std::string& options_json,
                          bool report = false) {
  std::string frame = "{\"fpopt_request\":{\"schema_version\":1,\"id\":" +
                      telemetry::json_quote(id) +
                      ",\"command\":" + telemetry::json_quote(command) +
                      ",\"topology\":" + telemetry::json_quote(w.topology) +
                      ",\"library\":" + telemetry::json_quote(w.library);
  if (!options_json.empty()) frame += ",\"options\":{" + options_json + "}";
  if (report) frame += ",\"report\":true";
  frame += "}}";
  return frame;
}

/// Parse a response and return the validated fpopt_response object.
telemetry::JsonValue parse_response(const std::string& line) {
  const telemetry::JsonParseResult doc = telemetry::parse_json(line);
  EXPECT_TRUE(doc.value.has_value()) << doc.error << "\nline: " << line;
  if (!doc.value.has_value()) return {};
  EXPECT_TRUE(validate_service_response(*doc.value).empty())
      << validate_service_response(*doc.value).front();
  return *doc.value->find("fpopt_response");
}

std::string response_output(const std::string& line) {
  const telemetry::JsonValue r = parse_response(line);
  const telemetry::JsonValue* output = r.find("output");
  EXPECT_NE(output, nullptr) << line;
  return output == nullptr ? std::string() : output->string;
}

/// The deterministic counter sections of an embedded run report:
/// optimizer.* counters are byte-comparable between standalone and
/// daemon runs (cache.* legitimately differs — a warm shared cache
/// changes traffic, a session tracks no byte footprint; pool/phase
/// timing is scheduling-dependent by contract).
std::vector<std::pair<std::string, std::int64_t>> optimizer_counters(
    const telemetry::JsonValue& report) {
  std::vector<std::pair<std::string, std::int64_t>> out;
  const telemetry::JsonValue* counters = report.find("counters");
  if (counters == nullptr) return out;
  for (const auto& [name, value] : counters->object) {
    if (name.rfind("optimizer.", 0) == 0) out.emplace_back(name, value.integer);
  }
  return out;
}

TEST(ServiceEquivalence, MatchesStandaloneAcrossCorpusAndThreads) {
  ServiceConfig config;
  config.pool_workers = 4;
  Service service(config);
  for (int fp = 1; fp <= 4; ++fp) {
    const Workload w = corpus_text(fp);
    for (const int threads : {1, 2, 8}) {
      const std::string t = std::to_string(threads);
      const CliRun cli = run_standalone(
          w, "fp" + std::to_string(fp) + "_t" + t,
          {"optimize", "--k1", "8", "--k2", "10", "--threads", t});
      ASSERT_EQ(cli.code, 0) << cli.err;
      const std::string response = service.handle_frame(request_frame(
          "req", "optimize", w, "\"k1\":8,\"k2\":10,\"threads\":" + t));
      EXPECT_EQ(response_output(response), cli.out)
          << "fp" << fp << " threads=" << threads;
    }
  }
}

TEST(ServiceEquivalence, PlaceAndStatsMatchStandalone) {
  Service service(ServiceConfig{});
  for (int fp = 1; fp <= 2; ++fp) {
    const Workload w = corpus_text(fp);
    const CliRun stats = run_standalone(w, "stats" + std::to_string(fp), {"stats"});
    ASSERT_EQ(stats.code, 0) << stats.err;
    EXPECT_EQ(response_output(service.handle_frame(request_frame("s", "stats", w, ""))),
              stats.out);
    const CliRun place = run_standalone(
        w, "place" + std::to_string(fp), {"place", "--k1", "8", "--k2", "10"});
    ASSERT_EQ(place.code, 0) << place.err;
    EXPECT_EQ(response_output(service.handle_frame(
                  request_frame("p", "place", w, "\"k1\":8,\"k2\":10"))),
              place.out);
  }
}

TEST(ServiceEquivalence, WarmSharedCacheIsByteIdenticalToCold) {
  ServiceConfig config;
  config.pool_workers = 2;
  Service service(config);
  for (int fp = 1; fp <= 4; ++fp) {
    const Workload w = corpus_text(fp);
    const std::string frame = request_frame(
        "r", "optimize", w, "\"k1\":8,\"k2\":10,\"incremental\":true,\"threads\":2", true);
    const std::string cold = service.handle_frame(frame);
    const std::string warm = service.handle_frame(frame);
    // Bit-for-bit identical command output, cold vs warm.
    EXPECT_EQ(response_output(cold), response_output(warm)) << "fp" << fp;
    // And identical deterministic optimizer counters (peak_live included,
    // so the budget/OOM accounting provably cannot drift when served
    // from another request's published results).
    EXPECT_EQ(optimizer_counters(parse_response(cold)),
              optimizer_counters(parse_response(warm)))
        << "fp" << fp;
  }
  ASSERT_NE(service.cache(), nullptr);
  EXPECT_GT(service.cache()->stats().hits, 0u) << "warm runs never hit the shared cache";
}

TEST(ServiceEquivalence, SharedCacheOffMatchesSharedCacheOn) {
  ServiceConfig on;
  ServiceConfig off;
  off.shared_cache = false;
  Service with_cache(on);
  Service without_cache(off);
  for (int fp = 1; fp <= 2; ++fp) {
    const Workload w = corpus_text(fp);
    const std::string frame =
        request_frame("r", "optimize", w, "\"k1\":8,\"k2\":10,\"incremental\":true");
    const std::string warm_baseline = without_cache.handle_frame(frame);
    (void)with_cache.handle_frame(frame);  // populate
    EXPECT_EQ(response_output(with_cache.handle_frame(frame)),
              response_output(warm_baseline))
        << "fp" << fp;
  }
}

TEST(ServiceEquivalence, StandaloneReportCountersMatchDaemon) {
  Service service(ServiceConfig{});
  const Workload w = corpus_text(1);
  CliFiles files("report", w);
  const std::string json_path = files.topo_path + ".report.json";
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(run_cli({"optimize", files.topo_path, files.lib_path, "--k1", "8", "--k2",
                     "10", "--stats-json", json_path},
                    out, err),
            0)
      << err.str();
  std::ifstream file(json_path, std::ios::binary);
  std::ostringstream buf;
  buf << file.rdbuf();
  const telemetry::JsonParseResult cli_doc = telemetry::parse_json(buf.str());
  ASSERT_TRUE(cli_doc.value.has_value());

  const std::string response = service.handle_frame(
      request_frame("r", "optimize", w, "\"k1\":8,\"k2\":10", true));
  const telemetry::JsonValue r = parse_response(response);
  const telemetry::JsonValue* daemon_report = r.find("fpopt_run_report");
  ASSERT_NE(daemon_report, nullptr);
  EXPECT_EQ(optimizer_counters(*daemon_report),
            optimizer_counters(*cli_doc.value->find("fpopt_run_report")));
}

TEST(ServiceEquivalence, BudgetAbortDecisionAndMessageMatch) {
  const FloorplanTree tree = corpus_tree(1);
  const Workload w = corpus_text(1);
  OptimizerOptions probe;
  probe.selection.k1 = 8;
  probe.selection.k2 = 10;
  probe.impl_budget = 0;
  const std::size_t peak = optimize_floorplan(tree, probe).stats.peak_live;
  ASSERT_GT(peak, 1u);

  ServiceConfig config;
  Service service(config);
  for (const bool fits : {true, false}) {
    const std::size_t budget = fits ? peak : peak - 1;
    const std::string b = std::to_string(budget);
    const CliRun cli = run_standalone(
        w, std::string("budget_") + (fits ? "ok" : "oom"),
        {"optimize", "--k1", "8", "--k2", "10", "--budget", b});
    // Twice against the same shared cache: the abort decision must be
    // byte-identical cold and warm (cache content cannot change it).
    for (const char* phase : {"cold", "warm"}) {
      const std::string response = service.handle_frame(request_frame(
          phase, "optimize", w, "\"k1\":8,\"k2\":10,\"budget\":" + b, true));
      const telemetry::JsonValue r = parse_response(response);
      if (fits) {
        ASSERT_EQ(cli.code, 0) << cli.err;
        EXPECT_EQ(r.find("status")->string, "ok") << phase;
        EXPECT_EQ(response_output(response), cli.out) << phase;
      } else {
        ASSERT_EQ(cli.code, 2);
        EXPECT_EQ(r.find("status")->string, "error") << phase;
        const telemetry::JsonValue* error = r.find("error");
        EXPECT_EQ(error->find("code")->string, "E_BUDGET") << phase;
        // The CLI's stderr carries the same message the daemon returns.
        EXPECT_NE(cli.err.find(error->find("message")->string), std::string::npos)
            << "cli: " << cli.err << "\ndaemon: " << error->find("message")->string;
        // The abort still reports, aborted=true, like `fpopt --stats`.
        const telemetry::JsonValue* report = r.find("fpopt_run_report");
        ASSERT_NE(report, nullptr) << phase;
        EXPECT_TRUE(report->find("aborted")->boolean) << phase;
      }
    }
  }
}

TEST(ServiceEquivalence, ArbitraryInterleavingsAreOrderIndependent) {
  // A fixed set of distinct requests, replayed in shuffled orders against
  // fresh shared-cache services: every request's response must be
  // byte-identical no matter what ran before it.
  std::vector<std::string> frames;
  for (int fp = 1; fp <= 3; ++fp) {
    const Workload w = corpus_text(fp);
    frames.push_back(request_frame("a" + std::to_string(fp), "optimize", w,
                                   "\"k1\":8,\"k2\":10,\"incremental\":true"));
    frames.push_back(request_frame("b" + std::to_string(fp), "optimize", w,
                                   "\"k1\":4,\"k2\":6,\"incremental\":true"));
    frames.push_back(request_frame("s" + std::to_string(fp), "stats", w, ""));
  }
  ServiceConfig config;
  config.pool_workers = 2;
  Service baseline(config);
  std::vector<std::string> expected;
  expected.reserve(frames.size());
  for (const std::string& f : frames) expected.push_back(baseline.handle_frame(f));

  std::vector<std::size_t> order(frames.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937 rng(7);
  for (int round = 0; round < 4; ++round) {
    std::shuffle(order.begin(), order.end(), rng);
    Service service(config);
    for (const std::size_t i : order) {
      EXPECT_EQ(service.handle_frame(frames[i]), expected[i])
          << "round " << round << " frame " << i;
    }
  }
}

TEST(ServiceEquivalence, ConcurrentRequestsMatchSerialBaseline) {
  // The TSan-guarded case: many client threads hammer one service (one
  // shared pool, one shared cache) with repeated requests; every response
  // must equal the serial baseline bit for bit.
  std::vector<std::string> frames;
  for (int fp = 1; fp <= 2; ++fp) {
    const Workload w = corpus_text(fp);
    frames.push_back(request_frame("c" + std::to_string(fp), "optimize", w,
                                   "\"k1\":8,\"k2\":10,\"incremental\":true,\"threads\":2"));
    frames.push_back(request_frame("d" + std::to_string(fp), "place", w,
                                   "\"k1\":6,\"k2\":8,\"incremental\":true"));
  }
  ServiceConfig config;
  config.pool_workers = 4;
  Service baseline(config);
  std::vector<std::string> expected;
  for (const std::string& f : frames) expected.push_back(baseline.handle_frame(f));

  Service service(config);
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRounds = 3;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::string& frame = frames[(c + round) % frames.size()];
        got[c].push_back(service.handle_frame(frame));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t round = 0; round < kRounds; ++round) {
      EXPECT_EQ(got[c][round], expected[(c + round) % frames.size()])
          << "client " << c << " round " << round;
    }
  }
}

TEST(ServiceEquivalence, DispatchGateNeverChangesResponseBytes) {
  // Traffic policy (max_inflight, priority, deadline_ms) steers WHEN a
  // request runs, never WHAT it answers: a gated service must produce
  // byte-identical responses to an ungated one, both for requests that
  // omit the new members entirely and for requests that carry them.
  const Workload w = corpus_text(1);
  const std::string plain =
      request_frame("p1", "optimize", w, "\"k1\":8,\"k2\":10");
  // The same request with traffic policy spliced in as top-level members.
  const auto with_policy = [&](const std::string& id, const std::string& extra) {
    std::string frame = request_frame(id, "optimize", w, "\"k1\":8,\"k2\":10");
    frame.insert(frame.size() - 2, "," + extra);
    return frame;
  };

  ServiceConfig ungated;
  ungated.pool_workers = 2;
  Service baseline(ungated);
  const std::string expected = baseline.handle_frame(plain);

  ServiceConfig gated_config = ungated;
  gated_config.max_inflight = 1;
  Service gated(gated_config);
  EXPECT_EQ(gated.handle_frame(plain), expected);
  // priority and a generous deadline never appear in the response; only
  // the id differs, and the ids here are chosen equal to the baseline's.
  EXPECT_EQ(gated.handle_frame(with_policy("p1", "\"priority\":2")), expected);
  EXPECT_EQ(gated.handle_frame(with_policy("p1", "\"priority\":0,\"deadline_ms\":60000")),
            expected);
  // And an ungated service accepts the members too, with the same bytes.
  EXPECT_EQ(baseline.handle_frame(with_policy("p1", "\"priority\":2,\"deadline_ms\":60000")),
            expected);
}

}  // namespace
}  // namespace fpopt
