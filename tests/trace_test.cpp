// Tests for the event-tracing layer (src/telemetry/trace.h) and its
// offline analyses (src/telemetry/trace_analysis.h): document validity,
// the critical-path/makespan bound at several worker counts, the
// deterministic-identity contract across thread counts, bounded-memory
// drop counting, and the raw span/instant hooks.
//
// Every test compiles and passes in both telemetry modes: with
// FPOPT_TELEMETRY=OFF an armed session exports a valid, empty trace
// document, and the assertions branch on telemetry::kEnabled where the
// observable values differ.
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "optimize/optimizer.h"
#include "telemetry/trace_analysis.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

using telemetry::LoadedEvent;
using telemetry::LoadedTrace;
using telemetry::TraceCat;

OptimizerOptions fp3_options(std::size_t threads) {
  OptimizerOptions opts;
  opts.selection.k1 = 8;
  opts.selection.k2 = 10;
  opts.threads = threads;
  return opts;
}

FloorplanTree fp3_tree() {
  WorkloadConfig cfg;
  cfg.seed = 1;
  cfg.impls_per_module = 5;
  return make_fp3(cfg);
}

/// One traced optimize run of the fp3 golden workload; returns the
/// exported JSON and (optionally) the session's drop count.
std::string traced_fp3_run(std::size_t threads, telemetry::TraceOptions topts = {},
                           std::uint64_t* dropped = nullptr) {
  const FloorplanTree tree = fp3_tree();
  telemetry::TraceSession session(topts);
  session.set_meta("tool", "fpopt_tests");
  session.set_meta("threads", std::to_string(threads));
  telemetry::trace_thread_name("main");
  const OptimizeOutcome out = optimize_floorplan(tree, fp3_options(threads));
  EXPECT_FALSE(out.out_of_memory);
  if (dropped != nullptr) *dropped = session.dropped_events();
  return session.to_json();
}

LoadedTrace load_or_die(const std::string& json) {
  LoadedTrace trace;
  std::string error;
  EXPECT_TRUE(telemetry::load_trace(json, trace, error)) << error;
  return trace;
}

TEST(Trace, ExportIsValidTraceDocument) {
  const LoadedTrace trace = load_or_die(traced_fp3_run(0));
  bool saw_telemetry_flag = false;
  for (const auto& [key, value] : trace.other_data) {
    if (key == "telemetry") {
      saw_telemetry_flag = true;
      EXPECT_EQ(value, telemetry::kEnabled ? "on" : "off");
    }
  }
  EXPECT_TRUE(saw_telemetry_flag);
  if constexpr (telemetry::kEnabled) {
    std::size_t node_spans = 0;
    for (const LoadedEvent& e : trace.events) {
      if (e.cat == "node" && !e.instant) ++node_spans;
    }
    EXPECT_GT(node_spans, 0u) << "a traced optimize run must record node spans";
  } else {
    // Compiled-out hooks never fire: the document is valid but empty.
    EXPECT_TRUE(trace.events.empty());
  }
  EXPECT_EQ(trace.dropped_events, 0u);
}

TEST(Trace, CriticalPathBoundsMakespanAcrossThreadCounts) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const LoadedTrace trace = load_or_die(traced_fp3_run(threads));
    const telemetry::CriticalPathResult cp = telemetry::critical_path(trace);
    if constexpr (telemetry::kEnabled) {
      ASSERT_TRUE(cp.ok) << "threads=" << threads << ": " << cp.error;
      EXPECT_FALSE(cp.chain.empty());
      EXPECT_GT(cp.path_us, 0.0);
      // cp(root) is a dependency chain of node evaluations, so no schedule
      // at any worker count can finish faster: path <= measured makespan
      // (tiny slack for microsecond rounding in the export).
      EXPECT_LE(cp.path_us, cp.makespan_us + 1.0)
          << "threads=" << threads << ": critical path exceeds the makespan";
    } else {
      EXPECT_FALSE(cp.ok) << "an empty trace has no node spans to walk";
    }
  }
}

TEST(Trace, DeterministicIdentitiesMatchAcrossThreadCounts) {
  const LoadedTrace serial = load_or_die(traced_fp3_run(0));
  const LoadedTrace parallel = load_or_die(traced_fp3_run(2));
  const telemetry::TraceDiff diff = telemetry::diff_traces(serial, parallel);
  EXPECT_TRUE(diff.identical) << (diff.differences.empty()
                                      ? std::string("no detail")
                                      : diff.differences.front());
  EXPECT_TRUE(diff.differences.empty());
}

TEST(Trace, FullRingDropsAndCountsInsteadOfGrowing) {
  telemetry::TraceOptions topts;
  topts.ring_capacity = 8;  // far below the ~400 events an fp3 run records
  std::uint64_t dropped = 0;
  const std::string json = traced_fp3_run(0, topts, &dropped);
  const LoadedTrace trace = load_or_die(json);  // overflow never corrupts the export
  if constexpr (telemetry::kEnabled) {
    EXPECT_GT(dropped, 0u);
    EXPECT_EQ(trace.dropped_events, dropped) << "the export reports the drop total";
    EXPECT_LE(trace.events.size(), 8u + 1u);  // per-ring cap (+ thread metadata excluded)
  } else {
    EXPECT_EQ(dropped, 0u);
    EXPECT_TRUE(trace.events.empty());
  }
}

TEST(Trace, SpanAndInstantHooksRecordDeterministicIdentity) {
  telemetry::TraceSession session;
  {
    telemetry::TraceSpan span(TraceCat::kNode, "unit_span", 7);
    span.set_children(1, 2);
    span.set_arg(3);
  }
  telemetry::trace_instant(TraceCat::kCache, "unit_instant", 9, 4);
  const LoadedTrace trace = load_or_die(session.to_json());
  if constexpr (telemetry::kEnabled) {
    ASSERT_EQ(trace.events.size(), 2u);
    const LoadedEvent& span = trace.events[0];
    EXPECT_EQ(span.cat, "node");
    EXPECT_EQ(span.name, "unit_span");
    EXPECT_FALSE(span.instant);
    EXPECT_EQ(span.id, 7u);
    EXPECT_EQ(span.arg, 3u);
    EXPECT_EQ(span.left, 1);
    EXPECT_EQ(span.right, 2);
    const LoadedEvent& instant = trace.events[1];
    EXPECT_EQ(instant.cat, "cache");
    EXPECT_EQ(instant.name, "unit_instant");
    EXPECT_TRUE(instant.instant);
    EXPECT_EQ(instant.id, 9u);
    EXPECT_EQ(instant.arg, 4u);
    EXPECT_EQ(telemetry::TraceSession::current(), &session);
  } else {
    EXPECT_TRUE(trace.events.empty());
    EXPECT_EQ(telemetry::TraceSession::current(), nullptr);
  }
}

}  // namespace
}  // namespace fpopt
