// Integration tests for the optimizer engine: agreement with Stockmeyer on
// slicing inputs, brute force on tiny floorplans, exactness of the wheel
// path, bounded-mode semantics, and the simulated memory budget.
#include <gtest/gtest.h>

#include "floorplan/serialize.h"
#include "test_util.h"
#include "optimize/optimizer.h"
#include "optimize/stockmeyer.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

OptimizerOptions exact_options() {
  OptimizerOptions o;
  o.impl_budget = 0;  // unlimited
  return o;
}

TEST(OptimizerTest, SingleModuleFloorplanIsItsBestImplementation) {
  // A one-leaf tree is not interesting but must still work via a slice of
  // two; use two modules.
  FloorplanTree tree = parse_floorplan("(V a b)", parse_module_library("a 2x3 3x2\nb 1x4 4x1\n"));
  const OptimizeOutcome out = optimize_floorplan(tree, exact_options());
  ASSERT_FALSE(out.out_of_memory);
  // Candidates: widths sum, heights max. Best: (3+4)x2=14? (3,2)+(4,1)->7x2=14;
  // (2,3)+(1,4) -> 3x4=12; (2,3)+(4,1)->6x3=18; (3,2)+(1,4)->4x4=16.
  EXPECT_EQ(out.best_area, 12);
}

TEST(OptimizerTest, MatchesStockmeyerOnSlicingTrees) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    WorkloadConfig cfg;
    cfg.impls_per_module = 6;
    cfg.seed = seed;
    for (const bool alternate : {false, true}) {
      const FloorplanTree tree = make_slicing_chain(9, SliceDir::Vertical, alternate, cfg);
      const OptimizeOutcome out = optimize_floorplan(tree, exact_options());
      ASSERT_FALSE(out.out_of_memory);
      const auto oracle = stockmeyer_best_area(tree);
      ASSERT_TRUE(oracle.has_value());
      EXPECT_EQ(out.best_area, *oracle) << "seed " << seed;
      // Full root curves agree as well.
      EXPECT_EQ(out.root, *stockmeyer_shape_curve(tree));
    }
  }
}

TEST(OptimizerTest, MatchesStockmeyerOnGrids) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 4;
  for (const std::uint64_t seed : {7u, 8u}) {
    cfg.seed = seed;
    const FloorplanTree tree = make_grid(3, 4, cfg);
    const OptimizeOutcome out = optimize_floorplan(tree, exact_options());
    ASSERT_FALSE(out.out_of_memory);
    EXPECT_EQ(out.best_area, stockmeyer_best_area(tree).value());
  }
}

/// Brute-force minimal area of a single pinwheel by trying all 5-tuples.
Area brute_force_pinwheel(const FloorplanTree& tree) {
  const auto& m = tree.modules();
  Area best = std::numeric_limits<Area>::max();
  for (const RectImpl& d : m[0].impls)
    for (const RectImpl& a : m[1].impls)
      for (const RectImpl& e : m[2].impls)
        for (const RectImpl& c : m[3].impls)
          for (const RectImpl& b : m[4].impls) {
            const Dim x2 = std::max(d.w, a.w + e.w);
            const Dim y2 = std::max(c.h, d.h + e.h);
            const Dim w = std::max(x2 + c.w, a.w + b.w);
            const Dim h = std::max(y2 + b.h, d.h + a.h);
            best = std::min(best, w * h);
          }
  return best;
}

TEST(OptimizerTest, PinwheelMatchesBruteForceBothChiralities) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    WorkloadConfig cfg;
    cfg.impls_per_module = 5;
    cfg.seed = seed;
    for (const WheelChirality chir :
         {WheelChirality::Clockwise, WheelChirality::CounterClockwise}) {
      const FloorplanTree tree = make_single_pinwheel(cfg, chir);
      const OptimizeOutcome out = optimize_floorplan(tree, exact_options());
      ASSERT_FALSE(out.out_of_memory);
      EXPECT_EQ(out.best_area, brute_force_pinwheel(tree)) << "seed " << seed;
    }
  }
}

TEST(OptimizerTest, MixedWheelAndSliceTreeMatchesBruteForce) {
  // 7 modules, 3 impls each: 3^7 = 2187 assignments.
  const char* lib =
      "a 4x2 3x3 2x5\nb 5x1 3x2 1x6\nc 2x2 1x4 4x1\nd 3x3 2x4 5x2\n"
      "e 2x6 4x3 6x2\nf 1x3 2x2 3x1\ng 2x4 3x3 5x2\n";
  for (const char* topo : {"(W (V a b) c d e (H f g))", "(M a (H b c) d (V e f) g)",
                           "(V a (W b c d e f) g)", "(H (W a b c d e) (V f g))"}) {
    FloorplanTree tree = parse_floorplan(topo, parse_module_library(lib));
    const OptimizeOutcome out = optimize_floorplan(tree, exact_options());
    ASSERT_FALSE(out.out_of_memory) << topo;
    EXPECT_EQ(out.best_area, test::brute_force_tree_area(tree)) << topo;
  }
}

TEST(OptimizerTest, NestedWheelsMatchBruteForce) {
  const char* lib =
      "a 3x2 2x3\nb 2x2 1x4\nc 4x1 2x2\nd 1x3 3x1\ne 2x4 4x2\n"
      "f 3x3 2x4\ng 1x2 2x1\nh 2x2 3x1\ni 4x2 2x3\n";
  FloorplanTree tree =
      parse_floorplan("(W (W a b c d e) f g h i)", parse_module_library(lib));
  const OptimizeOutcome out = optimize_floorplan(tree, exact_options());
  ASSERT_FALSE(out.out_of_memory);
  EXPECT_EQ(out.best_area, test::brute_force_tree_area(tree));
}

TEST(OptimizerTest, BoundedModeNeverBeatsExactAndConvergesWithK) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 8;
  cfg.seed = 5;
  const FloorplanTree tree = make_single_pinwheel(cfg);
  const OptimizeOutcome exact = optimize_floorplan(tree, exact_options());
  ASSERT_FALSE(exact.out_of_memory);

  Area prev = std::numeric_limits<Area>::max();
  for (const std::size_t k : {3u, 6u, 12u, 200u}) {
    OptimizerOptions o = exact_options();
    o.selection.k1 = k;
    o.selection.k2 = 4 * k;
    const OptimizeOutcome bounded = optimize_floorplan(tree, o);
    ASSERT_FALSE(bounded.out_of_memory);
    EXPECT_GE(bounded.best_area, exact.best_area) << "selection is a relaxation, never a win";
    prev = std::min(prev, bounded.best_area);
  }
  // With generous limits the answer is exact again.
  OptimizerOptions generous = exact_options();
  generous.selection.k1 = 10'000;
  generous.selection.k2 = 100'000;
  EXPECT_EQ(optimize_floorplan(tree, generous).best_area, exact.best_area);
}

TEST(OptimizerTest, BoundedModeReducesPeakMemory) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 12;
  cfg.seed = 9;
  const FloorplanTree tree = make_fp1(cfg);

  const OptimizeOutcome exact = optimize_floorplan(tree, exact_options());
  ASSERT_FALSE(exact.out_of_memory);

  OptimizerOptions bounded = exact_options();
  bounded.selection.k1 = 10;
  bounded.selection.k2 = 60;
  const OptimizeOutcome small = optimize_floorplan(tree, bounded);
  ASSERT_FALSE(small.out_of_memory);
  EXPECT_LT(small.stats.peak_stored, exact.stats.peak_stored);
  EXPECT_GT(small.stats.r_selection_calls + small.stats.l_selection_calls, 0u);
  EXPECT_GE(small.best_area, exact.best_area);
}

TEST(OptimizerTest, MemoryBudgetAbortsLikeTheSparc) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 12;
  cfg.seed = 9;
  const FloorplanTree tree = make_fp1(cfg);
  OptimizerOptions tight;
  tight.impl_budget = 2'000;
  const OptimizeOutcome out = optimize_floorplan(tree, tight);
  EXPECT_TRUE(out.out_of_memory);
  EXPECT_EQ(out.artifacts, nullptr);
  EXPECT_EQ(out.best_area, 0);
  EXPECT_GT(out.stats.peak_stored + out.stats.peak_transient, 0u);
}

TEST(OptimizerTest, SelectionRescuesABudgetThatExactModeBusts) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 12;
  cfg.seed = 9;
  const FloorplanTree tree = make_fp1(cfg);

  OptimizerOptions tight;
  tight.impl_budget = 8'000;
  ASSERT_TRUE(optimize_floorplan(tree, tight).out_of_memory);

  tight.selection.k1 = 12;
  tight.selection.k2 = 80;
  tight.selection.theta = 1.0;
  const OptimizeOutcome rescued = optimize_floorplan(tree, tight);
  EXPECT_FALSE(rescued.out_of_memory)
      << "the paper's headline: selection makes infeasible instances feasible";
  EXPECT_GT(rescued.best_area, 0);
}

TEST(OptimizerTest, ExactAreaIndependentOfSliceRestructureShape) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 5;
  cfg.seed = 21;
  const FloorplanTree tree = make_grid(4, 4, cfg);
  OptimizerOptions left_deep = exact_options();
  OptimizerOptions balanced = exact_options();
  balanced.restructure.balanced_slices = true;
  const OptimizeOutcome a = optimize_floorplan(tree, left_deep);
  const OptimizeOutcome b = optimize_floorplan(tree, balanced);
  EXPECT_EQ(a.best_area, b.best_area);
  EXPECT_EQ(a.root, b.root);
}

TEST(OptimizerTest, RootCurveIsIrreducible) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 6;
  cfg.seed = 2;
  const FloorplanTree tree = make_fp1(cfg);
  const OptimizeOutcome out = optimize_floorplan(tree, exact_options());
  ASSERT_FALSE(out.out_of_memory);
  EXPECT_TRUE(is_irreducible_r_list(out.root.impls()));
  EXPECT_GT(out.root.size(), 1u);
}

}  // namespace
}  // namespace fpopt
