// Tests for floorplan trees: construction, validation, stats,
// restructuring into T', and text (de)serialization.
#include <gtest/gtest.h>

#include <functional>

#include "floorplan/restructure.h"
#include "floorplan/serialize.h"
#include "floorplan/tree.h"
#include "optimize/optimizer.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

std::vector<Module> three_modules() {
  return parse_module_library("a 2x3 3x2\nb 4x4\nc 1x5 5x1\n");
}

std::vector<Module> five_modules() {
  return parse_module_library("a 2x3\nb 4x4\nc 1x5\nd 3x3\ne 2x2\n");
}

TEST(TreeTest, ValidTreePassesValidation) {
  FloorplanTree tree = parse_floorplan("(V a (H b c))", three_modules());
  EXPECT_TRUE(tree.validate().empty());
  const TreeStats s = tree.stats();
  EXPECT_EQ(s.leaf_count, 3u);
  EXPECT_EQ(s.slice_count, 2u);
  EXPECT_EQ(s.wheel_count, 0u);
  EXPECT_EQ(s.depth, 3u);
}

TEST(TreeTest, WheelStatsAndValidation) {
  FloorplanTree tree = parse_floorplan("(W a b c d e)", five_modules());
  EXPECT_TRUE(tree.validate().empty());
  EXPECT_EQ(tree.stats().wheel_count, 1u);
  EXPECT_EQ(tree.stats().leaf_count, 5u);
}

TEST(TreeTest, DetectsUnusedAndReusedModules) {
  auto mods = three_modules();
  {
    FloorplanTree unused(mods, FloorplanNode::slice(SliceDir::Vertical, [] {
      std::vector<std::unique_ptr<FloorplanNode>> ch;
      ch.push_back(FloorplanNode::leaf(0));
      ch.push_back(FloorplanNode::leaf(1));
      return ch;
    }()));
    const auto errors = unused.validate();
    ASSERT_FALSE(errors.empty());
  }
  {
    FloorplanTree reused(mods, FloorplanNode::slice(SliceDir::Vertical, [] {
      std::vector<std::unique_ptr<FloorplanNode>> ch;
      ch.push_back(FloorplanNode::leaf(0));
      ch.push_back(FloorplanNode::leaf(0));
      ch.push_back(FloorplanNode::leaf(1));
      ch.push_back(FloorplanNode::leaf(2));
      return ch;
    }()));
    EXPECT_FALSE(reused.validate().empty());
  }
}

TEST(TreeTest, DetectsBadModuleId) {
  FloorplanTree tree(three_modules(), FloorplanNode::slice(SliceDir::Vertical, [] {
    std::vector<std::unique_ptr<FloorplanNode>> ch;
    ch.push_back(FloorplanNode::leaf(0));
    ch.push_back(FloorplanNode::leaf(99));
    return ch;
  }()));
  EXPECT_FALSE(tree.validate().empty());
}

TEST(SerializeTest, TopologyRoundTrips) {
  const std::string topo = "(V a (H b c))";
  FloorplanTree tree = parse_floorplan(topo, three_modules());
  EXPECT_EQ(to_topology_string(tree), topo);

  const std::string wheel = "(M a (V b c) d (H e f) g)";
  FloorplanTree wtree = parse_floorplan(
      wheel, parse_module_library("a 1x1\nb 1x1\nc 1x1\nd 1x1\ne 1x1\nf 1x1\ng 1x1\n"));
  EXPECT_EQ(to_topology_string(wtree), wheel);
}

TEST(SerializeTest, ModuleLibraryRoundTrips) {
  const auto mods = parse_module_library("# comment line\na 2x3 3x2\nb 4x4  # trailing\n");
  ASSERT_EQ(mods.size(), 2u);
  EXPECT_EQ(mods[0].impls.size(), 2u);
  const auto again = parse_module_library(to_module_library_string(mods));
  EXPECT_EQ(again, mods);
}

TEST(SerializeTest, LibraryPrunesRedundantImplementations) {
  const auto mods = parse_module_library("a 5x5 4x4 6x6 4x6\n");
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].impls.size(), 1u);
  EXPECT_EQ(mods[0].impls[0], (RectImpl{4, 4}));
}

TEST(SerializeTest, ParseErrors) {
  EXPECT_THROW(parse_floorplan("(V a)", three_modules()), ParseError);
  EXPECT_THROW(parse_floorplan("(V a unknown)", three_modules()), ParseError);
  EXPECT_THROW(parse_floorplan("(W a b c)", five_modules()), ParseError);
  EXPECT_THROW(parse_floorplan("(X a b)", three_modules()), ParseError);
  EXPECT_THROW(parse_floorplan("(V a (H b c)) extra", three_modules()), ParseError);
  EXPECT_THROW(parse_module_library("a 2y3\n"), ParseError);
  EXPECT_THROW(parse_module_library("a 0x3\n"), ParseError);
  EXPECT_THROW(parse_module_library("a\n"), ParseError);
  EXPECT_THROW(parse_floorplan("(V a a b)", [] {
    auto m = parse_module_library("a 1x1\na 2x2\nb 1x1\n");
    return m;
  }()), ParseError);
}

TEST(WithRotationTest, CurveBecomesSymmetricAndIrreducible) {
  const Module m{"m", RList::from_candidates({{8, 2}, {5, 3}})};
  const Module rotated = with_rotation(m);
  EXPECT_TRUE(is_irreducible_r_list(rotated.impls.impls()));
  // Both orientations of every original implementation are feasible.
  for (const RectImpl& r : m.impls) {
    EXPECT_LE(rotated.impls.min_height_at(r.w).value(), r.h);
    EXPECT_LE(rotated.impls.min_height_at(r.h).value(), r.w);
  }
  // Symmetry: (w, h) feasible iff (h, w) feasible.
  for (const RectImpl& r : rotated.impls) {
    const std::optional<Dim> h = rotated.impls.min_height_at(r.h);
    ASSERT_TRUE(h.has_value());
    EXPECT_LE(*h, r.w);
  }
}

TEST(WithRotationTest, SquareImplementationsDoNotDuplicate) {
  const Module m{"sq", RList::from_candidates({{4, 4}})};
  EXPECT_EQ(with_rotation(m).impls.size(), 1u);
}

TEST(WithRotationTest, RotationCanOnlyImproveTheFloorplan) {
  auto modules = parse_module_library("a 8x2\nb 8x2\n");
  FloorplanTree fixed = parse_floorplan("(V a b)", modules);
  std::vector<Module> rotated_mods;
  for (const Module& m : modules) rotated_mods.push_back(with_rotation(m));
  FloorplanTree rotated = parse_floorplan("(V a b)", std::move(rotated_mods));
  // Fixed: 16x2 = 32. Rotated: 2x8 | 2x8 -> 4x8 = 32, or mixed... still 32?
  // (2,8)+(2,8) -> 4x8 = 32; (8,2)+(8,2) -> 16x2 = 32. Equal here, so use a
  // case where it strictly helps:
  auto modules2 = parse_module_library("a 8x2\nb 2x8\n");
  FloorplanTree fixed2 = parse_floorplan("(V a b)", modules2);
  std::vector<Module> rot2;
  for (const Module& m : modules2) rot2.push_back(with_rotation(m));
  FloorplanTree rotated2 = parse_floorplan("(V a b)", std::move(rot2));
  const Area fixed_area = optimize_floorplan(fixed2, {}).best_area;    // 10x8 = 80
  const Area rotated_area = optimize_floorplan(rotated2, {}).best_area;  // 4x8 = 32
  EXPECT_LT(rotated_area, fixed_area);
  EXPECT_EQ(rotated_area, 32);
  EXPECT_EQ(optimize_floorplan(fixed, {}).best_area,
            optimize_floorplan(rotated, {}).best_area);
}

TEST(RestructureTest, SliceFanoutBecomesLeftDeepChain) {
  FloorplanTree tree = parse_floorplan(
      "(V a b c d)", parse_module_library("a 1x1\nb 1x1\nc 1x1\nd 1x1\n"));
  const BinaryTree bt = restructure(tree);
  // 4 leaves + 3 slice nodes.
  EXPECT_EQ(bt.node_count, 7u);
  const BinaryNode* n = bt.root.get();
  ASSERT_EQ(n->op, BinaryOp::SliceV);
  EXPECT_EQ(n->right->op, BinaryOp::LeafModule);
  EXPECT_EQ(n->right->module_id, 3u);
  n = n->left.get();
  ASSERT_EQ(n->op, BinaryOp::SliceV);
  EXPECT_EQ(n->right->module_id, 2u);
  n = n->left.get();
  ASSERT_EQ(n->op, BinaryOp::SliceV);
  EXPECT_EQ(n->left->module_id, 0u);
  EXPECT_EQ(n->right->module_id, 1u);
}

TEST(RestructureTest, BalancedSlicesReduceDepth) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 3;
  std::vector<std::unique_ptr<FloorplanNode>> ch;
  for (std::size_t i = 0; i < 8; ++i) ch.push_back(FloorplanNode::leaf(i));
  FloorplanTree wide(generate_modules(8, cfg.module_config(), 1),
                     FloorplanNode::slice(SliceDir::Horizontal, std::move(ch)));
  RestructureOptions balanced;
  balanced.balanced_slices = true;
  const BinaryTree bt = restructure(wide, balanced);
  // Balanced fold of 8 leaves: depth 3 of slice nodes.
  std::size_t depth = 0;
  for (const BinaryNode* n = bt.root.get(); n != nullptr; n = n->left.get()) ++depth;
  EXPECT_EQ(depth, 4u);  // 3 internal + 1 leaf on the leftmost path
  EXPECT_EQ(bt.node_count, 15u);
}

TEST(RestructureTest, WheelBecomesTheFourOpAssembly) {
  FloorplanTree tree = parse_floorplan("(W a b c d e)", five_modules());
  const BinaryTree bt = restructure(tree);
  EXPECT_EQ(bt.node_count, 9u);  // 5 leaves + 4 ops
  const BinaryNode* n = bt.root.get();
  ASSERT_EQ(n->op, BinaryOp::WheelClose);
  EXPECT_FALSE(n->is_l_block());
  EXPECT_EQ(n->right->module_id, 4u) << "Top child closes the wheel";
  n = n->left.get();
  ASSERT_EQ(n->op, BinaryOp::WheelExtend);
  EXPECT_TRUE(n->is_l_block());
  EXPECT_EQ(n->right->module_id, 3u);
  n = n->left.get();
  ASSERT_EQ(n->op, BinaryOp::WheelFillNotch);
  EXPECT_EQ(n->right->module_id, 2u);
  n = n->left.get();
  ASSERT_EQ(n->op, BinaryOp::WheelStack);
  EXPECT_EQ(n->left->module_id, 0u);
  EXPECT_EQ(n->right->module_id, 1u);
}

TEST(RestructureTest, ChiralityIsRecordedOnTheCloseNode) {
  FloorplanTree tree = parse_floorplan("(M a b c d e)", five_modules());
  const BinaryTree bt = restructure(tree);
  EXPECT_EQ(bt.root->chirality, WheelChirality::CounterClockwise);
}

// ---- degenerate chains (coverage gaps) ----------------------------------

TEST(RestructureTest, SingleLeafTreeIsItsOwnBinaryTree) {
  FloorplanTree tree(parse_module_library("only 2x3 3x2\n"), FloorplanNode::leaf(0));
  ASSERT_TRUE(tree.validate().empty());
  const BinaryTree bt = restructure(tree);
  EXPECT_EQ(bt.node_count, 1u);
  ASSERT_NE(bt.root, nullptr);
  EXPECT_TRUE(bt.root->is_leaf());
  EXPECT_EQ(bt.root->module_id, 0u);
  EXPECT_EQ(bt.root->id, 0u);
  // The engine handles the trivial tree: the curve is the module library.
  const OptimizeOutcome out = optimize_floorplan(tree, {});
  ASSERT_FALSE(out.out_of_memory);
  EXPECT_EQ(out.best_area, 6);
  EXPECT_EQ(out.root.size(), 2u);
}

TEST(RestructureTest, NestedBinaryChainRestructuresToItself) {
  // (V m0 (H m1 (V m2 (H m3 m4)))) is already binary: restructuring must
  // neither add nodes nor reassociate, whatever the fold mode.
  const std::string topo = "(V a (H b (V c (H d e))))";
  FloorplanTree tree = parse_floorplan(topo, five_modules());
  for (const bool balanced : {false, true}) {
    RestructureOptions opts;
    opts.balanced_slices = balanced;
    const BinaryTree bt = restructure(tree, opts);
    EXPECT_EQ(bt.node_count, 9u) << "balanced=" << balanced;  // 5 leaves + 4 slices
    const BinaryNode* n = bt.root.get();
    ASSERT_EQ(n->op, BinaryOp::SliceV);
    EXPECT_EQ(n->left->module_id, 0u);
    n = n->right.get();
    ASSERT_EQ(n->op, BinaryOp::SliceH);
    EXPECT_EQ(n->left->module_id, 1u);
    n = n->right.get();
    ASSERT_EQ(n->op, BinaryOp::SliceV);
    n = n->right.get();
    ASSERT_EQ(n->op, BinaryOp::SliceH);
    EXPECT_EQ(n->left->module_id, 3u);
    EXPECT_EQ(n->right->module_id, 4u);
  }
}

TEST(RestructureTest, HighFanoutSpineKeepsChildOrderAndArea) {
  // One slice with 16 children: the left-deep spine has 15 slice nodes in
  // child order; the balanced fold has the same leaves and the same
  // optimal area (slicing is associative in area).
  std::vector<std::unique_ptr<FloorplanNode>> ch;
  std::string lib;
  for (std::size_t i = 0; i < 16; ++i) {
    ch.push_back(FloorplanNode::leaf(i));
    lib += "m" + std::to_string(i) + " 2x3 3x2\n";
  }
  FloorplanTree tree(parse_module_library(lib),
                     FloorplanNode::slice(SliceDir::Horizontal, std::move(ch)));
  ASSERT_TRUE(tree.validate().empty());

  const BinaryTree deep = restructure(tree);
  EXPECT_EQ(deep.node_count, 31u);
  std::size_t spine = 0;
  const BinaryNode* n = deep.root.get();
  std::vector<std::size_t> right_leaves;
  while (!n->is_leaf()) {
    EXPECT_EQ(n->op, BinaryOp::SliceH);
    if (n->right->is_leaf()) right_leaves.push_back(n->right->module_id);
    ++spine;
    n = n->left.get();
  }
  EXPECT_EQ(spine, 15u);
  EXPECT_EQ(n->module_id, 0u) << "left-most leaf is the first child";
  // Right leaves appear in reverse child order down the spine.
  for (std::size_t i = 0; i < right_leaves.size(); ++i) {
    EXPECT_EQ(right_leaves[i], 15u - i);
  }

  RestructureOptions balanced;
  balanced.balanced_slices = true;
  const BinaryTree flat = restructure(tree, balanced);
  EXPECT_EQ(flat.node_count, 31u);
  OptimizerOptions bopts;
  bopts.restructure = balanced;
  EXPECT_EQ(optimize_floorplan(tree, {}).best_area, optimize_floorplan(tree, bopts).best_area);
}

TEST(RestructureTest, TwoChildSliceIsTheSameInBothFoldModes) {
  FloorplanTree tree = parse_floorplan("(H a b)", parse_module_library("a 2x3\nb 4x4\n"));
  RestructureOptions balanced;
  balanced.balanced_slices = true;
  const BinaryTree a = restructure(tree);
  const BinaryTree b = restructure(tree, balanced);
  EXPECT_EQ(a.node_count, 3u);
  EXPECT_EQ(b.node_count, 3u);
  EXPECT_EQ(a.root->op, BinaryOp::SliceH);
  EXPECT_EQ(b.root->op, BinaryOp::SliceH);
  EXPECT_EQ(a.root->left->module_id, b.root->left->module_id);
  EXPECT_EQ(a.root->right->module_id, b.root->right->module_id);
}

TEST(RestructureTest, PreorderIdsAreDense) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 2;
  FloorplanTree tree = make_fp1(cfg);
  const BinaryTree bt = restructure(tree);
  std::vector<bool> seen(bt.node_count, false);
  const std::function<void(const BinaryNode&)> walk = [&](const BinaryNode& n) {
    ASSERT_LT(n.id, bt.node_count);
    EXPECT_FALSE(seen[n.id]);
    seen[n.id] = true;
    if (n.left) walk(*n.left);
    if (n.right) walk(*n.right);
  };
  walk(*bt.root);
  for (const bool b : seen) EXPECT_TRUE(b);
}

}  // namespace
}  // namespace fpopt
