// Shared helpers for the fpopt test suite: deterministic random inputs and
// brute-force oracles the optimized algorithms are checked against.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/l_error.h"
#include "floorplan/tree.h"
#include "geometry/l_impl.h"
#include "geometry/rect_impl.h"
#include "shape/l_list.h"
#include "shape/r_list.h"
#include "workload/rng.h"

namespace fpopt::test {

/// Random irreducible R-list with exactly n corners.
inline RList random_r_list(std::size_t n, Pcg32& rng, Dim max_step = 9) {
  std::vector<RectImpl> impls(n);
  Dim w = 1 + static_cast<Dim>(rng.below(20));
  Dim h = 1 + static_cast<Dim>(rng.below(20));
  for (std::size_t i = n; i-- > 0;) {
    impls[i] = {w, 0};
    w += 1 + static_cast<Dim>(rng.below(static_cast<std::uint32_t>(max_step)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    impls[i].h = h;
    h += 1 + static_cast<Dim>(rng.below(static_cast<std::uint32_t>(max_step)));
  }
  return RList::from_sorted_unchecked(std::move(impls));
}

/// Random irreducible L-list (chain) with exactly n entries, ids 0..n-1.
inline LList random_l_chain(std::size_t n, Pcg32& rng, Dim max_step = 9) {
  const Dim w2 = 5 + static_cast<Dim>(rng.below(20));
  std::vector<LEntry> entries(n);
  Dim w1 = w2 + static_cast<Dim>(rng.below(10));
  for (std::size_t i = n; i-- > 0;) {
    entries[i].shape.w1 = w1;
    entries[i].shape.w2 = w2;
    entries[i].id = static_cast<std::uint32_t>(i);
    w1 += 1 + static_cast<Dim>(rng.below(static_cast<std::uint32_t>(max_step)));
  }
  Dim h2 = 1 + static_cast<Dim>(rng.below(10));
  Dim h1 = h2 + static_cast<Dim>(rng.below(10));
  for (std::size_t i = 0; i < n; ++i) {
    // Heights non-decreasing with at least one strict increase per step.
    const Dim dh2 = static_cast<Dim>(rng.below(static_cast<std::uint32_t>(max_step)));
    const Dim dh1 = static_cast<Dim>(rng.below(static_cast<std::uint32_t>(max_step)));
    h2 += dh2;
    h1 = std::max(h1 + dh1, h2) + (dh1 + dh2 == 0 ? 1 : 0);
    entries[i].shape.h2 = h2;
    entries[i].shape.h1 = h1;
  }
  return LList::from_chain_unchecked(std::move(entries));
}

/// All k-subsets of 0..n-1 that keep 0 and n-1 (the selection search space).
inline void for_each_endpoint_subset(std::size_t n, std::size_t k,
                                     const std::function<void(const std::vector<std::size_t>&)>&
                                         visit) {
  std::vector<std::size_t> subset(k);
  subset.front() = 0;
  subset.back() = n - 1;
  // Choose k-2 interior positions out of n-2.
  std::vector<std::size_t> interior(k - 2);
  const std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t start,
                                                                std::size_t depth) {
    if (depth == interior.size()) {
      for (std::size_t i = 0; i < interior.size(); ++i) subset[i + 1] = interior[i];
      visit(subset);
      return;
    }
    for (std::size_t v = start; v + (interior.size() - depth) <= n - 1; ++v) {
      interior[depth] = v;
      rec(v + 1, depth + 1);
    }
  };
  if (k >= 2) rec(1, 0);
}

/// Brute-force ERROR(L, L') per the definitions (min distance over the
/// whole kept set, no Lemma 3 shortcut).
inline Weight brute_force_l_error(const std::vector<LImpl>& chain,
                                  const std::vector<std::size_t>& kept, LpMetric metric) {
  Weight total = 0;
  for (std::size_t q = 0; q < chain.size(); ++q) {
    if (std::find(kept.begin(), kept.end(), q) != kept.end()) continue;
    Weight best = kInfiniteWeight;
    for (const std::size_t j : kept) best = std::min(best, l_dist(chain[q], chain[j], metric));
    total += best;
  }
  return total;
}

/// Brute force over all module assignments of a small floorplan tree,
/// evaluating the geometry directly: slices add/max, wheels use the
/// minimal pinwheel envelope formula (see optimize/combine.h).
inline Area brute_force_tree_area(const FloorplanTree& tree) {
  std::vector<std::size_t> pick(tree.module_count(), 0);
  Area best = std::numeric_limits<Area>::max();

  const std::function<RectImpl(const FloorplanNode&)> shape_of =
      [&](const FloorplanNode& node) -> RectImpl {
    switch (node.kind) {
      case NodeKind::Leaf:
        return tree.module(node.module_id).impls[pick[node.module_id]];
      case NodeKind::Slice: {
        Dim w = 0, h = 0;
        for (const auto& ch : node.children) {
          const RectImpl c = shape_of(*ch);
          if (node.dir == SliceDir::Vertical) {
            w += c.w;
            h = std::max(h, c.h);
          } else {
            w = std::max(w, c.w);
            h += c.h;
          }
        }
        return {w, h};
      }
      case NodeKind::Wheel: {
        const RectImpl d = shape_of(node.child(WheelPos::Bottom));
        const RectImpl a = shape_of(node.child(WheelPos::Left));
        const RectImpl e = shape_of(node.child(WheelPos::Center));
        const RectImpl c = shape_of(node.child(WheelPos::Right));
        const RectImpl b = shape_of(node.child(WheelPos::Top));
        const Dim x2 = std::max(d.w, a.w + e.w);
        const Dim y2 = std::max(c.h, d.h + e.h);
        return {std::max(x2 + c.w, a.w + b.w), std::max(y2 + b.h, d.h + a.h)};
      }
    }
    return {0, 0};
  };

  const std::function<void(std::size_t)> rec = [&](std::size_t m) {
    if (m == tree.module_count()) {
      best = std::min(best, shape_of(tree.root()).area());
      return;
    }
    for (std::size_t i = 0; i < tree.module(m).impls.size(); ++i) {
      pick[m] = i;
      rec(m + 1);
    }
  };
  rec(0);
  return best;
}

}  // namespace fpopt::test
