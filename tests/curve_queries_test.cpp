// Tests for shape-curve queries (fixed outline, aspect ratio, square).
#include <gtest/gtest.h>

#include "optimize/curve_queries.h"
#include "optimize/optimizer.h"
#include "test_util.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

const RList kCurve = RList::from_candidates({{20, 4}, {12, 6}, {9, 9}, {6, 13}, {4, 21}});

TEST(BestInOutlineTest, PicksTheSmallestFittingArea) {
  // Outline 12x10 admits (12,6)=72 and (9,9)=81 -> (12,6).
  const auto idx = best_in_outline(kCurve, 12, 10);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(kCurve[*idx], (RectImpl{12, 6}));
}

TEST(BestInOutlineTest, InfeasibleOutline) {
  EXPECT_FALSE(best_in_outline(kCurve, 3, 3).has_value());
  EXPECT_FALSE(best_in_outline(kCurve, 5, 10).has_value());
}

TEST(BestInOutlineTest, TightOutlineFitsExactly) {
  const auto idx = best_in_outline(kCurve, 9, 9);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(kCurve[*idx], (RectImpl{9, 9}));
}

TEST(BestWithAspectTest, SquareBandPicksTheSquare) {
  const auto idx = best_with_aspect(kCurve, 0.8, 1.25);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(kCurve[*idx], (RectImpl{9, 9}));
}

TEST(BestWithAspectTest, WideAndTallBands) {
  const auto wide = best_with_aspect(kCurve, 0.0001, 0.5);
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(kCurve[*wide], (RectImpl{12, 6})) << "flattest admissible with least area";
  const auto tall = best_with_aspect(kCurve, 2.0, 100.0);
  ASSERT_TRUE(tall.has_value());
  EXPECT_EQ(kCurve[*tall], (RectImpl{6, 13}));
  EXPECT_FALSE(best_with_aspect(kCurve, 50.0, 60.0).has_value());
}

TEST(SmallestSquareSideTest, MatchesBruteForce) {
  EXPECT_EQ(smallest_square_side(kCurve), 9);
  Pcg32 rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    const RList curve = test::random_r_list(12, rng);
    Dim expect = std::numeric_limits<Dim>::max();
    for (const RectImpl& r : curve) expect = std::min(expect, std::max(r.w, r.h));
    EXPECT_EQ(smallest_square_side(curve), expect);
  }
}

TEST(CurveQueriesIntegrationTest, RootCurveAnswersOutlineQueries) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 6;
  cfg.seed = 44;
  const FloorplanTree tree = make_single_pinwheel(cfg);
  const OptimizeOutcome out = optimize_floorplan(tree, {});
  ASSERT_FALSE(out.out_of_memory);
  const Dim side = smallest_square_side(out.root);
  EXPECT_TRUE(best_in_outline(out.root, side, side).has_value());
  EXPECT_FALSE(best_in_outline(out.root, side - 1, side - 1).has_value())
      << "smallest_square_side is tight";
  // The unconstrained best is the min-area index.
  const auto any = best_in_outline(out.root, 1'000'000, 1'000'000);
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(*any, out.root.min_area_index());
}

}  // namespace
}  // namespace fpopt
