// Tests for shape-curve queries (fixed outline, aspect ratio, square).
#include <gtest/gtest.h>

#include "optimize/curve_queries.h"
#include "optimize/optimizer.h"
#include "test_util.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

const RList kCurve = RList::from_candidates({{20, 4}, {12, 6}, {9, 9}, {6, 13}, {4, 21}});

TEST(BestInOutlineTest, PicksTheSmallestFittingArea) {
  // Outline 12x10 admits (12,6)=72 and (9,9)=81 -> (12,6).
  const auto idx = best_in_outline(kCurve, 12, 10);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(kCurve[*idx], (RectImpl{12, 6}));
}

TEST(BestInOutlineTest, InfeasibleOutline) {
  EXPECT_FALSE(best_in_outline(kCurve, 3, 3).has_value());
  EXPECT_FALSE(best_in_outline(kCurve, 5, 10).has_value());
}

TEST(BestInOutlineTest, TightOutlineFitsExactly) {
  const auto idx = best_in_outline(kCurve, 9, 9);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(kCurve[*idx], (RectImpl{9, 9}));
}

TEST(BestWithAspectTest, SquareBandPicksTheSquare) {
  const auto idx = best_with_aspect(kCurve, 0.8, 1.25);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(kCurve[*idx], (RectImpl{9, 9}));
}

TEST(BestWithAspectTest, WideAndTallBands) {
  const auto wide = best_with_aspect(kCurve, 0.0001, 0.5);
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(kCurve[*wide], (RectImpl{12, 6})) << "flattest admissible with least area";
  const auto tall = best_with_aspect(kCurve, 2.0, 100.0);
  ASSERT_TRUE(tall.has_value());
  EXPECT_EQ(kCurve[*tall], (RectImpl{6, 13}));
  EXPECT_FALSE(best_with_aspect(kCurve, 50.0, 60.0).has_value());
}

TEST(SmallestSquareSideTest, MatchesBruteForce) {
  EXPECT_EQ(smallest_square_side(kCurve), 9);
  Pcg32 rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    const RList curve = test::random_r_list(12, rng);
    Dim expect = std::numeric_limits<Dim>::max();
    for (const RectImpl& r : curve) expect = std::min(expect, std::max(r.w, r.h));
    EXPECT_EQ(smallest_square_side(curve), expect);
  }
}

// ---- degenerate curves and tie-breaking (coverage gaps) -----------------

TEST(BestInOutlineTest, EmptyCurveHasNoAnswer) {
  const RList empty;
  EXPECT_FALSE(best_in_outline(empty, 100, 100).has_value());
  EXPECT_FALSE(best_with_aspect(empty, 0.5, 2.0).has_value());
}

TEST(BestInOutlineTest, SingleImplementationCurve) {
  const RList one = RList::from_candidates({{7, 5}});
  const auto fits = best_in_outline(one, 7, 5);
  ASSERT_TRUE(fits.has_value());
  EXPECT_EQ(*fits, 0u);
  EXPECT_FALSE(best_in_outline(one, 6, 5).has_value());
  EXPECT_FALSE(best_in_outline(one, 7, 4).has_value());
  const auto aspect = best_with_aspect(one, 5.0 / 7.0, 5.0 / 7.0);
  ASSERT_TRUE(aspect.has_value());
  EXPECT_EQ(*aspect, 0u);
  EXPECT_EQ(smallest_square_side(one), 7);
}

TEST(BestInOutlineTest, EqualAreaTieKeepsTheFirstThatIsTheWidest) {
  // 12x6, 9x8 and 6x12 all have area 72; an R-list orders by strictly
  // decreasing width, so index 0 is the widest. The query compares with
  // strict '<', so the first (widest) equal-area implementation wins —
  // ties must not depend on traversal accidents.
  const RList ties = RList::from_candidates({{12, 6}, {9, 8}, {6, 12}});
  ASSERT_EQ(ties.size(), 3u);
  const auto idx = best_in_outline(ties, 12, 12);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  EXPECT_EQ(ties[*idx], (RectImpl{12, 6}));
  // Restricting the outline so the widest no longer fits moves the tie to
  // the next equal-area implementation, not to a larger-area one.
  const auto narrower = best_in_outline(ties, 9, 12);
  ASSERT_TRUE(narrower.has_value());
  EXPECT_EQ(ties[*narrower], (RectImpl{9, 8}));
}

TEST(BestWithAspectTest, EqualAreaTieKeepsTheFirstAdmissible) {
  const RList ties = RList::from_candidates({{12, 6}, {9, 8}, {6, 12}});
  // A band admitting all three (h/w from 0.5 to 2) keeps the first.
  const auto idx = best_with_aspect(ties, 0.5, 2.0);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  // A band excluding the first picks the next equal-area one.
  const auto taller = best_with_aspect(ties, 0.6, 2.0);
  ASSERT_TRUE(taller.has_value());
  EXPECT_EQ(ties[*taller], (RectImpl{9, 8}));
}

TEST(SmallestSquareSideTest, SingleImplementationIsItsLongerSide) {
  EXPECT_EQ(smallest_square_side(RList::from_candidates({{3, 11}})), 11);
  EXPECT_EQ(smallest_square_side(RList::from_candidates({{11, 3}})), 11);
}

TEST(CurveQueriesIntegrationTest, RootCurveAnswersOutlineQueries) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 6;
  cfg.seed = 44;
  const FloorplanTree tree = make_single_pinwheel(cfg);
  const OptimizeOutcome out = optimize_floorplan(tree, {});
  ASSERT_FALSE(out.out_of_memory);
  const Dim side = smallest_square_side(out.root);
  EXPECT_TRUE(best_in_outline(out.root, side, side).has_value());
  EXPECT_FALSE(best_in_outline(out.root, side - 1, side - 1).has_value())
      << "smallest_square_side is tight";
  // The unconstrained best is the min-area index.
  const auto any = best_in_outline(out.root, 1'000'000, 1'000'000);
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(*any, out.root.min_area_index());
}

}  // namespace
}  // namespace fpopt
