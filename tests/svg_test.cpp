// Tests for the SVG placement renderer.
#include <gtest/gtest.h>

#include "floorplan/serialize.h"
#include "io/svg.h"
#include "optimize/optimizer.h"
#include "optimize/placement.h"

namespace fpopt {
namespace {

Placement demo_placement(FloorplanTree& tree) {
  tree = parse_floorplan("(V a (H b c))",
                         parse_module_library("a 2x6 3x4\nb 4x2\nc 3x3 4x2\n"));
  const OptimizeOutcome out = optimize_floorplan(tree, {});
  return trace_placement(tree, out, out.root.min_area_index());
}

TEST(SvgTest, ContainsOneRoomAndOneModuleRectPerModule) {
  FloorplanTree tree;
  const Placement p = demo_placement(tree);
  const std::string svg = placement_to_svg(p, tree);
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos; ++pos) ++rects;
  EXPECT_EQ(rects, 1 + 2 * tree.module_count()) << "chip + (room, impl) per module";
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

TEST(SvgTest, LabelsCanBeDisabled) {
  FloorplanTree tree;
  const Placement p = demo_placement(tree);
  SvgOptions opts;
  opts.label_rooms = false;
  const std::string svg = placement_to_svg(p, tree, opts);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
  const std::string with_labels = placement_to_svg(p, tree);
  EXPECT_NE(with_labels.find("<text"), std::string::npos);
  EXPECT_NE(with_labels.find(">a<"), std::string::npos) << "module names appear";
}

TEST(SvgTest, ScaleChangesDocumentSize) {
  FloorplanTree tree;
  const Placement p = demo_placement(tree);
  SvgOptions small;
  small.scale = 2.0;
  SvgOptions big;
  big.scale = 20.0;
  EXPECT_LT(placement_to_svg(p, tree, small).find("width='"),
            placement_to_svg(p, tree, big).find("width='") + 1);
  EXPECT_NE(placement_to_svg(p, tree, small), placement_to_svg(p, tree, big));
}

}  // namespace
}  // namespace fpopt
