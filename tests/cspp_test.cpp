// Unit tests for the general constrained-shortest-path solver, including
// the paper's worked example (Figure 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "core/cspp.h"
#include "workload/rng.h"

namespace fpopt {
namespace {

/// The weighted DAG of Figure 4: shortest v1->v6 path uses 6 vertices
/// (weight 8), but with k = 4 the constrained optimum is v1->v2->v4->v6
/// with weight 11.
CsppGraph figure4_graph() {
  // Chain v1..v6 weighs 8; the three 4-vertex v1->v6 paths weigh
  // 11 (v1 v2 v4 v6), 12 (v1 v3 v4 v6) and 15 (v1 v2 v5 v6), exactly the
  // numbers quoted under Figure 4.
  CsppGraph g(6);
  g.add_edge(0, 1, 1);   // v1 -> v2
  g.add_edge(1, 2, 2);   // v2 -> v3
  g.add_edge(2, 3, 1);   // v3 -> v4
  g.add_edge(3, 4, 2);   // v4 -> v5
  g.add_edge(4, 5, 2);   // v5 -> v6
  g.add_edge(0, 2, 7);   // v1 -> v3
  g.add_edge(1, 3, 6);   // v2 -> v4
  g.add_edge(1, 4, 12);  // v2 -> v5
  g.add_edge(3, 5, 4);   // v4 -> v6
  return g;
}

TEST(CsppPaperExampleTest, UnconstrainedShortestPathUsesAllSixVertices) {
  const CsppGraph g = figure4_graph();
  const auto result = constrained_shortest_path(g, 0, 5, 6);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->weight, 8);
  EXPECT_EQ(result->path, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(CsppPaperExampleTest, KEquals4PicksTheConstrainedOptimum) {
  const CsppGraph g = figure4_graph();
  const auto result = constrained_shortest_path(g, 0, 5, 4);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->weight, 11);
  EXPECT_EQ(result->path, (std::vector<std::size_t>{0, 1, 3, 5}));
}

TEST(CsppPaperExampleTest, CompetingFourVertexPathsAreHeavier) {
  // Confirm the reported optimum is minimal over all 4-vertex paths by
  // brute-force enumeration of v1 -> a -> b -> v6.
  const CsppGraph g = figure4_graph();
  const auto result = constrained_shortest_path(g, 0, 5, 4);
  ASSERT_TRUE(result.has_value());
  // Enumerate all 4-vertex paths v1 -> a -> b -> v6 by scanning edges.
  Weight best = kInfiniteWeight;
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      Weight wa = kInfiniteWeight, wb = kInfiniteWeight, wc = kInfiniteWeight;
      for (const auto& e : g.in_edges(a)) {
        if (e.from == 0) wa = std::min(wa, e.weight);
      }
      for (const auto& e : g.in_edges(b)) {
        if (e.from == a) wb = std::min(wb, e.weight);
      }
      for (const auto& e : g.in_edges(5)) {
        if (e.from == b) wc = std::min(wc, e.weight);
      }
      best = std::min(best, wa + wb + wc);
    }
  }
  EXPECT_EQ(result->weight, best);
}

TEST(CsppTest, NoPathWithRequestedCardinality) {
  CsppGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  EXPECT_FALSE(constrained_shortest_path(g, 0, 2, 2).has_value()) << "no direct edge";
  ASSERT_TRUE(constrained_shortest_path(g, 0, 2, 3).has_value());
}

TEST(CsppTest, KEqualsOneRequiresSourceEqualsTarget) {
  CsppGraph g(2);
  g.add_edge(0, 1, 3);
  const auto self = constrained_shortest_path(g, 0, 0, 1);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->weight, 0);
  EXPECT_EQ(self->path, (std::vector<std::size_t>{0}));
  EXPECT_FALSE(constrained_shortest_path(g, 0, 1, 1).has_value());
}

TEST(CsppTest, TwoVertexPathIsTheDirectEdge) {
  CsppGraph g(2);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 1, 7);
  const auto result = constrained_shortest_path(g, 0, 1, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->weight, 3) << "parallel edges: the lighter one wins";
}

TEST(CsppTest, DisconnectedTargetIsReported) {
  CsppGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_FALSE(constrained_shortest_path(g, 0, 3, 2).has_value());
  EXPECT_FALSE(constrained_shortest_path(g, 0, 3, 3).has_value());
  EXPECT_FALSE(constrained_shortest_path(g, 0, 3, 4).has_value());
}

TEST(CsppTest, LongerPathsCanBeCheaperButAreNotEligible) {
  // 0 -> 1 -> 2 costs 2; 0 -> 2 costs 100. With k = 2 only the direct
  // edge qualifies.
  CsppGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 100);
  const auto k2 = constrained_shortest_path(g, 0, 2, 2);
  ASSERT_TRUE(k2.has_value());
  EXPECT_EQ(k2->weight, 100);
  const auto k3 = constrained_shortest_path(g, 0, 2, 3);
  ASSERT_TRUE(k3.has_value());
  EXPECT_EQ(k3->weight, 2);
}

TEST(CsppRandomTest, MatchesBruteForceOnLayeredRandomDags) {
  Pcg32 rng(42);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = 7;
    CsppGraph g(n);
    std::vector<std::vector<Weight>> w(n, std::vector<Weight>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.below(100) < 70) {
          w[i][j] = 1 + rng.below(20);
          g.add_edge(i, j, w[i][j]);
        }
      }
    }
    for (std::size_t k = 2; k <= n; ++k) {
      // Brute force: enumerate all increasing vertex sequences 0..n-1.
      Weight best = kInfiniteWeight;
      std::vector<std::size_t> seq(k);
      const std::function<void(std::size_t, std::size_t, Weight)> rec =
          [&](std::size_t depth, std::size_t last, Weight acc) {
            if (depth == k) {
              if (last == n - 1) best = std::min(best, acc);
              return;
            }
            for (std::size_t v = last + 1; v < n; ++v) {
              if (w[last][v] > 0) rec(depth + 1, v, acc + w[last][v]);
            }
          };
      rec(1, 0, 0);
      const auto result = constrained_shortest_path(g, 0, n - 1, k);
      if (best == kInfiniteWeight) {
        EXPECT_FALSE(result.has_value());
      } else {
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->weight, best) << "k=" << k;
        EXPECT_EQ(result->path.size(), k);
      }
    }
  }
}

}  // namespace
}  // namespace fpopt
