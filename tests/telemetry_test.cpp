// Tests for the run-telemetry layer (src/telemetry/): counters, gauges,
// phase timers, the JSON document model, the RunReport document, and the
// schema validator behind tools/fpopt_report_check.
//
// Every test body compiles in both telemetry modes (FPOPT_TELEMETRY=ON and
// OFF): instrumentation statements are unconditional, and the assertions
// branch on telemetry::kEnabled where the observable values differ. The CI
// telemetry-off build leg runs this exact file, which is the "hooks still
// compile when disabled" proof the subsystem promises.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/run_report_build.h"
#include "optimize/optimizer.h"
#include "runtime/thread_pool.h"
#include "telemetry/json.h"
#include "telemetry/report_schema.h"
#include "telemetry/run_report.h"
#include "telemetry/telemetry.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

using telemetry::JsonParseResult;
using telemetry::JsonValue;
using telemetry::PhaseSample;
using telemetry::RunReport;

// ---- counters / gauges -------------------------------------------------

TEST(Telemetry, CounterAccumulatesAndResets) {
  telemetry::Counter c;
  c.add(3);
  c.inc();
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(c.get(), 4u);
  } else {
    EXPECT_EQ(c.get(), 0u) << "disabled counters stay zero";
  }
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Telemetry, CounterSumsAreOrderIndependent) {
  // The determinism contract: relaxed increments from many threads must
  // produce the exact sum (no lost updates), whatever the interleaving.
  telemetry::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(c.get(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  } else {
    EXPECT_EQ(c.get(), 0u);
  }
}

TEST(Telemetry, GaugeSetAndFoldMax) {
  telemetry::Gauge g;
  g.set(2.5);
  g.fold_max(1.0);  // smaller: no effect
  g.fold_max(7.25);
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(g.get(), 7.25);
  } else {
    EXPECT_EQ(g.get(), 0.0);
  }
}

// ---- phase profile -----------------------------------------------------

TEST(Telemetry, PhaseProfileKeepsFirstUseOrderAndCounts) {
  telemetry::PhaseProfile profile;
  {
    const auto a = profile.scope("alpha");
  }
  {
    const auto b = profile.scope("beta");
    const auto nested = profile.scope("alpha");  // nesting counts both
  }
  profile.record("beta", 0.5);
  const std::vector<PhaseSample> samples = profile.samples();
  if constexpr (telemetry::kEnabled) {
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].name, "alpha");
    EXPECT_EQ(samples[0].count, 2u);
    EXPECT_EQ(samples[1].name, "beta");
    EXPECT_EQ(samples[1].count, 2u);
    EXPECT_GE(samples[1].seconds, 0.5);
  } else {
    EXPECT_TRUE(samples.empty()) << "disabled profiles record nothing";
  }
}

// ---- pool stats --------------------------------------------------------

TEST(Telemetry, PhaseProfileRecordsOnEarlyReturn) {
  telemetry::PhaseProfile profile;
  const auto body = [&profile](bool bail) {
    const auto scope = profile.scope("guarded");
    if (bail) return 1;  // scope must still record on this path
    return 0;
  };
  EXPECT_EQ(body(true), 1);
  EXPECT_EQ(body(false), 0);
  const std::vector<PhaseSample> samples = profile.samples();
  if constexpr (telemetry::kEnabled) {
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].name, std::string("guarded"));
    EXPECT_EQ(samples[0].count, 2u) << "both the early and normal return record";
  } else {
    EXPECT_TRUE(samples.empty());
  }
}

TEST(Telemetry, PhaseProfileRecordsNestedScopesDuringUnwinding) {
  // A throw from the innermost scope unwinds through every open scope;
  // each must record exactly once, and the outer phase's time must cover
  // the inner's (scopes close inner-first).
  telemetry::PhaseProfile profile;
  EXPECT_THROW(
      {
        const auto outer = profile.scope("outer");
        const auto inner = profile.scope("inner");
        throw std::runtime_error("boom");
      },
      std::runtime_error);
  const std::vector<PhaseSample> samples = profile.samples();
  if constexpr (telemetry::kEnabled) {
    ASSERT_EQ(samples.size(), 2u);
    // First-use order is record order, and scopes record at destruction,
    // so the inner scope lands first.
    EXPECT_EQ(samples[0].name, std::string("inner"));
    EXPECT_EQ(samples[0].count, 1u);
    EXPECT_EQ(samples[1].name, std::string("outer"));
    EXPECT_EQ(samples[1].count, 1u);
    EXPECT_GE(samples[1].seconds, samples[0].seconds);
  } else {
    EXPECT_TRUE(samples.empty());
  }
}

TEST(Telemetry, PoolStatsTotalsSumWorkers) {
  telemetry::PoolStats stats;
  stats.workers.push_back({10, 2, 3, 0.25});
  stats.workers.push_back({5, 1, 0, 0.75});
  EXPECT_EQ(stats.total_tasks(), 15u);
  EXPECT_EQ(stats.total_steals(), 3u);
  EXPECT_DOUBLE_EQ(stats.total_idle_seconds(), 1.0);
}

TEST(Telemetry, ThreadPoolCountsEveryTaskExactlyOnce) {
  constexpr std::uint64_t kTasks = 500;
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    group.run([] {});
  }
  group.wait();
  const telemetry::PoolStats stats = pool.stats();
  // Two workers plus the synthetic external-thread slot.
  ASSERT_EQ(stats.workers.size(), 3u);
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(stats.total_tasks(), kTasks)
        << "workers + the helping coordinator must account for every task";
  } else {
    EXPECT_EQ(stats.total_tasks(), 0u);
  }
}

// ---- JSON model --------------------------------------------------------

TEST(TelemetryJson, ParsesAndRedumpsDeterministically) {
  const std::string doc =
      R"({"a": 1, "b": [true, false, null, "x\ny"], "c": {"n": -2.5}})";
  const JsonParseResult parsed = telemetry::parse_json(doc);
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const JsonValue& v = *parsed.value;
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->is_integer);
  EXPECT_EQ(a->integer, 1);
  const JsonValue* c = v.find("c");
  ASSERT_NE(c, nullptr);
  const JsonValue* n = c->find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_FALSE(n->is_integer);
  EXPECT_EQ(n->number, -2.5);
  // dump() preserves insertion order, so dump(parse(dump(x))) is stable.
  const std::string once = v.dump();
  const JsonParseResult again = telemetry::parse_json(once);
  ASSERT_TRUE(again.value.has_value()) << again.error;
  EXPECT_EQ(again.value->dump(), once);
}

TEST(TelemetryJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(telemetry::parse_json("").value.has_value());
  EXPECT_FALSE(telemetry::parse_json("{\"a\": }").value.has_value());
  EXPECT_FALSE(telemetry::parse_json("[1, 2").value.has_value());
  EXPECT_FALSE(telemetry::parse_json("tru").value.has_value());
  EXPECT_FALSE(telemetry::parse_json("{} trailing").value.has_value())
      << "trailing garbage must be rejected";
  // Depth cap: 100 nested arrays exceeds the parser's recursion limit.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(telemetry::parse_json(deep).value.has_value());
}

TEST(TelemetryJson, NestingDepthGuardBoundary) {
  // The parser caps recursion at 64 levels: exactly 64 parses, 65 fails.
  const auto nested = [](std::size_t levels) {
    return std::string(levels, '[') + std::string(levels, ']');
  };
  EXPECT_TRUE(telemetry::parse_json(nested(64)).value.has_value());
  const JsonParseResult too_deep = telemetry::parse_json(nested(65));
  EXPECT_FALSE(too_deep.value.has_value());
  EXPECT_NE(too_deep.error.find("nesting too deep"), std::string::npos);
}

TEST(TelemetryJson, ParsesUnicodeEscapes) {
  const JsonParseResult parsed = telemetry::parse_json(
      "[\"\\u0041\", \"caf\\u00e9\", \"\\u20ac\", \"\\ud83d\\ude00\"]");
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const auto& arr = parsed.value->array;
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_EQ(arr[0].string, "A");
  EXPECT_EQ(arr[1].string, "caf\xc3\xa9");          // U+00E9, 2-byte UTF-8
  EXPECT_EQ(arr[2].string, "\xe2\x82\xac");         // U+20AC, 3-byte UTF-8
  EXPECT_EQ(arr[3].string, "\xf0\x9f\x98\x80");     // U+1F600 via surrogate pair
}

TEST(TelemetryJson, RejectsMalformedUnicodeEscapes) {
  // Lone surrogates, a high surrogate followed by a non-surrogate, bad hex
  // digits and truncated escapes are all malformed.
  EXPECT_FALSE(telemetry::parse_json(R"(["\ud800"])").value.has_value());
  EXPECT_FALSE(telemetry::parse_json(R"(["\udc00"])").value.has_value());
  EXPECT_FALSE(telemetry::parse_json(R"(["\ud800A"])").value.has_value());
  EXPECT_FALSE(telemetry::parse_json(R"(["\uZZZZ"])").value.has_value());
  EXPECT_FALSE(telemetry::parse_json(R"(["\u12)").value.has_value());
}

TEST(TelemetryJson, QuoteEscapesNonAsciiAsUnicode) {
  // json_quote emits pure ASCII: BMP code points as one \uXXXX, higher
  // planes as a surrogate pair, and malformed UTF-8 as U+FFFD.
  EXPECT_EQ(telemetry::json_quote("caf\xc3\xa9"), "\"caf\\u00e9\"");
  EXPECT_EQ(telemetry::json_quote("\xe2\x82\xac"), "\"\\u20ac\"");
  EXPECT_EQ(telemetry::json_quote("\xf0\x9f\x98\x80"), "\"\\ud83d\\ude00\"");
  EXPECT_EQ(telemetry::json_quote("a\x80z"), "\"a\\ufffdz\"");
}

TEST(TelemetryJson, UnicodeEscapesRoundTripThroughQuoteAndParse) {
  const std::string original = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80";
  const JsonParseResult parsed = telemetry::parse_json(telemetry::json_quote(original));
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  EXPECT_EQ(parsed.value->string, original);
}

TEST(TelemetryJson, QuoteAndNumberHelpers) {
  EXPECT_EQ(telemetry::json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  // json_number is shortest-round-trip: integers print without exponent
  // noise and parse back exactly.
  const std::string tok = telemetry::json_number(0.1);
  const JsonParseResult parsed = telemetry::parse_json(tok);
  ASSERT_TRUE(parsed.value.has_value());
  EXPECT_EQ(parsed.value->number, 0.1);
}

// ---- run report document ----------------------------------------------

RunReport sample_report() {
  RunReport report("fpopt_tests", "sample");
  report.add_config("k1", "8");
  report.add_counter("optimizer.total_generated", 123);
  report.add_counter("cache.hits", 0);
  report.add_gauge("optimizer.prune_ratio", 0.5);
  report.add_phase({"evaluate", 1, 0.125});
  telemetry::PoolStats pool;
  pool.workers.push_back({7, 1, 2, 0.01});
  report.set_pool(pool);
  report.set_seconds(0.25);
  return report;
}

TEST(RunReportTest, JsonValidatesAgainstSchemaPrettyAndCompact) {
  const RunReport report = sample_report();
  for (const bool pretty : {true, false}) {
    const JsonParseResult parsed = telemetry::parse_json(report.to_json(pretty));
    ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
    const std::vector<std::string> errors = telemetry::validate_run_report(*parsed.value);
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
    const JsonValue* inner = parsed.value->find("fpopt_run_report");
    ASSERT_NE(inner, nullptr);
    const JsonValue* telemetry_flag = inner->find("telemetry");
    ASSERT_NE(telemetry_flag, nullptr);
    EXPECT_EQ(telemetry_flag->boolean, telemetry::kEnabled);
  }
}

TEST(RunReportTest, AbortedFlagRoundTrips) {
  RunReport report("fpopt_tests", "abort-sample");
  report.set_aborted(true);
  const JsonParseResult parsed = telemetry::parse_json(report.to_json(true));
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const JsonValue* aborted = parsed.value->find("fpopt_run_report")->find("aborted");
  ASSERT_NE(aborted, nullptr);
  EXPECT_TRUE(aborted->boolean);
}

TEST(RunReportTest, TableListsCountersAndGauges) {
  const std::string table = sample_report().to_table();
  EXPECT_NE(table.find("optimizer.total_generated"), std::string::npos) << table;
  EXPECT_NE(table.find("123"), std::string::npos);
  EXPECT_NE(table.find("optimizer.prune_ratio"), std::string::npos);
}

// ---- schema validator negatives ---------------------------------------

JsonValue parsed_sample() {
  const JsonParseResult parsed = telemetry::parse_json(sample_report().to_json(false));
  EXPECT_TRUE(parsed.value.has_value()) << parsed.error;
  return *parsed.value;
}

JsonValue& inner_of(JsonValue& doc) {
  return doc.object.front().second;  // the "fpopt_run_report" value
}

TEST(ReportSchema, RejectsWrongSchemaVersion) {
  JsonValue doc = parsed_sample();
  for (auto& [key, value] : inner_of(doc).object) {
    if (key == "schema_version") value.integer = 99;
  }
  EXPECT_FALSE(telemetry::validate_run_report(doc).empty());
}

TEST(ReportSchema, RejectsMissingRequiredKey) {
  JsonValue doc = parsed_sample();
  auto& members = inner_of(doc).object;
  members.erase(members.begin());  // drop schema_version entirely
  const std::vector<std::string> errors = telemetry::validate_run_report(doc);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("schema_version"), std::string::npos);
}

TEST(ReportSchema, RejectsNegativeAndNonDottedCounters) {
  JsonValue doc = parsed_sample();
  for (auto& [key, value] : inner_of(doc).object) {
    if (key != "counters") continue;
    value.object.front().second.integer = -1;
    value.object.front().second.number = -1;
    value.object.push_back({"undotted", value.object.back().second});
  }
  const std::vector<std::string> errors = telemetry::validate_run_report(doc);
  EXPECT_EQ(errors.size(), 2u) << (errors.empty() ? "" : errors.front());
}

TEST(ReportSchema, EmbeddedSearchFindsNestedReportsAndFlagsAbsence) {
  // BENCH_*.json shape: the report sits deep inside a workloads array.
  JsonValue report_doc = parsed_sample();
  JsonValue workloads;
  workloads.kind = JsonValue::Kind::Array;
  workloads.array.push_back(report_doc);
  JsonValue doc;
  doc.kind = JsonValue::Kind::Object;
  doc.object.push_back({"workloads", workloads});
  EXPECT_TRUE(telemetry::validate_embedded_run_reports(doc).empty());

  JsonValue empty;
  empty.kind = JsonValue::Kind::Object;
  const std::vector<std::string> errors = telemetry::validate_embedded_run_reports(empty);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("no fpopt_run_report"), std::string::npos);
}

// ---- report builders over a real run ----------------------------------

TEST(RunReportTest, OptimizerReportIsSchemaValidAndSerialDeterministic) {
  WorkloadConfig cfg;
  cfg.seed = 3;
  cfg.impls_per_module = 5;
  const FloorplanTree tree = make_fp1(cfg);
  OptimizerOptions opts;
  opts.selection.k1 = 8;
  opts.selection.k2 = 12;

  const auto build = [&] {
    const OptimizeOutcome out = optimize_floorplan(tree, opts);
    RunReport report("fpopt_tests", "optimize");
    report_optimizer(report, out);
    return report;
  };
  const RunReport first = build();
  const JsonParseResult parsed = telemetry::parse_json(first.to_json(true));
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const std::vector<std::string> errors = telemetry::validate_run_report(*parsed.value);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());

  // Serial determinism: the counter section is value-identical across
  // repeat runs (timings/phases are exempt, so compare counters only).
  EXPECT_EQ(first.counters(), build().counters());
  // OptimizerStats ride the deterministic profile plumbing, not the atomic
  // telemetry counters, so they are populated in both telemetry modes.
  bool saw_nodes = false;
  for (const auto& [name, value] : first.counters()) {
    if (name == "optimizer.nodes_evaluated") {
      saw_nodes = true;
      EXPECT_GT(value, 0u);
    }
  }
  EXPECT_TRUE(saw_nodes);
}

}  // namespace
}  // namespace fpopt
