// Fixture-driven tests for the fpopt_lint rule engine (docs/LINT.md):
// one firing and one non-firing case per rule family, suppression
// parsing, layer-manifest validation, and the machine-readable output
// shapes (JSON / SARIF round-tripped through the repo's own parser).
//
// Fixtures are tiny C++ snippets handed to parse_source() with invented
// repo-relative paths — the path decides which rules apply (R2 only
// inside src/, R5 only for src/<layer>/ files), so the same snippet can
// serve as both the positive and the negative case.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/layers.h"
#include "lint/render.h"
#include "lint/source.h"
#include "telemetry/json.h"

namespace fpopt::lint {
namespace {

std::vector<Finding> lint_files(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LayerManifest* manifest = nullptr) {
  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, text] : sources) files.push_back(parse_source(path, text));
  LintOptions options;
  options.manifest = manifest;
  return run_lint(files, options);
}

std::vector<Finding> lint_one(const std::string& path, const std::string& text,
                              const LayerManifest* manifest = nullptr) {
  return lint_files({{path, text}}, manifest);
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// R1: unordered-iter

TEST(LintUnorderedIter, FiresOnRangeForOverUnorderedMap) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, int> counts;
int total() {
  int t = 0;
  for (const auto& [k, v] : counts) t += v;
  return t;
}
)cpp");
  ASSERT_EQ(count_rule(findings, "unordered-iter"), 1);
  EXPECT_EQ(findings[0].file, "src/core/x.cpp");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(LintUnorderedIter, FiresOnIteratorWalk) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_set>
std::unordered_set<int> seen;
void walk() {
  for (auto it = seen.begin(); it != seen.end(); ++it) {
  }
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, SilentOnOrderedMapAndPointLookups) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <map>
#include <unordered_map>
std::map<int, int> ordered;
std::unordered_map<int, int> counts;
int f(int key) {
  for (const auto& [k, v] : ordered) (void)k;   // std::map: order is defined
  auto it = counts.find(key);                   // point lookup, no iteration
  return it == counts.end() ? 0 : it->second;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, WrapperCallIsTheSanctionedFix) {
  // A call around the container (sorted(...), keys_sorted(...)) is the
  // documented remediation; the rule must not fire on it.
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, int> counts;
void emit() {
  for (const auto& kv : sorted(counts)) (void)kv;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, SeesThroughUsingAlias) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_map>
using CountMap = std::unordered_map<int, int>;
CountMap counts;
void emit() {
  for (const auto& kv : counts) (void)kv;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, MemberDeclaredInIncludedHeaderPropagates) {
  // The member is declared in the header; the .cpp only iterates it. The
  // whole-set analysis must connect the two through the quoted include.
  const std::string header = R"cpp(
#include <unordered_map>
struct Index {
  std::unordered_map<int, int> slots_;
  void publish();
};
)cpp";
  const std::string impl = R"cpp(
#include "core/index.h"
void Index::publish() {
  for (const auto& [k, v] : slots_) (void)k;
}
)cpp";
  const auto findings =
      lint_files({{"src/core/index.h", header}, {"src/core/index.cpp", impl}});
  ASSERT_EQ(count_rule(findings, "unordered-iter"), 1);
  EXPECT_EQ(findings[0].file, "src/core/index.cpp");

  // Without the include the declaration is invisible: no finding.
  const std::string no_include = R"cpp(
void publish_other(const int& slots_) { (void)slots_; }
)cpp";
  const auto disconnected =
      lint_files({{"src/core/index.h", header}, {"src/core/other.cpp", no_include}});
  for (const Finding& f : disconnected) EXPECT_NE(f.file, "src/core/other.cpp");
}

// ---------------------------------------------------------------------------
// R2: wall-clock

TEST(LintWallClock, FiresOnClockAndRandomnessInSrc) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <chrono>
#include <random>
double now() {
  std::random_device rd;
  (void)rd;
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
)cpp");
  EXPECT_EQ(count_rule(findings, "wall-clock"), 2);  // random_device + steady_clock
}

TEST(LintWallClock, SilentInTelemetryLayerAndOutsideSrc) {
  const std::string snippet = R"cpp(
#include <chrono>
auto t0 = std::chrono::steady_clock::now();
)cpp";
  EXPECT_EQ(count_rule(lint_one("src/telemetry/x.cpp", snippet), "wall-clock"), 0);
  EXPECT_EQ(count_rule(lint_one("bench/x.cpp", snippet), "wall-clock"), 0);
  EXPECT_EQ(count_rule(lint_one("tools/x.cpp", snippet), "wall-clock"), 0);
}

TEST(LintWallClock, TimeFiresOnlyAsFreeFunctionCall) {
  const auto findings = lint_one("src/io/x.cpp", R"cpp(
long stamp() { return time(nullptr); }
double member(const Event& e) { return e.time; }
int named() { int time = 3; return time; }
)cpp");
  ASSERT_EQ(count_rule(findings, "wall-clock"), 1);
  EXPECT_EQ(findings[0].line, 2);
}

// ---------------------------------------------------------------------------
// R3: atomic-order

TEST(LintAtomicOrder, FiresOnImplicitSeqCst) {
  const auto findings = lint_one("src/runtime/x.cpp", R"cpp(
#include <atomic>
std::atomic<int> flag{0};
void set() { flag.store(1); }
)cpp");
  ASSERT_EQ(count_rule(findings, "atomic-order"), 1);
  EXPECT_NE(findings[0].message.find("implicit seq_cst"), std::string::npos);
}

TEST(LintAtomicOrder, ExplicitSeqCstNeedsNoJustification) {
  const auto findings = lint_one("src/runtime/x.cpp", R"cpp(
#include <atomic>
std::atomic<int> flag{0};
void set() { flag.store(1, std::memory_order_seq_cst); }
)cpp");
  EXPECT_EQ(count_rule(findings, "atomic-order"), 0);
}

TEST(LintAtomicOrder, RelaxedWithoutCommentFires) {
  const auto findings = lint_one("src/runtime/x.cpp", R"cpp(
#include <atomic>
std::atomic<int> n{0};
void bump() {
  n.fetch_add(1, std::memory_order_relaxed);
}
)cpp");
  ASSERT_EQ(count_rule(findings, "atomic-order"), 1);
  EXPECT_NE(findings[0].message.find("no nearby justification"), std::string::npos);
}

TEST(LintAtomicOrder, RelaxedWithNearbyCommentIsClean) {
  const auto findings = lint_one("src/runtime/x.cpp", R"cpp(
#include <atomic>
std::atomic<int> n{0};
void bump() {
  // relaxed: commutative counter, read only after the pool quiesces.
  n.fetch_add(1, std::memory_order_relaxed);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "atomic-order"), 0);
}

TEST(LintAtomicOrder, ScopedEnumSpellingIsRecognized) {
  const auto findings = lint_one("src/runtime/x.cpp", R"cpp(
#include <atomic>
std::atomic<int> n{0};
int peek() { return n.load(std::memory_order::acquire); }
)cpp");
  // Named, but acquire without a justification comment.
  EXPECT_EQ(count_rule(findings, "atomic-order"), 1);
}

// ---------------------------------------------------------------------------
// R4: raw-telemetry

TEST(LintRawTelemetry, FiresOnRawPreprocessorCheck) {
  const auto findings = lint_one("src/optimize/x.cpp", R"cpp(
#if defined(FPOPT_TELEMETRY)
void hook();
#endif
)cpp");
  EXPECT_GE(count_rule(findings, "raw-telemetry"), 1);
}

TEST(LintRawTelemetry, TelemetryLayerMayObserveTheSwitch) {
  const auto findings = lint_one("src/telemetry/telemetry.h", R"cpp(
#if defined(FPOPT_TELEMETRY_DISABLED)
inline constexpr bool kEnabled = false;
#endif
)cpp");
  EXPECT_EQ(count_rule(findings, "raw-telemetry"), 0);
}

TEST(LintRawTelemetry, TraceSymbolWithoutHeaderFires) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
void f() {
  telemetry::TraceSpan span;
  (void)span;
}
)cpp");
  ASSERT_EQ(count_rule(findings, "raw-telemetry"), 1);
  EXPECT_NE(findings[0].message.find("telemetry/trace.h"), std::string::npos);
}

TEST(LintRawTelemetry, IncludedHeaderSatisfiesTheRule) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include "telemetry/trace.h"
void f() {
  telemetry::TraceSpan span;
  (void)span;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "raw-telemetry"), 0);
}

// ---------------------------------------------------------------------------
// R5: layering

LayerManifest small_manifest() {
  const auto result = parse_layer_manifest("a:\nb: a\n");
  EXPECT_TRUE(result.ok());
  return result.manifest;
}

TEST(LintLayering, AllowedEdgeAndSelfEdgeAreClean) {
  const LayerManifest manifest = small_manifest();
  EXPECT_TRUE(manifest.allows("b", "a"));
  EXPECT_TRUE(manifest.allows("a", "a"));  // self-dependency is implicit
  const auto findings = lint_one("src/b/x.h", R"cpp(
#include "a/y.h"
#include "b/z.h"
#include <vector>
)cpp",
                                 &manifest);
  EXPECT_EQ(count_rule(findings, "layering"), 0);
}

TEST(LintLayering, BackEdgeFires) {
  const LayerManifest manifest = small_manifest();
  const auto findings = lint_one("src/a/x.h", "#include \"b/y.h\"\n", &manifest);
  ASSERT_EQ(count_rule(findings, "layering"), 1);
  EXPECT_NE(findings[0].message.find("'a' may not depend on 'b'"), std::string::npos);
}

TEST(LintLayering, UndeclaredLayerFires) {
  const LayerManifest manifest = small_manifest();
  const auto findings = lint_one("src/c/x.h", "int x;\n", &manifest);
  ASSERT_EQ(count_rule(findings, "layering"), 1);
  EXPECT_NE(findings[0].message.find("not declared"), std::string::npos);
}

TEST(LintLayering, SkippedEntirelyWithoutManifest) {
  const auto findings = lint_one("src/a/x.h", "#include \"b/y.h\"\n");
  EXPECT_EQ(count_rule(findings, "layering"), 0);
}

TEST(LayerManifest, ParsesCommentsBlanksAndEmptyDeps) {
  const auto result = parse_layer_manifest(
      "# allowed include DAG\n"
      "\n"
      "geometry:\n"
      "shape: geometry\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.manifest.has_layer("geometry"));
  EXPECT_TRUE(result.manifest.allows("shape", "geometry"));
  EXPECT_FALSE(result.manifest.allows("geometry", "shape"));
}

TEST(LayerManifest, RejectsCycle) {
  const auto result = parse_layer_manifest("a: b\nb: a\n");
  ASSERT_FALSE(result.ok());
  bool mentions_cycle = false;
  for (const std::string& e : result.errors) {
    if (e.find("cycle") != std::string::npos) mentions_cycle = true;
  }
  EXPECT_TRUE(mentions_cycle);
}

TEST(LayerManifest, RejectsUndeclaredDependencyAndDuplicateLayer) {
  EXPECT_FALSE(parse_layer_manifest("a: ghost\n").ok());
  EXPECT_FALSE(parse_layer_manifest("a:\na:\n").ok());
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(LintSuppression, SameLineAnnotationSilencesTheFinding) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, int> counts;
int total() {
  int t = 0;
  for (const auto& [k, v] : counts) t += v;  // FPOPT-LINT-OK(unordered-iter): sum is order-independent
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

TEST(LintSuppression, OwnLineAnnotationCoversTheNextLine) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, int> counts;
int total() {
  int t = 0;
  // FPOPT-LINT-OK(unordered-iter): sum is order-independent
  for (const auto& [k, v] : counts) t += v;
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

TEST(LintSuppression, WrongRuleIdDoesNotSuppress) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, int> counts;
int total() {
  int t = 0;
  for (const auto& [k, v] : counts) t += v;  // FPOPT-LINT-OK(wall-clock): wrong rule
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

TEST(LintSuppression, EmptyReasonIsItselfAFinding) {
  const auto findings = lint_one("src/core/x.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, int> counts;
int total() {
  int t = 0;
  for (const auto& [k, v] : counts) t += v;  // FPOPT-LINT-OK(unordered-iter):
  return t;
}
)cpp");
  // The waiver is void (finding stays) and is flagged on top.
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 1);
}

TEST(LintSuppression, UnknownRuleIdIsItselfAFinding) {
  const auto findings = lint_one("src/core/x.cpp",
                                 "int x;  // FPOPT-LINT-OK(no-such-rule): whatever\n");
  ASSERT_EQ(count_rule(findings, "bad-suppression"), 1);
  EXPECT_NE(findings[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintSuppression, ProseMentionOfTheMarkerIsIgnored) {
  const auto findings = lint_one(
      "src/core/x.cpp", "int x;  // the FPOPT-LINT-OK marker is documented in LINT.md\n");
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

// ---------------------------------------------------------------------------
// Output shapes (round-tripped through the repo's own JSON parser)

std::vector<Finding> one_finding() {
  return lint_one("src/io/x.cpp", "long stamp() { return time(nullptr); }\n");
}

TEST(LintRender, TextFormatAndSummaryLine) {
  std::ostringstream out;
  render_text(one_finding(), out);
  EXPECT_NE(out.str().find("src/io/x.cpp:1:"), std::string::npos);
  EXPECT_NE(out.str().find("error[wall-clock]"), std::string::npos);
  EXPECT_NE(out.str().find("fpopt_lint: 1 finding"), std::string::npos);

  std::ostringstream clean;
  render_text({}, clean);
  EXPECT_EQ(clean.str(), "fpopt_lint: clean\n");
}

TEST(LintRender, JsonRoundTrips) {
  std::ostringstream out;
  render_json(one_finding(), out);
  const auto parsed = telemetry::parse_json(out.str());
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const telemetry::JsonValue* findings = parsed.value->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  ASSERT_EQ(findings->array.size(), 1u);
  const telemetry::JsonValue& f = findings->array[0];
  EXPECT_EQ(f.find("file")->string, "src/io/x.cpp");
  EXPECT_EQ(f.find("rule")->string, "wall-clock");
  EXPECT_EQ(f.find("line")->integer, 1);
  EXPECT_FALSE(f.find("message")->string.empty());
}

TEST(LintRender, SarifShape) {
  std::ostringstream out;
  render_sarif(one_finding(), out);
  const auto parsed = telemetry::parse_json(out.str());
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const telemetry::JsonValue& doc = *parsed.value;

  ASSERT_NE(doc.find("version"), nullptr);
  EXPECT_EQ(doc.find("version")->string, "2.1.0");
  ASSERT_NE(doc.find("$schema"), nullptr);

  const telemetry::JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  ASSERT_EQ(runs->array.size(), 1u);
  const telemetry::JsonValue& run = runs->array[0];

  const telemetry::JsonValue* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->string, "fpopt_lint");
  const telemetry::JsonValue* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->array.size(), rule_catalogue().size());
  for (const telemetry::JsonValue& rule : rules->array) {
    EXPECT_TRUE(known_rule(rule.find("id")->string));
    EXPECT_FALSE(rule.find("shortDescription")->find("text")->string.empty());
  }

  const telemetry::JsonValue* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 1u);
  const telemetry::JsonValue& result = results->array[0];
  EXPECT_EQ(result.find("ruleId")->string, "wall-clock");
  EXPECT_EQ(result.find("level")->string, "error");
  EXPECT_FALSE(result.find("message")->find("text")->string.empty());
  const telemetry::JsonValue& loc = result.find("locations")->array[0];
  const telemetry::JsonValue* phys = loc.find("physicalLocation");
  ASSERT_NE(phys, nullptr);
  EXPECT_EQ(phys->find("artifactLocation")->find("uri")->string, "src/io/x.cpp");
  EXPECT_EQ(phys->find("region")->find("startLine")->integer, 1);
  EXPECT_GE(phys->find("region")->find("startColumn")->integer, 1);
}

TEST(LintRender, SarifEmptyResultsParses) {
  std::ostringstream out;
  render_sarif({}, out);
  const auto parsed = telemetry::parse_json(out.str());
  ASSERT_TRUE(parsed.value.has_value()) << parsed.error;
  const telemetry::JsonValue* results = parsed.value->find("runs")->array[0].find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_TRUE(results->array.empty());
}

// ---------------------------------------------------------------------------
// Determinism of the findings list itself

TEST(LintEngine, FindingsAreSortedByFileLineColRule) {
  const auto findings = lint_files({
      {"src/io/z.cpp", "long a() { return time(nullptr); }\nlong b() { return time(nullptr); }\n"},
      {"src/io/a.cpp", "long c() { return time(nullptr); }\n"},
  });
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/io/a.cpp");
  EXPECT_EQ(findings[1].file, "src/io/z.cpp");
  EXPECT_EQ(findings[1].line, 1);
  EXPECT_EQ(findings[2].line, 2);
}

}  // namespace
}  // namespace fpopt::lint
