// Protocol robustness for the fpoptd service (ISSUE: protocol-fuzz
// tests): malformed, truncated, oversized and interleaved frames must
// never crash or wedge the daemon — every frame gets exactly one
// response, every error response validates against the response schema
// and carries a distinct machine-readable code, and both transports
// (stdio pump, Unix socket) survive hostile byte streams.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"
#include "telemetry/json.h"

namespace fpopt {
namespace {

constexpr const char* kTopology = "(V (H m0 m1) m2)";
constexpr const char* kLibrary = "m0 38x11 26x16\nm1 41x26 40x27\nm2 46x7 37x8\n";

std::string valid_frame(const std::string& id = "\"ok\"") {
  return "{\"fpopt_request\":{\"schema_version\":1,\"id\":" + id +
         ",\"command\":\"optimize\",\"topology\":" + telemetry::json_quote(kTopology) +
         ",\"library\":" + telemetry::json_quote(kLibrary) +
         ",\"options\":{\"k1\":4,\"k2\":4}}}";
}

/// Parse + schema-validate one response line; returns the inner object.
telemetry::JsonValue checked_response(const std::string& line) {
  const telemetry::JsonParseResult doc = telemetry::parse_json(line);
  EXPECT_TRUE(doc.value.has_value()) << "unparseable response: " << line;
  if (!doc.value.has_value()) return {};
  const std::vector<std::string> violations = validate_service_response(*doc.value);
  EXPECT_TRUE(violations.empty()) << violations.front() << "\nline: " << line;
  return *doc.value->find("fpopt_response");
}

std::string error_code(const std::string& line) {
  const telemetry::JsonValue r = checked_response(line);
  const telemetry::JsonValue* status = r.find("status");
  if (status == nullptr || status->string != "error") return "";
  return r.find("error")->find("code")->string;
}

TEST(ServiceProtocol, DistinctErrorCodesPerFailureClass) {
  Service service(ServiceConfig{});
  const struct {
    const char* frame;
    const char* code;
  } kCases[] = {
      {"", "E_PARSE"},
      {"not json at all", "E_PARSE"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"id\":\"x\",\"command\":\"optimize\"",
       "E_PARSE"},  // truncated mid-document
      {"[1,2,3]", "E_SCHEMA"},
      {"{\"wrong_envelope\":{}}", "E_SCHEMA"},
      {"{\"fpopt_request\":{\"id\":\"x\",\"command\":\"stats\"}}",
       "E_SCHEMA"},  // missing schema_version
      {"{\"fpopt_request\":{\"schema_version\":99,\"command\":\"stats\"}}",
       "E_SCHEMA"},  // wrong version
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"stats\",\"library\":\"\"}}",
       "E_SCHEMA"},  // missing topology
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"stats\",\"topology\":\"\","
       "\"library\":\"\",\"surprise\":1}}",
       "E_SCHEMA"},  // unknown member
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"explode\"}}", "E_COMMAND"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"options\":{\"theta\":7}}}",
       "E_OPTION"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"options\":{\"warp\":1}}}",
       "E_OPTION"},  // unknown option
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"options\":{\"metric\":\"l9\"}}}",
       "E_OPTION"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"((((\",\"library\":\"\"}}",
       "E_INPUT"},
      // Non-finite doubles: 1e999 parses to +/-inf, and NaN would sail
      // through ordered range checks (every comparison is false) — both
      // must be rejected at the option layer, not poison the solver.
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"options\":{\"theta\":1e999}}}",
       "E_OPTION"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"options\":{\"theta\":-1e999}}}",
       "E_OPTION"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"options\":{\"theta\":0}}}",
       "E_OPTION"},  // theta must be in (0, 1]
      // Traffic-policy members: integer 0..2 priority, bounded deadline,
      // run commands only.
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"priority\":3}}",
       "E_SCHEMA"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"priority\":\"high\"}}",
       "E_SCHEMA"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"deadline_ms\":-5}}",
       "E_SCHEMA"},
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
       "\"topology\":\"(V m0 m1)\",\"library\":\"\",\"deadline_ms\":99999999999}}",
       "E_SCHEMA"},  // over the 24h ceiling
      {"{\"fpopt_request\":{\"schema_version\":1,\"command\":\"ping\",\"priority\":2}}",
       "E_SCHEMA"},  // control verbs take no traffic policy
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(error_code(service.handle_frame(c.frame)), c.code) << "frame: " << c.frame;
  }
  // And the budget class, end to end: an impossible budget aborts.
  const std::string abort_frame =
      "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
      "\"topology\":" +
      std::string(telemetry::json_quote(kTopology)) +
      ",\"library\":" + telemetry::json_quote(kLibrary) +
      ",\"options\":{\"budget\":1}}}";
  EXPECT_EQ(error_code(service.handle_frame(abort_frame)), "E_BUDGET");
}

TEST(ServiceProtocol, IdIsEchoedIntoErrorResponses) {
  Service service(ServiceConfig{});
  const std::string line = service.handle_frame(
      "{\"fpopt_request\":{\"schema_version\":1,\"id\":\"abc\",\"command\":\"nope\"}}");
  const telemetry::JsonValue r = checked_response(line);
  EXPECT_EQ(r.find("id")->string, "abc");
  const std::string numeric = service.handle_frame(
      "{\"fpopt_request\":{\"schema_version\":1,\"id\":41,\"command\":\"nope\"}}");
  EXPECT_EQ(checked_response(numeric).find("id")->integer, 41);
}

TEST(ServiceProtocol, OversizedFramesAreRejectedNotFatal) {
  ServiceConfig config;
  config.max_frame_bytes = 512;
  Service service(config);
  const std::string big(600, 'x');
  EXPECT_EQ(error_code(service.handle_frame(big)), "E_OVERSIZED");
  // The service still works afterwards.
  EXPECT_EQ(error_code(service.handle_frame(valid_frame())), "");
}

TEST(ServiceProtocol, LineSplitterResynchronizesAfterOversizedFrame) {
  LineSplitter splitter(64);
  std::vector<std::pair<std::string, bool>> frames;
  const std::string input = std::string(500, 'a') + "\nshort\n";
  splitter.feed(input.data(), input.size(),
                [&](const std::string& f, bool oversized) { frames.emplace_back(f, oversized); });
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].second);
  EXPECT_EQ(frames[0].first.size(), 65u);  // truncated to max + 1, memory stays bounded
  EXPECT_FALSE(frames[1].second);
  EXPECT_EQ(frames[1].first, "short");
  EXPECT_FALSE(splitter.has_partial());
}

TEST(ServiceProtocol, SplitterHandlesArbitraryChunkBoundaries) {
  // The same byte stream must yield the same frames no matter how the
  // transport's reads slice it.
  const std::string stream = valid_frame("1") + "\n" + std::string(300, 'z') + "\n" +
                             valid_frame("2") + "\npartial-tail";
  std::mt19937 rng(11);
  std::vector<std::string> reference;
  {
    LineSplitter s(128);
    s.feed(stream.data(), stream.size(),
           [&](const std::string& f, bool) { reference.push_back(f); });
    if (s.has_partial()) reference.push_back(s.partial());
  }
  for (int round = 0; round < 20; ++round) {
    LineSplitter s(128);
    std::vector<std::string> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng() % 37, stream.size() - off);
      s.feed(stream.data() + off, n, [&](const std::string& f, bool) { got.push_back(f); });
      off += n;
    }
    if (s.has_partial()) got.push_back(s.partial());
    EXPECT_EQ(got, reference) << "round " << round;
  }
}

TEST(ServiceProtocol, FuzzedFramesNeverCrashAndAlwaysRespond) {
  ServiceConfig config;
  config.max_frame_bytes = 4096;
  Service service(config);
  std::mt19937 rng(42);
  const std::string seed_frame = valid_frame();
  for (int round = 0; round < 300; ++round) {
    std::string frame;
    switch (rng() % 4) {
      case 0: {  // random garbage bytes (newline-free: one frame)
        const std::size_t len = rng() % 200;
        for (std::size_t i = 0; i < len; ++i) {
          char c = static_cast<char>(rng() % 256);
          if (c == '\n') c = ' ';
          frame.push_back(c);
        }
        break;
      }
      case 1:  // truncated valid frame
        frame = seed_frame.substr(0, rng() % seed_frame.size());
        break;
      case 2: {  // valid frame with mutated bytes
        frame = seed_frame;
        for (int m = 0; m < 3; ++m) {
          char c = static_cast<char>(rng() % 256);
          if (c == '\n') c = '?';
          frame[rng() % frame.size()] = c;
        }
        break;
      }
      default:  // structurally valid JSON, hostile content
        frame = "{\"fpopt_request\":{\"schema_version\":1,\"command\":\"optimize\","
                "\"topology\":\"" +
                std::string(rng() % 40, '(') + "\",\"library\":\"junk\"}}";
        break;
    }
    const std::string response = service.handle_frame(frame);
    // Exactly one syntactically valid, schema-valid response per frame.
    (void)checked_response(response);
    EXPECT_EQ(response.find('\n'), std::string::npos);
  }
  // The service is still healthy after the barrage.
  const telemetry::JsonValue r = checked_response(service.handle_frame(valid_frame()));
  EXPECT_EQ(r.find("status")->string, "ok");
}

TEST(ServiceProtocol, StdioTransportRespondsInOrderAndHonorsShutdown) {
  ServiceConfig config;
  Service service(config);
  std::istringstream in(valid_frame("1") + "\ngarbage\n" + valid_frame("2") + "\n" +
                        "{\"fpopt_request\":{\"schema_version\":1,\"id\":\"bye\","
                        "\"command\":\"shutdown\"}}\n" +
                        valid_frame("\"after\"") + "\n");
  std::ostringstream out;
  EXPECT_EQ(serve_stdio(service, in, out), 0);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  // Four responses — the frame after shutdown is dropped.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(checked_response(lines[0]).find("id")->integer, 1);
  EXPECT_EQ(error_code(lines[1]), "E_PARSE");
  EXPECT_EQ(checked_response(lines[2]).find("id")->integer, 2);
  EXPECT_EQ(checked_response(lines[3]).find("id")->string, "bye");
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServiceProtocol, StdioHandlesUnterminatedFinalLine) {
  Service service(ServiceConfig{});
  std::istringstream in(valid_frame("7"));  // no trailing newline
  std::ostringstream out;
  EXPECT_EQ(serve_stdio(service, in, out), 0);
  std::string line = out.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // trailing '\n'
  EXPECT_EQ(checked_response(line).find("id")->integer, 7);
}

// ---------------------------------------------------------------------------
// Unix-socket transport: a raw client sends interleaved and fragmented
// frames over a real AF_UNIX connection.

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  // The server binds asynchronously; retry briefly.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ADD_FAILURE() << "cannot connect to " << path;
  ::close(fd);
  return -1;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

std::vector<std::string> read_lines(int fd, std::size_t count) {
  std::vector<std::string> lines;
  std::string partial;
  char chunk[1024];
  while (lines.size() < count) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') {
        lines.push_back(partial);
        partial.clear();
      } else {
        partial.push_back(chunk[i]);
      }
    }
  }
  return lines;
}

TEST(ServiceProtocol, UnixSocketSurvivesFragmentedAndAbortedClients) {
  const std::string socket_path =
      testing::TempDir() +
      testing::UnitTest::GetInstance()->current_test_info()->name() + ".sock";
  ServiceConfig config;
  config.max_frame_bytes = 1u << 16;
  Service service(config);
  std::ostringstream server_err;
  std::thread server([&] { EXPECT_EQ(serve_unix(service, socket_path, server_err), 0); });

  {
    // Client 1: two pipelined requests written in tiny fragments.
    const int fd = connect_to(socket_path);
    ASSERT_GE(fd, 0);
    const std::string stream = valid_frame("1") + "\n" + valid_frame("2") + "\n";
    for (std::size_t off = 0; off < stream.size(); off += 7) {
      send_all(fd, stream.substr(off, 7));
    }
    const std::vector<std::string> lines = read_lines(fd, 2);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(checked_response(lines[0]).find("id")->integer, 1);
    EXPECT_EQ(checked_response(lines[1]).find("id")->integer, 2);
    ::close(fd);
  }
  {
    // Client 2: slams garbage and disconnects mid-frame; must not wedge
    // the server.
    const int fd = connect_to(socket_path);
    ASSERT_GE(fd, 0);
    send_all(fd, "garbage without newline, then the client dies");
    ::close(fd);
  }
  {
    // Client 3: still served after the rude one, then shuts the daemon
    // down cleanly.
    const int fd = connect_to(socket_path);
    ASSERT_GE(fd, 0);
    send_all(fd, valid_frame("3") + "\n{\"fpopt_request\":{\"schema_version\":1,"
                                    "\"id\":\"bye\",\"command\":\"shutdown\"}}\n");
    const std::vector<std::string> lines = read_lines(fd, 2);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(checked_response(lines[0]).find("id")->integer, 3);
    EXPECT_EQ(checked_response(lines[1]).find("id")->string, "bye");
    ::close(fd);
  }
  server.join();
  EXPECT_EQ(server_err.str(), "");
}

}  // namespace
}  // namespace fpopt
