// Unit tests for the content-addressed memo cache (src/cache/): LRU
// ordering, byte-budget eviction, epoch commit/rollback semantics, and
// the cache-key derivation rules the incremental engine relies on.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_key.h"
#include "cache/memo_cache.h"
#include "cache/shared_cache.h"
#include "topology/polish.h"
#include "workload/module_gen.h"

namespace fpopt {
namespace {

CacheKey key_of(std::uint64_t n) { return CacheKey{n, ~n}; }

/// An entry whose R-list has `impls` implementations (so entries have a
/// predictable relative byte footprint).
MemoCache::Entry make_payload(std::size_t impls) {
  MemoCache::Entry e;
  e.result.is_l = false;
  std::vector<RectImpl> candidates;
  for (std::size_t i = 0; i < impls; ++i) {
    candidates.push_back({static_cast<Dim>(i + 1), static_cast<Dim>(impls - i + 1)});
  }
  e.result.rlist = RList::from_candidates(candidates);
  e.result.rprov.resize(e.result.rlist.size());
  e.profile.net_stored = impls;
  return e;
}

void insert(MemoCache& cache, std::uint64_t n, std::size_t impls = 4) {
  const MemoCache::Entry payload = make_payload(impls);
  cache.insert(key_of(n), payload.result, payload.profile);
}

TEST(MemoCacheTest, FindReturnsInsertedEntry) {
  MemoCache cache;
  insert(cache, 1, 7);
  const MemoCache::Entry* e = cache.find(key_of(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->result.rlist.size(), 7u);
  EXPECT_EQ(e->profile.net_stored, 7u);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MemoCacheTest, InsertOverwritesExistingKey) {
  MemoCache cache;
  insert(cache, 1, 3);
  insert(cache, 1, 9);
  EXPECT_EQ(cache.size(), 1u);
  const MemoCache::Entry* e = cache.find(key_of(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->result.rlist.size(), 9u);
}

TEST(MemoCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits roughly three entries; inserting a fourth must evict the
  // least recently *used* (not least recently inserted) one.
  MemoCache probe(0);
  insert(probe, 0, 6);
  const std::size_t per_entry = probe.bytes();
  ASSERT_GT(per_entry, 0u);

  MemoCache cache(3 * per_entry + per_entry / 2);
  insert(cache, 1, 6);
  insert(cache, 2, 6);
  insert(cache, 3, 6);
  ASSERT_EQ(cache.size(), 3u);
  ASSERT_NE(cache.find(key_of(1)), nullptr);  // touch 1: now 2 is the LRU
  insert(cache, 4, 6);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr) << "the LRU entry must go first";
  EXPECT_NE(cache.find(key_of(3)), nullptr);
  EXPECT_NE(cache.find(key_of(4)), nullptr);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(MemoCacheTest, FreshInsertIsNeverEvictedByItsOwnInsertion) {
  MemoCache probe(0);
  insert(probe, 0, 12);
  // Budget smaller than one entry: the entry still lands (evicting
  // everything else), because evicting the fresh result would make the
  // cache useless for oversized nodes.
  MemoCache cache(probe.bytes() / 2);
  insert(cache, 1, 12);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
}

TEST(MemoCacheTest, ZeroBudgetMeansUnlimited) {
  MemoCache cache(0);
  for (std::uint64_t n = 0; n < 200; ++n) insert(cache, n, 8);
  EXPECT_EQ(cache.size(), 200u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(MemoCacheTest, RollbackRemovesEpochInsertions) {
  MemoCache cache;
  insert(cache, 1);
  cache.begin_epoch();
  insert(cache, 2);
  insert(cache, 3);
  EXPECT_EQ(cache.size(), 3u);
  cache.rollback_epoch();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_EQ(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.stats().rollback_discards, 2u);
}

TEST(MemoCacheTest, CommitKeepsEpochInsertions) {
  MemoCache cache;
  cache.begin_epoch();
  insert(cache, 2);
  cache.commit_epoch();
  EXPECT_FALSE(cache.in_epoch());
  EXPECT_NE(cache.find(key_of(2)), nullptr);
  // A later rollback of a new, empty epoch must not touch it.
  cache.begin_epoch();
  cache.rollback_epoch();
  EXPECT_NE(cache.find(key_of(2)), nullptr);
}

TEST(MemoCacheTest, EvictionsInsideAnEpochArePermanent) {
  MemoCache probe(0);
  insert(probe, 0, 6);
  const std::size_t per_entry = probe.bytes();

  MemoCache cache(2 * per_entry + per_entry / 2);
  insert(cache, 1, 6);
  insert(cache, 2, 6);
  cache.begin_epoch();
  insert(cache, 3, 6);  // evicts 1 (LRU)
  ASSERT_EQ(cache.stats().evictions, 1u);
  cache.rollback_epoch();
  // 3 (epoch insertion) is gone, and the evicted 1 does NOT come back —
  // losing an entry can only cause a recompute, never a wrong result.
  EXPECT_EQ(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  EXPECT_NE(cache.find(key_of(2)), nullptr);
}

TEST(MemoCacheTest, BytesTrackInsertionsAndClear) {
  MemoCache cache;
  EXPECT_EQ(cache.bytes(), 0u);
  insert(cache, 1, 10);
  const std::size_t one = cache.bytes();
  EXPECT_GT(one, 0u);
  insert(cache, 2, 10);
  EXPECT_GT(cache.bytes(), one);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(MemoCacheTest, ApproxEntryBytesGrowsWithPayload) {
  EXPECT_LT(approx_entry_bytes(make_payload(2).result),
            approx_entry_bytes(make_payload(40).result));
}

// ---- cache keys ---------------------------------------------------------

TEST(CacheKeyTest, DeterministicAndConfigSensitive) {
  const std::vector<Module> modules =
      generate_modules(6, ModuleGenConfig{.impl_count = 4}, 11);
  const FloorplanTree tree = PolishExpr::initial(modules.size()).to_tree(modules);
  OptimizerOptions opts;
  opts.selection.k1 = 6;

  const BinaryTree bt = restructure(tree, opts.restructure);
  const std::vector<CacheKey> a = derive_node_keys(bt, tree, opts);
  const std::vector<CacheKey> b = derive_node_keys(bt, tree, opts);
  EXPECT_EQ(a, b);

  OptimizerOptions changed = opts;
  changed.selection.theta = 0.5;
  const std::vector<CacheKey> c = derive_node_keys(bt, tree, changed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i], c[i]) << "node " << i << ": theta must be part of every key";
  }
}

TEST(CacheKeyTest, BudgetAndThreadsDoNotChangeKeys) {
  const std::vector<Module> modules =
      generate_modules(5, ModuleGenConfig{.impl_count = 3}, 13);
  const FloorplanTree tree = PolishExpr::initial(modules.size()).to_tree(modules);
  OptimizerOptions opts;
  const BinaryTree bt = restructure(tree, opts.restructure);
  const std::vector<CacheKey> base = derive_node_keys(bt, tree, opts);

  OptimizerOptions other = opts;
  other.impl_budget = 123;
  other.threads = 8;
  other.incremental = true;
  EXPECT_EQ(base, derive_node_keys(bt, tree, other))
      << "budget/threads never change a completed node's bytes";
}

// ---------------------------------------------------------------------------
// Cross-request isolation (cache/shared_cache.h): concurrent-epoch
// property tests for the daemon's SharedMemoCache / CacheSession pair.

/// Deterministic payload per key so any cross-session leak or corruption
/// shows up as a content mismatch, not just a wrong count.
std::size_t payload_impls(std::uint64_t n) { return (n % 5) + 2; }

TEST(SharedCacheIsolation, SessionSeesOwnInsertsButNotOthers) {
  SharedMemoCache shared(0);
  CacheSession a(shared);
  CacheSession b(shared);
  const MemoCache::Entry payload = make_payload(3);
  a.insert(key_of(1), payload.result, payload.profile);
  ASSERT_NE(a.find(key_of(1)), nullptr);
  EXPECT_EQ(b.find(key_of(1)), nullptr) << "provisional insert leaked across sessions";
  EXPECT_EQ(shared.size(), 0u) << "provisional insert leaked into the shared store";
  a.commit();
  EXPECT_EQ(shared.size(), 1u);
  // Still invisible to b's earlier miss bookkeeping, but a new probe hits.
  ASSERT_NE(b.find(key_of(1)), nullptr);
  EXPECT_EQ(b.find(key_of(1))->result.rlist.size(), 3u);
  b.rollback();
}

TEST(SharedCacheIsolation, UncommittedProbesNeverTouchSharedStatsOrLru) {
  SharedMemoCache shared(0);
  {
    CacheSession s(shared);
    const MemoCache::Entry payload = make_payload(4);
    EXPECT_EQ(s.find(key_of(9)), nullptr);
    s.insert(key_of(9), payload.result, payload.profile);
    (void)s.find(key_of(9));
    s.rollback();
  }
  const MemoCacheStats stats = shared.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(shared.bytes(), 0u);
  EXPECT_EQ(shared.size(), 0u);
}

/// N simulated requests interleaved at random: every find must see
/// exactly (own session contents) ∪ (entries committed so far) — never
/// another request's provisional inserts — and the final shared store
/// must equal a serial replay of only the committed trajectories.
TEST(SharedCacheIsolation, RandomInterleavingsMatchCommittedReplay) {
  constexpr std::uint64_t kKeySpace = 20;
  constexpr int kSessions = 6;
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    std::mt19937 rng(seed);
    // A tight byte budget on odd seeds exercises commit-order eviction.
    const std::size_t budget = (seed % 2 == 0) ? 0 : 4096;
    SharedMemoCache shared(budget);

    struct Sim {
      std::optional<CacheSession> session;
      std::set<std::uint64_t> seen;              ///< keys find() returned or inserted
      std::vector<std::uint64_t> inserted;       ///< provisional inserts, in order
      std::size_t hits = 0;
      std::size_t misses = 0;
      bool will_commit = false;
      int ops_left = 0;
    };
    std::vector<Sim> sims(kSessions);
    for (Sim& sim : sims) {
      sim.session.emplace(shared);
      sim.will_commit = rng() % 3 != 0;  // ~1/3 of requests roll back
      sim.ops_left = 10 + static_cast<int>(rng() % 20);
    }
    std::set<std::uint64_t> committed;  ///< keys in the shared store right now
    struct CommittedTrajectory {
      std::vector<std::uint64_t> inserted;
      std::size_t hits = 0;
      std::size_t misses = 0;
    };
    std::vector<CommittedTrajectory> commit_log;

    int open = kSessions;
    while (open > 0) {
      const std::size_t pick = rng() % sims.size();
      Sim& sim = sims[pick];
      if (!sim.session.has_value()) continue;
      if (sim.ops_left-- > 0) {
        const std::uint64_t k = rng() % kKeySpace;
        const bool expect_hit = sim.seen.count(k) != 0 || committed.count(k) != 0;
        const MemoCache::Entry* found = sim.session->find(key_of(k));
        if (budget == 0) {
          // With no eviction, visibility is exact: own view ∪ committed.
          ASSERT_EQ(found != nullptr, expect_hit)
              << "seed " << seed << " key " << k << " session " << pick;
        } else if (found != nullptr) {
          ASSERT_TRUE(expect_hit) << "provisional entry leaked: seed " << seed
                                  << " key " << k << " session " << pick;
        }
        if (found != nullptr) {
          ++sim.hits;
          // Content must match the key's canonical payload: a leak of
          // another session's in-flight overwrite would betray itself.
          EXPECT_EQ(found->result.rlist.size(), payload_impls(k));
          sim.seen.insert(k);
        } else {
          ++sim.misses;
          const MemoCache::Entry payload = make_payload(payload_impls(k));
          sim.session->insert(key_of(k), payload.result, payload.profile);
          sim.seen.insert(k);
          sim.inserted.push_back(k);
        }
      } else {
        if (sim.will_commit) {
          EXPECT_EQ(sim.session->stats().hits, sim.hits);
          EXPECT_EQ(sim.session->stats().misses, sim.misses);
          sim.session->commit();
          for (const std::uint64_t k : sim.inserted) committed.insert(k);
          commit_log.push_back({sim.inserted, sim.hits, sim.misses});
        } else {
          sim.session->rollback();
        }
        sim.session.reset();
        --open;
      }
    }

    // Serial replay of only the committed trajectories, in commit order,
    // must reproduce the shared store exactly: stats, bytes, size,
    // eviction history. Rolled-back sessions left no trace by contract.
    MemoCache replay(budget);
    for (const CommittedTrajectory& t : commit_log) {
      replay.note_probes(t.hits, t.misses);
      for (const std::uint64_t k : t.inserted) {
        const MemoCache::Entry payload = make_payload(payload_impls(k));
        replay.insert(key_of(k), payload.result, payload.profile);
      }
    }
    const MemoCacheStats got = shared.stats();
    const MemoCacheStats want = replay.stats();
    EXPECT_EQ(got.hits, want.hits) << "seed " << seed;
    EXPECT_EQ(got.misses, want.misses) << "seed " << seed;
    EXPECT_EQ(got.insertions, want.insertions) << "seed " << seed;
    EXPECT_EQ(got.evictions, want.evictions) << "seed " << seed;
    EXPECT_EQ(got.peak_bytes, want.peak_bytes) << "seed " << seed;
    EXPECT_EQ(shared.bytes(), replay.bytes()) << "seed " << seed;
    EXPECT_EQ(shared.size(), replay.size()) << "seed " << seed;
  }
}

TEST(SharedCacheIsolation, ConcurrentSessionsAreRaceFreeAndConsistent) {
  // The TSan-guarded case: many threads run full session lifecycles
  // against one shared store. Every observed entry must carry its key's
  // canonical payload, and the final store must be consistent.
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  constexpr std::uint64_t kKeySpace = 12;
  SharedMemoCache shared(0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      std::mt19937 rng(static_cast<std::uint32_t>(t) * 7919u + 13u);
      for (int round = 0; round < kRounds; ++round) {
        CacheSession session(shared);
        for (int op = 0; op < 6; ++op) {
          const std::uint64_t k = rng() % kKeySpace;
          const MemoCache::Entry* found = session.find(key_of(k));
          if (found != nullptr) {
            // Torn or cross-session state would show the wrong payload.
            EXPECT_EQ(found->result.rlist.size(), payload_impls(k));
          } else {
            const MemoCache::Entry payload = make_payload(payload_impls(k));
            session.insert(key_of(k), payload.result, payload.profile);
          }
        }
        if (rng() % 4 == 0) {
          session.rollback();
        } else {
          session.commit();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(shared.size(), kKeySpace);
  const MemoCacheStats stats = shared.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.probes());
  EXPECT_GE(stats.insertions, shared.size());
}

TEST(CacheKeyTest, ConfigFingerprintSeparatesKnobs) {
  OptimizerOptions a;
  OptimizerOptions b;
  b.selection.k2 = 5;
  OptimizerOptions c;
  c.l_pruning = LPruning::PerChain;
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(a));
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
  EXPECT_NE(config_fingerprint(a), config_fingerprint(c));
  EXPECT_NE(config_fingerprint(b), config_fingerprint(c));
}

}  // namespace
}  // namespace fpopt
