// Unit tests for the content-addressed memo cache (src/cache/): LRU
// ordering, byte-budget eviction, epoch commit/rollback semantics, and
// the cache-key derivation rules the incremental engine relies on.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "cache/cache_key.h"
#include "cache/memo_cache.h"
#include "topology/polish.h"
#include "workload/module_gen.h"

namespace fpopt {
namespace {

CacheKey key_of(std::uint64_t n) { return CacheKey{n, ~n}; }

/// An entry whose R-list has `impls` implementations (so entries have a
/// predictable relative byte footprint).
MemoCache::Entry make_payload(std::size_t impls) {
  MemoCache::Entry e;
  e.result.is_l = false;
  std::vector<RectImpl> candidates;
  for (std::size_t i = 0; i < impls; ++i) {
    candidates.push_back({static_cast<Dim>(i + 1), static_cast<Dim>(impls - i + 1)});
  }
  e.result.rlist = RList::from_candidates(candidates);
  e.result.rprov.resize(e.result.rlist.size());
  e.profile.net_stored = impls;
  return e;
}

void insert(MemoCache& cache, std::uint64_t n, std::size_t impls = 4) {
  const MemoCache::Entry payload = make_payload(impls);
  cache.insert(key_of(n), payload.result, payload.profile);
}

TEST(MemoCacheTest, FindReturnsInsertedEntry) {
  MemoCache cache;
  insert(cache, 1, 7);
  const MemoCache::Entry* e = cache.find(key_of(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->result.rlist.size(), 7u);
  EXPECT_EQ(e->profile.net_stored, 7u);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MemoCacheTest, InsertOverwritesExistingKey) {
  MemoCache cache;
  insert(cache, 1, 3);
  insert(cache, 1, 9);
  EXPECT_EQ(cache.size(), 1u);
  const MemoCache::Entry* e = cache.find(key_of(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->result.rlist.size(), 9u);
}

TEST(MemoCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits roughly three entries; inserting a fourth must evict the
  // least recently *used* (not least recently inserted) one.
  MemoCache probe(0);
  insert(probe, 0, 6);
  const std::size_t per_entry = probe.bytes();
  ASSERT_GT(per_entry, 0u);

  MemoCache cache(3 * per_entry + per_entry / 2);
  insert(cache, 1, 6);
  insert(cache, 2, 6);
  insert(cache, 3, 6);
  ASSERT_EQ(cache.size(), 3u);
  ASSERT_NE(cache.find(key_of(1)), nullptr);  // touch 1: now 2 is the LRU
  insert(cache, 4, 6);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr) << "the LRU entry must go first";
  EXPECT_NE(cache.find(key_of(3)), nullptr);
  EXPECT_NE(cache.find(key_of(4)), nullptr);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(MemoCacheTest, FreshInsertIsNeverEvictedByItsOwnInsertion) {
  MemoCache probe(0);
  insert(probe, 0, 12);
  // Budget smaller than one entry: the entry still lands (evicting
  // everything else), because evicting the fresh result would make the
  // cache useless for oversized nodes.
  MemoCache cache(probe.bytes() / 2);
  insert(cache, 1, 12);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
}

TEST(MemoCacheTest, ZeroBudgetMeansUnlimited) {
  MemoCache cache(0);
  for (std::uint64_t n = 0; n < 200; ++n) insert(cache, n, 8);
  EXPECT_EQ(cache.size(), 200u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(MemoCacheTest, RollbackRemovesEpochInsertions) {
  MemoCache cache;
  insert(cache, 1);
  cache.begin_epoch();
  insert(cache, 2);
  insert(cache, 3);
  EXPECT_EQ(cache.size(), 3u);
  cache.rollback_epoch();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_EQ(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.stats().rollback_discards, 2u);
}

TEST(MemoCacheTest, CommitKeepsEpochInsertions) {
  MemoCache cache;
  cache.begin_epoch();
  insert(cache, 2);
  cache.commit_epoch();
  EXPECT_FALSE(cache.in_epoch());
  EXPECT_NE(cache.find(key_of(2)), nullptr);
  // A later rollback of a new, empty epoch must not touch it.
  cache.begin_epoch();
  cache.rollback_epoch();
  EXPECT_NE(cache.find(key_of(2)), nullptr);
}

TEST(MemoCacheTest, EvictionsInsideAnEpochArePermanent) {
  MemoCache probe(0);
  insert(probe, 0, 6);
  const std::size_t per_entry = probe.bytes();

  MemoCache cache(2 * per_entry + per_entry / 2);
  insert(cache, 1, 6);
  insert(cache, 2, 6);
  cache.begin_epoch();
  insert(cache, 3, 6);  // evicts 1 (LRU)
  ASSERT_EQ(cache.stats().evictions, 1u);
  cache.rollback_epoch();
  // 3 (epoch insertion) is gone, and the evicted 1 does NOT come back —
  // losing an entry can only cause a recompute, never a wrong result.
  EXPECT_EQ(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  EXPECT_NE(cache.find(key_of(2)), nullptr);
}

TEST(MemoCacheTest, BytesTrackInsertionsAndClear) {
  MemoCache cache;
  EXPECT_EQ(cache.bytes(), 0u);
  insert(cache, 1, 10);
  const std::size_t one = cache.bytes();
  EXPECT_GT(one, 0u);
  insert(cache, 2, 10);
  EXPECT_GT(cache.bytes(), one);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(MemoCacheTest, ApproxEntryBytesGrowsWithPayload) {
  EXPECT_LT(approx_entry_bytes(make_payload(2).result),
            approx_entry_bytes(make_payload(40).result));
}

// ---- cache keys ---------------------------------------------------------

TEST(CacheKeyTest, DeterministicAndConfigSensitive) {
  const std::vector<Module> modules =
      generate_modules(6, ModuleGenConfig{.impl_count = 4}, 11);
  const FloorplanTree tree = PolishExpr::initial(modules.size()).to_tree(modules);
  OptimizerOptions opts;
  opts.selection.k1 = 6;

  const BinaryTree bt = restructure(tree, opts.restructure);
  const std::vector<CacheKey> a = derive_node_keys(bt, tree, opts);
  const std::vector<CacheKey> b = derive_node_keys(bt, tree, opts);
  EXPECT_EQ(a, b);

  OptimizerOptions changed = opts;
  changed.selection.theta = 0.5;
  const std::vector<CacheKey> c = derive_node_keys(bt, tree, changed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i], c[i]) << "node " << i << ": theta must be part of every key";
  }
}

TEST(CacheKeyTest, BudgetAndThreadsDoNotChangeKeys) {
  const std::vector<Module> modules =
      generate_modules(5, ModuleGenConfig{.impl_count = 3}, 13);
  const FloorplanTree tree = PolishExpr::initial(modules.size()).to_tree(modules);
  OptimizerOptions opts;
  const BinaryTree bt = restructure(tree, opts.restructure);
  const std::vector<CacheKey> base = derive_node_keys(bt, tree, opts);

  OptimizerOptions other = opts;
  other.impl_budget = 123;
  other.threads = 8;
  other.incremental = true;
  EXPECT_EQ(base, derive_node_keys(bt, tree, other))
      << "budget/threads never change a completed node's bytes";
}

TEST(CacheKeyTest, ConfigFingerprintSeparatesKnobs) {
  OptimizerOptions a;
  OptimizerOptions b;
  b.selection.k2 = 5;
  OptimizerOptions c;
  c.l_pruning = LPruning::PerChain;
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(a));
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
  EXPECT_NE(config_fingerprint(a), config_fingerprint(c));
  EXPECT_NE(config_fingerprint(b), config_fingerprint(c));
}

}  // namespace
}  // namespace fpopt
