// Cross-module integration and invariant tests: determinism, budget
// accounting, serialization fuzzing, soft modules inside the optimizer,
// and pruning-policy independence of the exact result.
#include <gtest/gtest.h>

#include <functional>

#include "core/soft_module.h"
#include "floorplan/serialize.h"
#include "optimize/optimizer.h"
#include "optimize/placement.h"
#include "workload/floorplans.h"

namespace fpopt {
namespace {

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 10;
  cfg.seed = 77;
  const FloorplanTree tree = make_fp1(cfg);
  OptimizerOptions opts;
  opts.selection.k1 = 15;
  opts.selection.k2 = 90;

  const OptimizeOutcome a = optimize_floorplan(tree, opts);
  const OptimizeOutcome b = optimize_floorplan(tree, opts);
  ASSERT_FALSE(a.out_of_memory);
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.best_area, b.best_area);
  EXPECT_EQ(a.stats.peak_stored, b.stats.peak_stored);
  EXPECT_EQ(a.stats.total_generated, b.stats.total_generated);
  const Placement pa = trace_placement(tree, a, 0);
  const Placement pb = trace_placement(tree, b, 0);
  ASSERT_EQ(pa.rooms.size(), pb.rooms.size());
  for (std::size_t i = 0; i < pa.rooms.size(); ++i) {
    EXPECT_EQ(pa.rooms[i].room, pb.rooms[i].room);
  }
}

TEST(BudgetAccountingTest, FinalStoredEqualsTheSumOfRetainedLists) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 8;
  cfg.seed = 13;
  const FloorplanTree tree = make_fp1(cfg);
  for (const std::size_t k1 : {std::size_t{0}, std::size_t{10}}) {
    OptimizerOptions opts;
    opts.selection.k1 = k1;
    opts.selection.k2 = k1 == 0 ? 0 : 60;
    const OptimizeOutcome out = optimize_floorplan(tree, opts);
    ASSERT_FALSE(out.out_of_memory);
    std::size_t total = 0;
    for (const NodeResult& res : out.artifacts->nodes) {
      total += res.is_l ? res.lset.total_size() : res.rlist.size();
    }
    EXPECT_EQ(out.stats.final_stored, total) << "k1=" << k1;
    EXPECT_GE(out.stats.peak_stored, out.stats.final_stored);
  }
}

TEST(SerializeFuzzTest, RandomTreesRoundTrip) {
  Pcg32 rng(31337);
  for (int iter = 0; iter < 60; ++iter) {
    // Grow a random tree with ~12 leaves.
    std::size_t next_id = 0;
    const std::function<std::unique_ptr<FloorplanNode>(int)> grow =
        [&](int depth) -> std::unique_ptr<FloorplanNode> {
      const std::uint32_t roll = rng.below(10);
      if (depth >= 3 || roll < 4) return FloorplanNode::leaf(next_id++);
      if (roll < 8) {
        std::vector<std::unique_ptr<FloorplanNode>> ch;
        const std::size_t n = 2 + rng.below(3);
        for (std::size_t i = 0; i < n; ++i) ch.push_back(grow(depth + 1));
        return FloorplanNode::slice(
            rng.below(2) == 0 ? SliceDir::Vertical : SliceDir::Horizontal, std::move(ch));
      }
      std::array<std::unique_ptr<FloorplanNode>, kWheelArity> ch;
      for (auto& c : ch) c = grow(depth + 1);
      return FloorplanNode::wheel(
          rng.below(2) == 0 ? WheelChirality::Clockwise : WheelChirality::CounterClockwise,
          std::move(ch));
    };
    auto root = grow(0);
    if (next_id < 2) continue;

    std::vector<Module> modules;
    for (std::size_t i = 0; i < next_id; ++i) {
      modules.emplace_back("m" + std::to_string(i),
                           RList::from_candidates({{1 + static_cast<Dim>(rng.below(9)),
                                                    1 + static_cast<Dim>(rng.below(9))}}));
    }
    FloorplanTree tree(std::move(modules), std::move(root));
    ASSERT_TRUE(tree.validate().empty());

    const std::string topo = to_topology_string(tree);
    FloorplanTree again = parse_floorplan(topo, tree.modules());
    EXPECT_EQ(to_topology_string(again), topo);
    // Structural equality via stats + a full optimize agreement.
    EXPECT_EQ(again.stats().leaf_count, tree.stats().leaf_count);
    EXPECT_EQ(again.stats().wheel_count, tree.stats().wheel_count);
    const Area a = optimize_floorplan(tree, {}).best_area;
    const Area b = optimize_floorplan(again, {}).best_area;
    EXPECT_EQ(a, b);
  }
}

TEST(SoftModuleIntegrationTest, SoftModulesFlowThroughTheOptimizer) {
  // Section 6: continuous curves, sampled then reduced, as wheel children.
  std::vector<Module> modules;
  modules.push_back(make_soft_module("s0", 300, 6, 50, 12));
  modules.push_back(make_soft_module("s1", 200, 5, 40, 12));
  modules.push_back(make_soft_module("s2", 100, 4, 25, 12));
  modules.push_back(make_soft_module("s3", 250, 6, 45, 12));
  modules.push_back(make_soft_module("s4", 350, 7, 50, 12));

  FloorplanTree tree = parse_floorplan("(W s0 s1 s2 s3 s4)", std::move(modules));
  ASSERT_TRUE(tree.validate().empty());
  const OptimizeOutcome out = optimize_floorplan(tree, {});
  ASSERT_FALSE(out.out_of_memory);
  // The chip must be at least as large as the sum of module areas.
  EXPECT_GE(out.best_area, 300 + 200 + 100 + 250 + 350);
  const Placement p = trace_placement(tree, out, out.root.min_area_index());
  EXPECT_TRUE(validate_placement(p, tree).empty());
}

TEST(PruningPolicyTest, AllPoliciesAgreeOnTheExactResult) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 6;
  for (const std::uint64_t seed : {3u, 4u}) {
    cfg.seed = seed;
    const FloorplanTree tree = make_fp1(cfg);
    RList reference;
    for (const LPruning policy :
         {LPruning::PerChain, LPruning::GlobalAtNode, LPruning::GlobalEager}) {
      OptimizerOptions opts;
      opts.impl_budget = 0;
      opts.l_pruning = policy;
      const OptimizeOutcome out = optimize_floorplan(tree, opts);
      ASSERT_FALSE(out.out_of_memory);
      if (reference.empty()) {
        reference = out.root;
      } else {
        EXPECT_EQ(out.root, reference);
      }
    }
  }
}

TEST(PruningPolicyTest, MemoryOrderingHolds) {
  WorkloadConfig cfg;
  cfg.impls_per_module = 8;
  cfg.seed = 5;
  const FloorplanTree tree = make_single_pinwheel(cfg);
  std::size_t peaks[3];
  int i = 0;
  for (const LPruning policy :
       {LPruning::PerChain, LPruning::GlobalAtNode, LPruning::GlobalEager}) {
    OptimizerOptions opts;
    opts.impl_budget = 0;
    opts.l_pruning = policy;
    peaks[i++] = optimize_floorplan(tree, opts).stats.peak_stored;
  }
  EXPECT_GE(peaks[0], peaks[1]) << "per-chain stores at least as much as global-at-node";
  EXPECT_GE(peaks[1], peaks[2]) << "global-at-node stores at least as much as eager";
}

TEST(StressTest, ManyRandomSmallTreesAllTileExactly) {
  Pcg32 rng(4242);
  WorkloadConfig cfg;
  cfg.impls_per_module = 4;
  for (int iter = 0; iter < 15; ++iter) {
    cfg.seed = 1000 + static_cast<std::uint64_t>(iter);
    const FloorplanTree tree =
        iter % 3 == 0   ? make_fp1(cfg)
        : iter % 3 == 1 ? make_grid(2 + rng.below(3), 2 + rng.below(4), cfg)
                        : make_single_pinwheel(cfg, iter % 2 == 0
                                                        ? WheelChirality::Clockwise
                                                        : WheelChirality::CounterClockwise);
    OptimizerOptions opts;
    opts.selection.k1 = 2 + rng.below(12);
    opts.selection.k2 = 10 + rng.below(80);
    const OptimizeOutcome out = optimize_floorplan(tree, opts);
    ASSERT_FALSE(out.out_of_memory);
    const Placement p = trace_placement(tree, out, out.root.min_area_index());
    const auto problems = validate_placement(p, tree);
    EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
  }
}

}  // namespace
}  // namespace fpopt
