// Tests for R_Selection: optimality against brute-force subset
// enumeration, endpoint preservation, and evaluator agreement.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/r_selection.h"
#include "geometry/staircase.h"
#include "test_util.h"

namespace fpopt {
namespace {

TEST(RSelectionTest, NoLimitKeepsEverything) {
  Pcg32 rng(1);
  const RList list = test::random_r_list(7, rng);
  for (const std::size_t k : {std::size_t{0}, std::size_t{7}, std::size_t{20}}) {
    const SelectionResult r = r_selection(list, k);
    EXPECT_EQ(r.kept.size(), list.size());
    EXPECT_EQ(r.error, 0);
  }
}

TEST(RSelectionTest, EndpointsAlwaysSurvive) {
  Pcg32 rng(2);
  for (int iter = 0; iter < 20; ++iter) {
    const RList list = test::random_r_list(12, rng);
    for (std::size_t k = 2; k < 12; ++k) {
      const SelectionResult r = r_selection(list, k);
      ASSERT_EQ(r.kept.size(), k);
      EXPECT_EQ(r.kept.front(), 0u);
      EXPECT_EQ(r.kept.back(), list.size() - 1);
    }
  }
}

TEST(RSelectionTest, ReportedErrorMatchesGeometricCost) {
  Pcg32 rng(3);
  for (int iter = 0; iter < 25; ++iter) {
    const RList list = test::random_r_list(3 + rng.below(15), rng);
    const std::size_t k = 2 + rng.below(static_cast<std::uint32_t>(list.size() - 2));
    const SelectionResult r = r_selection(list, k);
    EXPECT_EQ(static_cast<Area>(r.error), staircase_subset_error(list.impls(), r.kept));
  }
}

class RSelectionBruteForceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RSelectionBruteForceTest, OptimalAgainstAllSubsets) {
  const auto [n, k] = GetParam();
  Pcg32 rng(100 + n * 10 + k);
  for (int iter = 0; iter < 8; ++iter) {
    const RList list = test::random_r_list(n, rng);
    Area best = std::numeric_limits<Area>::max();
    test::for_each_endpoint_subset(n, k, [&](const std::vector<std::size_t>& subset) {
      best = std::min(best, staircase_subset_error(list.impls(), subset));
    });
    const SelectionResult monge = r_selection(list, k, SelectionDp::Monge);
    const SelectionResult generic = r_selection(list, k, SelectionDp::Generic);
    EXPECT_EQ(static_cast<Area>(monge.error), best);
    EXPECT_EQ(static_cast<Area>(generic.error), best);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RSelectionBruteForceTest,
    ::testing::Values(std::tuple{4, 2}, std::tuple{5, 3}, std::tuple{7, 3}, std::tuple{7, 5},
                      std::tuple{9, 2}, std::tuple{9, 4}, std::tuple{10, 6}, std::tuple{11, 8},
                      std::tuple{12, 3}));

TEST(RSelectionTest, MongeAgreesWithGenericOnLargeRandomLists) {
  Pcg32 rng(55);
  for (int iter = 0; iter < 10; ++iter) {
    const RList list = test::random_r_list(80, rng);
    for (const std::size_t k : {std::size_t{2}, std::size_t{5}, std::size_t{20},
                                std::size_t{50}, std::size_t{79}}) {
      const SelectionResult monge = r_selection(list, k, SelectionDp::Monge);
      const SelectionResult generic = r_selection(list, k, SelectionDp::Generic);
      EXPECT_EQ(monge.error, generic.error) << "k=" << k;
    }
  }
}

TEST(RSelectionTest, ErrorIsMonotoneNonIncreasingInK) {
  Pcg32 rng(66);
  const RList list = test::random_r_list(40, rng);
  Weight prev = kInfiniteWeight;
  for (std::size_t k = 2; k <= 40; ++k) {
    const SelectionResult r = r_selection(list, k);
    EXPECT_LE(r.error, prev) << "keeping more corners can never increase the error";
    prev = r.error;
  }
  EXPECT_EQ(prev, 0) << "k == n keeps everything";
}

TEST(RSelectionForErrorTest, ZeroBudgetKeepsEverythingUnlessFree) {
  Pcg32 rng(70);
  const RList list = test::random_r_list(20, rng);
  const SelectionResult r = r_selection_for_error(list, 0);
  // With random strict staircases every interior corner costs area, so a
  // zero budget forces keeping all corners.
  EXPECT_EQ(r.kept.size(), list.size());
  EXPECT_EQ(r.error, 0);
}

TEST(RSelectionForErrorTest, HugeBudgetKeepsOnlyTheEndpoints) {
  Pcg32 rng(71);
  const RList list = test::random_r_list(20, rng);
  const SelectionResult r = r_selection_for_error(list, 1e18);
  EXPECT_EQ(r.kept, (std::vector<std::size_t>{0, list.size() - 1}));
}

TEST(RSelectionForErrorTest, ReturnsTheMinimalFeasibleK) {
  Pcg32 rng(72);
  for (int iter = 0; iter < 20; ++iter) {
    const RList list = test::random_r_list(16, rng);
    // Use the k=6 optimum as the budget: the answer must have size <= 6,
    // meet the budget, and size-1 must violate it.
    const Weight budget = r_selection(list, 6).error;
    const SelectionResult r = r_selection_for_error(list, budget);
    EXPECT_LE(r.error, budget);
    EXPECT_LE(r.kept.size(), 6u);
    if (r.kept.size() > 2) {
      EXPECT_GT(r_selection(list, r.kept.size() - 1).error, budget);
    }
  }
}

TEST(RSelectionForErrorTest, TinyListsPassThrough) {
  const RList one = RList::from_candidates({{5, 5}});
  EXPECT_EQ(r_selection_for_error(one, 0).kept.size(), 1u);
  const RList two = RList::from_candidates({{9, 2}, {3, 7}});
  EXPECT_EQ(r_selection_for_error(two, 0).kept.size(), 2u);
}

TEST(RSelectionTest, SubsetIsUsableAsAnRList) {
  Pcg32 rng(67);
  const RList list = test::random_r_list(30, rng);
  const SelectionResult r = r_selection(list, 7);
  const RList reduced = list.subset(r.kept);
  EXPECT_TRUE(is_irreducible_r_list(reduced.impls()));
  EXPECT_EQ(reduced.size(), 7u);
}

}  // namespace
}  // namespace fpopt
