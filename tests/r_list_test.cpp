// Unit and property tests for irreducible R-lists and dominance pruning.
#include <gtest/gtest.h>

#include <numeric>

#include "shape/r_list.h"
#include "test_util.h"

namespace fpopt {
namespace {

TEST(PruneRectTest, RemovesDominatedCandidates) {
  const std::vector<RectImpl> cands{{5, 5}, {4, 4}, {6, 6}, {4, 6}};
  const auto kept = prune_rect_candidates(cands);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(cands[kept[0]], (RectImpl{4, 4}));
}

TEST(PruneRectTest, KeepsIncomparableCandidatesInWidthOrder) {
  const std::vector<RectImpl> cands{{3, 7}, {9, 2}, {6, 4}};
  const auto kept = prune_rect_candidates(cands);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(cands[kept[0]].w, 9);
  EXPECT_EQ(cands[kept[1]].w, 6);
  EXPECT_EQ(cands[kept[2]].w, 3);
}

TEST(PruneRectTest, DeduplicatesExactCopies) {
  const std::vector<RectImpl> cands{{5, 5}, {5, 5}, {5, 5}};
  EXPECT_EQ(prune_rect_candidates(cands).size(), 1u);
}

TEST(PruneRectTest, EqualWidthKeepsShortest) {
  const std::vector<RectImpl> cands{{5, 9}, {5, 3}, {5, 6}};
  const auto kept = prune_rect_candidates(cands);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(cands[kept[0]], (RectImpl{5, 3}));
}

TEST(PruneRectTest, EmptyInput) { EXPECT_TRUE(prune_rect_candidates({}).empty()); }

TEST(RListTest, FromCandidatesProducesIrreducibleList) {
  Pcg32 rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<RectImpl> cands;
    const std::size_t n = 1 + rng.below(40);
    for (std::size_t i = 0; i < n; ++i) {
      cands.push_back({1 + static_cast<Dim>(rng.below(30)), 1 + static_cast<Dim>(rng.below(30))});
    }
    const RList list = RList::from_candidates(cands);
    EXPECT_TRUE(is_irreducible_r_list(list.impls()));
    // Everything removed is dominated by something kept; everything kept
    // is a candidate.
    for (const RectImpl& c : cands) {
      const std::optional<Dim> h = list.min_height_at(c.w);
      EXPECT_TRUE(h && *h <= c.h) << "candidate " << c << " not covered by the frontier";
    }
  }
}

TEST(RListTest, MinAreaIndex) {
  const RList list = RList::from_candidates({{10, 2}, {5, 5}, {2, 10}});
  EXPECT_EQ(list[list.min_area_index()].area(), 20);
  const RList single = RList::from_candidates({{7, 3}});
  EXPECT_EQ(single.min_area_index(), 0u);
}

TEST(RListTest, SubsetPreservesOrderAndIrreducibility) {
  Pcg32 rng(11);
  const RList list = test::random_r_list(12, rng);
  const std::vector<std::size_t> kept{0, 3, 4, 9, 11};
  const RList sub = list.subset(kept);
  ASSERT_EQ(sub.size(), kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) EXPECT_EQ(sub[i], list[kept[i]]);
  EXPECT_TRUE(is_irreducible_r_list(sub.impls()));
}

TEST(RListTest, EqualityAndEmpty) {
  EXPECT_TRUE(RList{}.empty());
  const RList a = RList::from_candidates({{4, 4}, {2, 6}});
  const RList b = RList::from_candidates({{2, 6}, {4, 4}});
  EXPECT_EQ(a, b) << "construction order must not matter";
}

class PruneRectRandomTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PruneRectRandomTest, AgreesWithQuadraticOracle) {
  Pcg32 rng(17 + GetParam());
  std::vector<RectImpl> cands;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    cands.push_back({1 + static_cast<Dim>(rng.below(15)), 1 + static_cast<Dim>(rng.below(15))});
  }
  const auto kept = prune_rect_candidates(cands);
  // Oracle: candidate i survives iff no other candidate strictly "covers"
  // it (dominated by a distinct, not-identical-duplicate candidate), with
  // exactly one survivor per duplicate group.
  std::size_t expected = 0;
  std::vector<RectImpl> uniq = cands;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  for (const RectImpl& c : uniq) {
    bool dominated = false;
    for (const RectImpl& other : uniq) {
      if (other != c && c.dominates(other)) dominated = true;
    }
    if (!dominated) ++expected;
  }
  EXPECT_EQ(kept.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PruneRectRandomTest,
                         ::testing::Values(0, 1, 2, 5, 10, 25, 60, 150));

}  // namespace
}  // namespace fpopt
