// Unit tests for the memory instrumentation (BudgetTracker / TransientScope).
#include <gtest/gtest.h>

#include "optimize/stats.h"

namespace fpopt {
namespace {

TEST(BudgetTrackerTest, TracksStoredAndPeak) {
  BudgetTracker t(100);
  t.add_stored(30);
  t.add_stored(40);
  EXPECT_EQ(t.stored(), 70u);
  EXPECT_EQ(t.peak_stored(), 70u);
  t.sub_stored(50);
  EXPECT_EQ(t.stored(), 20u);
  EXPECT_EQ(t.peak_stored(), 70u) << "peak is sticky";
  t.add_stored(60);
  EXPECT_EQ(t.peak_stored(), 80u);
}

TEST(BudgetTrackerTest, ThrowsExactlyWhenBudgetExceeded) {
  BudgetTracker t(100);
  t.add_stored(100);  // exactly at the budget: fine
  EXPECT_THROW(t.add_stored(1), MemoryLimitExceeded);
}

TEST(BudgetTrackerTest, StoredPlusTransientTriggersTheLimit) {
  BudgetTracker t(100);
  t.add_stored(60);
  t.add_transient(40);  // 100: fine
  EXPECT_THROW(t.add_transient(1), MemoryLimitExceeded);
  t.sub_transient(40);
  t.add_stored(40);  // back to 100 via stored
  EXPECT_THROW(t.add_transient(1), MemoryLimitExceeded);
}

TEST(BudgetTrackerTest, PeakTotalTracksStoredPlusTransient) {
  // peak_total is the budget-check quantity (stats.peak_live): it must
  // capture the joint high-water mark, not the sum of component peaks.
  BudgetTracker t(0);
  t.add_stored(40);
  t.add_transient(30);  // joint peak 70
  EXPECT_EQ(t.peak_total(), 70u);
  t.sub_transient(30);
  t.add_stored(20);  // stored peak 60, joint still 70
  EXPECT_EQ(t.peak_stored(), 60u);
  EXPECT_EQ(t.peak_transient(), 30u);
  EXPECT_EQ(t.peak_total(), 70u) << "joint peak is sticky";
  t.add_transient(15);  // 75: new joint peak
  EXPECT_EQ(t.peak_total(), 75u);
  EXPECT_GE(t.peak_total(), t.peak_stored());
  EXPECT_GE(t.peak_total(), t.peak_transient());
}

TEST(BudgetTrackerTest, RejectedAddLeavesPeaksUntouched) {
  BudgetTracker t(50);
  t.add_stored(30);
  t.add_transient(20);
  EXPECT_THROW(t.add_transient(1), MemoryLimitExceeded);
  EXPECT_EQ(t.peak_total(), 50u) << "the rejected add must not inflate the peak";
  EXPECT_EQ(t.peak_transient(), 20u);
}

TEST(BudgetTrackerTest, ZeroBudgetMeansUnlimited) {
  BudgetTracker t(0);
  t.add_stored(1'000'000);
  t.add_transient(1'000'000);
  EXPECT_EQ(t.peak_stored(), 1'000'000u);
  EXPECT_EQ(t.peak_transient(), 1'000'000u);
}

TEST(BudgetTrackerTest, ExceptionCarriesTheCounts) {
  BudgetTracker t(10);
  t.add_stored(7);
  try {
    t.add_transient(5);
    FAIL() << "should have thrown";
  } catch (const MemoryLimitExceeded& e) {
    // Counts at rejection time (the rejected add is rolled back).
    EXPECT_EQ(e.stored, 7u);
    EXPECT_EQ(e.transient, 0u);
  }
}

TEST(TransientScopeTest, ReleasesEverythingOnDestruction) {
  BudgetTracker t(0);
  {
    TransientScope s(t);
    s.add(25);
    s.add(25);
    EXPECT_EQ(t.peak_transient(), 50u);
  }
  {
    TransientScope s(t);
    s.add(10);
  }
  EXPECT_EQ(t.peak_transient(), 50u);
}

TEST(TransientScopeTest, ResetToShrinksTheAccountedBuffer) {
  BudgetTracker t(0);
  TransientScope s(t);
  s.add(100);
  s.reset_to(30);
  EXPECT_EQ(t.peak_transient(), 100u);
  s.add(60);  // 90 total now
  EXPECT_EQ(t.peak_transient(), 100u) << "compaction really freed 70";
  s.reset_to(200);  // growing via reset is a no-op
  s.add(20);
  EXPECT_EQ(t.peak_transient(), 110u);
}

}  // namespace
}  // namespace fpopt
