// Unit tests for the service-observability primitives (ISSUE:
// observability): the MetricsRegistry's registration/render contract,
// the log2 latency histogram's exact bucket boundaries, and the
// structured JSONL log's deterministic field order. Every suite passes
// in both telemetry modes — under FPOPT_TELEMETRY=OFF mutations are
// no-ops and snapshots render with all-zero values but full shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "telemetry/metrics_schema.h"
#include "telemetry/telemetry.h"

namespace fpopt::telemetry {
namespace {

/// Expected value of a counter-style assertion given the build mode:
/// all instrumentation reads render 0 when telemetry is compiled out.
std::uint64_t when_on(std::uint64_t value) { return kEnabled ? value : 0; }

std::vector<std::string> validate_json_snapshot(const std::string& snapshot) {
  const JsonParseResult doc = parse_json(snapshot);
  EXPECT_TRUE(doc.value.has_value()) << doc.error;
  if (!doc.value.has_value()) return {"unparseable"};
  return validate_embedded_metrics(*doc.value);
}

TEST(LatencyHistogram, ZeroLandsInTheFirstBucket) {
  Histogram h;
  h.observe_ns(0);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), Histogram::kBuckets + 1);
  EXPECT_EQ(buckets[0], when_on(1));
  EXPECT_EQ(h.count(), when_on(1));
}

TEST(LatencyHistogram, BucketUpperBoundsAreInclusive) {
  // Prometheus `le` semantics: a sample exactly on a bucket's upper
  // bound belongs to that bucket; one nanosecond more spills into the
  // next. Exercise every finite boundary.
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    Histogram h;
    h.observe_ns(Histogram::upper_ns(i));
    EXPECT_EQ(h.bucket_counts()[i], when_on(1)) << "bound " << i;

    Histogram spill;
    spill.observe_ns(Histogram::upper_ns(i) + 1);
    const std::size_t next = i + 1;  // kBuckets = the +Inf overflow slot
    EXPECT_EQ(spill.bucket_counts()[next], when_on(1)) << "bound " << i << " + 1ns";
  }
}

TEST(LatencyHistogram, OverflowGoesToTheInfBucket) {
  Histogram h;
  h.observe_ns(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_counts()[Histogram::kBuckets], when_on(1));
  EXPECT_EQ(h.count(), when_on(1));
}

TEST(LatencyHistogram, CountIsTheSumOfAllBuckets) {
  Histogram h;
  h.observe_ns(0);
  h.observe_ns(500);
  h.observe_ns(123456);
  h.observe_ns(~std::uint64_t{0});
  EXPECT_EQ(h.count(), when_on(4));
}

TEST(LatencyHistogram, NegativeSecondsClampToZero) {
  Histogram h;
  h.observe_seconds(-1.5);
  EXPECT_EQ(h.bucket_counts()[0], when_on(1));
  EXPECT_EQ(h.sum_seconds(), 0.0);
}

TEST(LatencyHistogram, SumAccumulatesObservedTime) {
  Histogram h;
  h.observe_ns(1'000'000'000);  // 1s
  h.observe_ns(500'000'000);    // 0.5s
  if (kEnabled) {
    EXPECT_NEAR(h.sum_seconds(), 1.5, 1e-9);
  } else {
    EXPECT_EQ(h.sum_seconds(), 0.0);
  }
}

TEST(LatencyHistogram, ConcurrentObserversLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe_ns(static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), when_on(kThreads * kPerThread));
}

TEST(MetricsRegistry, RegistrationReturnsStableSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("demo_total", "help");
  Counter& b = registry.counter("demo_total", "help");
  EXPECT_EQ(&a, &b);  // same family + labels = same series
  Counter& low = registry.counter("labeled_total", "help", "priority", "0");
  Counter& high = registry.counter("labeled_total", "help", "priority", "1");
  EXPECT_NE(&low, &high);
  EXPECT_EQ(&low, &registry.counter("labeled_total", "help", "priority", "0"));
}

TEST(MetricsRegistry, JsonSnapshotValidatesAndCarriesValues) {
  MetricsRegistry registry;
  Counter& requests = registry.counter("demo_requests_total", "requests", "outcome", "ok");
  registry.counter("demo_requests_total", "requests", "outcome", "E_PARSE");
  Gauge& depth = registry.gauge("demo_depth", "queue depth");
  Histogram& latency = registry.histogram("demo_seconds", "latency");
  registry.counter_fn("demo_derived_total", "callback counter", [] { return 7u; });
  registry.gauge_fn("demo_derived_gauge", "callback gauge", [] { return 2.5; });

  requests.add(3);
  depth.set(4);
  latency.observe_seconds(0.001);

  const std::string snapshot = registry.to_json();
  EXPECT_EQ(validate_json_snapshot(snapshot), std::vector<std::string>{});

  const JsonParseResult doc = parse_json(snapshot);
  ASSERT_TRUE(doc.value.has_value());
  const JsonValue& top = *doc.value->find("fpopt_metrics");
  EXPECT_EQ(top.find("telemetry")->boolean, kEnabled);
  // First counter family, first series = the "ok" outcome registered first.
  const JsonValue& first_counter = top.find("counters")->array[0];
  EXPECT_EQ(first_counter.find("name")->string, "demo_requests_total");
  const JsonValue& ok_series = first_counter.find("series")->array[0];
  EXPECT_EQ(ok_series.find("labels")->find("outcome")->string, "ok");
  EXPECT_EQ(ok_series.find("value")->integer, static_cast<std::int64_t>(when_on(3)));
  const JsonValue& derived = top.find("counters")->array[1].find("series")->array[0];
  EXPECT_EQ(derived.find("value")->integer, static_cast<std::int64_t>(when_on(7)));
}

TEST(MetricsRegistry, PrometheusExpositionValidates) {
  MetricsRegistry registry;
  Counter& total = registry.counter("demo_total", "a counter");
  Histogram& latency = registry.histogram("demo_seconds", "a histogram", "priority", "1");
  total.add(2);
  latency.observe_seconds(0.5);
  latency.observe_seconds(200.0);  // lands in +Inf

  const std::string text = registry.to_prometheus();
  EXPECT_EQ(validate_prometheus_text(text), std::vector<std::string>{});
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{priority=\"1\",le=\"+Inf\"}"), std::string::npos);
  if (kEnabled) {
    EXPECT_NE(text.find("demo_total 2"), std::string::npos);
    EXPECT_NE(text.find("demo_seconds_count{priority=\"1\"} 2"), std::string::npos);
  }
}

TEST(MetricsRegistry, EqualValuesRenderByteIdentically) {
  MetricsRegistry registry;
  registry.counter("demo_total", "a").inc();
  registry.histogram("demo_seconds", "b").observe_seconds(0.25);
  const std::string json_once = registry.to_json();
  const std::string prom_once = registry.to_prometheus();
  EXPECT_EQ(json_once, registry.to_json());
  EXPECT_EQ(prom_once, registry.to_prometheus());
}

TEST(MetricsRegistry, SnapshotKeepsFullShapeWhenTelemetryIsOff) {
  // The off-mode contract: same families, same series, zero values —
  // so dashboards and validators never see a shape change.
  MetricsRegistry registry;
  registry.counter("demo_total", "a").add(100);
  registry.gauge_fn("demo_gauge", "b", [] { return 9.0; });
  const std::string snapshot = registry.to_json();
  EXPECT_EQ(validate_json_snapshot(snapshot), std::vector<std::string>{});
  if (!kEnabled) {
    EXPECT_NE(snapshot.find("\"telemetry\":false"), std::string::npos);
    EXPECT_EQ(snapshot.find("100"), std::string::npos);
    EXPECT_EQ(snapshot.find("9"), std::string::npos);
  }
}

TEST(StructuredLog, FieldsRenderInCallOrderDeterministically) {
  std::ostringstream out;
  LogSink sink(out, LogLevel::kDebug, /*stamp_time=*/false);
  LogEvent(&sink, LogLevel::kInfo, "request")
      .num("request_id", 7)
      .str("command", "optimize")
      .flag("ok", true)
      .dbl("latency_ms", 1.5)
      .num_signed("rc", -2);
  if (kEnabled) {
    EXPECT_EQ(out.str(),
              "{\"level\":\"info\",\"event\":\"request\",\"request_id\":7,"
              "\"command\":\"optimize\",\"ok\":true,\"latency_ms\":1.5,\"rc\":-2}\n");
    EXPECT_EQ(sink.lines(), 1u);
  } else {
    EXPECT_EQ(out.str(), "");
    EXPECT_EQ(sink.lines(), 0u);
  }
}

TEST(StructuredLog, LevelsBelowThresholdFormatNothing) {
  std::ostringstream out;
  LogSink sink(out, LogLevel::kWarn, /*stamp_time=*/false);
  LogEvent(&sink, LogLevel::kDebug, "noise").str("big", std::string(1 << 20, 'x'));
  LogEvent(&sink, LogLevel::kInfo, "still_noise");
  EXPECT_EQ(out.str(), "");
  LogEvent(&sink, LogLevel::kError, "kept");
  if (kEnabled) {
    EXPECT_EQ(out.str(), "{\"level\":\"error\",\"event\":\"kept\"}\n");
  }
}

TEST(StructuredLog, NullSinkIsSafe) {
  LogEvent(nullptr, LogLevel::kError, "nowhere").str("k", "v").num("n", 1);
  SUCCEED();
}

TEST(StructuredLog, EveryLineIsWellFormedJsonUnderConcurrency) {
  std::ostringstream out;
  LogSink sink(out, LogLevel::kInfo, /*stamp_time=*/false);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogEvent(&sink, LogLevel::kInfo, "tick")
            .num("thread", static_cast<std::uint64_t>(t))
            .num("i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (!kEnabled) {
    EXPECT_EQ(out.str(), "");
    return;
  }
  EXPECT_EQ(sink.lines(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::istringstream lines(out.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    const JsonParseResult doc = parse_json(line);
    ASSERT_TRUE(doc.value.has_value()) << "interleaved line: " << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(StructuredLog, LogLevelNamesRoundTrip) {
  for (const char* name : {"debug", "info", "warn", "error", "off"}) {
    LogLevel level = LogLevel::kInfo;
    EXPECT_TRUE(parse_log_level(name, level)) << name;
    EXPECT_STREQ(log_level_name(level), name);
  }
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(parse_log_level("verbose", level));
}

}  // namespace
}  // namespace fpopt::telemetry
